file(REMOVE_RECURSE
  "CMakeFiles/table2_power_difference.dir/table2_power_difference.cpp.o"
  "CMakeFiles/table2_power_difference.dir/table2_power_difference.cpp.o.d"
  "table2_power_difference"
  "table2_power_difference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_power_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
