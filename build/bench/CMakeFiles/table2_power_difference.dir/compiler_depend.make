# Empty compiler generated dependencies file for table2_power_difference.
# This may be replaced when dependencies are built.
