file(REMOVE_RECURSE
  "CMakeFiles/fig11_async.dir/fig11_async.cpp.o"
  "CMakeFiles/fig11_async.dir/fig11_async.cpp.o.d"
  "fig11_async"
  "fig11_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
