# Empty dependencies file for fig11_async.
# This may be replaced when dependencies are built.
