# Empty dependencies file for fig9b_pn_codes.
# This may be replaced when dependencies are built.
