file(REMOVE_RECURSE
  "CMakeFiles/fig9b_pn_codes.dir/fig9b_pn_codes.cpp.o"
  "CMakeFiles/fig9b_pn_codes.dir/fig9b_pn_codes.cpp.o.d"
  "fig9b_pn_codes"
  "fig9b_pn_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_pn_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
