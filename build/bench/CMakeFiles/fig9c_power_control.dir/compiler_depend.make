# Empty compiler generated dependencies file for fig9c_power_control.
# This may be replaced when dependencies are built.
