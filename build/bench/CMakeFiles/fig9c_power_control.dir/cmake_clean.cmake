file(REMOVE_RECURSE
  "CMakeFiles/fig9c_power_control.dir/fig9c_power_control.cpp.o"
  "CMakeFiles/fig9c_power_control.dir/fig9c_power_control.cpp.o.d"
  "fig9c_power_control"
  "fig9c_power_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9c_power_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
