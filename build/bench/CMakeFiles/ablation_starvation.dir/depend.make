# Empty dependencies file for ablation_starvation.
# This may be replaced when dependencies are built.
