file(REMOVE_RECURSE
  "CMakeFiles/ablation_starvation.dir/ablation_starvation.cpp.o"
  "CMakeFiles/ablation_starvation.dir/ablation_starvation.cpp.o.d"
  "ablation_starvation"
  "ablation_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
