
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_starvation.cpp" "bench/CMakeFiles/ablation_starvation.dir/ablation_starvation.cpp.o" "gcc" "bench/CMakeFiles/ablation_starvation.dir/ablation_starvation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
