# Empty compiler generated dependencies file for throughput_comparison.
# This may be replaced when dependencies are built.
