file(REMOVE_RECURSE
  "CMakeFiles/throughput_comparison.dir/throughput_comparison.cpp.o"
  "CMakeFiles/throughput_comparison.dir/throughput_comparison.cpp.o.d"
  "throughput_comparison"
  "throughput_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
