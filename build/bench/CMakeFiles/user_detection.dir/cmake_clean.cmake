file(REMOVE_RECURSE
  "CMakeFiles/user_detection.dir/user_detection.cpp.o"
  "CMakeFiles/user_detection.dir/user_detection.cpp.o.d"
  "user_detection"
  "user_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
