# Empty dependencies file for user_detection.
# This may be replaced when dependencies are built.
