file(REMOVE_RECURSE
  "CMakeFiles/fig8a_distance.dir/fig8a_distance.cpp.o"
  "CMakeFiles/fig8a_distance.dir/fig8a_distance.cpp.o.d"
  "fig8a_distance"
  "fig8a_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
