# Empty compiler generated dependencies file for fig8a_distance.
# This may be replaced when dependencies are built.
