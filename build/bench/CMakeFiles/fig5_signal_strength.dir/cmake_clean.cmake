file(REMOVE_RECURSE
  "CMakeFiles/fig5_signal_strength.dir/fig5_signal_strength.cpp.o"
  "CMakeFiles/fig5_signal_strength.dir/fig5_signal_strength.cpp.o.d"
  "fig5_signal_strength"
  "fig5_signal_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_signal_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
