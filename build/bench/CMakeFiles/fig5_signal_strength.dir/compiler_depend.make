# Empty compiler generated dependencies file for fig5_signal_strength.
# This may be replaced when dependencies are built.
