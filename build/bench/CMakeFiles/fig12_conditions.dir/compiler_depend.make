# Empty compiler generated dependencies file for fig12_conditions.
# This may be replaced when dependencies are built.
