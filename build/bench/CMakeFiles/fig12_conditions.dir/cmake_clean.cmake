file(REMOVE_RECURSE
  "CMakeFiles/fig12_conditions.dir/fig12_conditions.cpp.o"
  "CMakeFiles/fig12_conditions.dir/fig12_conditions.cpp.o.d"
  "fig12_conditions"
  "fig12_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
