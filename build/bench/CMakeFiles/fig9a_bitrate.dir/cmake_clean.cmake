file(REMOVE_RECURSE
  "CMakeFiles/fig9a_bitrate.dir/fig9a_bitrate.cpp.o"
  "CMakeFiles/fig9a_bitrate.dir/fig9a_bitrate.cpp.o.d"
  "fig9a_bitrate"
  "fig9a_bitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
