# Empty dependencies file for fig9a_bitrate.
# This may be replaced when dependencies are built.
