file(REMOVE_RECURSE
  "CMakeFiles/ablation_impedance.dir/ablation_impedance.cpp.o"
  "CMakeFiles/ablation_impedance.dir/ablation_impedance.cpp.o.d"
  "ablation_impedance"
  "ablation_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
