# Empty compiler generated dependencies file for ablation_impedance.
# This may be replaced when dependencies are built.
