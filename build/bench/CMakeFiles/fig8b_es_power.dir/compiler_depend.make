# Empty compiler generated dependencies file for fig8b_es_power.
# This may be replaced when dependencies are built.
