# Empty dependencies file for fig8c_preamble.
# This may be replaced when dependencies are built.
