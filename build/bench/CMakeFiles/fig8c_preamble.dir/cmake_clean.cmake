file(REMOVE_RECURSE
  "CMakeFiles/fig8c_preamble.dir/fig8c_preamble.cpp.o"
  "CMakeFiles/fig8c_preamble.dir/fig8c_preamble.cpp.o.d"
  "fig8c_preamble"
  "fig8c_preamble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_preamble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
