# Empty compiler generated dependencies file for office_floor.
# This may be replaced when dependencies are built.
