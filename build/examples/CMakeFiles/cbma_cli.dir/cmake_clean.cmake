file(REMOVE_RECURSE
  "CMakeFiles/cbma_cli.dir/cbma_cli.cpp.o"
  "CMakeFiles/cbma_cli.dir/cbma_cli.cpp.o.d"
  "cbma_cli"
  "cbma_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
