# Empty compiler generated dependencies file for cbma_cli.
# This may be replaced when dependencies are built.
