file(REMOVE_RECURSE
  "CMakeFiles/dense_deployment.dir/dense_deployment.cpp.o"
  "CMakeFiles/dense_deployment.dir/dense_deployment.cpp.o.d"
  "dense_deployment"
  "dense_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
