# Empty compiler generated dependencies file for dense_deployment.
# This may be replaced when dependencies are built.
