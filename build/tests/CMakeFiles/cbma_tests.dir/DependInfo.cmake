
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_config_test.cpp" "tests/CMakeFiles/cbma_tests.dir/core_config_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/core_config_test.cpp.o.d"
  "/root/repo/tests/core_experiment_test.cpp" "tests/CMakeFiles/cbma_tests.dir/core_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/core_experiment_test.cpp.o.d"
  "/root/repo/tests/core_metrics_test.cpp" "tests/CMakeFiles/cbma_tests.dir/core_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/core_metrics_test.cpp.o.d"
  "/root/repo/tests/core_session_test.cpp" "tests/CMakeFiles/cbma_tests.dir/core_session_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/core_session_test.cpp.o.d"
  "/root/repo/tests/core_system_test.cpp" "tests/CMakeFiles/cbma_tests.dir/core_system_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/core_system_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/cbma_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mac_arq_test.cpp" "tests/CMakeFiles/cbma_tests.dir/mac_arq_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/mac_arq_test.cpp.o.d"
  "/root/repo/tests/mac_fsa_test.cpp" "tests/CMakeFiles/cbma_tests.dir/mac_fsa_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/mac_fsa_test.cpp.o.d"
  "/root/repo/tests/mac_fuzz_test.cpp" "tests/CMakeFiles/cbma_tests.dir/mac_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/mac_fuzz_test.cpp.o.d"
  "/root/repo/tests/mac_node_selection_test.cpp" "tests/CMakeFiles/cbma_tests.dir/mac_node_selection_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/mac_node_selection_test.cpp.o.d"
  "/root/repo/tests/mac_power_control_test.cpp" "tests/CMakeFiles/cbma_tests.dir/mac_power_control_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/mac_power_control_test.cpp.o.d"
  "/root/repo/tests/mac_throughput_test.cpp" "tests/CMakeFiles/cbma_tests.dir/mac_throughput_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/mac_throughput_test.cpp.o.d"
  "/root/repo/tests/phy_crc_test.cpp" "tests/CMakeFiles/cbma_tests.dir/phy_crc_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/phy_crc_test.cpp.o.d"
  "/root/repo/tests/phy_energy_test.cpp" "tests/CMakeFiles/cbma_tests.dir/phy_energy_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/phy_energy_test.cpp.o.d"
  "/root/repo/tests/phy_frame_test.cpp" "tests/CMakeFiles/cbma_tests.dir/phy_frame_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/phy_frame_test.cpp.o.d"
  "/root/repo/tests/phy_modulator_test.cpp" "tests/CMakeFiles/cbma_tests.dir/phy_modulator_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/phy_modulator_test.cpp.o.d"
  "/root/repo/tests/phy_spreader_test.cpp" "tests/CMakeFiles/cbma_tests.dir/phy_spreader_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/phy_spreader_test.cpp.o.d"
  "/root/repo/tests/phy_ssb_test.cpp" "tests/CMakeFiles/cbma_tests.dir/phy_ssb_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/phy_ssb_test.cpp.o.d"
  "/root/repo/tests/phy_tag_test.cpp" "tests/CMakeFiles/cbma_tests.dir/phy_tag_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/phy_tag_test.cpp.o.d"
  "/root/repo/tests/pn_code_test.cpp" "tests/CMakeFiles/cbma_tests.dir/pn_code_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/pn_code_test.cpp.o.d"
  "/root/repo/tests/pn_correlation_test.cpp" "tests/CMakeFiles/cbma_tests.dir/pn_correlation_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/pn_correlation_test.cpp.o.d"
  "/root/repo/tests/pn_family_properties_test.cpp" "tests/CMakeFiles/cbma_tests.dir/pn_family_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/pn_family_properties_test.cpp.o.d"
  "/root/repo/tests/pn_gold_test.cpp" "tests/CMakeFiles/cbma_tests.dir/pn_gold_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/pn_gold_test.cpp.o.d"
  "/root/repo/tests/pn_lfsr_test.cpp" "tests/CMakeFiles/cbma_tests.dir/pn_lfsr_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/pn_lfsr_test.cpp.o.d"
  "/root/repo/tests/pn_msequence_test.cpp" "tests/CMakeFiles/cbma_tests.dir/pn_msequence_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/pn_msequence_test.cpp.o.d"
  "/root/repo/tests/pn_twonc_test.cpp" "tests/CMakeFiles/cbma_tests.dir/pn_twonc_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/pn_twonc_test.cpp.o.d"
  "/root/repo/tests/rfsim_channel_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_channel_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_channel_test.cpp.o.d"
  "/root/repo/tests/rfsim_excitation_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_excitation_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_excitation_test.cpp.o.d"
  "/root/repo/tests/rfsim_friis_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_friis_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_friis_test.cpp.o.d"
  "/root/repo/tests/rfsim_geometry_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_geometry_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_geometry_test.cpp.o.d"
  "/root/repo/tests/rfsim_impedance_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_impedance_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_impedance_test.cpp.o.d"
  "/root/repo/tests/rfsim_interference_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_interference_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_interference_test.cpp.o.d"
  "/root/repo/tests/rfsim_noise_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_noise_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_noise_test.cpp.o.d"
  "/root/repo/tests/rfsim_obstacle_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rfsim_obstacle_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rfsim_obstacle_test.cpp.o.d"
  "/root/repo/tests/rx_cfo_sweep_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rx_cfo_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rx_cfo_sweep_test.cpp.o.d"
  "/root/repo/tests/rx_decoder_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rx_decoder_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rx_decoder_test.cpp.o.d"
  "/root/repo/tests/rx_frame_sync_sweep_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rx_frame_sync_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rx_frame_sync_sweep_test.cpp.o.d"
  "/root/repo/tests/rx_frame_sync_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rx_frame_sync_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rx_frame_sync_test.cpp.o.d"
  "/root/repo/tests/rx_receiver_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rx_receiver_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rx_receiver_test.cpp.o.d"
  "/root/repo/tests/rx_sic_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rx_sic_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rx_sic_test.cpp.o.d"
  "/root/repo/tests/rx_user_detect_test.cpp" "tests/CMakeFiles/cbma_tests.dir/rx_user_detect_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/rx_user_detect_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/cbma_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/cbma_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/cbma_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/cbma_tests.dir/util_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
