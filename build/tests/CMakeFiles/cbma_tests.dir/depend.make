# Empty dependencies file for cbma_tests.
# This may be replaced when dependencies are built.
