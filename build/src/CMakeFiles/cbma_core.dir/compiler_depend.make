# Empty compiler generated dependencies file for cbma_core.
# This may be replaced when dependencies are built.
