file(REMOVE_RECURSE
  "libcbma_core.a"
)
