
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/cbma_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/cbma_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/cbma_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/cbma_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/cbma_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/cbma_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/cbma_core.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/cbma_core.dir/core/session.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/cbma_core.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/cbma_core.dir/core/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
