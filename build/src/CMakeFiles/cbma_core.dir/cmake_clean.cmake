file(REMOVE_RECURSE
  "CMakeFiles/cbma_core.dir/core/config.cpp.o"
  "CMakeFiles/cbma_core.dir/core/config.cpp.o.d"
  "CMakeFiles/cbma_core.dir/core/experiment.cpp.o"
  "CMakeFiles/cbma_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/cbma_core.dir/core/metrics.cpp.o"
  "CMakeFiles/cbma_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/cbma_core.dir/core/session.cpp.o"
  "CMakeFiles/cbma_core.dir/core/session.cpp.o.d"
  "CMakeFiles/cbma_core.dir/core/system.cpp.o"
  "CMakeFiles/cbma_core.dir/core/system.cpp.o.d"
  "libcbma_core.a"
  "libcbma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
