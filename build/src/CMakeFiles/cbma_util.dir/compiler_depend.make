# Empty compiler generated dependencies file for cbma_util.
# This may be replaced when dependencies are built.
