file(REMOVE_RECURSE
  "CMakeFiles/cbma_util.dir/util/rng.cpp.o"
  "CMakeFiles/cbma_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/cbma_util.dir/util/stats.cpp.o"
  "CMakeFiles/cbma_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/cbma_util.dir/util/table.cpp.o"
  "CMakeFiles/cbma_util.dir/util/table.cpp.o.d"
  "libcbma_util.a"
  "libcbma_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
