file(REMOVE_RECURSE
  "libcbma_util.a"
)
