file(REMOVE_RECURSE
  "CMakeFiles/cbma_rx.dir/rx/decoder.cpp.o"
  "CMakeFiles/cbma_rx.dir/rx/decoder.cpp.o.d"
  "CMakeFiles/cbma_rx.dir/rx/frame_sync.cpp.o"
  "CMakeFiles/cbma_rx.dir/rx/frame_sync.cpp.o.d"
  "CMakeFiles/cbma_rx.dir/rx/receiver.cpp.o"
  "CMakeFiles/cbma_rx.dir/rx/receiver.cpp.o.d"
  "CMakeFiles/cbma_rx.dir/rx/user_detect.cpp.o"
  "CMakeFiles/cbma_rx.dir/rx/user_detect.cpp.o.d"
  "libcbma_rx.a"
  "libcbma_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
