
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rx/decoder.cpp" "src/CMakeFiles/cbma_rx.dir/rx/decoder.cpp.o" "gcc" "src/CMakeFiles/cbma_rx.dir/rx/decoder.cpp.o.d"
  "/root/repo/src/rx/frame_sync.cpp" "src/CMakeFiles/cbma_rx.dir/rx/frame_sync.cpp.o" "gcc" "src/CMakeFiles/cbma_rx.dir/rx/frame_sync.cpp.o.d"
  "/root/repo/src/rx/receiver.cpp" "src/CMakeFiles/cbma_rx.dir/rx/receiver.cpp.o" "gcc" "src/CMakeFiles/cbma_rx.dir/rx/receiver.cpp.o.d"
  "/root/repo/src/rx/user_detect.cpp" "src/CMakeFiles/cbma_rx.dir/rx/user_detect.cpp.o" "gcc" "src/CMakeFiles/cbma_rx.dir/rx/user_detect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
