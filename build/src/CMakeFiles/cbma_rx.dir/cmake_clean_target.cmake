file(REMOVE_RECURSE
  "libcbma_rx.a"
)
