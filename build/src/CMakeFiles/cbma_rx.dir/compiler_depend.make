# Empty compiler generated dependencies file for cbma_rx.
# This may be replaced when dependencies are built.
