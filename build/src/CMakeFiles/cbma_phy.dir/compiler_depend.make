# Empty compiler generated dependencies file for cbma_phy.
# This may be replaced when dependencies are built.
