file(REMOVE_RECURSE
  "libcbma_phy.a"
)
