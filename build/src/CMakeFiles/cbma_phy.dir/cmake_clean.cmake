file(REMOVE_RECURSE
  "CMakeFiles/cbma_phy.dir/phy/crc16.cpp.o"
  "CMakeFiles/cbma_phy.dir/phy/crc16.cpp.o.d"
  "CMakeFiles/cbma_phy.dir/phy/energy.cpp.o"
  "CMakeFiles/cbma_phy.dir/phy/energy.cpp.o.d"
  "CMakeFiles/cbma_phy.dir/phy/frame.cpp.o"
  "CMakeFiles/cbma_phy.dir/phy/frame.cpp.o.d"
  "CMakeFiles/cbma_phy.dir/phy/modulator.cpp.o"
  "CMakeFiles/cbma_phy.dir/phy/modulator.cpp.o.d"
  "CMakeFiles/cbma_phy.dir/phy/spreader.cpp.o"
  "CMakeFiles/cbma_phy.dir/phy/spreader.cpp.o.d"
  "CMakeFiles/cbma_phy.dir/phy/tag.cpp.o"
  "CMakeFiles/cbma_phy.dir/phy/tag.cpp.o.d"
  "libcbma_phy.a"
  "libcbma_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
