
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/crc16.cpp" "src/CMakeFiles/cbma_phy.dir/phy/crc16.cpp.o" "gcc" "src/CMakeFiles/cbma_phy.dir/phy/crc16.cpp.o.d"
  "/root/repo/src/phy/energy.cpp" "src/CMakeFiles/cbma_phy.dir/phy/energy.cpp.o" "gcc" "src/CMakeFiles/cbma_phy.dir/phy/energy.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/CMakeFiles/cbma_phy.dir/phy/frame.cpp.o" "gcc" "src/CMakeFiles/cbma_phy.dir/phy/frame.cpp.o.d"
  "/root/repo/src/phy/modulator.cpp" "src/CMakeFiles/cbma_phy.dir/phy/modulator.cpp.o" "gcc" "src/CMakeFiles/cbma_phy.dir/phy/modulator.cpp.o.d"
  "/root/repo/src/phy/spreader.cpp" "src/CMakeFiles/cbma_phy.dir/phy/spreader.cpp.o" "gcc" "src/CMakeFiles/cbma_phy.dir/phy/spreader.cpp.o.d"
  "/root/repo/src/phy/tag.cpp" "src/CMakeFiles/cbma_phy.dir/phy/tag.cpp.o" "gcc" "src/CMakeFiles/cbma_phy.dir/phy/tag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
