# Empty compiler generated dependencies file for cbma_pn.
# This may be replaced when dependencies are built.
