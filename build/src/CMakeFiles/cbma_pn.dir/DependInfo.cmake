
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pn/code.cpp" "src/CMakeFiles/cbma_pn.dir/pn/code.cpp.o" "gcc" "src/CMakeFiles/cbma_pn.dir/pn/code.cpp.o.d"
  "/root/repo/src/pn/correlation.cpp" "src/CMakeFiles/cbma_pn.dir/pn/correlation.cpp.o" "gcc" "src/CMakeFiles/cbma_pn.dir/pn/correlation.cpp.o.d"
  "/root/repo/src/pn/gold.cpp" "src/CMakeFiles/cbma_pn.dir/pn/gold.cpp.o" "gcc" "src/CMakeFiles/cbma_pn.dir/pn/gold.cpp.o.d"
  "/root/repo/src/pn/lfsr.cpp" "src/CMakeFiles/cbma_pn.dir/pn/lfsr.cpp.o" "gcc" "src/CMakeFiles/cbma_pn.dir/pn/lfsr.cpp.o.d"
  "/root/repo/src/pn/msequence.cpp" "src/CMakeFiles/cbma_pn.dir/pn/msequence.cpp.o" "gcc" "src/CMakeFiles/cbma_pn.dir/pn/msequence.cpp.o.d"
  "/root/repo/src/pn/twonc.cpp" "src/CMakeFiles/cbma_pn.dir/pn/twonc.cpp.o" "gcc" "src/CMakeFiles/cbma_pn.dir/pn/twonc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
