file(REMOVE_RECURSE
  "CMakeFiles/cbma_pn.dir/pn/code.cpp.o"
  "CMakeFiles/cbma_pn.dir/pn/code.cpp.o.d"
  "CMakeFiles/cbma_pn.dir/pn/correlation.cpp.o"
  "CMakeFiles/cbma_pn.dir/pn/correlation.cpp.o.d"
  "CMakeFiles/cbma_pn.dir/pn/gold.cpp.o"
  "CMakeFiles/cbma_pn.dir/pn/gold.cpp.o.d"
  "CMakeFiles/cbma_pn.dir/pn/lfsr.cpp.o"
  "CMakeFiles/cbma_pn.dir/pn/lfsr.cpp.o.d"
  "CMakeFiles/cbma_pn.dir/pn/msequence.cpp.o"
  "CMakeFiles/cbma_pn.dir/pn/msequence.cpp.o.d"
  "CMakeFiles/cbma_pn.dir/pn/twonc.cpp.o"
  "CMakeFiles/cbma_pn.dir/pn/twonc.cpp.o.d"
  "libcbma_pn.a"
  "libcbma_pn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_pn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
