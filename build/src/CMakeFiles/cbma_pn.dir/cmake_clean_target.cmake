file(REMOVE_RECURSE
  "libcbma_pn.a"
)
