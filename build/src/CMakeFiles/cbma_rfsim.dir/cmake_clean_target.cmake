file(REMOVE_RECURSE
  "libcbma_rfsim.a"
)
