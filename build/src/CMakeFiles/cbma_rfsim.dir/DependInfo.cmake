
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfsim/channel.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/channel.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/channel.cpp.o.d"
  "/root/repo/src/rfsim/excitation.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/excitation.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/excitation.cpp.o.d"
  "/root/repo/src/rfsim/friis.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/friis.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/friis.cpp.o.d"
  "/root/repo/src/rfsim/geometry.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/geometry.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/geometry.cpp.o.d"
  "/root/repo/src/rfsim/impedance.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/impedance.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/impedance.cpp.o.d"
  "/root/repo/src/rfsim/interference.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/interference.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/interference.cpp.o.d"
  "/root/repo/src/rfsim/noise.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/noise.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/noise.cpp.o.d"
  "/root/repo/src/rfsim/obstacle.cpp" "src/CMakeFiles/cbma_rfsim.dir/rfsim/obstacle.cpp.o" "gcc" "src/CMakeFiles/cbma_rfsim.dir/rfsim/obstacle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
