# Empty compiler generated dependencies file for cbma_rfsim.
# This may be replaced when dependencies are built.
