file(REMOVE_RECURSE
  "CMakeFiles/cbma_rfsim.dir/rfsim/channel.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/channel.cpp.o.d"
  "CMakeFiles/cbma_rfsim.dir/rfsim/excitation.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/excitation.cpp.o.d"
  "CMakeFiles/cbma_rfsim.dir/rfsim/friis.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/friis.cpp.o.d"
  "CMakeFiles/cbma_rfsim.dir/rfsim/geometry.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/geometry.cpp.o.d"
  "CMakeFiles/cbma_rfsim.dir/rfsim/impedance.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/impedance.cpp.o.d"
  "CMakeFiles/cbma_rfsim.dir/rfsim/interference.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/interference.cpp.o.d"
  "CMakeFiles/cbma_rfsim.dir/rfsim/noise.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/noise.cpp.o.d"
  "CMakeFiles/cbma_rfsim.dir/rfsim/obstacle.cpp.o"
  "CMakeFiles/cbma_rfsim.dir/rfsim/obstacle.cpp.o.d"
  "libcbma_rfsim.a"
  "libcbma_rfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_rfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
