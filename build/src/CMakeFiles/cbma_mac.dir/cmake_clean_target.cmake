file(REMOVE_RECURSE
  "libcbma_mac.a"
)
