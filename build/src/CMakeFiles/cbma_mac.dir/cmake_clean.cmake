file(REMOVE_RECURSE
  "CMakeFiles/cbma_mac.dir/mac/arq.cpp.o"
  "CMakeFiles/cbma_mac.dir/mac/arq.cpp.o.d"
  "CMakeFiles/cbma_mac.dir/mac/fsa.cpp.o"
  "CMakeFiles/cbma_mac.dir/mac/fsa.cpp.o.d"
  "CMakeFiles/cbma_mac.dir/mac/node_selection.cpp.o"
  "CMakeFiles/cbma_mac.dir/mac/node_selection.cpp.o.d"
  "CMakeFiles/cbma_mac.dir/mac/power_control.cpp.o"
  "CMakeFiles/cbma_mac.dir/mac/power_control.cpp.o.d"
  "CMakeFiles/cbma_mac.dir/mac/single_tag.cpp.o"
  "CMakeFiles/cbma_mac.dir/mac/single_tag.cpp.o.d"
  "CMakeFiles/cbma_mac.dir/mac/throughput.cpp.o"
  "CMakeFiles/cbma_mac.dir/mac/throughput.cpp.o.d"
  "libcbma_mac.a"
  "libcbma_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbma_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
