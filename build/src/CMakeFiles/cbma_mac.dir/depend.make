# Empty dependencies file for cbma_mac.
# This may be replaced when dependencies are built.
