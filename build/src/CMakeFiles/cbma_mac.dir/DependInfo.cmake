
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/arq.cpp" "src/CMakeFiles/cbma_mac.dir/mac/arq.cpp.o" "gcc" "src/CMakeFiles/cbma_mac.dir/mac/arq.cpp.o.d"
  "/root/repo/src/mac/fsa.cpp" "src/CMakeFiles/cbma_mac.dir/mac/fsa.cpp.o" "gcc" "src/CMakeFiles/cbma_mac.dir/mac/fsa.cpp.o.d"
  "/root/repo/src/mac/node_selection.cpp" "src/CMakeFiles/cbma_mac.dir/mac/node_selection.cpp.o" "gcc" "src/CMakeFiles/cbma_mac.dir/mac/node_selection.cpp.o.d"
  "/root/repo/src/mac/power_control.cpp" "src/CMakeFiles/cbma_mac.dir/mac/power_control.cpp.o" "gcc" "src/CMakeFiles/cbma_mac.dir/mac/power_control.cpp.o.d"
  "/root/repo/src/mac/single_tag.cpp" "src/CMakeFiles/cbma_mac.dir/mac/single_tag.cpp.o" "gcc" "src/CMakeFiles/cbma_mac.dir/mac/single_tag.cpp.o.d"
  "/root/repo/src/mac/throughput.cpp" "src/CMakeFiles/cbma_mac.dir/mac/throughput.cpp.o" "gcc" "src/CMakeFiles/cbma_mac.dir/mac/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbma_rx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_rfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cbma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
