#!/usr/bin/env python3
"""Gate bench_kernels performance against a committed baseline.

Usage:
  check_perf_regression.py <BENCH_kernels.json> <baseline.json> [--tolerance F]
  check_perf_regression.py <BENCH_kernels.json> <baseline.json> --update
  check_perf_regression.py <BENCH_kernels.json> --crossover
  check_perf_regression.py <BENCH_kernels.json> --ring-flat
  check_perf_regression.py <BENCH_kernels.json> --metrics-overhead
  check_perf_regression.py <BENCH_kernels.json> --profile-overhead

Compares the ns_per_packet counter (and, for the streaming-receiver rows,
ns_per_sample) of every benchmark present in both the fresh
google-benchmark document and the baseline, and fails when any is
slower than baseline * (1 + tolerance). The default tolerance is
deliberately generous (±30 %): shared CI runners are noisy, and the gate
exists to catch real regressions (an accidental O(n²), a debug build, a
hot-path allocation) loudly, not 5 % jitter silently. Benchmarks present
on only one side are reported but never fatal, so adding or retiring a
benchmark does not break CI before the baseline is refreshed.

A speed-up beyond the same tolerance prints a note suggesting a baseline
refresh; `--update` rewrites the baseline from the fresh run (commit the
result; the file records the machine's numbers, so refresh it from the
same class of machine CI uses).

`--ring-flat` checks the streaming receiver's O(window) memory claim
instead of the baseline: every BM_StreamingRx row exports an
rx_ring_bytes counter (resident ring footprint after the run), and the
gate requires the value to be byte-identical across all stream lengths —
a ring that grows with the 10x stream means per-sample state is being
retained (DESIGN.md §10).

`--metrics-overhead` checks the metrics plane's cost ceiling instead of
the baseline: every BM_<X>Metrics row is paired with its metrics-off twin
BM_<X> on the ns_per_round counter, and the gate requires the enabled run
to stay within METRICS_OVERHEAD_TOLERANCE (+2 %) of the twin — the
strict-identity-when-off contract's enabled-side budget (DESIGN.md §12).
Pairs are matched within one run, so machine speed cancels out.

`--profile-overhead` is the same self-relative gate for the hierarchical
profiler (DESIGN.md §13): every BM_<X>Profile row is paired with its
profiler-off twin BM_<X> on ns_per_round, and the enabled run must stay
within PROFILE_OVERHEAD_TOLERANCE (+2 %) of the twin.

`--crossover` checks the detection-engine crossover policy instead of the
baseline: it groups the BM_DetectPeaks{Naive,Fft,Auto}/K/L/W rows of a
fresh run by grid point and, wherever the naive and FFT engines are
clearly separated (>= CROSSOVER_SEPARATION apart), requires the auto
engine to land within CROSSOVER_SLACK of the winner. That pins the auto
cost model (rx::CorrelationEngine, DESIGN.md §9.2) to measured reality
without hard-coding machine-dependent absolute times.
"""
import json
import re
import sys

DEFAULT_TOLERANCE = 0.30

# --crossover: only grid points where the engines differ by at least this
# factor are judged (near the crossover either choice is fine) ...
CROSSOVER_SEPARATION = 1.5
# ... and there the auto engine must be within this factor of the winner.
CROSSOVER_SLACK = 1.3

# --metrics-overhead: a metrics-enabled round may cost at most this much
# more than its metrics-off twin (ISSUE acceptance: +2% ns_per_round).
METRICS_OVERHEAD_TOLERANCE = 0.02

# --profile-overhead: the same budget for a profiler-enabled round vs its
# profiler-off twin.
PROFILE_OVERHEAD_TOLERANCE = 0.02


def fail(msg: str) -> None:
    print(f"check_perf_regression: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def counter_by_name(doc: dict, counter: str, positive: bool = True) -> dict:
    """benchmark name -> `counter` value from a google-benchmark JSON doc."""
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get(counter)
        if name and isinstance(value, (int, float)) and (value > 0 or not positive):
            out[name] = float(value)
    return out


def ns_per_packet_by_name(doc: dict) -> dict:
    return counter_by_name(doc, "ns_per_packet")


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        fail(f"{path} missing")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check_crossover(current_path: str) -> None:
    """Validate auto-engine selection against measured naive/FFT times."""
    current = ns_per_packet_by_name(load(current_path))
    pattern = re.compile(r"^BM_DetectPeaks(Naive|Fft|Auto)/(\d+/\d+/\d+)$")
    grid = {}  # "K/L/W" -> {"Naive": ns, "Fft": ns, "Auto": ns}
    for name, ns in current.items():
        m = pattern.match(name)
        if m:
            grid.setdefault(m.group(2), {})[m.group(1)] = ns
    judged = 0
    failures = []
    for point in sorted(grid, key=lambda p: [int(x) for x in p.split("/")]):
        engines = grid[point]
        if not all(k in engines for k in ("Naive", "Fft", "Auto")):
            print(f"check_perf_regression: note: grid point {point} missing "
                  "an engine row — skipped")
            continue
        naive, fft, auto = engines["Naive"], engines["Fft"], engines["Auto"]
        best = min(naive, fft)
        separation = max(naive, fft) / best
        winner = "naive" if naive <= fft else "fft"
        if separation < CROSSOVER_SEPARATION:
            print(f"check_perf_regression: crossover {point}: naive {naive:.0f}"
                  f" vs fft {fft:.0f} ns within {CROSSOVER_SEPARATION}x — "
                  "either choice fine, skipped")
            continue
        judged += 1
        ratio = auto / best
        verdict = "ok" if ratio <= CROSSOVER_SLACK else "WRONG ENGINE"
        print(f"check_perf_regression: crossover {point}: winner {winner} "
              f"({best:.0f} ns), auto {auto:.0f} ns "
              f"({ratio:.2f}x winner): {verdict}")
        if ratio > CROSSOVER_SLACK:
            failures.append((point, winner, best, auto, ratio))
    if not grid:
        fail(f"{current_path} has no BM_DetectPeaks rows — run bench_kernels "
             "with --benchmark_filter=BM_DetectPeaks")
    for point, winner, best, auto, ratio in failures:
        print(f"check_perf_regression: FAIL: auto engine picked the losing "
              f"path at {point}: winner {winner} {best:.0f} ns, auto "
              f"{auto:.0f} ns ({ratio:.2f}x > {CROSSOVER_SLACK}x allowed)",
              file=sys.stderr)
    if failures:
        sys.exit(1)
    print(f"check_perf_regression: crossover policy ok at {judged} separated "
          f"grid points ({len(grid)} total)")


def check_ring_flat(current_path: str) -> None:
    """Require rx_ring_bytes to be identical across BM_StreamingRx rows."""
    rings = {
        name: bytes_
        for name, bytes_ in counter_by_name(load(current_path),
                                            "rx_ring_bytes").items()
        if name.startswith("BM_StreamingRx")
    }
    if len(rings) < 2:
        fail(f"{current_path} has {len(rings)} BM_StreamingRx rows with "
             "rx_ring_bytes — need at least two stream lengths to judge "
             "flatness (run bench_kernels with "
             "--benchmark_filter=BM_StreamingRx)")
    for name in sorted(rings):
        print(f"check_perf_regression: ring-flat: {name}: "
              f"{rings[name]:.0f} resident ring bytes")
    distinct = set(rings.values())
    if len(distinct) != 1:
        fail("rx_ring_bytes differs across stream lengths "
             f"({sorted(distinct)}) — the streaming receiver is retaining "
             "per-sample state instead of O(window) rings")
    print(f"check_perf_regression: ring-flat ok: {len(rings)} stream lengths, "
          f"{next(iter(distinct)):.0f} bytes resident in every run")


def check_twin_overhead(current_path: str, suffix: str, tolerance: float,
                        label: str) -> None:
    """Pair BM_<X><suffix> rows with their plain BM_<X> twins on
    ns_per_round and enforce the enabled-side cost budget."""
    rounds = counter_by_name(load(current_path), "ns_per_round")
    pairs = []
    for name, ns_on in sorted(rounds.items()):
        base, sep, rest = name.partition("/")
        if not base.endswith(suffix):
            continue
        twin = base[:-len(suffix)] + sep + rest
        if twin not in rounds:
            print(f"check_perf_regression: note: '{name}' has no "
                  f"{label}-off twin '{twin}' in this run — skipped")
            continue
        pairs.append((twin, name, rounds[twin], ns_on))
    if not pairs:
        fail(f"{current_path} has no paired BM_<X>/BM_<X>{suffix} "
             "ns_per_round rows — run bench_kernels with "
             "--benchmark_filter=BM_NetMulticellRound")
    failures = []
    for twin, name, ns_off, ns_on in pairs:
        ratio = ns_on / ns_off
        verdict = "ok" if ratio <= 1.0 + tolerance else "OVER BUDGET"
        print(f"check_perf_regression: {label}-overhead: {twin} "
              f"{ns_off:.0f} ns -> {name} {ns_on:.0f} ns "
              f"({ratio:.3f}x): {verdict}")
        if ratio > 1.0 + tolerance:
            failures.append((name, ratio))
    for name, ratio in failures:
        print(f"check_perf_regression: FAIL: {name} costs {ratio:.3f}x its "
              f"{label}-off twin (> {1.0 + tolerance:.2f}x allowed)",
              file=sys.stderr)
    if failures:
        sys.exit(1)
    print(f"check_perf_regression: {label} overhead within "
          f"{tolerance:.0%} on {len(pairs)} pair(s)")


def check_metrics_overhead(current_path: str) -> None:
    check_twin_overhead(current_path, "Metrics", METRICS_OVERHEAD_TOLERANCE,
                        "metrics")


def check_profile_overhead(current_path: str) -> None:
    check_twin_overhead(current_path, "Profile", PROFILE_OVERHEAD_TOLERANCE,
                        "profile")


def main() -> None:
    args = sys.argv[1:]
    if "--metrics-overhead" in args:
        args = [a for a in args if a != "--metrics-overhead"]
        if len(args) != 1:
            fail("usage: check_perf_regression.py <BENCH_kernels.json> "
                 "--metrics-overhead")
        check_metrics_overhead(args[0])
        return
    if "--profile-overhead" in args:
        args = [a for a in args if a != "--profile-overhead"]
        if len(args) != 1:
            fail("usage: check_perf_regression.py <BENCH_kernels.json> "
                 "--profile-overhead")
        check_profile_overhead(args[0])
        return
    if "--ring-flat" in args:
        args = [a for a in args if a != "--ring-flat"]
        if len(args) != 1:
            fail("usage: check_perf_regression.py <BENCH_kernels.json> "
                 "--ring-flat")
        check_ring_flat(args[0])
        return
    if "--crossover" in args:
        args = [a for a in args if a != "--crossover"]
        if len(args) != 1:
            fail("usage: check_perf_regression.py <BENCH_kernels.json> "
                 "--crossover")
        check_crossover(args[0])
        return
    update = "--update" in args
    args = [a for a in args if a != "--update"]
    tolerance = DEFAULT_TOLERANCE
    if "--tolerance" in args:
        i = args.index("--tolerance")
        try:
            tolerance = float(args[i + 1])
        except (IndexError, ValueError):
            fail("--tolerance needs a float argument")
        del args[i:i + 2]
    if len(args) != 2:
        fail("usage: check_perf_regression.py <BENCH_kernels.json> "
             "<baseline.json> [--tolerance F | --update]")
    current_path, baseline_path = args

    doc = load(current_path)
    # Three gated counters: ns_per_packet (the kernel/end-to-end benches),
    # ns_per_sample (the streaming-receiver ingest benches) and ns_per_round
    # (the multi-cell network layer's per-cell round). Each lives in its own
    # baseline section so a name appearing in several is disambiguated.
    sections = {
        "ns_per_packet": ns_per_packet_by_name(doc),
        "ns_per_sample": counter_by_name(doc, "ns_per_sample"),
        "ns_per_round": counter_by_name(doc, "ns_per_round"),
    }
    if not sections["ns_per_packet"]:
        fail(f"{current_path} has no ns_per_packet counters")

    if update:
        baseline_doc = {
            "comment": "ns_per_packet / ns_per_sample / ns_per_round "
                       "baselines for tools/check_perf_regression.py — "
                       "refresh with --update on a CI-class machine",
        }
        for section, current in sections.items():
            if current:
                baseline_doc[section] = dict(sorted(current.items()))
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(baseline_doc, f, indent=2)
            f.write("\n")
        total = sum(len(v) for k, v in baseline_doc.items() if k != "comment")
        print(f"check_perf_regression: wrote {total} baselines "
              f"to {baseline_path}")
        return

    baseline_doc = load(baseline_path)
    if not baseline_doc.get("ns_per_packet"):
        fail(f"{baseline_path} has no 'ns_per_packet' object — "
             "generate it with --update")

    regressions = []
    checked = 0
    for section, current in sections.items():
        baseline = baseline_doc.get(section, {})
        for name in sorted(baseline):
            if name not in current:
                print(f"check_perf_regression: note: '{name}' in baseline "
                      "but not in this run (filtered out or retired?)")
                continue
            checked += 1
            base, now = baseline[name], current[name]
            ratio = now / base
            verdict = "ok"
            if ratio > 1.0 + tolerance:
                verdict = "REGRESSION"
                regressions.append((section, name, base, now, ratio))
            elif ratio < 1.0 - tolerance:
                verdict = "faster (consider --update)"
            print(f"check_perf_regression: {name}: {base:.1f} -> {now:.1f} "
                  f"ns ({ratio:.2f}x baseline {section}): {verdict}")
        for name in sorted(set(current) - set(baseline)):
            print(f"check_perf_regression: note: '{name}' has no {section} "
                  "baseline — refresh with --update to start gating it")

    if regressions:
        for section, name, base, now, ratio in regressions:
            print(f"check_perf_regression: FAIL: {name} regressed "
                  f"{base:.1f} -> {now:.1f} {section} "
                  f"({ratio:.2f}x > {1.0 + tolerance:.2f}x allowed)",
                  file=sys.stderr)
        sys.exit(1)
    print(f"check_perf_regression: {checked} baselines checked, "
          f"no regression beyond {tolerance:.0%}")


if __name__ == "__main__":
    main()
