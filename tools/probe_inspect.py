#!/usr/bin/env python3
"""Validate, summarize and slice the signal-probe dumps (CBPROBE1).

Usage:
  probe_inspect.py --check [--expect-taps a,b,c] <dump>
  probe_inspect.py --summary <dump>
  probe_inspect.py [--stage NAME] [--tag N] [--point N] <dump>

The dump is the binary file CBMA_PROBE=<path> (or --probe / SystemConfig::
probe) produced; its manifest is expected at <dump>.json. Layout
(schema_version 1, everything little-endian — DESIGN.md §8):

  file   = "CBPROBE1" then records back-to-back
  record = u64 seq | u32 tap | u32 context | u64 point | u32 iq(0/1)
           | u32 n_doubles | n_doubles x f64

--check re-walks the binary from its own framing and cross-checks every
record against the manifest (offsets, headers, totals) — the two were
written independently enough that agreement validates both. --summary
prints per-tap and per-tag link-quality aggregates. The slicing flags
print matching records (stage = tap name, tag = context for the per-code
taps, point = sweep grid label). Exits non-zero on the first check
failure so CI fails loudly.
"""
import json
import math
import struct
import sys

MAGIC = b"CBPROBE1"
HEADER = struct.Struct("<QIIQII")  # seq, tap, context, point, iq, n_doubles
TAP_NAMES = (
    "excitation_envelope",
    "composite_iq",
    "sync_energy",
    "correlation_profile",
    "soft_bits",
)
LINK_KEYS = ("seq", "point", "tag", "detected", "decoded", "snr_db", "evm",
             "soft_margin", "margin_ratio", "power_norm", "correlation")


def fail(msg: str) -> None:
    print(f"probe_inspect: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def tap_name(tap: int) -> str:
    return TAP_NAMES[tap] if tap < len(TAP_NAMES) else "unknown"


def read_dump(path: str):
    """Parse the binary from its own framing: (records, total_bytes)."""
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except FileNotFoundError:
        fail(f"{path} missing")
    if blob[:len(MAGIC)] != MAGIC:
        fail(f"{path}: bad magic {blob[:8]!r} (want {MAGIC!r})")
    records = []
    pos = len(MAGIC)
    while pos < len(blob):
        if pos + HEADER.size > len(blob):
            fail(f"{path}: truncated record header at offset {pos}")
        seq, tap, context, point, iq, n_doubles = HEADER.unpack_from(blob, pos)
        if iq not in (0, 1):
            fail(f"{path}: record at offset {pos} has iq={iq} (want 0/1)")
        if iq and n_doubles % 2:
            fail(f"{path}: IQ record at offset {pos} has odd double count "
                 f"{n_doubles}")
        payload = pos + HEADER.size
        end = payload + 8 * n_doubles
        if end > len(blob):
            fail(f"{path}: record at offset {pos} runs past end of file")
        data = struct.unpack_from(f"<{n_doubles}d", blob, payload)
        if any(not math.isfinite(v) for v in data):
            fail(f"{path}: record seq {seq} carries non-finite samples")
        records.append({
            "offset": pos, "payload_offset": payload, "seq": seq, "tap": tap,
            "context": context, "point": point, "iq": bool(iq),
            "doubles": n_doubles,
            "samples": n_doubles // 2 if iq else n_doubles, "data": data,
        })
        pos = end
    return records, len(blob)


def read_manifest(path: str) -> dict:
    manifest_path = path + ".json"
    try:
        with open(manifest_path, encoding="utf-8") as f:
            manifest = json.load(f)
    except FileNotFoundError:
        fail(f"{manifest_path} missing — dump written without its manifest?")
    except json.JSONDecodeError as e:
        fail(f"{manifest_path} is not valid JSON: {e}")
    for key in ("magic", "schema_version", "dump", "dump_bytes", "records",
                "dropped_taps", "dropped_link", "taps", "link_quality"):
        if key not in manifest:
            fail(f"{manifest_path}: missing key '{key}'")
    if manifest["magic"] != MAGIC.decode():
        fail(f"{manifest_path}: magic says {manifest['magic']!r}")
    if manifest["schema_version"] != 1:
        fail(f"{manifest_path}: unexpected schema_version "
             f"{manifest['schema_version']}")
    return manifest


def check(path: str, expect_taps) -> None:
    records, total = read_dump(path)
    manifest = read_manifest(path)

    if manifest["dump_bytes"] != total:
        fail(f"{path}: file is {total} bytes, manifest says "
             f"{manifest['dump_bytes']}")
    if manifest["records"] != len(records):
        fail(f"{path}: binary frames {len(records)} records, manifest says "
             f"{manifest['records']}")
    if len(manifest["taps"]) != len(records):
        fail(f"{path}: manifest lists {len(manifest['taps'])} tap entries "
             f"for {len(records)} records")

    prev_seq = -1
    for i, (rec, entry) in enumerate(zip(records, manifest["taps"])):
        for key, got in (("seq", rec["seq"]), ("context", rec["context"]),
                         ("point", rec["point"]), ("iq", rec["iq"]),
                         ("doubles", rec["doubles"]),
                         ("samples", rec["samples"]),
                         ("offset", rec["offset"]),
                         ("payload_offset", rec["payload_offset"])):
            if entry.get(key) != got:
                fail(f"{path}: record {i} {key}: binary {got}, manifest "
                     f"{entry.get(key)!r}")
        if entry.get("tap") != tap_name(rec["tap"]):
            fail(f"{path}: record {i} tap: binary {tap_name(rec['tap'])!r}, "
                 f"manifest {entry.get('tap')!r}")
        if rec["seq"] <= prev_seq:
            fail(f"{path}: record {i} seq {rec['seq']} not strictly "
                 "increasing")
        prev_seq = rec["seq"]

    for i, row in enumerate(manifest["link_quality"]):
        for key in LINK_KEYS:
            if key not in row:
                fail(f"{path}: link_quality row {i} missing key '{key}'")
        for key in ("snr_db", "evm", "soft_margin", "margin_ratio",
                    "power_norm", "correlation"):
            if not isinstance(row[key], (int, float)) or \
                    not math.isfinite(row[key]):
                fail(f"{path}: link_quality row {i} {key} is "
                     f"{row[key]!r}")
        if row["decoded"] and not row["detected"]:
            fail(f"{path}: link_quality row {i} decoded without detection")

    if expect_taps:
        seen = {tap_name(r["tap"]) for r in records}
        for want in expect_taps:
            if want not in TAP_NAMES:
                fail(f"--expect-taps: unknown tap '{want}' "
                     f"(known: {', '.join(TAP_NAMES)})")
            if want not in seen:
                fail(f"{path}: no '{want}' records captured "
                     f"(saw: {', '.join(sorted(seen)) or 'none'})")

    print(f"probe_inspect: OK: {path}: {len(records)} records "
          f"({total} bytes), {len(manifest['link_quality'])} link-quality "
          f"rows, {manifest['dropped_taps']} dropped taps")


def summary(path: str) -> None:
    records, total = read_dump(path)
    manifest = read_manifest(path)
    print(f"{path}: {len(records)} records, {total} bytes, "
          f"dropped taps {manifest['dropped_taps']}, "
          f"dropped link rows {manifest['dropped_link']}")
    by_tap = {}
    for rec in records:
        entry = by_tap.setdefault(tap_name(rec["tap"]), [0, 0])
        entry[0] += 1
        entry[1] += rec["samples"]
    for name in TAP_NAMES:
        if name in by_tap:
            count, samples = by_tap[name]
            print(f"  {name:20s} {count:6d} records {samples:9d} samples")
    by_tag = {}
    for row in manifest["link_quality"]:
        agg = by_tag.setdefault(row["tag"], [0, 0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += 1 if row["decoded"] else 0
        agg[2] += row["snr_db"]
        agg[3] += row["margin_ratio"]
    for tag in sorted(by_tag):
        frames, decoded, snr, ratio = by_tag[tag]
        print(f"  tag {tag}: {frames} frames, {decoded} decoded, "
              f"mean SNR {snr / frames:.1f} dB, "
              f"mean margin ratio {ratio / frames:.2f}")


def slice_dump(path: str, stage, tag, point) -> None:
    records, _ = read_dump(path)
    manifest = read_manifest(path)
    shown = 0
    for rec in records:
        name = tap_name(rec["tap"])
        if stage is not None and name != stage:
            continue
        if tag is not None and rec["context"] != tag:
            continue
        if point is not None and rec["point"] != point:
            continue
        head = ", ".join(f"{v:.4g}" for v in rec["data"][:6])
        more = " ..." if rec["doubles"] > 6 else ""
        print(f"seq {rec['seq']:6d} {name:20s} context {rec['context']:3d} "
              f"point {rec['point']:4d} {rec['samples']:6d} samples "
              f"[{head}{more}]")
        shown += 1
    for row in manifest["link_quality"]:
        if stage is not None:
            continue  # link rows have no stage
        if tag is not None and row["tag"] != tag:
            continue
        if point is not None and row["point"] != point:
            continue
        print(f"seq {row['seq']:6d} {'link_quality':20s} tag {row['tag']:3d} "
              f"point {row['point']:4d} snr {row['snr_db']:.1f} dB "
              f"evm {row['evm']:.3f} margin-ratio {row['margin_ratio']:.2f} "
              f"decoded {row['decoded']}")
        shown += 1
    print(f"probe_inspect: {shown} matching entries")


def main() -> None:
    args = sys.argv[1:]
    mode_check = "--check" in args
    mode_summary = "--summary" in args
    args = [a for a in args if a not in ("--check", "--summary")]

    def take_value(flag):
        if flag not in args:
            return None
        i = args.index(flag)
        if i + 1 >= len(args):
            fail(f"{flag} requires a value")
        value = args[i + 1]
        del args[i:i + 2]
        return value

    expect = take_value("--expect-taps")
    stage = take_value("--stage")
    tag = take_value("--tag")
    point = take_value("--point")
    if len(args) != 1:
        fail("usage: probe_inspect.py [--check [--expect-taps a,b,c] | "
             "--summary | [--stage NAME] [--tag N] [--point N]] <dump>")
    path = args[0]

    if mode_check:
        check(path, expect.split(",") if expect else None)
    elif mode_summary:
        summary(path)
    else:
        slice_dump(path, stage,
                   int(tag) if tag is not None else None,
                   int(point) if point is not None else None)


if __name__ == "__main__":
    main()
