#!/usr/bin/env python3
"""Validate and summarize the profiler's attribution tree.

Usage:
  profile_inspect.py --check [--collapsed FLAME.txt] <BENCH_*.json>
  profile_inspect.py --summary <BENCH_*.json>
  profile_inspect.py --top N <BENCH_*.json>

Input is the BENCH_*.json a profiler-enabled run (CBMA_PROFILE=<path> or
cbma_cli --profile) produced — its "profile" section (DESIGN.md §13): the
merged caller-path tree plus the parallel_for worker-utilization reports.

--check validates the accounting invariants the profiler promises:
  * the tree is non-empty and multi-level (depth >= 2), so the run really
    produced caller-path attribution, not a flat span list;
  * every node satisfies incl_ns == excl_ns + child_ns exactly (child_ns
    only ever counts same-thread children, so no float slack is needed);
  * in a sequentially-consistent subtree (child_ns == sum of child incl at
    every level) the exclusive times over the subtree sum exactly to the
    root's inclusive time — "where did the time go" accounts for all of
    it. Subtrees fed by parallel_for workers legitimately have child sums
    exceeding child_ns (that is parallelism), and are reported, not failed;
  * every parallel site's per-slot busy/item vectors sum to its aggregate
    busy_ns/items totals and its imbalance ratio is >= 1;
  * with --collapsed, the flamegraph file's lines are well-formed
    ("frame;frame <int>"), sorted, unique, and their values sum to the
    tree's total exclusive time.
--summary prints the thread/drop counts, root spans and parallel-site
utilization. --top N prints the N caller paths with the largest exclusive
time. Exits non-zero on the first failure so CI fails loudly. Stdlib only.
"""
import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"profile_inspect: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_profile(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        fail(f"{path} missing")
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")
    prof = doc.get("profile")
    if prof is None:
        fail(f"{path}: no 'profile' section — was the run profiler-enabled "
             "(CBMA_PROFILE)?")
    return prof


def walk(node, prefix, out):
    """DFS flatten into (path, node) pairs; path frames joined by ';'."""
    for key in ("span", "count", "incl_ns", "excl_ns", "child_ns",
                "children"):
        if key not in node:
            fail(f"tree node missing key '{key}': {node}")
    path = f"{prefix};{node['span']}" if prefix else node["span"]
    out.append((path, node))
    for child in node["children"]:
        walk(child, path, out)


def flatten(prof):
    rows = []
    for root in prof.get("tree", []):
        walk(root, "", rows)
    return rows


def subtree_excl(node):
    total = node["excl_ns"]
    for child in node["children"]:
        total += subtree_excl(child)
    return total


def is_sequential(node):
    """True when child_ns accounts for the children exactly, recursively —
    i.e. no cross-thread (parallel_for worker) time was merged in."""
    if node["child_ns"] != sum(c["incl_ns"] for c in node["children"]):
        return False
    return all(is_sequential(c) for c in node["children"])


def check(path: str, collapsed_path) -> None:
    prof = load_profile(path)
    for key in ("threads", "dropped", "tree", "parallel"):
        if key not in prof:
            fail(f"profile: missing key '{key}'")
    if prof["threads"] < 1:
        fail("profile: a recorded tree needs at least one thread")
    rows = flatten(prof)
    if not rows:
        fail("profile: tree is empty")
    depth = max(p.count(";") + 1 for p, _ in rows)
    if depth < 2:
        fail(f"profile: tree is flat (depth {depth}) — caller-path "
             "attribution did not engage")

    parallel_subtrees = 0
    for p, node in rows:
        if node["count"] < 0 or node["incl_ns"] < 0 or node["child_ns"] < 0:
            fail(f"{p}: negative counter")
        # The exact per-node identity: exclusive = inclusive - child time.
        if node["incl_ns"] != node["excl_ns"] + node["child_ns"]:
            fail(f"{p}: incl {node['incl_ns']} != excl {node['excl_ns']} "
                 f"+ child {node['child_ns']}")
        child_incl = sum(c["incl_ns"] for c in node["children"])
        # child_ns only counts same-thread children, so it can never exceed
        # their total inclusive time; the reverse (child sums exceeding
        # child_ns) is parallel_for workers, which is legitimate.
        if node["child_ns"] > child_incl:
            fail(f"{p}: child_ns {node['child_ns']} exceeds summed child "
                 f"incl {child_incl}")
        if node["child_ns"] < child_incl:
            parallel_subtrees += 1

    # Where the tree is sequentially consistent, exclusive times must
    # account for all of the root's inclusive time — exactly.
    balanced_roots = 0
    for root in prof["tree"]:
        if not is_sequential(root):
            continue
        balanced_roots += 1
        total = subtree_excl(root)
        if total != root["incl_ns"]:
            fail(f"root {root['span']}: subtree exclusive sum {total} != "
                 f"root inclusive {root['incl_ns']}")

    for site in prof["parallel"]:
        for key in ("site", "calls", "items", "wall_ns", "busy_ns",
                    "imbalance", "workers"):
            if key not in site:
                fail(f"parallel site missing key '{key}': {site}")
        name = site["site"]
        if site["imbalance"] < 1.0:
            fail(f"parallel {name}: imbalance {site['imbalance']} < 1")
        slot_busy = sum(w["busy_ns"] for w in site["workers"])
        slot_items = sum(w["items"] for w in site["workers"])
        if slot_busy != site["busy_ns"]:
            fail(f"parallel {name}: worker busy sum {slot_busy} != "
                 f"busy_ns {site['busy_ns']}")
        if slot_items != site["items"]:
            fail(f"parallel {name}: worker item sum {slot_items} != "
                 f"items {site['items']}")

    if collapsed_path is not None:
        check_collapsed(collapsed_path, rows)

    print(f"profile_inspect: OK: {len(rows)} caller paths, depth {depth}, "
          f"{prof['threads']} thread(s), {balanced_roots} balanced root(s), "
          f"{parallel_subtrees} parallel node(s), "
          f"{len(prof['parallel'])} parallel site(s), "
          f"dropped {prof['dropped']}")


def check_collapsed(path: str, rows) -> None:
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except FileNotFoundError:
        fail(f"{path} missing")
    total = 0
    prev = ""
    seen = set()
    for lineno, line in enumerate(lines, 1):
        frames, sep, value = line.rpartition(" ")
        if not sep or not frames:
            fail(f"{path}:{lineno}: not a 'frames value' line: {line!r}")
        if not value.isdigit():
            fail(f"{path}:{lineno}: non-integer value {value!r}")
        if frames in seen:
            fail(f"{path}:{lineno}: duplicate stack {frames!r}")
        seen.add(frames)
        if frames <= prev:
            fail(f"{path}:{lineno}: stacks not sorted ({prev!r} then "
                 f"{frames!r})")
        prev = frames
        total += int(value)
    tree_excl = sum(node["excl_ns"] for _, node in rows)
    # The collapsed export drops zero-exclusive rows, so its values must
    # account for exactly the tree's exclusive total — nothing more, less.
    if total != tree_excl:
        fail(f"{path}: collapsed values sum to {total}, tree exclusive "
             f"total is {tree_excl}")
    print(f"profile_inspect: OK: {path}: {len(lines)} stacks summing to "
          f"{total} ns")


def summary(path: str) -> None:
    prof = load_profile(path)
    rows = flatten(prof)
    total_excl = sum(node["excl_ns"] for _, node in rows)
    print(f"threads: {prof['threads']}  dropped: {prof['dropped']}  "
          f"paths: {len(rows)}  total exclusive: {total_excl / 1e6:.3f} ms")
    print("\nroots:")
    for root in prof["tree"]:
        print(f"  {root['span']:<24} x{root['count']:<8} "
              f"incl {root['incl_ns'] / 1e6:>12.3f} ms")
    print("\nparallel sites:")
    for site in prof["parallel"]:
        slots = len(site["workers"])
        util = (site["busy_ns"] / (site["wall_ns"] * slots)
                if site["wall_ns"] > 0 and slots > 0 else float("nan"))
        print(f"  {site['site']:<16} calls {site['calls']:<6} "
              f"items {site['items']:<8} workers {slots:<4} "
              f"utilization {util:>6.1%}  "
              f"imbalance {site['imbalance']:.2f}")


def top(path: str, n: int) -> None:
    prof = load_profile(path)
    rows = flatten(prof)
    rows.sort(key=lambda r: (-r[1]["excl_ns"], r[0]))
    total_excl = sum(node["excl_ns"] for _, node in rows) or 1
    print(f"{'excl ms':>12} {'%':>6} {'count':>8}  caller path")
    for p, node in rows[:n]:
        share = node["excl_ns"] / total_excl
        print(f"{node['excl_ns'] / 1e6:>12.3f} {share:>6.1%} "
              f"{node['count']:>8}  {p}")


def main() -> None:
    ap = argparse.ArgumentParser(
        description="Validate/summarize the profiler attribution tree")
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="validate the profile section's invariants")
    mode.add_argument("--summary", action="store_true",
                      help="thread/root/parallel-site overview")
    mode.add_argument("--top", type=int, metavar="N",
                      help="print the top N paths by exclusive time")
    ap.add_argument("--collapsed", metavar="FLAME",
                    help="--check: also validate this collapsed-stack "
                         "flamegraph file against the tree")
    ap.add_argument("path", help="BENCH_*.json from a CBMA_PROFILE run")
    args = ap.parse_args()

    if args.check:
        check(args.path, args.collapsed)
    elif args.summary:
        summary(args.path)
    else:
        top(args.path, args.top)


if __name__ == "__main__":
    main()
