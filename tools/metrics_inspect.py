#!/usr/bin/env python3
"""Validate, summarize and export the metrics-plane time series.

Usage:
  metrics_inspect.py --check <BENCH_*.json>
  metrics_inspect.py --summary <BENCH_*.json>
  metrics_inspect.py --csv [--series NAME] [--scope SCOPE] <BENCH_*.json>
  metrics_inspect.py --prom-check <exposition.prom>

Input is the BENCH_*.json a metrics-enabled run (CBMA_METRICS=<path> or
SystemConfig::metrics) produced — its "timeseries" and "events" sections
(DESIGN.md §12) — or, with --prom-check, the Prometheus text exposition
the run rewrote at <path>.

--check structurally validates both sections: window indices monotone
non-decreasing per series and bounded by the closed-window count, points
within the ring capacity, event sequence strictly increasing, severities
from the known vocabulary. --summary prints per-series point counts and
last values plus the event tally. --csv streams `series,scope,unit,
window,value` rows to stdout (filter with --series / --scope).
--prom-check parses the exposition line-by-line: every non-comment line
must be `name{labels} value` with a float value, names must match the
Prometheus charset, and the cbma_metrics_* meta gauges must be present.
Exits non-zero on the first failure so CI fails loudly. Stdlib only.
"""
import argparse
import json
import re
import sys

SEVERITIES = ("info", "warning", "error")
PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
PROM_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
REQUIRED_META = (
    "cbma_metrics_windows_total",
    "cbma_metrics_series",
    "cbma_metrics_events_total",
    "cbma_metrics_dropped_total",
)


def fail(msg: str) -> None:
    print(f"metrics_inspect: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_doc(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        fail(f"{path} missing")
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")


def get_sections(doc, path):
    ts = doc.get("timeseries")
    if ts is None:
        fail(f"{path}: no 'timeseries' section — was the run metrics-enabled "
             "(CBMA_METRICS)?")
    events = doc.get("events")
    if events is None:
        fail(f"{path}: 'timeseries' present but 'events' missing")
    return ts, events


def check(path: str) -> None:
    doc = load_doc(path)
    ts, events = get_sections(doc, path)
    for key in ("windows", "window_capacity", "dropped", "series"):
        if key not in ts:
            fail(f"timeseries: missing key '{key}'")
    windows = ts["windows"]
    capacity = ts["window_capacity"]
    for key in ("points", "series", "events"):
        if key not in ts["dropped"]:
            fail(f"timeseries.dropped: missing key '{key}'")
    seen = set()
    for s in ts["series"]:
        for key in ("name", "scope", "points"):
            if key not in s:
                fail(f"series entry missing key '{key}': {s}")
        ident = (s["name"], s["scope"])
        if ident in seen:
            fail(f"duplicate series {ident}")
        seen.add(ident)
        if len(s["points"]) > capacity:
            fail(f"series {ident}: {len(s['points'])} points exceed ring "
                 f"capacity {capacity}")
        prev = -1
        for p in s["points"]:
            if len(p) != 2:
                fail(f"series {ident}: malformed point {p}")
            w, v = p
            if not isinstance(w, int) or w < 0:
                fail(f"series {ident}: bad window index {w}")
            # The final sample of a run may sit in the still-open window
            # (== windows); closed windows are [0, windows).
            if w > windows:
                fail(f"series {ident}: window {w} beyond closed count "
                     f"{windows}")
            if w < prev:
                fail(f"series {ident}: window indices not monotone "
                     f"({prev} then {w})")
            prev = w
            if not isinstance(v, (int, float)):
                fail(f"series {ident}: non-numeric value {v!r}")
    prev_seq = -1
    for e in events:
        for key in ("seq", "window", "severity", "type", "value"):
            if key not in e:
                fail(f"event missing key '{key}': {e}")
        if e["seq"] <= prev_seq:
            fail(f"event seq not strictly increasing at {e['seq']}")
        prev_seq = e["seq"]
        if e["severity"] not in SEVERITIES:
            fail(f"unknown event severity {e['severity']!r}")
        if e["window"] > windows:
            fail(f"event {e['seq']}: window {e['window']} beyond closed "
                 f"count {windows}")
    print(f"metrics_inspect: OK: {len(ts['series'])} series over "
          f"{windows} windows, {len(events)} events")


def summary(path: str) -> None:
    doc = load_doc(path)
    ts, events = get_sections(doc, path)
    print(f"windows: {ts['windows']}  ring capacity: {ts['window_capacity']}"
          f"  dropped: {ts['dropped']}")
    print(f"{'series':<40} {'scope':<14} {'unit':<6} {'pts':>4} {'last':>14}")
    for s in ts["series"]:
        last = s["points"][-1][1] if s["points"] else float("nan")
        print(f"{s['name']:<40} {s['scope']:<14} {s.get('unit', ''):<6} "
              f"{len(s['points']):>4} {last:>14.6g}")
    tally = {}
    for e in events:
        key = (e["severity"], e["type"])
        tally[key] = tally.get(key, 0) + 1
    print(f"\nevents: {len(events)}")
    for (severity, kind), n in sorted(tally.items()):
        print(f"  {severity:<8} {kind:<24} {n}")


def csv(path: str, series_filter, scope_filter) -> None:
    doc = load_doc(path)
    ts, _ = get_sections(doc, path)
    print("series,scope,unit,window,value")
    for s in ts["series"]:
        if series_filter is not None and s["name"] != series_filter:
            continue
        if scope_filter is not None and s["scope"] != scope_filter:
            continue
        for w, v in s["points"]:
            print(f"{s['name']},{s['scope']},{s.get('unit', '')},{w},{v!r}")


def prom_check(path: str) -> None:
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except FileNotFoundError:
        fail(f"{path} missing")
    names = set()
    samples = 0
    for lineno, line in enumerate(lines, 1):
        if not line or line.startswith("#"):
            continue
        m = PROM_LINE.match(line)
        if not m:
            fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
        if not PROM_NAME.match(m.group("name")):
            fail(f"{path}:{lineno}: bad metric name {m.group('name')!r}")
        labels = m.group("labels")
        if labels:
            for pair in labels.split(","):
                if not PROM_LABEL.match(pair):
                    fail(f"{path}:{lineno}: bad label pair {pair!r}")
        try:
            float(m.group("value"))
        except ValueError:
            fail(f"{path}:{lineno}: non-float value {m.group('value')!r}")
        names.add(m.group("name"))
        samples += 1
    for meta in REQUIRED_META:
        if meta not in names:
            fail(f"{path}: required meta gauge '{meta}' missing")
    print(f"metrics_inspect: OK: {samples} samples, "
          f"{len(names)} metric names")


def main() -> None:
    ap = argparse.ArgumentParser(
        description="Validate/summarize/export metrics-plane time series")
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="validate the timeseries/events sections")
    mode.add_argument("--summary", action="store_true",
                      help="per-series and event overview")
    mode.add_argument("--csv", action="store_true",
                      help="dump points as CSV to stdout")
    mode.add_argument("--prom-check", action="store_true",
                      help="input is a Prometheus text exposition file")
    ap.add_argument("--series", help="--csv: keep only this series name")
    ap.add_argument("--scope", help="--csv: keep only this scope "
                                    "(e.g. cell=3; use '' for global)")
    ap.add_argument("path", help="BENCH_*.json (or .prom with --prom-check)")
    args = ap.parse_args()

    if args.check:
        check(args.path)
    elif args.summary:
        summary(args.path)
    elif args.csv:
        csv(args.path, args.series, args.scope)
    else:
        prom_check(args.path)


if __name__ == "__main__":
    main()
