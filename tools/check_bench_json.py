#!/usr/bin/env python3
"""Validate the BENCH_*.json artifacts the bench suite emits.

Usage: check_bench_json.py <dir> <bench-name>...

For every listed bench the script requires <dir>/BENCH_<name>.json to
exist, parse, and carry the recorder schema (schema_version 1): bench
metadata, config summary + fingerprint, axes consistent with the point
grid, per-point metrics, captured tables, and shape-check verdicts.
`kernels` is special-cased: bench_kernels emits google-benchmark's own
JSON, which is validated as such. Exits non-zero on the first failure so
CI fails loudly on a missing or malformed document.
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_recorder_doc(name: str, doc: dict) -> None:
    for key in ("schema_version", "bench", "title", "paper_ref", "config",
                "base_seed", "trials_per_point", "axes", "points", "tables",
                "checks", "notes"):
        if key not in doc:
            fail(f"{name}: missing key '{key}'")
    if doc["schema_version"] != 1:
        fail(f"{name}: unexpected schema_version {doc['schema_version']}")
    if doc["bench"] != name:
        fail(f"{name}: bench field says '{doc['bench']}'")
    config = doc["config"]
    if not isinstance(config.get("summary"), str) or not config["summary"]:
        fail(f"{name}: config.summary missing or empty")
    fingerprint = config.get("fingerprint", "")
    if len(fingerprint) != 16 or any(c not in "0123456789abcdef" for c in fingerprint):
        fail(f"{name}: config.fingerprint '{fingerprint}' is not 16 hex digits")

    expected_points = 1
    for axis in doc["axes"]:
        if "name" not in axis:
            fail(f"{name}: axis without a name")
        size = len(axis.get("values", axis.get("labels", [])))
        if size == 0:
            fail(f"{name}: axis '{axis['name']}' has neither values nor labels")
        expected_points *= size
    if len(doc["points"]) != expected_points:
        fail(f"{name}: {len(doc['points'])} points, axes imply {expected_points}")
    for i, point in enumerate(doc["points"]):
        if len(point.get("index", [])) != len(doc["axes"]):
            fail(f"{name}: point {i} index arity != axis count")
        if not isinstance(point.get("metrics"), dict):
            fail(f"{name}: point {i} has no metrics object")
    for table in doc["tables"]:
        width = len(table.get("headers", []))
        if width == 0:
            fail(f"{name}: table without headers")
        for row in table.get("rows", []):
            if len(row) != width:
                fail(f"{name}: table row width {len(row)} != header width {width}")
    for check in doc["checks"]:
        if "name" not in check or not isinstance(check.get("holds"), bool):
            fail(f"{name}: malformed shape check {check}")
        if not check["holds"]:
            print(f"check_bench_json: note: {name}: shape check VIOLATED: "
                  f"{check['name']}")


def check_google_benchmark_doc(name: str, doc: dict) -> None:
    if "benchmarks" not in doc or not isinstance(doc["benchmarks"], list):
        fail(f"{name}: google-benchmark JSON without a 'benchmarks' array")
    if not doc["benchmarks"]:
        fail(f"{name}: google-benchmark JSON with zero benchmarks")


def main() -> None:
    if len(sys.argv) < 3:
        fail("usage: check_bench_json.py <dir> <bench-name>...")
    directory, names = sys.argv[1], sys.argv[2:]
    for name in names:
        path = f"{directory}/BENCH_{name}.json"
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except FileNotFoundError:
            fail(f"{path} missing — did the bench crash before finish()?")
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
        if name == "kernels":
            check_google_benchmark_doc(name, doc)
        else:
            check_recorder_doc(name, doc)
        print(f"check_bench_json: OK: {path}")
    print(f"check_bench_json: validated {len(names)} documents")


if __name__ == "__main__":
    main()
