#!/usr/bin/env python3
"""Validate the BENCH_*.json artifacts the bench suite emits.

Usage: check_bench_json.py [--require-telemetry] [--require-link-quality]
                           [--require-timeseries] [--require-profile]
                           <dir> <bench-name>...

For every listed bench the script requires <dir>/BENCH_<name>.json to
exist, parse, and carry the recorder schema (schema_version 1): bench
metadata, config summary + fingerprint, axes consistent with the point
grid, per-point metrics, captured tables, and shape-check verdicts.
A `telemetry` section (present when the run had CBMA_TELEMETRY=1) is
validated against the observability schema of DESIGN.md §7 whenever it
appears; `--require-telemetry` additionally fails documents without one
(CI's telemetry-enabled smoke run uses this). Likewise a `link_quality`
section (present when the run had CBMA_PROBE=<path>) and a `watchdog`
warning array are validated against DESIGN.md §8 whenever they appear;
`--require-link-quality` fails documents without the probe sections.
The metrics-plane `timeseries` + `events` sections (present when the run
had CBMA_METRICS=<path>, DESIGN.md §12) are validated whenever they
appear; `--require-timeseries` fails documents without them. The
profiler's `profile` section (present when the run had
CBMA_PROFILE=<path>, DESIGN.md §13) is validated whenever it appears —
tree nodes must balance incl == excl + child_ns and parallel-site worker
slots must sum to their aggregates; `--require-profile` fails documents
without one (profile_inspect.py checks the deeper invariants).
`kernels` is special-cased: bench_kernels emits google-benchmark's own
JSON, which is validated as such. Exits non-zero on the first failure so
CI fails loudly on a missing or malformed document.
"""
import json
import sys

SPAN_KEYS = ("name", "count", "total_ns", "min_ns", "max_ns", "mean_ns",
             "p50_ns", "p90_ns", "p99_ns")
FRAME_KEYS = ("seq", "ts_ns", "tag", "code_length", "correlation", "margin",
              "cfo_hz", "power_dbm", "impedance_level", "outcome",
              "impairment_gates")


def fail(msg: str) -> None:
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_telemetry_section(name: str, tel: dict) -> None:
    """Observability schema (DESIGN.md §7): spans with ordered percentile
    statistics, named non-zero counters, a bounded flight recorder."""
    for key in ("threads", "spans", "counters", "flight_recorder"):
        if key not in tel:
            fail(f"{name}: telemetry section missing key '{key}'")
    if not isinstance(tel["threads"], int) or tel["threads"] < 1:
        fail(f"{name}: telemetry.threads {tel['threads']!r} is not a "
             "positive integer")
    if not isinstance(tel["spans"], list) or not tel["spans"]:
        fail(f"{name}: telemetry.spans missing or empty")
    for span in tel["spans"]:
        for key in SPAN_KEYS:
            if key not in span:
                fail(f"{name}: telemetry span missing key '{key}': {span}")
        if "/" not in span["name"]:
            fail(f"{name}: span name '{span['name']}' violates the "
                 "layer/stage scheme")
        if span["count"] < 1:
            fail(f"{name}: span '{span['name']}' recorded with count 0")
        if not span["p50_ns"] <= span["p90_ns"] <= span["p99_ns"]:
            fail(f"{name}: span '{span['name']}' percentiles out of order")
        if span["min_ns"] > span["max_ns"]:
            fail(f"{name}: span '{span['name']}' min > max")
    counters = tel["counters"]
    if not isinstance(counters, dict):
        fail(f"{name}: telemetry.counters is not an object")
    for counter, value in counters.items():
        if "." not in counter:
            fail(f"{name}: counter name '{counter}' violates the "
             "layer.event scheme")
        if not isinstance(value, int) or value < 1:
            fail(f"{name}: counter '{counter}' has non-positive value "
                 f"{value!r} (zero counters are omitted)")
    if len(counters) < 10:
        fail(f"{name}: only {len(counters)} named counters "
             "(observability contract promises ≥ 10 on a pipeline run)")
    if not isinstance(tel["flight_recorder"], list):
        fail(f"{name}: telemetry.flight_recorder is not an array")
    prev_seq = -1
    for frame in tel["flight_recorder"]:
        for key in FRAME_KEYS:
            if key not in frame:
                fail(f"{name}: flight-recorder frame missing key '{key}'")
        if not isinstance(frame["outcome"], str) or not frame["outcome"]:
            fail(f"{name}: flight-recorder outcome should be the rx label, "
                 f"got {frame['outcome']!r}")
        if frame["seq"] <= prev_seq:
            fail(f"{name}: flight-recorder seq not strictly increasing")
        prev_seq = frame["seq"]


TAG_AGG_KEYS = ("tag", "frames", "decoded", "snr_db_mean", "evm_mean",
                "soft_margin_mean", "margin_ratio_mean", "power_norm_mean",
                "correlation_mean")
WATCHDOG_KEYS = ("metric", "point", "kind", "value", "reference", "detail")


def check_link_quality_section(name: str, lq: dict) -> None:
    """Signal-probe schema (DESIGN.md §8): capture totals plus per-tag
    aggregates of the receiver's link-quality rows."""
    for key in ("samples", "dropped", "tags"):
        if key not in lq:
            fail(f"{name}: link_quality section missing key '{key}'")
    for key in ("samples", "dropped"):
        if not isinstance(lq[key], int) or lq[key] < 0:
            fail(f"{name}: link_quality.{key} {lq[key]!r} is not a "
                 "non-negative integer")
    if not isinstance(lq["tags"], list):
        fail(f"{name}: link_quality.tags is not an array")
    frames_total = 0
    for entry in lq["tags"]:
        for key in TAG_AGG_KEYS:
            if key not in entry:
                fail(f"{name}: link_quality tag entry missing key '{key}': "
                     f"{entry}")
        if entry["frames"] < 1:
            fail(f"{name}: link_quality tag {entry['tag']} aggregated over "
                 "0 frames (empty tags are omitted)")
        if entry["decoded"] > entry["frames"]:
            fail(f"{name}: link_quality tag {entry['tag']} decoded more "
                 "frames than it saw")
        frames_total += entry["frames"]
    if frames_total != lq["samples"]:
        fail(f"{name}: link_quality per-tag frames sum to {frames_total}, "
             f"samples says {lq['samples']}")


def check_watchdog_section(name: str, warnings: list) -> None:
    """Anomaly-watchdog schema (DESIGN.md §8): structured warnings from
    scan_sweep_anomalies — floor breaches and neighbor deviations."""
    if not isinstance(warnings, list):
        fail(f"{name}: watchdog section is not an array")
    for warning in warnings:
        for key in WATCHDOG_KEYS:
            if key not in warning:
                fail(f"{name}: watchdog warning missing key '{key}': "
                     f"{warning}")
        if warning["kind"] not in ("floor", "neighbor"):
            fail(f"{name}: watchdog warning kind {warning['kind']!r} is "
                 "neither 'floor' nor 'neighbor'")
        if not isinstance(warning["detail"], str) or not warning["detail"]:
            fail(f"{name}: watchdog warning without a detail line")
        print(f"check_bench_json: note: {name}: watchdog warning: "
              f"{warning['detail']}")


SEVERITIES = ("info", "warning", "error")


def check_timeseries_section(name: str, ts: dict) -> None:
    """Metrics-plane schema (DESIGN.md §12): bounded windowed series keyed
    by (name, scope), window indices monotone per series."""
    for key in ("windows", "window_capacity", "dropped", "series"):
        if key not in ts:
            fail(f"{name}: timeseries section missing key '{key}'")
    for key in ("points", "series", "events"):
        if key not in ts["dropped"]:
            fail(f"{name}: timeseries.dropped missing key '{key}'")
    if not isinstance(ts["series"], list) or not ts["series"]:
        fail(f"{name}: timeseries.series missing or empty")
    seen = set()
    for series in ts["series"]:
        for key in ("name", "scope", "points"):
            if key not in series:
                fail(f"{name}: timeseries series missing key '{key}': "
                     f"{series}")
        ident = (series["name"], series["scope"])
        if ident in seen:
            fail(f"{name}: duplicate timeseries series {ident}")
        seen.add(ident)
        if len(series["points"]) > ts["window_capacity"]:
            fail(f"{name}: series {ident} exceeds the ring capacity")
        prev = -1
        for point in series["points"]:
            if len(point) != 2 or not isinstance(point[1], (int, float)):
                fail(f"{name}: series {ident} malformed point {point}")
            if point[0] < prev:
                fail(f"{name}: series {ident} window indices not monotone")
            prev = point[0]


def check_events_section(name: str, events: list) -> None:
    """Structured event-log schema (DESIGN.md §12): typed entries with a
    severity from the fixed vocabulary, strictly increasing seq."""
    if not isinstance(events, list):
        fail(f"{name}: events section is not an array")
    prev_seq = -1
    for event in events:
        for key in ("seq", "window", "severity", "type", "value"):
            if key not in event:
                fail(f"{name}: event missing key '{key}': {event}")
        if event["seq"] <= prev_seq:
            fail(f"{name}: event seq not strictly increasing")
        prev_seq = event["seq"]
        if event["severity"] not in SEVERITIES:
            fail(f"{name}: event severity {event['severity']!r} unknown")
        if not isinstance(event["type"], str) or not event["type"]:
            fail(f"{name}: event without a type label")


def check_profile_node(name: str, node: dict) -> None:
    for key in ("span", "count", "incl_ns", "excl_ns", "child_ns",
                "children"):
        if key not in node:
            fail(f"{name}: profile tree node missing key '{key}': {node}")
    if "/" not in node["span"]:
        fail(f"{name}: profile span '{node['span']}' violates the "
             "layer/stage scheme")
    if node["incl_ns"] != node["excl_ns"] + node["child_ns"]:
        fail(f"{name}: profile node '{node['span']}' does not balance: "
             f"incl {node['incl_ns']} != excl {node['excl_ns']} + child "
             f"{node['child_ns']}")
    for child in node["children"]:
        check_profile_node(name, child)


def check_profile_section(name: str, prof: dict) -> None:
    """Profiler schema (DESIGN.md §13): the merged caller-path tree plus
    parallel_for worker-utilization sites."""
    for key in ("threads", "dropped", "tree", "parallel"):
        if key not in prof:
            fail(f"{name}: profile section missing key '{key}'")
    if not isinstance(prof["threads"], int) or prof["threads"] < 1:
        fail(f"{name}: profile.threads {prof['threads']!r} is not a "
             "positive integer")
    if not isinstance(prof["tree"], list) or not prof["tree"]:
        fail(f"{name}: profile.tree missing or empty")
    for root in prof["tree"]:
        check_profile_node(name, root)
    for site in prof["parallel"]:
        for key in ("site", "calls", "items", "wall_ns", "busy_ns",
                    "imbalance", "workers"):
            if key not in site:
                fail(f"{name}: profile parallel site missing key '{key}': "
                     f"{site}")
        if site["imbalance"] < 1.0:
            fail(f"{name}: profile site '{site['site']}' imbalance "
                 f"{site['imbalance']} < 1")
        if sum(w["busy_ns"] for w in site["workers"]) != site["busy_ns"]:
            fail(f"{name}: profile site '{site['site']}' worker busy slots "
                 "do not sum to busy_ns")
        if sum(w["items"] for w in site["workers"]) != site["items"]:
            fail(f"{name}: profile site '{site['site']}' worker item slots "
                 "do not sum to items")


def check_recorder_doc(name: str, doc: dict,
                       require_telemetry: bool = False,
                       require_link_quality: bool = False,
                       require_timeseries: bool = False,
                       require_profile: bool = False) -> None:
    for key in ("schema_version", "bench", "title", "paper_ref", "config",
                "base_seed", "trials_per_point", "axes", "points", "tables",
                "checks", "notes"):
        if key not in doc:
            fail(f"{name}: missing key '{key}'")
    if doc["schema_version"] != 1:
        fail(f"{name}: unexpected schema_version {doc['schema_version']}")
    if doc["bench"] != name:
        fail(f"{name}: bench field says '{doc['bench']}'")
    config = doc["config"]
    if not isinstance(config.get("summary"), str) or not config["summary"]:
        fail(f"{name}: config.summary missing or empty")
    fingerprint = config.get("fingerprint", "")
    if len(fingerprint) != 16 or any(c not in "0123456789abcdef" for c in fingerprint):
        fail(f"{name}: config.fingerprint '{fingerprint}' is not 16 hex digits")

    expected_points = 1
    for axis in doc["axes"]:
        if "name" not in axis:
            fail(f"{name}: axis without a name")
        size = len(axis.get("values", axis.get("labels", [])))
        if size == 0:
            fail(f"{name}: axis '{axis['name']}' has neither values nor labels")
        expected_points *= size
    if len(doc["points"]) != expected_points:
        fail(f"{name}: {len(doc['points'])} points, axes imply {expected_points}")
    for i, point in enumerate(doc["points"]):
        if len(point.get("index", [])) != len(doc["axes"]):
            fail(f"{name}: point {i} index arity != axis count")
        if not isinstance(point.get("metrics"), dict):
            fail(f"{name}: point {i} has no metrics object")
    for table in doc["tables"]:
        width = len(table.get("headers", []))
        if width == 0:
            fail(f"{name}: table without headers")
        for row in table.get("rows", []):
            if len(row) != width:
                fail(f"{name}: table row width {len(row)} != header width {width}")
    for check in doc["checks"]:
        if "name" not in check or not isinstance(check.get("holds"), bool):
            fail(f"{name}: malformed shape check {check}")
        if not check["holds"]:
            print(f"check_bench_json: note: {name}: shape check VIOLATED: "
                  f"{check['name']}")
    if "telemetry" in doc:
        check_telemetry_section(name, doc["telemetry"])
    elif require_telemetry:
        fail(f"{name}: no telemetry section but --require-telemetry given — "
             "was the bench run without CBMA_TELEMETRY=1?")
    if "link_quality" in doc:
        check_link_quality_section(name, doc["link_quality"])
    elif require_link_quality:
        fail(f"{name}: no link_quality section but --require-link-quality "
             "given — was the bench run without CBMA_PROBE=<path>?")
    if "watchdog" in doc:
        check_watchdog_section(name, doc["watchdog"])
    elif require_link_quality:
        fail(f"{name}: no watchdog section but --require-link-quality given")
    if ("timeseries" in doc) != ("events" in doc):
        fail(f"{name}: timeseries and events sections must appear together")
    if "timeseries" in doc:
        check_timeseries_section(name, doc["timeseries"])
        check_events_section(name, doc["events"])
    elif require_timeseries:
        fail(f"{name}: no timeseries section but --require-timeseries given "
             "— was the bench run without CBMA_METRICS=<path>?")
    if "profile" in doc:
        check_profile_section(name, doc["profile"])
    elif require_profile:
        fail(f"{name}: no profile section but --require-profile given — "
             "was the bench run without CBMA_PROFILE=<path>?")


def check_google_benchmark_doc(name: str, doc: dict) -> None:
    if "benchmarks" not in doc or not isinstance(doc["benchmarks"], list):
        fail(f"{name}: google-benchmark JSON without a 'benchmarks' array")
    if not doc["benchmarks"]:
        fail(f"{name}: google-benchmark JSON with zero benchmarks")


def main() -> None:
    args = sys.argv[1:]
    require_telemetry = "--require-telemetry" in args
    require_link_quality = "--require-link-quality" in args
    require_timeseries = "--require-timeseries" in args
    require_profile = "--require-profile" in args
    args = [a for a in args
            if a not in ("--require-telemetry", "--require-link-quality",
                         "--require-timeseries", "--require-profile")]
    if len(args) < 2:
        fail("usage: check_bench_json.py [--require-telemetry] "
             "[--require-link-quality] [--require-timeseries] "
             "[--require-profile] <dir> <bench-name>...")
    directory, names = args[0], args[1:]
    for name in names:
        path = f"{directory}/BENCH_{name}.json"
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except FileNotFoundError:
            fail(f"{path} missing — did the bench crash before finish()?")
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
        if name == "kernels":
            check_google_benchmark_doc(name, doc)
        else:
            check_recorder_doc(name, doc, require_telemetry,
                               require_link_quality, require_timeseries,
                               require_profile)
        print(f"check_bench_json: OK: {path}")
    print(f"check_bench_json: validated {len(names)} documents")


if __name__ == "__main__":
    main()
