// Fig. 11 — error rate when tags are asynchronous: two tags, tag 1's clock
// as reference, tag 2's transmission delayed by a controlled offset. The
// paper: the error is lowest when fully synchronized and fluctuates around
// a small elevated level once any delay exists (the correlation-based
// detector absorbs the misalignment rather than collapsing).
#include <cstdio>

#include "common.h"
#include "core/system.h"
#include "util/table.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 2;
  cfg.max_async_jitter_chips = 0.0;  // delays are driven explicitly here
  // The study deliberately delays tag 2 beyond the default group window;
  // widen the detector's search so the delay itself — not a window edge —
  // is what is being measured.
  cfg.detect.group_window_chips = 4.0;
  // Free-running tag oscillators differ by ~0.1 % (tens of kHz at the
  // 20 MHz shift): the tag-to-tag phase rotates within a frame, so two
  // perfectly synchronized tags cannot sit in a persistent RF null.
  cfg.cfo_max_hz = 20e3;

  auto dep = rfsim::Deployment::paper_frame();
  dep.add_tag({0.0, 1.15});
  dep.add_tag({0.0, -1.17});

  std::vector<double> delays;
  for (double d = 0.0; d <= 3.0 + 1e-9; d += 0.25) delays.push_back(d);
  const std::size_t n_packets = bench::trials(400);

  const auto spec = bench::spec(
      "fig11_async", "Fig. 11 — error rate vs inter-tag asynchronization",
      "§VII-C2: 2 tags, tag 2 delayed against tag 1's clock",
      {core::Axis::numeric("delay", delays, "chips")}, n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    core::CbmaSystem sys(cfg, dep);
    Rng rng(point.seed());
    core::RoundStats stats(2);
    const std::vector<double> tag_delays{0.0, point.value(0)};
    std::vector<std::vector<std::uint8_t>> payloads(2);
    core::TransmitOptions options;
    options.payloads = payloads;
    options.delay_chips = tag_delays;
    core::TransmitScratch scratch;  // reused across the sweep point's packets
    for (std::size_t p = 0; p < n_packets; ++p) {
      for (auto& pl : payloads) {
        pl.resize(cfg.payload_bytes);
        for (auto& b : pl) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      const auto report = sys.transmit(options, rng, scratch);
      stats.record(0, report.results[0].crc_ok);
      stats.record(1, report.results[1].crc_ok);
    }
    recorder.record(point.flat(), "fer", stats.frame_error_rate());
  });

  Table table({"tag-2 delay (chips)", "tag-2 delay (ns @32 Mcps)", "error rate"});
  for (std::size_t i = 0; i < delays.size(); ++i) {
    table.add_row({Table::num(delays[i], 2),
                   Table::num(delays[i] / cfg.chip_rate_hz() * 1e9, 1),
                   Table::percent(recorder.metric(i, "fer"), 2)});
  }
  recorder.print_table(table);

  double delayed_mean = 0.0;
  for (std::size_t i = 1; i < delays.size(); ++i) {
    delayed_mean += recorder.metric(i, "fer");
  }
  delayed_mean /= static_cast<double>(delays.size() - 1);
  std::printf("error at full synchronization: %.2f%%\n",
              100.0 * recorder.metric(0, "fer"));
  std::printf("mean error once delayed      : %.2f%% (paper: fluctuates ~4%%)\n",
              100.0 * delayed_mean);
  std::printf("asynchrony tolerated — delayed error stays at the few-percent level: %s\n",
              recorder.check("asynchrony tolerated at the few-percent level",
                             delayed_mean > 0.002 && delayed_mean < 0.15)
                  ? "HOLDS"
                  : "VIOLATED");
  recorder.note(
      "at exactly zero delay two equal-strength reflections can sit in a "
      "persistent RF null and defeat the energy-based frame sync — a "
      "superposition effect the paper's testbed (drifting oscillators, "
      "multipath) averages away; see EXPERIMENTS.md");
  std::printf("\nnote: at exactly zero delay two equal-strength reflections can sit\n"
              "in a persistent RF null and defeat the energy-based frame sync — a\n"
              "superposition effect the paper's testbed (drifting oscillators,\n"
              "multipath) averages away; see EXPERIMENTS.md.\n");
  return recorder.finish();
}
