// Ablation — receiver design choices (DESIGN.md §4.4).
// Quantifies what each receiver mechanism buys on a 5-tag equal-strength
// collision near the paper's operating point:
//   * successive interference cancellation in user detection,
//   * the quasi-synchronized group window around the anchor peak,
//   * the decision-directed phase tracker,
//   * the spike-proof double-head frame synchronizer (via head size).
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

rfsim::Deployment ring_deployment(std::size_t n_tags) {
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(n_tags);
    dep.add_tag({0.25 * std::cos(angle), 0.75 + 0.25 * std::sin(angle)});
  }
  return dep;
}

double run_variant(const core::SystemConfig& cfg, std::size_t n_packets,
                   std::uint64_t seed) {
  return core::measure_fer(cfg, ring_deployment(cfg.max_tags), n_packets, seed).fer;
}

}  // namespace

int main() {
  core::SystemConfig base;
  base.max_tags = 5;
  bench::print_header("Ablation — receiver design choices",
                      "5-tag equal-strength collision; FER per variant", base);

  const std::size_t n_packets = bench::trials(400);

  struct Variant {
    const char* name;
    core::SystemConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"full receiver (reference)", base});
  {
    core::SystemConfig c = base;
    c.detect.enable_sic = false;
    variants.push_back({"no successive cancellation", c});
  }
  {
    core::SystemConfig c = base;
    c.detect.group_window_chips = 48.0;  // effectively unconstrained
    variants.push_back({"no group window (free search)", c});
  }
  {
    core::SystemConfig c = base;
    c.detect.enable_sic = false;
    c.detect.group_window_chips = 48.0;
    variants.push_back({"neither (naive sliding detector)", c});
  }
  {
    core::SystemConfig c = base;
    c.phase_tracking_gain = 0.0;
    variants.push_back({"no phase tracking", c});
  }
  {
    core::SystemConfig c = base;
    c.phase_tracking_gain = 0.9;
    variants.push_back({"aggressive phase tracking (0.9)", c});
  }
  {
    core::SystemConfig c = base;
    c.sync.head_average = 2;  // near-single-sample comparator
    variants.push_back({"short sync head (spiky trigger)", c});
  }

  std::vector<double> fer(variants.size());
  bench::parallel_for(variants.size(), [&](std::size_t i) {
    fer[i] = run_variant(variants[i].cfg, n_packets, bench::point_seed(i));
  });

  Table table({"receiver variant", "FER (5 tags)", "vs reference"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    table.add_row({variants[i].name, Table::percent(fer[i], 2),
                   i == 0 ? "-" : Table::num(fer[i] / std::max(fer[0], 1e-4), 1) + "x"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("cancellation + group window carry the multi-tag operating point: %s\n",
              (fer[3] > fer[0] + 0.05) ? "HOLDS" : "VIOLATED");
  return 0;
}
