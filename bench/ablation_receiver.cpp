// Ablation — receiver design choices (DESIGN.md §4.4).
// Quantifies what each receiver mechanism buys on a 5-tag equal-strength
// collision near the paper's operating point:
//   * successive interference cancellation in user detection,
//   * the quasi-synchronized group window around the anchor peak,
//   * the decision-directed phase tracker,
//   * the spike-proof double-head frame synchronizer (via head size).
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

rfsim::Deployment ring_deployment(std::size_t n_tags) {
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(n_tags);
    dep.add_tag({0.25 * std::cos(angle), 0.75 + 0.25 * std::sin(angle)});
  }
  return dep;
}

double run_variant(const core::SystemConfig& cfg, std::size_t n_packets,
                   std::uint64_t seed) {
  return core::measure_fer(cfg, ring_deployment(cfg.max_tags), n_packets, seed).fer;
}

}  // namespace

int main() {
  core::SystemConfig base;
  base.max_tags = 5;

  const std::size_t n_packets = bench::trials(400);

  struct Variant {
    const char* name;
    const char* slug;
    core::SystemConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"full receiver (reference)", "full", base});
  {
    core::SystemConfig c = base;
    c.detect.enable_sic = false;
    variants.push_back({"no successive cancellation", "no-sic", c});
  }
  {
    core::SystemConfig c = base;
    c.detect.group_window_chips = 48.0;  // effectively unconstrained
    variants.push_back({"no group window (free search)", "no-group-window", c});
  }
  {
    core::SystemConfig c = base;
    c.detect.enable_sic = false;
    c.detect.group_window_chips = 48.0;
    variants.push_back({"neither (naive sliding detector)", "neither", c});
  }
  {
    core::SystemConfig c = base;
    c.phase_tracking_gain = 0.0;
    variants.push_back({"no phase tracking", "no-phase-tracking", c});
  }
  {
    core::SystemConfig c = base;
    c.phase_tracking_gain = 0.9;
    variants.push_back({"aggressive phase tracking (0.9)", "aggressive-phase", c});
  }
  {
    core::SystemConfig c = base;
    c.sync.head_average = 2;  // near-single-sample comparator
    variants.push_back({"short sync head (spiky trigger)", "short-sync-head", c});
  }

  std::vector<std::string> labels;
  for (const auto& v : variants) labels.emplace_back(v.slug);
  const auto spec = bench::spec(
      "ablation_receiver", "Ablation — receiver design choices",
      "5-tag equal-strength collision; FER per variant",
      {core::Axis::categorical("variant", labels)}, n_packets);
  core::RunRecorder recorder(spec, base);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    recorder.record(point.flat(), "fer",
                    run_variant(variants[point.flat()].cfg, n_packets,
                                point.seed()));
  });

  const auto fer = [&](std::size_t i) { return recorder.metric(i, "fer"); };
  Table table({"receiver variant", "FER (5 tags)", "vs reference"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    table.add_row({variants[i].name, Table::percent(fer(i), 2),
                   i == 0 ? "-" : Table::num(fer(i) / std::max(fer(0), 1e-4), 1) + "x"});
  }
  recorder.print_table(table);

  std::printf("cancellation + group window carry the multi-tag operating point: %s\n",
              recorder.check(
                  "cancellation + group window carry the multi-tag operating point",
                  fer(3) > fer(0) + 0.05)
                  ? "HOLDS"
                  : "VIOLATED");
  return recorder.finish();
}
