// Fig. 9(a) — frame error rate vs tag bit rate (250 kbps..5 Mbps),
// 2/3/4 concurrent tags. The receiver's sampling capacity is fixed
// (~128 MS/s): raising the bit rate raises the chip rate, leaving fewer
// samples per chip and widening the noise bandwidth, exactly the paper's
// "dwell time at each signal state is short" effect.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace cbma;

namespace {

constexpr double kReceiverSampleCapacity = 256e6;  // samples/s

rfsim::Deployment make_deployment(std::size_t n_tags) {
  rfsim::Deployment dep(rfsim::Point{0.0, 0.0}, rfsim::Point{1.5, 0.0});
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double dy = 0.06 * (static_cast<double>(k) -
                              static_cast<double>(n_tags - 1) / 2.0);
    dep.add_tag({0.5, dy});
  }
  return dep;
}

std::size_t samples_per_chip_at(const core::SystemConfig& cfg) {
  return static_cast<std::size_t>(
      std::clamp(kReceiverSampleCapacity / cfg.chip_rate_hz(), 2.0, 8.0));
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  // Drive level chosen so the noise bandwidth growth with the chip rate is
  // the binding constraint across the sweep (the 5 Mbps point sits at the
  // receiver floor, as in the paper's sampling-limited regime).
  cfg.tx_power_dbm = 15.0;
  const std::vector<double> bitrates{0.25e6, 0.5e6, 1e6, 2e6, 4e6, 5e6};
  const std::size_t n_packets = bench::trials();

  const auto spec = bench::spec(
      "fig9a_bitrate", "Fig. 9(a) — FER vs bit rate",
      "§VII-B1, 250 kbps..5 Mbps, 2/3/4 tags, fixed sampling capacity",
      {core::Axis::numeric("tags", {2, 3, 4}),
       core::Axis::numeric("bitrate", bitrates, "bps")},
      n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const auto n_tags = static_cast<std::size_t>(point.value(0));
    core::SystemConfig point_cfg = cfg;
    point_cfg.max_tags = n_tags;
    point_cfg.bitrate_bps = point.value(1);
    point_cfg.samples_per_chip = samples_per_chip_at(point_cfg);
    const auto dep = make_deployment(n_tags);
    recorder.record(point.flat(), "fer",
                    core::measure_fer(point_cfg, dep, n_packets, point.seed()).fer);
  });

  const auto fer = [&](std::size_t t, std::size_t b) {
    return recorder.metric(t * bitrates.size() + b, "fer");
  };
  Table table({"bit rate", "samples/chip", "FER 2 tags", "FER 3 tags", "FER 4 tags"});
  for (std::size_t b = 0; b < bitrates.size(); ++b) {
    core::SystemConfig c = cfg;
    c.bitrate_bps = bitrates[b];
    table.add_row({Table::num(bitrates[b] / 1e6, 2) + " Mbps",
                   std::to_string(samples_per_chip_at(c)),
                   Table::num(fer(0, b), 3), Table::num(fer(1, b), 3),
                   Table::num(fer(2, b), 3)});
  }
  recorder.print_table(table);

  const std::size_t last = bitrates.size() - 1;
  std::printf("error grows with bit rate: %s\n",
              recorder.check("error grows with bit rate",
                             fer(2, last) >= fer(2, 0))
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("still \"fairly decent\" at 5 Mbps with 2 tags: FER = %.3f\n",
              fer(0, last));
  return recorder.finish();
}
