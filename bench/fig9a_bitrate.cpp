// Fig. 9(a) — frame error rate vs tag bit rate (250 kbps..5 Mbps),
// 2/3/4 concurrent tags. The receiver's sampling capacity is fixed
// (~128 MS/s): raising the bit rate raises the chip rate, leaving fewer
// samples per chip and widening the noise bandwidth, exactly the paper's
// "dwell time at each signal state is short" effect.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace cbma;

namespace {

constexpr double kReceiverSampleCapacity = 256e6;  // samples/s

rfsim::Deployment make_deployment(std::size_t n_tags) {
  rfsim::Deployment dep(rfsim::Point{0.0, 0.0}, rfsim::Point{1.5, 0.0});
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double dy = 0.06 * (static_cast<double>(k) -
                              static_cast<double>(n_tags - 1) / 2.0);
    dep.add_tag({0.5, dy});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  // Drive level chosen so the noise bandwidth growth with the chip rate is
  // the binding constraint across the sweep (the 5 Mbps point sits at the
  // receiver floor, as in the paper's sampling-limited regime).
  cfg.tx_power_dbm = 15.0;
  bench::print_header("Fig. 9(a) — FER vs bit rate",
                      "§VII-B1, 250 kbps..5 Mbps, 2/3/4 tags, fixed sampling capacity",
                      cfg);

  const std::size_t n_tag_counts[] = {2, 3, 4};
  const double bitrates[] = {0.25e6, 0.5e6, 1e6, 2e6, 4e6, 5e6};
  std::vector<std::vector<double>> fer(3, std::vector<double>(std::size(bitrates)));
  const std::size_t n_packets = bench::trials();

  bench::parallel_for(3 * std::size(bitrates), [&](std::size_t idx) {
    const std::size_t t = idx / std::size(bitrates);
    const std::size_t b = idx % std::size(bitrates);
    core::SystemConfig point_cfg = cfg;
    point_cfg.max_tags = n_tag_counts[t];
    point_cfg.bitrate_bps = bitrates[b];
    const double chip_rate = point_cfg.chip_rate_hz();
    point_cfg.samples_per_chip = static_cast<std::size_t>(
        std::clamp(kReceiverSampleCapacity / chip_rate, 2.0, 8.0));
    const auto dep = make_deployment(n_tag_counts[t]);
    fer[t][b] = core::measure_fer(point_cfg, dep, n_packets, bench::point_seed(idx)).fer;
  });

  Table table({"bit rate", "samples/chip", "FER 2 tags", "FER 3 tags", "FER 4 tags"});
  for (std::size_t b = 0; b < std::size(bitrates); ++b) {
    core::SystemConfig c = cfg;
    c.bitrate_bps = bitrates[b];
    const auto spc = static_cast<std::size_t>(
        std::clamp(kReceiverSampleCapacity / c.chip_rate_hz(), 2.0, 8.0));
    table.add_row({Table::num(bitrates[b] / 1e6, 2) + " Mbps", std::to_string(spc),
                   Table::num(fer[0][b], 3), Table::num(fer[1][b], 3),
                   Table::num(fer[2][b], 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("error grows with bit rate: %s\n",
              fer[2].back() >= fer[2].front() ? "HOLDS" : "VIOLATED");
  std::printf("still \"fairly decent\" at 5 Mbps with 2 tags: FER = %.3f\n",
              fer[0].back());
  return 0;
}
