// Fig. 10 — CDFs of the 5-tag error rate for three scheme levels:
// no control / power control / power control + node selection. The paper's
// macro benchmark deploys tags at random positions in the office; with
// power control alone only ~60 % of deployments reach error < 5 %, and
// adding tag selection dominates both.
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 5;

  core::SchemeRunConfig run;
  run.population = 20;
  run.group_size = 5;
  run.packets_per_round = 40;
  run.final_packets = 100;
  run.selection_rounds = 6;
  run.room = rfsim::Room{2.5, 3.0};

  const std::size_t n_trials = bench::trials(50);
  const core::Scheme schemes[] = {core::Scheme::kBaseline, core::Scheme::kPowerControl,
                                  core::Scheme::kPowerControlAndSelection};
  std::vector<double> trial_axis(n_trials);
  for (std::size_t t = 0; t < n_trials; ++t) trial_axis[t] = static_cast<double>(t);

  const auto spec = bench::spec(
      "fig10_cdf", "Fig. 10 — CDFs of error rate (5-tag deployments)",
      "§VII-C1 macro benchmark: none / PC / PC + node selection",
      {core::Axis::categorical("scheme",
                               {"none", "power-control", "power-control+selection"}),
       core::Axis::numeric("trial", trial_axis)},
      n_trials);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    // Same deployment seed across schemes: paired comparison per trial.
    recorder.record(point.flat(), "error_rate",
                    core::run_scheme_trial(cfg, run, schemes[point.index(0)],
                                           bench::point_seed(point.index(1))));
  });

  const auto samples_of = [&](std::size_t s) {
    std::vector<double> out(n_trials);
    for (std::size_t t = 0; t < n_trials; ++t) {
      out[t] = recorder.metric(s * n_trials + t, "error_rate");
    }
    return out;
  };
  EmpiricalCdf none(samples_of(0)), pc(samples_of(1)), pcsel(samples_of(2));

  Table table({"error rate", "CDF none", "CDF power-control", "CDF PC+selection"});
  for (const double x : {0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40,
                         0.50, 0.70, 1.0}) {
    table.add_row({Table::percent(x, 0), Table::num(none.at(x), 2),
                   Table::num(pc.at(x), 2), Table::num(pcsel.at(x), 2)});
  }
  recorder.print_table(table);

  std::printf("median error: none %.3f, PC %.3f, PC+selection %.3f\n",
              none.median(), pc.median(), pcsel.median());
  std::printf("P(error < 5%%): none %.2f, PC %.2f (paper ~0.6), PC+selection %.2f\n",
              none.at(0.05), pc.at(0.05), pcsel.at(0.05));
  std::printf("ordering PC+selection >= PC >= none at the 5%% mark: %s\n",
              recorder.check("ordering PC+selection >= PC >= none at 5% mark",
                             pcsel.at(0.05) + 1e-9 >= pc.at(0.05) &&
                                 pc.at(0.05) + 1e-9 >= none.at(0.05))
                  ? "HOLDS"
                  : "VIOLATED");
  return recorder.finish();
}
