// Fig. 12 — correct packet reception rate under "bad" working conditions:
//   i)   clean tone excitation, no interference;
//   ii)  ambient WiFi interference (CSMA bursts);
//   iii) ambient Bluetooth interference (FHSS dwells);
//   iv)  OFDM signal as the excitation source.
// Paper: WiFi/Bluetooth cost only a little (their channels are mostly
// idle / mostly out of band) while OFDM excitation drops reception sharply
// because the tags reflect nothing during the inter-frame gaps.
#include <cmath>
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/system.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

rfsim::Deployment make_deployment(std::size_t n_tags) {
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(n_tags);
    dep.add_tag({0.25 * std::cos(angle), 0.75 + 0.25 * std::sin(angle)});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 3;

  const auto dep = make_deployment(3);
  // Interference power at the receiver: comparable to the backscatter
  // signal itself (an interferer a few metres away easily dominates a
  // reflected signal; in-band leakage keeps it at signal scale).
  const double itf_power_w = units::dbm_to_watts(-58.0);

  const char* condition_names[] = {"no interference", "WiFi interference",
                                   "Bluetooth interference", "OFDM excitation"};
  const std::size_t n_packets = bench::trials(400);

  const auto spec = bench::spec(
      "fig12_conditions", "Fig. 12 — packet reception under working conditions",
      "§VII-C3: none / WiFi / Bluetooth interference / OFDM excitation",
      {core::Axis::categorical("condition",
                               {"none", "wifi", "bluetooth", "ofdm-excitation"})},
      n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const std::size_t c = point.flat();
    core::CbmaSystem sys(cfg, dep);
    switch (c) {
      case 0:
        break;
      case 1:
        sys.add_interferer(std::make_unique<rfsim::WifiInterferer>(itf_power_w));
        break;
      case 2:
        sys.add_interferer(std::make_unique<rfsim::BluetoothInterferer>(itf_power_w * 2.0));
        break;
      case 3:
        // 802.11-like medium occupancy: ~500 µs frames, ~700 µs gaps.
        sys.set_excitation(std::make_unique<rfsim::OfdmExcitation>(500e-6, 700e-6));
        break;
    }
    Rng rng(point.seed());
    const auto stats = sys.run_packets(n_packets, rng);
    recorder.record(point.flat(), "prr", 1.0 - stats.frame_error_rate());
  });

  const auto prr = [&](std::size_t c) { return recorder.metric(c, "prr"); };
  Table table({"working condition", "correct packet reception rate"});
  for (std::size_t c = 0; c < 4; ++c) {
    table.add_row({condition_names[c], Table::percent(prr(c), 2)});
  }
  recorder.print_table(table);

  std::printf("WiFi/Bluetooth cost only slightly: %s (drops of %.1f%% / %.1f%%)\n",
              recorder.check("WiFi/Bluetooth cost only slightly",
                             prr(0) - prr(1) < 0.15 && prr(0) - prr(2) < 0.15)
                  ? "HOLDS"
                  : "VIOLATED",
              100.0 * (prr(0) - prr(1)), 100.0 * (prr(0) - prr(2)));
  std::printf("OFDM excitation drops reception significantly: %s (%.1f%% -> %.1f%%)\n",
              recorder.check("OFDM excitation drops reception significantly",
                             prr(0) - prr(3) > 0.2)
                  ? "HOLDS"
                  : "VIOLATED",
              100.0 * prr(0), 100.0 * prr(3));
  return recorder.finish();
}
