// Headline comparison (§I, §VII): CBMA's concurrent 10-tag operation vs
// single-tag-at-a-time baselines (round-robin polling, framed slotted
// ALOHA). The paper claims a 10-tag bit rate of ~8 Mbps and a >10×
// throughput improvement over single-tag solutions. The CBMA FER input is
// *measured* end-to-end on a 10-tag deployment, not assumed.
#include <cmath>
#include <cstdio>

#include <memory>

#include "common.h"
#include "core/system.h"
#include "mac/fsa.h"
#include "mac/single_tag.h"
#include "mac/throughput.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 10;

  // One irregular headline measurement: empty axis list, single point.
  const auto spec = bench::spec(
      "throughput_comparison", "Headline — 10-tag throughput vs single-tag baselines",
      "§I/§VII: aggregate bit rate and >10x goodput claim", {},
      bench::trials(400));
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  // Measure the 10-tag FER on an equal-strength ring after power control.
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < 10; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) / 10.0;
    dep.add_tag({0.30 * std::cos(angle), 0.75 + 0.30 * std::sin(angle)});
  }
  core::CbmaSystem sys(cfg, dep);
  Rng rng(bench::base_seed());
  sys.run_power_control({}, 40, rng);
  const auto stats = sys.run_packets(bench::trials(400), rng);
  const double measured_fer = stats.frame_error_rate();
  std::printf("measured 10-tag FER after power control: %.3f\n", measured_fer);

  // The abstract's stress case: "challenging indoor scenarios with rich
  // multipath and interference" plus an interior wall shadowing part of
  // the ring.
  core::SystemConfig harsh_cfg = cfg;
  harsh_cfg.multipath.enabled = true;
  core::CbmaSystem harsh(harsh_cfg, dep);
  harsh.set_obstacles(rfsim::ObstacleMap({{{-0.2, 1.02}, {1.2, 1.02}, 6.0}}));
  harsh.add_interferer(
      std::make_unique<rfsim::WifiInterferer>(units::dbm_to_watts(-58.0)));
  harsh.add_interferer(
      std::make_unique<rfsim::BluetoothInterferer>(units::dbm_to_watts(-55.0)));
  Rng harsh_rng(bench::point_seed(7));
  harsh.run_power_control({}, 40, harsh_rng);
  const double harsh_fer =
      harsh.run_packets(bench::trials(400), harsh_rng).frame_error_rate();
  std::printf("measured 10-tag FER, challenging indoor (wall + multipath + "
              "WiFi/BT interference): %.3f\n", harsh_fer);

  // The single-tag baseline faces the same walls: measure each tag alone
  // (round-robin style) in the harsh environment.
  std::size_t alone_sent = 0, alone_ok = 0;
  const std::size_t alone_per_tag = std::max<std::size_t>(10, bench::trials(400) / 10);
  core::TransmitScratch scratch;  // reused across all single-tag rounds
  for (std::size_t k = 0; k < 10; ++k) {
    core::TransmitOptions options;
    options.slots = std::span(&k, 1);
    for (std::size_t p = 0; p < alone_per_tag; ++p) {
      const auto report = harsh.transmit(options, harsh_rng, scratch);
      ++alone_sent;
      alone_ok += report.ack.contains(k) ? 1 : 0;
    }
  }
  const double harsh_single_fer =
      1.0 - static_cast<double>(alone_ok) / static_cast<double>(alone_sent);
  std::printf("measured single-tag-alone FER in the same environment: %.3f\n\n",
              harsh_single_fer);

  const std::size_t frame_bits = phy::frame_bit_count(cfg.payload_bytes);
  const std::size_t payload_bits = cfg.payload_bytes * 8;

  // CBMA: ten concurrent 1 Mbps tags.
  mac::CbmaRate rate;
  rate.per_tag_bitrate_bps = cfg.bitrate_bps;
  rate.n_tags = 10;
  rate.frame_bits = frame_bits;
  rate.payload_bits = payload_bits;
  rate.frame_error_rate = measured_fer;
  const auto cbma_out = mac::cbma_throughput(rate);

  // Baseline 1: single-tag round-robin polling (BackFi-style link).
  mac::SingleTagConfig single;
  single.bitrate_bps = cfg.bitrate_bps;
  single.frame_bits = frame_bits;
  single.payload_bits = payload_bits;
  const auto single_out = mac::single_tag_round_robin(single, 10);

  // Baseline 2: framed slotted ALOHA (random-access single-tag slots).
  mac::FsaSimulator fsa({});
  Rng fsa_rng(bench::point_seed(1));
  const auto fsa_res = fsa.run_saturated(10, 400, fsa_rng);
  const double slot_s = single.poll_s +
                        static_cast<double>(frame_bits) / single.bitrate_bps +
                        single.guard_s;
  const double fsa_goodput =
      fsa_res.efficiency() * static_cast<double>(payload_bits) / slot_s;

  recorder.record(0, "fer_10_tags", measured_fer);
  recorder.record(0, "fer_10_tags_harsh", harsh_fer);
  recorder.record(0, "fer_single_tag_harsh", harsh_single_fer);
  recorder.record(0, "cbma_raw_bps", cbma_out.aggregate_raw_bps);
  recorder.record(0, "cbma_goodput_bps", cbma_out.aggregate_goodput_bps);
  recorder.record(0, "round_robin_goodput_bps", single_out.aggregate_goodput_bps);
  recorder.record(0, "fsa_goodput_bps", fsa_goodput);

  Table table({"scheme", "aggregate raw bit rate", "aggregate goodput",
               "vs CBMA"});
  const auto mbps = [](double bps) { return Table::num(bps / 1e6, 2) + " Mbps"; };
  table.add_row({"CBMA (10 concurrent tags)", mbps(cbma_out.aggregate_raw_bps),
                 mbps(cbma_out.aggregate_goodput_bps), "1.0x"});
  table.add_row({"single-tag round robin", mbps(single.bitrate_bps),
                 mbps(single_out.aggregate_goodput_bps),
                 Table::num(cbma_out.aggregate_goodput_bps /
                                single_out.aggregate_goodput_bps, 1) + "x"});
  table.add_row({"framed slotted ALOHA", mbps(single.bitrate_bps),
                 mbps(fsa_goodput),
                 Table::num(cbma_out.aggregate_goodput_bps / fsa_goodput, 1) + "x"});
  recorder.print_table(table);

  std::printf("10-tag aggregate raw bit rate: %.1f Mbps (paper: ~8 Mbps effective)\n",
              cbma_out.aggregate_raw_bps / 1e6);
  std::printf("CBMA vs single-tag round robin: %.1fx (paper: >10x): %s\n",
              cbma_out.aggregate_goodput_bps / single_out.aggregate_goodput_bps,
              recorder.check("CBMA >10x over single-tag round robin",
                             cbma_out.aggregate_goodput_bps >
                                 10.0 * single_out.aggregate_goodput_bps)
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("CBMA vs FSA: %.1fx\n",
              cbma_out.aggregate_goodput_bps / fsa_goodput);

  mac::CbmaRate harsh_rate = rate;
  harsh_rate.frame_error_rate = harsh_fer;
  const auto harsh_out = mac::cbma_throughput(harsh_rate);
  mac::SingleTagConfig harsh_single = single;
  harsh_single.frame_error_rate = harsh_single_fer;
  const auto harsh_single_out = mac::single_tag_round_robin(harsh_single, 10);
  std::printf("challenging indoor: %.2f Mbps goodput, still %.1fx over "
              "single-tag in the same environment (paper: >10x even there): %s\n",
              harsh_out.aggregate_goodput_bps / 1e6,
              harsh_out.aggregate_goodput_bps /
                  harsh_single_out.aggregate_goodput_bps,
              recorder.check("CBMA >10x over single-tag in challenging indoor",
                             harsh_out.aggregate_goodput_bps >
                                 10.0 * harsh_single_out.aggregate_goodput_bps)
                  ? "HOLDS"
                  : "VIOLATED");
  return recorder.finish();
}
