// Ablation — spreading-code length vs robustness/throughput trade-off.
// The paper fixes the code length implicitly (§VI); this sweep shows the
// trade the design sits on: longer codes buy processing gain (lower FER at
// range) and cost proportional bit rate at a fixed chip rate.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

rfsim::Deployment ring_deployment(std::size_t n_tags, double radius_y) {
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(n_tags);
    dep.add_tag({0.25 * std::cos(angle), radius_y + 0.25 * std::sin(angle)});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig base;
  base.max_tags = 4;
  // Fixed chip rate across the sweep: the air interface stays the same and
  // the code length divides it into bits.
  const double chip_rate_hz = 32e6;

  struct Point {
    pn::CodeFamily family;
    std::size_t min_length;
  };
  const Point points[] = {
      {pn::CodeFamily::kTwoNC, 16}, {pn::CodeFamily::kTwoNC, 32},
      {pn::CodeFamily::kTwoNC, 64}, {pn::CodeFamily::kTwoNC, 128},
      {pn::CodeFamily::kGold, 31},  {pn::CodeFamily::kGold, 63},
      {pn::CodeFamily::kGold, 127},
  };

  const std::size_t n_packets = bench::trials(300);

  std::vector<std::string> labels;
  for (const auto& p : points) {
    labels.push_back(std::string(pn::to_string(p.family)) + "-" +
                     std::to_string(p.min_length));
  }
  const auto spec = bench::spec(
      "ablation_codes",
      "Ablation — spreading-code length (fixed 32 Mcps chip rate)",
      "4 tags at ~1.25 m; FER and per-tag bit rate vs code length",
      {core::Axis::categorical("code", labels)}, n_packets);
  core::RunRecorder recorder(spec, base);
  recorder.print_header();

  std::vector<std::size_t> lengths(std::size(points));
  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const std::size_t i = point.flat();
    core::SystemConfig cfg = base;
    cfg.code_family = points[i].family;
    cfg.code_min_length = points[i].min_length;
    lengths[i] = cfg.code_length();
    cfg.bitrate_bps = chip_rate_hz / static_cast<double>(lengths[i]);
    recorder.record(point.flat(), "fer",
                    core::measure_fer(cfg, ring_deployment(4, 1.25), n_packets,
                                      point.seed())
                        .fer);
    recorder.record(point.flat(), "code_length",
                    static_cast<double>(lengths[i]));
    recorder.record(point.flat(), "bitrate_bps", cfg.bitrate_bps);
  });

  const auto fer = [&](std::size_t i) { return recorder.metric(i, "fer"); };
  Table table({"family", "code length", "per-tag bit rate", "FER (4 tags)"});
  for (std::size_t i = 0; i < std::size(points); ++i) {
    table.add_row({pn::to_string(points[i].family), std::to_string(lengths[i]),
                   Table::num(chip_rate_hz / lengths[i] / 1e3, 0) + " kbps",
                   Table::percent(fer(i), 2)});
  }
  recorder.print_table(table);

  std::printf("longer 2NC codes trade bit rate for robustness: %s\n",
              recorder.check("longer 2NC codes trade bit rate for robustness",
                             fer(3) <= fer(0) + 1e-9)
                  ? "HOLDS"
                  : "VIOLATED");
  recorder.note(
      "Gold stays roughly flat — its worst-case cross-correlation t(n)/L "
      "(9/31, 17/63, 17/127) does not shrink with length, so extra spreading "
      "gain is offset by multi-access interference.");
  std::printf("Gold stays roughly flat — its worst-case cross-correlation t(n)/L\n"
              "(9/31, 17/63, 17/127) does not shrink with length, so extra\n"
              "spreading gain is offset by multi-access interference.\n");
  return recorder.finish();
}
