// Table II — "Error Rate vs the power difference."
// Two-tag collision benchmark (§IV): five tag placements around the paper
// frame; pairs of tags transmit concurrently and the error rate (missing
// packets / transmitted packets) is measured against the received-power
// difference. The paper's finding: below ~10 % power difference the error
// rate is far lower than at 50 %+ difference.
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 2;

  // Five tag placements (the paper's tags 1..5 at random positions); the
  // exact positions are not published — these are chosen so the pairwise
  // received-power differences span "similar" (tags 1≈2, 3≈4) through
  // "very different" (anything paired with the marginal tag 5), the same
  // structure Table II samples.
  const rfsim::Point tag_pos[5] = {
      {0.00, 0.45}, {0.00, -0.46}, {0.20, 0.95}, {-0.22, -0.94}, {-0.10, 1.35}};

  const std::pair<int, int> pairs[] = {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {2, 3},
                                       {1, 3}, {1, 4}, {3, 4}, {0, 4}, {2, 4}};
  const std::size_t n_packets = bench::trials(300);

  std::vector<double> pair_axis(std::size(pairs));
  for (std::size_t i = 0; i < pair_axis.size(); ++i) {
    pair_axis[i] = static_cast<double>(i);
  }
  const auto spec = bench::spec(
      "table2_power_difference",
      "Table II — error rate vs power difference (2-tag collisions)",
      "§IV benchmark, Fig. 3 frame: ES(-0.5,0), RX(0.5,0)",
      {core::Axis::numeric("pair", pair_axis)}, n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const auto [a, b] = pairs[point.flat()];
    auto dep = rfsim::Deployment::paper_frame();
    dep.add_tag(tag_pos[a]);
    dep.add_tag(tag_pos[b]);
    const auto fer = core::measure_fer(cfg, dep, n_packets, point.seed());
    const double p1 = units::from_db(fer.snr_db[0]);
    const double p2 = units::from_db(fer.snr_db[1]);
    recorder.record(point.flat(), "snr1_db", fer.snr_db[0]);
    recorder.record(point.flat(), "snr2_db", fer.snr_db[1]);
    recorder.record(point.flat(), "power_diff",
                    std::abs(p1 - p2) / std::max(p1, p2));
    recorder.record(point.flat(), "error_rate", fer.fer);
  });

  Table table({"Case", "SNR1 (dB)", "SNR2 (dB)", "Difference", "Error Rate"});
  for (std::size_t i = 0; i < std::size(pairs); ++i) {
    table.add_row({std::to_string(pairs[i].first + 1) + "," +
                       std::to_string(pairs[i].second + 1),
                   Table::num(recorder.metric(i, "snr1_db"), 1),
                   Table::num(recorder.metric(i, "snr2_db"), 1),
                   Table::percent(recorder.metric(i, "power_diff"), 2),
                   Table::percent(recorder.metric(i, "error_rate"), 2)});
  }
  recorder.print_table(table);

  // The paper's observation, quantified.
  double low_diff_err = 0.0, high_diff_err = 0.0;
  int low_n = 0, high_n = 0;
  for (std::size_t i = 0; i < std::size(pairs); ++i) {
    const double diff = recorder.metric(i, "power_diff");
    const double error = recorder.metric(i, "error_rate");
    if (diff < 0.10) {
      low_diff_err += error;
      ++low_n;
    } else if (diff > 0.40) {
      high_diff_err += error;
      ++high_n;
    }
  }
  if (low_n && high_n) {
    std::printf("mean error, power difference < 10%%: %.2f%%\n",
                100.0 * low_diff_err / low_n);
    std::printf("mean error, power difference > 40%%: %.2f%%\n",
                100.0 * high_diff_err / high_n);
    std::printf("shape check (paper: ~0.2-0.9%% vs 16-38%%): low-diff pairs must be "
                "far more reliable — %s\n",
                recorder.check(
                    "low-diff pairs far more reliable than high-diff pairs",
                    low_diff_err / low_n < 0.5 * high_diff_err / high_n)
                    ? "HOLDS"
                    : "VIOLATED");
  }
  return recorder.finish();
}
