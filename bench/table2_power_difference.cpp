// Table II — "Error Rate vs the power difference."
// Two-tag collision benchmark (§IV): five tag placements around the paper
// frame; pairs of tags transmit concurrently and the error rate (missing
// packets / transmitted packets) is measured against the received-power
// difference. The paper's finding: below ~10 % power difference the error
// rate is far lower than at 50 %+ difference.
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 2;
  bench::print_header("Table II — error rate vs power difference (2-tag collisions)",
                      "§IV benchmark, Fig. 3 frame: ES(-0.5,0), RX(0.5,0)", cfg);

  // Five tag placements (the paper's tags 1..5 at random positions); the
  // exact positions are not published — these are chosen so the pairwise
  // received-power differences span "similar" (tags 1≈2, 3≈4) through
  // "very different" (anything paired with the marginal tag 5), the same
  // structure Table II samples.
  const rfsim::Point tag_pos[5] = {
      {0.00, 0.45}, {0.00, -0.46}, {0.20, 0.95}, {-0.22, -0.94}, {-0.10, 1.35}};

  struct Row {
    int a, b;
    double snr1, snr2, diff, error;
  };
  const std::pair<int, int> pairs[] = {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {2, 3},
                                       {1, 3}, {1, 4}, {3, 4}, {0, 4}, {2, 4}};
  std::vector<Row> rows(std::size(pairs));
  const std::size_t n_packets = bench::trials(300);

  bench::parallel_for(rows.size(), [&](std::size_t i) {
    const auto [a, b] = pairs[i];
    auto dep = rfsim::Deployment::paper_frame();
    dep.add_tag(tag_pos[a]);
    dep.add_tag(tag_pos[b]);
    const auto point = core::measure_fer(cfg, dep, n_packets, bench::point_seed(i));
    const double p1 = units::from_db(point.snr_db[0]);
    const double p2 = units::from_db(point.snr_db[1]);
    rows[i] = Row{a + 1, b + 1, point.snr_db[0], point.snr_db[1],
                  std::abs(p1 - p2) / std::max(p1, p2), point.fer};
  });

  Table table({"Case", "SNR1 (dB)", "SNR2 (dB)", "Difference", "Error Rate"});
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.a) + "," + std::to_string(r.b),
                   Table::num(r.snr1, 1), Table::num(r.snr2, 1),
                   Table::percent(r.diff, 2), Table::percent(r.error, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // The paper's observation, quantified.
  double low_diff_err = 0.0, high_diff_err = 0.0;
  int low_n = 0, high_n = 0;
  for (const auto& r : rows) {
    if (r.diff < 0.10) {
      low_diff_err += r.error;
      ++low_n;
    } else if (r.diff > 0.40) {
      high_diff_err += r.error;
      ++high_n;
    }
  }
  if (low_n && high_n) {
    std::printf("mean error, power difference < 10%%: %.2f%%\n",
                100.0 * low_diff_err / low_n);
    std::printf("mean error, power difference > 40%%: %.2f%%\n",
                100.0 * high_diff_err / high_n);
    std::printf("shape check (paper: ~0.2-0.9%% vs 16-38%%): low-diff pairs must be "
                "far more reliable — %s\n",
                low_diff_err / low_n < 0.5 * high_diff_err / high_n ? "HOLDS"
                                                                    : "VIOLATED");
  }
  return 0;
}
