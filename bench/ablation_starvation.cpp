// Ablation — starvation behaviour of the §V-C node-selection scheme.
//
// §VIII-D acknowledges the concern: a converged group keeps its healthy
// members, so idle tags may never be scheduled. The paper argues the
// problem "can be probably solved by selecting different groups". This
// bench quantifies both sides: the pure §V-C policy (converged group
// persists — service concentrates) and the rotation policy the paper
// sketches (re-draw the group every epoch and re-adapt — fair, at an
// adaptation cost).
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/system.h"
#include "mac/node_selection.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cbma;

namespace {

struct PolicyStats {
  std::size_t never_scheduled = 0;
  double jain = 0.0;
  double mean_fer = 0.0;
};

PolicyStats run_policy(bool rotate, std::size_t population, std::size_t rounds,
                       std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.max_tags = 5;
  Rng rng(seed);
  auto dep = rfsim::Deployment::paper_frame();
  dep.place_random_tags(population, rfsim::Room{3.0, 4.0}, rng, 0.15, 0.3);
  core::CbmaSystem cell(cfg, dep);

  std::vector<std::size_t> order(population);
  for (std::size_t i = 0; i < population; ++i) order[i] = i;
  rng.shuffle(order);
  cell.set_active_group({order.begin(), order.begin() + 5});

  const mac::NodeSelector selector({}, cell.link_budget());
  std::vector<std::size_t> service(population, 0);
  RunningStats fer;
  constexpr std::size_t kEpoch = 5;  // rotation period in rounds

  for (std::size_t round = 0; round < rounds; ++round) {
    if (rotate && round > 0 && round % kEpoch == 0) {
      // Epoch rotation: fresh random group from the whole population.
      rng.shuffle(order);
      cell.set_active_group({order.begin(), order.begin() + 5});
    }
    cell.run_power_control({}, 20, rng);
    const auto stats = cell.run_packets(30, rng);
    fer.add(stats.frame_error_rate());
    const auto& group = cell.active_group();
    for (std::size_t slot = 0; slot < group.size(); ++slot) {
      service[group[slot]] += stats.sent[slot];
    }
    auto next = selector.reselect(cell.population(), group, stats.ack_ratios(),
                                  round % kEpoch, rng);
    cell.set_active_group(std::move(next));
  }

  PolicyStats out;
  double sum = 0.0, sumsq = 0.0;
  for (std::size_t i = 0; i < population; ++i) {
    if (service[i] == 0) ++out.never_scheduled;
    const auto s = static_cast<double>(service[i]);
    sum += s;
    sumsq += s * s;
  }
  out.jain = (sum * sum) / (static_cast<double>(population) * sumsq);
  out.mean_fer = fer.mean();
  return out;
}

}  // namespace

int main() {
  core::SystemConfig header_cfg;
  header_cfg.max_tags = 5;

  const std::size_t population = 20;
  const std::size_t rounds = bench::trials(40);

  const auto spec = bench::spec(
      "ablation_starvation", "Ablation — node-selection starvation (§VIII-D)",
      "20-tag population, groups of 5; pure §V-C vs epoch rotation",
      {core::Axis::categorical("policy", {"pure", "epoch-rotation"})}, rounds);
  core::RunRecorder recorder(spec, header_cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    // Same seed for both arms: the comparison is paired on deployment and
    // RNG stream, only the rotation policy differs.
    const auto stats = run_policy(point.flat() == 1, population, rounds,
                                  bench::point_seed(0));
    recorder.record(point.flat(), "never_scheduled",
                    static_cast<double>(stats.never_scheduled));
    recorder.record(point.flat(), "jain_fairness", stats.jain);
    recorder.record(point.flat(), "mean_fer", stats.mean_fer);
  });

  PolicyStats pure{static_cast<std::size_t>(recorder.metric(0, "never_scheduled")),
                   recorder.metric(0, "jain_fairness"),
                   recorder.metric(0, "mean_fer")};
  PolicyStats rotated{
      static_cast<std::size_t>(recorder.metric(1, "never_scheduled")),
      recorder.metric(1, "jain_fairness"), recorder.metric(1, "mean_fer")};

  Table table({"policy", "tags never scheduled", "Jain fairness", "mean FER"});
  table.add_row({"pure §V-C (converged group persists)",
                 std::to_string(pure.never_scheduled), Table::num(pure.jain, 2),
                 Table::percent(pure.mean_fer, 1)});
  table.add_row({"epoch rotation (paper's suggestion)",
                 std::to_string(rotated.never_scheduled),
                 Table::num(rotated.jain, 2), Table::percent(rotated.mean_fer, 1)});
  recorder.print_table(table);

  std::printf("pure §V-C concentrates service (the starvation §VIII-D worries "
              "about): %s\n",
              recorder.check("pure policy concentrates service",
                             pure.never_scheduled > 0)
                  ? "OBSERVED"
                  : "not observed");
  std::printf("rotation spreads service across the population: %s "
              "(Jain %.2f -> %.2f, never-scheduled %zu -> %zu)\n",
              recorder.check("rotation spreads service across the population",
                             rotated.jain > pure.jain &&
                                 rotated.never_scheduled < pure.never_scheduled)
                  ? "HOLDS"
                  : "VIOLATED",
              pure.jain, rotated.jain, pure.never_scheduled,
              rotated.never_scheduled);
  std::printf("fairness costs some error rate (re-adaptation overhead): "
              "%.1f%% vs %.1f%%\n",
              100.0 * rotated.mean_fer, 100.0 * pure.mean_fer);
  return recorder.finish();
}
