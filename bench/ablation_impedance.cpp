// Ablation — impedance-bank granularity for Algorithm 1.
// The paper's tag offers exactly four power levels (four terminations on
// one SPDT). How much does that choice matter? This sweep gives the tags
// banks of 2..8 levels over the same ~11 dB range and re-runs the
// power-control macro experiment: more levels = finer equalization but a
// longer cyclic search; fewer levels = coarse steps that may overshoot.
#include <cstdio>

#include "common.h"
#include "core/system.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cbma;

int main() {
  core::SystemConfig base;
  base.max_tags = 5;
  bench::print_header("Ablation — impedance level granularity (Z_max)",
                      "5-tag random groups; Algorithm 1 with 2..8 level banks",
                      base);

  const std::size_t level_counts[] = {2, 3, 4, 6, 8};
  const std::size_t groups = bench::trials(40);
  const std::size_t packets = 60;

  std::vector<double> fer(std::size(level_counts) * groups);
  std::vector<double> rounds_used(std::size(level_counts) * groups);

  bench::parallel_for(std::size(level_counts) * groups, [&](std::size_t idx) {
    const std::size_t li = idx / groups;
    const std::size_t g = idx % groups;
    Rng rng(bench::point_seed(g + 1));  // same deployments across banks

    auto dep = rfsim::Deployment::paper_frame();
    dep.place_random_tags(5, rfsim::Room{2.0, 2.0}, rng, 0.10, 0.25);

    core::SystemConfig cfg = base;
    cfg.impedance_levels = level_counts[li];
    core::CbmaSystem sys(cfg, dep);
    // Uncontrolled start: arbitrary levels.
    for (std::size_t i = 0; i < 5; ++i) {
      sys.set_impedance_level(i, static_cast<std::size_t>(rng.uniform_int(
                                     0, static_cast<int>(sys.impedance_level_count()) - 1)));
    }
    Rng r = rng.fork();
    const auto outcome = sys.run_power_control({}, 40, r);
    fer[idx] = sys.run_packets(packets, r).frame_error_rate();
    rounds_used[idx] = static_cast<double>(outcome.rounds);
  });

  Table table({"levels (Z_max)", "step size", "mean FER after PC",
               "mean PC rounds"});
  for (std::size_t li = 0; li < std::size(level_counts); ++li) {
    RunningStats f, r;
    for (std::size_t g = 0; g < groups; ++g) {
      f.add(fer[li * groups + g]);
      r.add(rounds_used[li * groups + g]);
    }
    const double step = level_counts[li] == 1
                            ? 0.0
                            : 11.0 / static_cast<double>(level_counts[li] - 1);
    table.add_row({std::to_string(level_counts[li]),
                   Table::num(step, 1) + " dB", Table::percent(f.mean(), 2),
                   Table::num(r.mean(), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("finding: when failures are floor-driven (a tag stuck at a weak\n"
              "level), a coarse bank jumps straight to full power and recovers\n"
              "fastest; finer banks spend Algorithm 1 cycles at intermediate\n"
              "sub-floor levels. The paper's 4 levels are the hardware-shaped\n"
              "middle ground (four terminations on one SPDT switch).\n");
  return 0;
}
