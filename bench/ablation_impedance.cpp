// Ablation — impedance-bank granularity for Algorithm 1.
// The paper's tag offers exactly four power levels (four terminations on
// one SPDT). How much does that choice matter? This sweep gives the tags
// banks of 2..8 levels over the same ~11 dB range and re-runs the
// power-control macro experiment: more levels = finer equalization but a
// longer cyclic search; fewer levels = coarse steps that may overshoot.
#include <cstdio>

#include "common.h"
#include "core/system.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cbma;

int main() {
  core::SystemConfig base;
  base.max_tags = 5;

  const std::vector<double> level_counts{2, 3, 4, 6, 8};
  const std::size_t groups = bench::trials(40);
  const std::size_t packets = 60;

  std::vector<double> group_axis(groups);
  for (std::size_t g = 0; g < groups; ++g) group_axis[g] = static_cast<double>(g);

  const auto spec = bench::spec(
      "ablation_impedance", "Ablation — impedance level granularity (Z_max)",
      "5-tag random groups; Algorithm 1 with 2..8 level banks",
      {core::Axis::numeric("levels", level_counts),
       core::Axis::numeric("group", group_axis)},
      groups);
  core::RunRecorder recorder(spec, base);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const std::size_t g = point.index(1);
    Rng rng(bench::point_seed(g + 1));  // same deployments across banks

    auto dep = rfsim::Deployment::paper_frame();
    dep.place_random_tags(5, rfsim::Room{2.0, 2.0}, rng, 0.10, 0.25);

    core::SystemConfig cfg = base;
    cfg.impedance_levels = static_cast<std::size_t>(point.value(0));
    core::CbmaSystem sys(cfg, dep);
    // Uncontrolled start: arbitrary levels.
    for (std::size_t i = 0; i < 5; ++i) {
      sys.set_impedance_level(i, static_cast<std::size_t>(rng.uniform_int(
                                     0, static_cast<int>(sys.impedance_level_count()) - 1)));
    }
    Rng r = rng.fork();
    const auto outcome = sys.run_power_control({}, 40, r);
    recorder.record(point.flat(), "fer",
                    sys.run_packets(packets, r).frame_error_rate());
    recorder.record(point.flat(), "pc_rounds",
                    static_cast<double>(outcome.rounds));
  });

  Table table({"levels (Z_max)", "step size", "mean FER after PC",
               "mean PC rounds"});
  for (std::size_t li = 0; li < level_counts.size(); ++li) {
    RunningStats f, r;
    for (std::size_t g = 0; g < groups; ++g) {
      f.add(recorder.metric(li * groups + g, "fer"));
      r.add(recorder.metric(li * groups + g, "pc_rounds"));
    }
    const auto levels = static_cast<std::size_t>(level_counts[li]);
    const double step =
        levels == 1 ? 0.0 : 11.0 / static_cast<double>(levels - 1);
    table.add_row({std::to_string(levels), Table::num(step, 1) + " dB",
                   Table::percent(f.mean(), 2), Table::num(r.mean(), 1)});
  }
  recorder.print_table(table);

  recorder.note(
      "when failures are floor-driven (a tag stuck at a weak level), a "
      "coarse bank jumps straight to full power and recovers fastest; finer "
      "banks spend Algorithm 1 cycles at intermediate sub-floor levels. The "
      "paper's 4 levels are the hardware-shaped middle ground.");
  std::printf("finding: when failures are floor-driven (a tag stuck at a weak\n"
              "level), a coarse bank jumps straight to full power and recovers\n"
              "fastest; finer banks spend Algorithm 1 cycles at intermediate\n"
              "sub-floor levels. The paper's 4 levels are the hardware-shaped\n"
              "middle ground (four terminations on one SPDT switch).\n");
  return recorder.finish();
}
