// Fig. 9(b) — error rate comparison of Gold codes vs (modified) 2NC codes,
// 2..5 concurrent tags. 2NC's zero aligned cross-correlation yields lower
// multi-access interference than Gold's three-valued cross-correlation; the
// paper finds the gap grows with the number of tags (Gold hits ~11 % at 5
// tags) and adopts 2NC from then on.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

rfsim::Deployment make_deployment(std::size_t n_tags) {
  // Equal-strength ring so the code family — not near-far — dominates; at
  // a moderate SNR so multi-access interference (Gold's aligned
  // cross-correlation) is visible above the noise floor.
  rfsim::Deployment dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(n_tags);
    dep.add_tag({0.2 * std::cos(angle), 1.05 + 0.2 * std::sin(angle)});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 8;
  const std::vector<double> tag_counts{2, 3, 4, 5, 8};
  const std::size_t n_packets = bench::trials(400);

  const auto spec = bench::spec(
      "fig9b_pn_codes", "Fig. 9(b) — Gold vs 2NC spreading codes",
      "§VII-B3, 2..5 tags, equal-strength ring placement",
      {core::Axis::categorical("family", {"gold", "2nc"}),
       core::Axis::numeric("tags", tag_counts)},
      n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const auto n_tags = static_cast<std::size_t>(point.value(1));
    core::SystemConfig point_cfg = cfg;
    point_cfg.code_family =
        point.index(0) == 0 ? pn::CodeFamily::kGold : pn::CodeFamily::kTwoNC;
    point_cfg.code_min_length = 31;  // Gold-31 vs 2NC-32: comparable spreading
    point_cfg.max_tags = n_tags;
    const auto dep = make_deployment(n_tags);
    const auto result =
        core::measure_fer(point_cfg, dep, n_packets, point.seed());
    recorder.record(point.flat(), "fer", result.fer);
    // Detector safety margin (winning peak minus runner-up): 2NC's zero
    // aligned cross-correlation should keep it wider than Gold's as the
    // group crowds.
    const auto& margin = result.stats.correlation_margin;
    recorder.record(point.flat(), "margin_mean",
                    margin.count() ? margin.mean() : 0.0);
  });

  const auto fer = [&](std::size_t f, std::size_t t) {
    return recorder.metric(f * tag_counts.size() + t, "fer");
  };
  Table table({"tags", "Gold error", "2NC error"});
  for (std::size_t t = 0; t < tag_counts.size(); ++t) {
    table.add_row({std::to_string(static_cast<std::size_t>(tag_counts[t])),
                   Table::percent(fer(0, t), 2), Table::percent(fer(1, t), 2)});
  }
  recorder.print_table(table);

  const auto margin = [&](std::size_t f, std::size_t t) {
    return recorder.metric(f * tag_counts.size() + t, "margin_mean");
  };
  Table margin_table({"tags", "Gold margin", "2NC margin"});
  for (std::size_t t = 0; t < tag_counts.size(); ++t) {
    char gold[32], twonc[32];
    std::snprintf(gold, sizeof gold, "%.4f", margin(0, t));
    std::snprintf(twonc, sizeof twonc, "%.4f", margin(1, t));
    margin_table.add_row(
        {std::to_string(static_cast<std::size_t>(tag_counts[t])), gold, twonc});
  }
  recorder.print_table(margin_table);

  bool twonc_never_worse = true;
  for (std::size_t t = 0; t < tag_counts.size(); ++t) {
    if (fer(1, t) > fer(0, t) + 0.01) twonc_never_worse = false;
  }
  std::printf("2NC at or below Gold at every tag count: %s\n",
              recorder.check("2NC at or below Gold at every tag count",
                             twonc_never_worse)
                  ? "HOLDS"
                  : "VIOLATED");
  const std::size_t last = tag_counts.size() - 1;
  std::printf("crowding raises the Gold error (3 -> 8 tags): %s "
              "(%.2f%% -> %.2f%%)\n",
              recorder.check("crowding raises the Gold error",
                             fer(0, last) >= fer(0, 1) - 1e-9)
                  ? "HOLDS"
                  : "VIOLATED",
              100.0 * fer(0, 1), 100.0 * fer(0, last));
  recorder.note(
      "the paper's error growth with tag count (up to 11% for Gold at 5 "
      "tags) is muted here — the coherent per-user receiver suppresses most "
      "multi-access interference; the family ordering (2NC better) is the "
      "preserved shape. See EXPERIMENTS.md.");
  std::printf("\nnote: the paper's error growth with tag count (up to 11%% for\n"
              "Gold at 5 tags) is muted here — the coherent per-user receiver\n"
              "suppresses most multi-access interference; the family ordering\n"
              "(2NC better) is the preserved shape. See EXPERIMENTS.md.\n");
  return recorder.finish();
}
