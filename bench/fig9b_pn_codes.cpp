// Fig. 9(b) — error rate comparison of Gold codes vs (modified) 2NC codes,
// 2..5 concurrent tags. 2NC's zero aligned cross-correlation yields lower
// multi-access interference than Gold's three-valued cross-correlation; the
// paper finds the gap grows with the number of tags (Gold hits ~11 % at 5
// tags) and adopts 2NC from then on.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

rfsim::Deployment make_deployment(std::size_t n_tags) {
  // Equal-strength ring so the code family — not near-far — dominates; at
  // a moderate SNR so multi-access interference (Gold's aligned
  // cross-correlation) is visible above the noise floor.
  rfsim::Deployment dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(n_tags);
    dep.add_tag({0.2 * std::cos(angle), 1.05 + 0.2 * std::sin(angle)});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 8;
  bench::print_header("Fig. 9(b) — Gold vs 2NC spreading codes",
                      "§VII-B3, 2..5 tags, equal-strength ring placement", cfg);

  const std::size_t tag_counts[] = {2, 3, 4, 5, 8};
  std::vector<std::vector<double>> fer(2, std::vector<double>(std::size(tag_counts)));
  const std::size_t n_packets = bench::trials(400);

  bench::parallel_for(2 * std::size(tag_counts), [&](std::size_t idx) {
    const std::size_t f = idx / std::size(tag_counts);
    const std::size_t t = idx % std::size(tag_counts);
    core::SystemConfig point_cfg = cfg;
    point_cfg.code_family = (f == 0) ? pn::CodeFamily::kGold : pn::CodeFamily::kTwoNC;
    point_cfg.code_min_length = 31;  // Gold-31 vs 2NC-32: comparable spreading
    point_cfg.max_tags = tag_counts[t];
    const auto dep = make_deployment(tag_counts[t]);
    fer[f][t] = core::measure_fer(point_cfg, dep, n_packets, bench::point_seed(idx)).fer;
  });

  Table table({"tags", "Gold error", "2NC error"});
  for (std::size_t t = 0; t < std::size(tag_counts); ++t) {
    table.add_row({std::to_string(tag_counts[t]), Table::percent(fer[0][t], 2),
                   Table::percent(fer[1][t], 2)});
  }
  std::printf("%s\n", table.render().c_str());

  bool twonc_never_worse = true;
  for (std::size_t t = 0; t < std::size(tag_counts); ++t) {
    if (fer[1][t] > fer[0][t] + 0.01) twonc_never_worse = false;
  }
  std::printf("2NC at or below Gold at every tag count: %s\n",
              twonc_never_worse ? "HOLDS" : "VIOLATED");
  std::printf("crowding raises the Gold error (3 -> 8 tags): %s "
              "(%.2f%% -> %.2f%%)\n",
              fer[0].back() >= fer[0][1] - 1e-9 ? "HOLDS" : "VIOLATED",
              100.0 * fer[0][1], 100.0 * fer[0].back());
  std::printf("\nnote: the paper's error growth with tag count (up to 11%% for\n"
              "Gold at 5 tags) is muted here — the coherent per-user receiver\n"
              "suppresses most multi-access interference; the family ordering\n"
              "(2NC better) is the preserved shape. See EXPERIMENTS.md.\n");
  return 0;
}
