// Fig. 8(a) — frame-detection error rate vs tag-to-RX distance.
// ES-to-tag distance fixed at 50 cm; tag-to-RX swept 10..400 cm in 10 cm
// steps; 2, 3 and 4 concurrent tags; FER per point over collided packets.
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace cbma;

namespace {

// Tags clustered 50 cm from the ES (small perpendicular spacing so every
// tag keeps d1 ≈ 0.5 m), receiver at distance d beyond the cluster.
rfsim::Deployment make_deployment(std::size_t n_tags, double d_m) {
  const rfsim::Point es{0.0, 0.0};
  const rfsim::Point rx{0.5 + d_m, 0.0};
  rfsim::Deployment dep(es, rx);
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double dy = 0.06 * (static_cast<double>(k) -
                              static_cast<double>(n_tags - 1) / 2.0);
    dep.add_tag({0.5, dy});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 4;
  // The paper's office is a rich-multipath environment; echoes put
  // chip-lag-offset copies of every tag on the air, so the multi-access
  // interference grows with the tag count exactly as Fig. 8(a) shows.
  cfg.multipath.enabled = true;

  std::vector<double> distances;
  for (int cm = 10; cm <= 400; cm += 10) distances.push_back(cm / 100.0);
  const std::size_t n_packets = bench::trials();

  const auto spec = bench::spec(
      "fig8a_distance", "Fig. 8(a) — FER vs tag-to-RX distance",
      "§VII-B1, d1 = 50 cm fixed, d2 = 10..400 cm, 2/3/4 tags",
      {core::Axis::numeric("tags", {2, 3, 4}),
       core::Axis::numeric("d2", distances, "m")},
      n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const auto n_tags = static_cast<std::size_t>(point.value(0));
    const auto dep = make_deployment(n_tags, point.value(1));
    core::SystemConfig point_cfg = cfg;
    point_cfg.max_tags = n_tags;
    recorder.record(point.flat(), "fer",
                    core::measure_fer(point_cfg, dep, n_packets, point.seed()).fer);
  });

  const auto fer = [&](std::size_t t, std::size_t d) {
    return recorder.metric(t * distances.size() + d, "fer");
  };
  Table table({"d2 (cm)", "FER 2 tags", "FER 3 tags", "FER 4 tags"});
  for (std::size_t d = 0; d < distances.size(); ++d) {
    table.add_row({std::to_string(static_cast<int>(distances[d] * 100)),
                   Table::num(fer(0, d), 3), Table::num(fer(1, d), 3),
                   Table::num(fer(2, d), 3)});
  }
  recorder.print_table(table);

  // Paper shape checks: (i) below 2 m the error is roughly flat and lowest
  // for 2 tags; (ii) beyond 2 m the error grows with distance.
  auto mean_below = [&](std::size_t t, double lim) {
    double s = 0;
    int n = 0;
    for (std::size_t d = 0; d < distances.size(); ++d) {
      if (distances[d] <= lim) {
        s += fer(t, d);
        ++n;
      }
    }
    return s / n;
  };
  const double near2 = mean_below(0, 2.0);
  const double near4 = mean_below(2, 2.0);
  std::printf("mean FER below 2 m: 2 tags %.3f, 4 tags %.3f (2-tag lowest: %s)\n",
              near2, near4,
              recorder.check("2-tag FER lowest below 2 m", near2 <= near4 + 1e-9)
                  ? "HOLDS"
                  : "VIOLATED");
  const double far2 = fer(0, distances.size() - 1);
  std::printf("FER grows with distance beyond 2 m: %s (2-tag FER at 4 m = %.3f)\n",
              recorder.check("FER grows with distance beyond 2 m", far2 >= near2)
                  ? "HOLDS"
                  : "VIOLATED",
              far2);
  return recorder.finish();
}
