// Table I — "Summary of existing backscatter systems", extended with the
// row CBMA claims for itself and with the numbers *this* implementation
// measures. The literature rows are constants from the paper; the CBMA row
// is produced by the simulation: aggregate rate from ten concurrent 1 Mbps
// tags at the measured FER, and the largest tag-to-RX distance where a
// single tag still achieves FER < 50 %.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "mac/throughput.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 10;

  // A single irregular measurement, not a grid: the recorder runs with an
  // empty axis list (one point) and the metrics live on that point.
  const auto spec = bench::spec(
      "table1_summary", "Table I — backscatter system summary (+ measured CBMA row)",
      "§I Table I; CBMA row measured by this implementation", {},
      bench::trials(300));
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  // Measured aggregate goodput: equal-strength 10-tag ring.
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < 10; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) / 10.0;
    dep.add_tag({0.30 * std::cos(angle), 0.75 + 0.30 * std::sin(angle)});
  }
  core::CbmaSystem sys(cfg, dep);
  Rng rng(bench::base_seed());
  sys.run_power_control({}, 40, rng);
  const double fer = sys.run_packets(bench::trials(300), rng).frame_error_rate();

  mac::CbmaRate rate;
  rate.per_tag_bitrate_bps = cfg.bitrate_bps;
  rate.n_tags = 10;
  rate.frame_bits = phy::frame_bit_count(cfg.payload_bytes);
  rate.payload_bits = cfg.payload_bytes * 8;
  rate.frame_error_rate = fer;
  const auto rates = mac::cbma_throughput(rate);

  // Measured range: largest single-tag distance with FER < 50 %.
  core::SystemConfig range_cfg = cfg;
  range_cfg.max_tags = 1;
  double max_range_m = 0.0;
  for (double d = 0.5; d <= 12.0; d += 0.5) {
    rfsim::Deployment rd(rfsim::Point{0.0, 0.0}, rfsim::Point{0.5 + d, 0.0});
    rd.add_tag({0.5, 0.0});
    const auto point = core::measure_fer(range_cfg, rd, 60,
                                         bench::point_seed(static_cast<std::size_t>(d * 2)));
    if (point.fer < 0.5) max_range_m = d;
  }

  recorder.record(0, "fer_10_tags", fer);
  recorder.record(0, "aggregate_raw_bps", rates.aggregate_raw_bps);
  recorder.record(0, "aggregate_goodput_bps", rates.aggregate_goodput_bps);
  recorder.record(0, "max_range_m", max_range_m);

  Table table({"Technology", "Data Rates (bps)", "Number of Tags", "Distance (m)"});
  table.add_row({"Ambient Backscatter", "1kbps", "2", "<=1m"});
  table.add_row({"Wi-Fi Backscatter", "1kbps", "1", "0.65m"});
  table.add_row({"BackFi", "5Mbps", "1", "1m"});
  table.add_row({"FM Backscatter", "3.2kbps", "1", "18m"});
  table.add_row({"LoRa Backscatter", "8.7bps", "1-2", "475m"});
  table.add_row({"PLoRa", "6.25kbps", "1", "1.1km"});
  table.add_row({"Netscatter", "500kbps", "256", "2m"});
  table.add_row({"CBMA (paper claim)", "8Mbps", "10", "5-10m"});
  table.add_row({"CBMA (this implementation)",
                 Table::num(rates.aggregate_raw_bps / 1e6, 1) + "Mbps raw / " +
                     Table::num(rates.aggregate_goodput_bps / 1e6, 1) + "Mbps goodput",
                 "10", Table::num(max_range_m, 1) + "m"});
  recorder.print_table(table);

  std::printf("measured 10-tag FER: %.3f; single-tag range at FER<50%%: %.1f m\n",
              fer, max_range_m);
  return recorder.finish();
}
