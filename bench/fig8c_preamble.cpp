// Fig. 8(c) — error rate vs preamble length (4/8/16/32/64 bits),
// 2/3/4 concurrent tags.
//
// Paper finding: the error rate falls as the preamble grows (<1 % at 64
// bits, 4 tags) because their energy-based frame detector was the binding
// stage. This implementation's receiver detects users by correlating the
// *entire* preamble coherently, so detection saturates long before the
// decode floor and the measured error is expected to be largely flat in
// preamble length — an architectural deviation that is reported, not
// hidden (see EXPERIMENTS.md). The run still verifies the paper's
// end-state: with a 64-bit preamble the error is no worse than with a
// short one, and the 4-tag/64-bit point sits at the few-percent level.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace cbma;

namespace {

rfsim::Deployment make_deployment(std::size_t n_tags) {
  // A harsher link than Fig. 8(a)'s close-in cluster (d2 ≈ 1.8 m) plus a
  // reduced drive level, so errors are visible at all preamble lengths.
  rfsim::Deployment dep(rfsim::Point{0.0, 0.0}, rfsim::Point{2.3, 0.0});
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double dy = 0.06 * (static_cast<double>(k) -
                              static_cast<double>(n_tags - 1) / 2.0);
    dep.add_tag({0.5, dy});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.tx_power_dbm = 13.0;
  const std::vector<double> preambles{4, 8, 16, 32, 64};
  const std::size_t n_packets = bench::trials();

  const auto spec = bench::spec(
      "fig8c_preamble", "Fig. 8(c) — FER vs preamble length",
      "§VII-B1, preamble 4..64 bits, 2/3/4 tags",
      {core::Axis::numeric("tags", {2, 3, 4}),
       core::Axis::numeric("preamble", preambles, "bits")},
      n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const auto n_tags = static_cast<std::size_t>(point.value(0));
    core::SystemConfig point_cfg = cfg;
    point_cfg.max_tags = n_tags;
    point_cfg.preamble_bits = static_cast<std::size_t>(point.value(1));
    const auto dep = make_deployment(n_tags);
    recorder.record(point.flat(), "fer",
                    core::measure_fer(point_cfg, dep, n_packets, point.seed()).fer);
  });

  const auto fer = [&](std::size_t t, std::size_t p) {
    return recorder.metric(t * preambles.size() + p, "fer");
  };
  Table table({"preamble (bits)", "FER 2 tags", "FER 3 tags", "FER 4 tags"});
  for (std::size_t p = 0; p < preambles.size(); ++p) {
    table.add_row({std::to_string(static_cast<std::size_t>(preambles[p])),
                   Table::num(fer(0, p), 3), Table::num(fer(1, p), 3),
                   Table::num(fer(2, p), 3)});
  }
  recorder.print_table(table);

  const std::size_t last = preambles.size() - 1;
  bool no_worse = true;
  for (std::size_t t = 0; t < 3; ++t) {
    if (fer(t, last) > fer(t, 0) + 0.05) no_worse = false;
  }
  std::printf("64-bit preamble no worse than 4-bit: %s\n",
              recorder.check("64-bit preamble no worse than 4-bit", no_worse)
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("4-tag error with 64-bit preamble: %.2f%% (paper: below 1%%)\n",
              100.0 * fer(2, last));
  recorder.note(
      "this receiver's whole-preamble coherent detection saturates the "
      "preamble-length benefit the paper's energy detector showed; the "
      "dependence is expected to be flat here (EXPERIMENTS.md)");
  std::printf("\nnote: this receiver's whole-preamble coherent detection saturates\n"
              "the preamble-length benefit the paper's energy detector showed;\n"
              "the dependence is expected to be flat here (EXPERIMENTS.md).\n");
  return recorder.finish();
}
