// §VII-B2 — user-detection accuracy: a group of 10 tags, a random subset
// backscatters each trial, and the receiver uses all ten PN codes to decide
// which tags are transmitting. The paper reports 99.9 % accuracy over 1000
// trials. A trial counts as correct when the receiver's validated set
// equals the transmitting set exactly.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/system.h"
#include "util/stats.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 10;
  // "To minimize the influence of the frame detection, we adopt the best
  // parameters obtained in the above section" — the 64-bit preamble.
  cfg.preamble_bits = 64;

  // Equal-strength ring so the group mirrors the paper's power-controlled
  // best-parameter setup.
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < 10; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) / 10.0;
    dep.add_tag({0.30 * std::cos(angle), 0.75 + 0.30 * std::sin(angle)});
  }

  const std::size_t n_trials = bench::trials(1000);
  constexpr std::size_t kChunks = 16;  // parallel shards
  std::vector<double> chunk_axis(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c) chunk_axis[c] = static_cast<double>(c);

  const auto spec = bench::spec(
      "user_detection", "§VII-B2 — user detection accuracy (10-tag group)",
      "random active subsets, all 10 codes probed each trial",
      {core::Axis::numeric("chunk", chunk_axis)}, n_trials);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    core::CbmaSystem sys(cfg, dep);
    Rng rng(point.seed());
    core::TransmitScratch scratch;  // reused across the shard's trials
    const std::size_t n = (n_trials + kChunks - 1) / kChunks;
    std::size_t chunk_correct = 0, chunk_misses = 0, chunk_false_alarms = 0;
    RunningStats chunk_margin;  // correlation margin of detected tags
    for (std::size_t i = 0; i < n; ++i) {
      // Random non-empty transmitting subset of the 10-tag group.
      std::vector<std::size_t> active;
      while (active.empty()) {
        active.clear();
        for (std::size_t k = 0; k < 10; ++k) {
          if (rng.bernoulli(0.5)) active.push_back(k);
        }
      }
      core::TransmitOptions options;
      options.slots = active;
      const auto report = sys.transmit(options, rng, scratch);

      for (const auto& result : report.results) {
        if (result.detected) chunk_margin.add(result.correlation_margin);
      }

      bool exact = true;
      for (std::size_t k = 0; k < 10; ++k) {
        const bool sent =
            std::find(active.begin(), active.end(), k) != active.end();
        const bool decoded = report.ack.contains(k);
        if (sent && !decoded) {
          ++chunk_misses;
          exact = false;
        }
        if (!sent && decoded) {
          ++chunk_false_alarms;
          exact = false;
        }
      }
      chunk_correct += exact;
    }
    recorder.record(point.flat(), "correct", static_cast<double>(chunk_correct));
    recorder.record(point.flat(), "trials", static_cast<double>(n));
    recorder.record(point.flat(), "misses", static_cast<double>(chunk_misses));
    recorder.record(point.flat(), "false_alarms",
                    static_cast<double>(chunk_false_alarms));
    // Correlation-margin distribution of the detected tags: how far the
    // winning code's peak sat above the runner-up — the detector's safety
    // margin against picking the wrong code.
    recorder.record(point.flat(), "margin_count",
                    static_cast<double>(chunk_margin.count()));
    recorder.record(point.flat(), "margin_mean",
                    chunk_margin.count() ? chunk_margin.mean() : 0.0);
    recorder.record(point.flat(), "margin_min",
                    chunk_margin.count() ? chunk_margin.min() : 0.0);
  });

  std::size_t ok = 0, n = 0, miss = 0, fa = 0, margins = 0;
  double margin_sum = 0.0, margin_min = 0.0;
  for (std::size_t c = 0; c < kChunks; ++c) {
    ok += static_cast<std::size_t>(recorder.metric(c, "correct"));
    n += static_cast<std::size_t>(recorder.metric(c, "trials"));
    miss += static_cast<std::size_t>(recorder.metric(c, "misses"));
    fa += static_cast<std::size_t>(recorder.metric(c, "false_alarms"));
    const auto k = static_cast<std::size_t>(recorder.metric(c, "margin_count"));
    if (k > 0) {
      margin_sum += recorder.metric(c, "margin_mean") * static_cast<double>(k);
      const double lo = recorder.metric(c, "margin_min");
      margin_min = margins == 0 ? lo : std::min(margin_min, lo);
      margins += k;
    }
  }
  const auto iv = wilson_interval(ok, n);
  std::printf("trials                 : %zu\n", n);
  std::printf("exact-set detections   : %zu (%.2f%%, 95%% CI [%.2f%%, %.2f%%])\n", ok,
              100.0 * iv.estimate, 100.0 * iv.lo, 100.0 * iv.hi);
  std::printf("per-tag misses         : %zu\n", miss);
  std::printf("per-tag false alarms   : %zu\n", fa);
  std::printf("correlation margin     : mean %.4f, min %.4f over %zu detections\n",
              margins ? margin_sum / static_cast<double>(margins) : 0.0,
              margin_min, margins);
  std::printf("\npaper: \"we can 99.9%% correctly detect which tags are sending "
              "data\" — measured %.2f%%\n", 100.0 * iv.estimate);
  recorder.check("exact-set detection accuracy above 95%", iv.estimate > 0.95);
  recorder.note("aggregate: " + std::to_string(ok) + "/" + std::to_string(n) +
                " exact-set detections");
  return recorder.finish();
}
