// §VII-B2 — user-detection accuracy: a group of 10 tags, a random subset
// backscatters each trial, and the receiver uses all ten PN codes to decide
// which tags are transmitting. The paper reports 99.9 % accuracy over 1000
// trials. A trial counts as correct when the receiver's validated set
// equals the transmitting set exactly.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/system.h"
#include "util/stats.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 10;
  // "To minimize the influence of the frame detection, we adopt the best
  // parameters obtained in the above section" — the 64-bit preamble.
  cfg.preamble_bits = 64;
  bench::print_header("§VII-B2 — user detection accuracy (10-tag group)",
                      "random active subsets, all 10 codes probed each trial", cfg);

  // Equal-strength ring so the group mirrors the paper's power-controlled
  // best-parameter setup.
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < 10; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) / 10.0;
    dep.add_tag({0.30 * std::cos(angle), 0.75 + 0.30 * std::sin(angle)});
  }

  const std::size_t n_trials = bench::trials(1000);
  constexpr int kChunks = 16;  // parallel shards
  std::vector<std::size_t> correct(kChunks, 0), total(kChunks, 0);
  std::vector<std::size_t> misses(kChunks, 0), false_alarms(kChunks, 0);

  bench::parallel_for(kChunks, [&](std::size_t chunk) {
    core::CbmaSystem sys(cfg, dep);
    Rng rng(bench::point_seed(chunk));
    core::TransmitScratch scratch;  // reused across the shard's trials
    const std::size_t n = (n_trials + kChunks - 1) / kChunks;
    for (std::size_t i = 0; i < n; ++i) {
      // Random non-empty transmitting subset of the 10-tag group.
      std::vector<std::size_t> active;
      while (active.empty()) {
        active.clear();
        for (std::size_t k = 0; k < 10; ++k) {
          if (rng.bernoulli(0.5)) active.push_back(k);
        }
      }
      core::TransmitOptions options;
      options.slots = active;
      const auto report = sys.transmit(options, rng, scratch);

      bool exact = true;
      for (std::size_t k = 0; k < 10; ++k) {
        const bool sent =
            std::find(active.begin(), active.end(), k) != active.end();
        const bool decoded = report.ack.contains(k);
        if (sent && !decoded) {
          ++misses[chunk];
          exact = false;
        }
        if (!sent && decoded) {
          ++false_alarms[chunk];
          exact = false;
        }
      }
      correct[chunk] += exact;
      ++total[chunk];
    }
  });

  std::size_t ok = 0, n = 0, miss = 0, fa = 0;
  for (int c = 0; c < kChunks; ++c) {
    ok += correct[c];
    n += total[c];
    miss += misses[c];
    fa += false_alarms[c];
  }
  const auto iv = wilson_interval(ok, n);
  std::printf("trials                 : %zu\n", n);
  std::printf("exact-set detections   : %zu (%.2f%%, 95%% CI [%.2f%%, %.2f%%])\n", ok,
              100.0 * iv.estimate, 100.0 * iv.lo, 100.0 * iv.hi);
  std::printf("per-tag misses         : %zu\n", miss);
  std::printf("per-tag false alarms   : %zu\n", fa);
  std::printf("\npaper: \"we can 99.9%% correctly detect which tags are sending "
              "data\" — measured %.2f%%\n", 100.0 * iv.estimate);
  return 0;
}
