// Fig. 5 — "Theoretical results of backscatter signal strength."
// Evaluates the paper's Eq. 1 over a grid of candidate tag positions with
// the benchmark frame (ES at (−0.5, 0), RX at (+0.5, 0)) and renders the
// field as an ASCII heat map plus representative cuts.
#include <cstdio>
#include <string>

#include "common.h"
#include "rfsim/friis.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;

  // Deterministic closed-form evaluation (no Monte-Carlo trials are run;
  // the standard trials plumbing only feeds the header/JSON) — the
  // recorder still captures the field extrema and cut tables for the JSON.
  const auto spec = bench::spec(
      "fig5_signal_strength", "Fig. 5 — theoretical backscatter signal strength",
      "Eq. (1) field over tag positions, ES(-0.5,0), RX(0.5,0)", {},
      bench::trials());
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  rfsim::LinkBudget budget;
  budget.tx_power_w = units::dbm_to_watts(cfg.tx_power_dbm);
  budget.carrier_hz = cfg.carrier_hz;
  budget.alpha = cfg.alpha;

  const auto dep = rfsim::Deployment::paper_frame();
  const auto field = rfsim::signal_strength_field(
      budget, dep.excitation_source(), dep.receiver(), -2.0, 2.0, -3.0, 3.0, 41, 31);

  // ASCII heat map: 10 dB per shade step.
  const std::string shades = " .:-=+*#%@";
  double lo = 1e9, hi = -1e9;
  for (const double v : field.dbm) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::printf("received strength field (dBm), x in [-2,2], y in [-3,3]\n");
  std::printf("shade scale: '%c' = %.0f dBm ... '%c' = %.0f dBm\n\n",
              shades.front(), lo, shades.back(), hi);
  for (std::size_t iy = field.ny; iy-- > 0;) {
    std::printf("  ");
    for (std::size_t ix = 0; ix < field.nx; ++ix) {
      const double t = (field.at(ix, iy) - lo) / (hi - lo);
      const auto s = static_cast<std::size_t>(t * (shades.size() - 1));
      std::printf("%c", shades[std::min(s, shades.size() - 1)]);
    }
    std::printf("\n");
  }
  recorder.record(0, "field_min_dbm", lo);
  recorder.record(0, "field_max_dbm", hi);

  // Cut along the ES–RX axis and along the perpendicular bisector.
  Table axis({"x (m), y=0", "P_r (dBm)"});
  for (const double x : {-1.5, -1.0, -0.6, -0.3, 0.0, 0.3, 0.6, 1.0, 1.5}) {
    const double d1 = std::max(rfsim::distance({x, 0}, dep.excitation_source()), 1e-3);
    const double d2 = std::max(rfsim::distance({x, 0}, dep.receiver()), 1e-3);
    axis.add_row({Table::num(x, 2),
                  Table::num(units::watts_to_dbm(budget.received_power(d1, d2)), 1)});
  }
  std::printf("\ncut along the ES-RX axis:\n");
  recorder.print_table(axis);

  Table perp({"y (m), x=0", "P_r (dBm)"});
  for (const double y : {0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    const double d1 = rfsim::distance({0, y}, dep.excitation_source());
    const double d2 = rfsim::distance({0, y}, dep.receiver());
    perp.add_row({Table::num(y, 2),
                  Table::num(units::watts_to_dbm(budget.received_power(d1, d2)), 1)});
  }
  std::printf("cut along the perpendicular bisector:\n");
  recorder.print_table(perp);
  recorder.note(
      "strength peaks between/near ES and RX and falls ~12 dB per doubling "
      "of distance (two d^2 hops), as in the paper's Fig. 5");
  std::printf("shape check: strength peaks between/near ES and RX and falls ~12 dB "
              "per doubling of distance (two d^2 hops), as in the paper's Fig. 5.\n");
  return recorder.finish();
}
