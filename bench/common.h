// Shared utilities for the experiment benches: trial-count/seed control via
// environment variables (CBMA_TRIALS, CBMA_SEED), deterministic parallel
// sweeps, and consistent headers so every bench output is reproducible from
// its printed configuration.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"

namespace cbma::bench {

/// Packets (or trials) per measurement point. Paper experiments use 1000;
/// the default keeps the full bench suite in CI-scale runtime. Override
/// with CBMA_TRIALS=1000 for paper-scale runs.
inline std::size_t trials(std::size_t fallback = 200) {
  if (const char* env = std::getenv("CBMA_TRIALS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// Base seed for the bench (CBMA_SEED to override).
inline std::uint64_t base_seed() {
  if (const char* env = std::getenv("CBMA_SEED")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 20190707;  // ICDCS 2019
}

/// Deterministic per-point seed: mixing the base seed with the point index
/// keeps results independent of sweep parallelism.
inline std::uint64_t point_seed(std::size_t point_index) {
  std::uint64_t x = base_seed() + 0x9E3779B97F4A7C15ull * (point_index + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x;
}

/// Run f(0..n-1) across hardware threads; f must only touch its own slot.
inline void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f) {
  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, std::thread::hardware_concurrency()), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        f(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

inline void print_header(const std::string& title, const std::string& paper_ref,
                         const core::SystemConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces : %s\n", paper_ref.c_str());
  std::printf("config     : %s\n", config.summary().c_str());
  std::printf("trials/pt  : %zu (CBMA_TRIALS to change)  seed: %llu\n\n",
              trials(), static_cast<unsigned long long>(base_seed()));
}

}  // namespace cbma::bench
