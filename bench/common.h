// Shared utilities for the experiment benches: trial-count/seed control via
// environment variables (CBMA_TRIALS, CBMA_SEED), deterministic parallel
// sweeps, and the SweepSpec builder every bench feeds into the
// SweepRunner/RunRecorder experiment API so each run is reproducible from
// its printed configuration and archived as BENCH_<name>.json.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/config.h"
#include "core/recorder.h"
#include "core/sweep.h"
#include "util/parallel.h"

namespace cbma::bench {

/// Strict positive-integer env parsing: anything other than a full decimal
/// integer in (0, LLONG_MAX] — stray suffixes, overflow, zero, negatives —
/// is diagnosed on stderr and the fallback is used. A malformed CBMA_TRIALS
/// silently becoming the default would invalidate a paper-scale run without
/// anyone noticing.
inline long long env_positive(const char* name, long long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v <= 0) {
    std::fprintf(stderr,
                 "warning: ignoring %s='%s' (expected a positive integer); "
                 "using %lld\n",
                 name, env, fallback);
    return fallback;
  }
  return v;
}

/// Packets (or trials) per measurement point. Paper experiments use 1000;
/// the default keeps the full bench suite in CI-scale runtime. Override
/// with CBMA_TRIALS=1000 for paper-scale runs.
inline std::size_t trials(std::size_t fallback = 200) {
  return static_cast<std::size_t>(
      env_positive("CBMA_TRIALS", static_cast<long long>(fallback)));
}

/// Base seed for the bench (CBMA_SEED to override).
inline std::uint64_t base_seed() {
  return static_cast<std::uint64_t>(
      env_positive("CBMA_SEED", 20190707));  // ICDCS 2019
}

/// Deterministic per-point seed for this bench's base seed (thin alias over
/// util::point_seed, which examples and tests share).
inline std::uint64_t point_seed(std::size_t point_index) {
  return util::point_seed(base_seed(), point_index);
}

/// Thin alias: the deterministic sweep runner now lives in util/parallel.h.
using util::parallel_for;

/// Build this bench's SweepSpec with the shared trial/seed plumbing wired
/// in. `trials_per_point` is what the bench actually runs per point (pass
/// bench::trials(fallback)); axes may be empty for single-point benches.
inline core::SweepSpec spec(std::string name, std::string title,
                            std::string paper_ref, std::vector<core::Axis> axes,
                            std::size_t trials_per_point) {
  core::SweepSpec s;
  s.name = std::move(name);
  s.title = std::move(title);
  s.paper_ref = std::move(paper_ref);
  s.axes = std::move(axes);
  s.trials = trials_per_point;
  s.base_seed = base_seed();
  return s;
}

}  // namespace cbma::bench
