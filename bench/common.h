// Shared utilities for the experiment benches: trial-count/seed control via
// environment variables (CBMA_TRIALS, CBMA_SEED), deterministic parallel
// sweeps, and consistent headers so every bench output is reproducible from
// its printed configuration.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/config.h"
#include "util/parallel.h"

namespace cbma::bench {

/// Packets (or trials) per measurement point. Paper experiments use 1000;
/// the default keeps the full bench suite in CI-scale runtime. Override
/// with CBMA_TRIALS=1000 for paper-scale runs.
inline std::size_t trials(std::size_t fallback = 200) {
  if (const char* env = std::getenv("CBMA_TRIALS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// Base seed for the bench (CBMA_SEED to override).
inline std::uint64_t base_seed() {
  if (const char* env = std::getenv("CBMA_SEED")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 20190707;  // ICDCS 2019
}

/// Deterministic per-point seed for this bench's base seed (thin alias over
/// util::point_seed, which examples and tests share).
inline std::uint64_t point_seed(std::size_t point_index) {
  return util::point_seed(base_seed(), point_index);
}

/// Thin alias: the deterministic sweep runner now lives in util/parallel.h.
using util::parallel_for;

inline void print_header(const std::string& title, const std::string& paper_ref,
                         const core::SystemConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces : %s\n", paper_ref.c_str());
  std::printf("config     : %s\n", config.summary().c_str());
  std::printf("trials/pt  : %zu (CBMA_TRIALS to change)  seed: %llu\n\n",
              trials(), static_cast<unsigned long long>(base_seed()));
}

}  // namespace cbma::bench
