// Fig. 9(c) — error rate with vs without the impedance power-control
// scheme (Algorithm 1), 2..5 concurrent tags, 50 random placement groups
// per setting. The paper: without control the error climbs with the tag
// count; with control it stays below ~5 % even at 5 tags (≈5× better).
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cbma;

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = 5;
  const std::vector<double> tag_counts{2, 3, 4, 5};
  const std::size_t groups = bench::trials(50);
  const std::size_t packets = 60;  // per measurement within a group

  std::vector<double> group_axis(groups);
  for (std::size_t g = 0; g < groups; ++g) group_axis[g] = static_cast<double>(g);

  // One grid point per (tag count, placement group); both scheme arms are
  // metrics of the same point so the comparison stays paired.
  const auto spec = bench::spec(
      "fig9c_power_control", "Fig. 9(c) — error rate with/without power control",
      "§VII-B3, 2..5 tags, 50 random placement groups each",
      {core::Axis::numeric("tags", tag_counts),
       core::Axis::numeric("group", group_axis)},
      groups);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const auto n_tags = static_cast<std::size_t>(point.value(0));
    Rng rng(point.seed());

    // Benchtop-scale random placements around the paper frame.
    auto dep = rfsim::Deployment::paper_frame();
    dep.place_random_tags(n_tags, rfsim::Room{2.0, 2.0}, rng, 0.10, 0.25);

    core::SystemConfig point_cfg = cfg;
    point_cfg.max_tags = n_tags;

    // Uncontrolled starting state, shared by both arms: each tag's
    // reflection level is whatever its antenna state happens to give.
    std::vector<std::size_t> start_levels(n_tags);
    for (auto& level : start_levels) {
      level = static_cast<std::size_t>(rng.uniform_int(0, 3));
    }

    {
      // "Without power control": tags stay at the uncontrolled levels.
      core::CbmaSystem sys(point_cfg, dep);
      Rng r = rng.fork();
      for (std::size_t i = 0; i < n_tags; ++i) {
        sys.set_impedance_level(i, start_levels[i]);
      }
      recorder.record(point.flat(), "fer_no_pc",
                      sys.run_packets(packets, r).frame_error_rate());
    }
    {
      // "With power control": same start, Algorithm 1 adapts the levels.
      core::CbmaSystem sys(point_cfg, dep);
      Rng r = rng.fork();
      for (std::size_t i = 0; i < n_tags; ++i) {
        sys.set_impedance_level(i, start_levels[i]);
      }
      sys.run_power_control({}, 40, r);
      recorder.record(point.flat(), "fer_with_pc",
                      sys.run_packets(packets, r).frame_error_rate());
    }
  });

  Table table({"tags", "error w/o power control", "error w/ power control", "gain"});
  double last_no = 0.0, last_with = 0.0;
  bool always_lower = true;
  for (std::size_t t = 0; t < tag_counts.size(); ++t) {
    RunningStats no, with_;
    for (std::size_t g = 0; g < groups; ++g) {
      no.add(recorder.metric(t * groups + g, "fer_no_pc"));
      with_.add(recorder.metric(t * groups + g, "fer_with_pc"));
    }
    last_no = no.mean();
    last_with = with_.mean();
    if (with_.mean() > no.mean() + 1e-9) always_lower = false;
    table.add_row({std::to_string(static_cast<std::size_t>(tag_counts[t])),
                   Table::percent(no.mean(), 2), Table::percent(with_.mean(), 2),
                   Table::num(no.mean() / std::max(with_.mean(), 1e-4), 1) + "x"});
  }
  recorder.print_table(table);

  recorder.check("power control lowers the error rate at every tag count",
                 always_lower);
  std::printf("power control lowers the error rate at every tag count: see table\n");
  std::printf("5-tag gain from power control: %.1fx (paper: ~5x better)\n",
              last_no / std::max(last_with, 1e-4));
  return recorder.finish();
}
