// Multi-cell network sweep — aggregate goodput and Jain fairness vs cell
// count and tags per cell, with spatial code reuse over one shared 64-code
// Gold family (the net:: layer end to end).
//
// Each grid point tiles a floor of 6 m x 4 m bays with cells_per_side^2
// gateways, drops tags_per_cell tags per bay, and runs three network
// rounds: link-budget association, hysteresis roaming under a mobility
// walk, per-cell CBMA MAC rounds with foreign-gateway excitation leakage
// in every cell's channel sum. The headline shape: a 3 x 3 floor of
// 8-tag cells beats the single-cell 64-code ceiling scenario (one gateway
// serving the same 72-tag floor, capped at 64 codes and stretched over
// 9 bays of range) — spatial reuse is the CDMA answer to the code-family
// limit.
#include <cstdio>
#include <string>

#include "common.h"
#include "core/metrics_plane.h"
#include "net/network.h"
#include "util/table.h"

using namespace cbma;

namespace {

constexpr double kBayWidth = 6.0;
constexpr double kBayHeight = 4.0;
constexpr std::size_t kCodesPerCell = 8;
constexpr std::size_t kRounds = 3;

net::NetworkConfig make_config(std::size_t packets_per_round) {
  net::NetworkConfig cfg;
  cfg.cell.code_family = pn::CodeFamily::kGold;
  cfg.cell.max_tags = kCodesPerCell;
  cfg.cell.tx_power_dbm = 30.0;  // AP-class excitation per bay
  cfg.reuse.family_size = 64;
  cfg.packets_per_round = packets_per_round;
  cfg.tag_step_m = 0.3;  // exercise the mobility + roaming path
  return cfg;
}

struct PointOutcome {
  double goodput_mbps = 0.0;   ///< mean aggregate goodput over the rounds
  double jain = 0.0;           ///< mean Jain fairness over the rounds
  double fer = 0.0;            ///< sent-weighted network FER
  std::size_t sent = 0;
  std::size_t served = 0;
  std::size_t total = 0;
  std::size_t roamed = 0;
  std::size_t colors = 0;
};

PointOutcome run_network(net::Network& network, std::uint64_t seed) {
  PointOutcome out;
  out.colors = network.colors_used();
  std::size_t acked = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const auto result = network.run_round(util::point_seed(seed, 100 + round));
    out.goodput_mbps += result.aggregate_goodput_bps / 1e6 / kRounds;
    out.jain += result.jain_fairness / kRounds;
    out.roamed += result.roamed;
    out.served = result.tags_served;
    out.total = result.tags_total;
    for (const auto& cell : result.cells) {
      out.sent += cell.stats.total_sent();
      acked += cell.stats.total_acked();
    }
  }
  out.fer = out.sent > 0
                ? 1.0 - static_cast<double>(acked) / static_cast<double>(out.sent)
                : 0.0;
  return out;
}

}  // namespace

int main() {
  const std::vector<double> cells_per_side{1.0, 2.0, 3.0};
  const std::vector<double> tags_per_cell{4.0, 8.0};
  const std::size_t packets_per_round = bench::trials(10);

  core::SystemConfig header_cfg = make_config(packets_per_round).cell;
  header_cfg.code_family_size = 64;  // the shared family the cells slice

  const auto spec = bench::spec(
      "net_multicell",
      "Multi-cell network — goodput and fairness under spatial code reuse",
      "net:: layer; spatial reuse of the Fig. 9(b) Gold family across cells",
      {core::Axis::numeric("cells_per_side", cells_per_side),
       core::Axis::numeric("tags_per_cell", tags_per_cell)},
      packets_per_round);
  core::RunRecorder recorder(spec, header_cfg);
  recorder.print_header();

  // CBMA_METRICS=<path>: one window per network round, so the per-cell
  // goodput/outcome series chart every round of the sweep (the net::
  // layer publishes the samples; this bench only picks the cadence).
  if (core::MetricsPlane::enabled()) core::MetricsPlane::set_cadence(1);

  // Grid points run sequentially; each network round parallelizes across
  // its cells (worker-count independent by the net:: determinism contract).
  core::SweepRunner(spec).run(
      [&](const core::SweepPoint& point) {
        const auto side = static_cast<std::size_t>(point.value(0));
        const auto tpc = static_cast<std::size_t>(point.value(1));
        auto network = net::Network::grid(
            make_config(packets_per_round), kBayWidth * static_cast<double>(side),
            kBayHeight * static_cast<double>(side), side, side);
        Rng rng(point.seed());
        network.place_random_tags(side * side * tpc, rng);
        const auto out = run_network(network, point.seed());

        recorder.record(point.flat(), "aggregate_goodput_mbps", out.goodput_mbps);
        recorder.record(point.flat(), "jain_fairness", out.jain);
        recorder.record(point.flat(), "network_fer", out.fer);
        recorder.record(point.flat(), "colors_used",
                        static_cast<double>(out.colors));
        recorder.record(point.flat(), "tags_served",
                        static_cast<double>(out.served));
        recorder.record(point.flat(), "tags_total",
                        static_cast<double>(out.total));
        recorder.record(point.flat(), "tags_roamed",
                        static_cast<double>(out.roamed));
        recorder.record(point.flat(), "count_sent",
                        static_cast<double>(out.sent));
        // Sweep-point rollups under a "cond=<grid>/t<tags>" scope, so the
        // exposition distinguishes grid points from per-cell series.
        const std::string cond = "cond=" + std::to_string(side) + "x" +
                                 std::to_string(side) + "/t" +
                                 std::to_string(tpc);
        core::MetricsPlane::record_value("bench.goodput_mbps", cond,
                                         out.goodput_mbps, "Mbps");
        core::MetricsPlane::record_value("bench.network_fer", cond, out.fer);
        core::MetricsPlane::record_value("bench.tags_roamed", cond,
                                         static_cast<double>(out.roamed));
      },
      /*workers=*/1);

  // The ceiling scenario the headline check compares against: one gateway
  // with the whole 64-code family serving the same 18 m x 12 m, 72-tag
  // floor — no reuse, every tag on one receiver, 8 tags beyond capacity.
  double ceiling_mbps = 0.0;
  {
    auto cfg = make_config(packets_per_round);
    cfg.cell.max_tags = 64;
    auto network = net::Network::grid(cfg, 3.0 * kBayWidth, 3.0 * kBayHeight, 1, 1);
    Rng rng(util::point_seed(bench::base_seed(), 9001));
    network.place_random_tags(72, rng);
    ceiling_mbps =
        run_network(network, util::point_seed(bench::base_seed(), 9002))
            .goodput_mbps;
  }

  const auto flat = [&](std::size_t s, std::size_t t) {
    return s * tags_per_cell.size() + t;
  };

  Table table({"grid", "tags/cell", "colors", "served", "FER",
               "goodput Mbps", "Jain", "roamed"});
  for (std::size_t s = 0; s < cells_per_side.size(); ++s) {
    for (std::size_t t = 0; t < tags_per_cell.size(); ++t) {
      const std::size_t f = flat(s, t);
      const auto side = static_cast<std::size_t>(cells_per_side[s]);
      table.add_row(
          {std::to_string(side) + "x" + std::to_string(side),
           Table::num(tags_per_cell[t], 0),
           Table::num(recorder.metric(f, "colors_used"), 0),
           Table::num(recorder.metric(f, "tags_served"), 0) + "/" +
               Table::num(recorder.metric(f, "tags_total"), 0),
           Table::percent(recorder.metric(f, "network_fer"), 1),
           Table::num(recorder.metric(f, "aggregate_goodput_mbps"), 2),
           Table::num(recorder.metric(f, "jain_fairness"), 3),
           Table::num(recorder.metric(f, "tags_roamed"), 0)});
    }
  }
  recorder.print_table(table);

  const std::size_t headline = flat(2, 1);  // 3x3 grid, 8 tags per cell
  recorder.record(headline, "ceiling_goodput_mbps", ceiling_mbps);
  const double multi = recorder.metric(headline, "aggregate_goodput_mbps");

  std::printf(
      "\n3x3 multi-cell vs single-cell 64-code ceiling: %s (%.2f vs %.2f Mbps)\n",
      recorder.check("multi-cell goodput exceeds the single-cell 64-code ceiling",
                     multi > ceiling_mbps)
          ? "HOLDS"
          : "VIOLATED",
      multi, ceiling_mbps);
  std::printf(
      "goodput grows with the cell grid at 8 tags/cell: %s\n",
      recorder.check("aggregate goodput grows with the cell grid",
                     recorder.metric(flat(2, 1), "aggregate_goodput_mbps") >
                         recorder.metric(flat(0, 1), "aggregate_goodput_mbps"))
          ? "HOLDS"
          : "VIOLATED");
  recorder.check("spatial reuse active on the 3x3 floor: 1 < colors <= 8",
                 recorder.metric(headline, "colors_used") > 1.0 &&
                     recorder.metric(headline, "colors_used") <= 8.0);

  // Watchdog: every point must have put frames on the air; aggregate
  // goodput scales superlinearly along the cell axis (1 -> 4 -> 9 cells),
  // so the neighbor test gets a tolerance wide enough for that curvature
  // and only fires on a genuine point collapse.
  const std::size_t fired = recorder.run_watchdog({
      {.metric = "count_sent", .floor = 0.5},
      {.metric = "aggregate_goodput_mbps", .neighbor_tolerance = 8.0},
      {.metric = "jain_fairness", .floor = 0.05},
  });
  if (fired > 0) {
    std::printf("\nwatchdog: %zu anomaly warning(s) — see stderr / JSON\n",
                fired);
  }
  return recorder.finish();
}
