// Fig. 8(b) — frame-detection error rate vs excitation-source transmit
// power, −5..20 dBm in 5 dB steps, 2/3/4 concurrent tags.
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace cbma;

namespace {

rfsim::Deployment make_deployment(std::size_t n_tags) {
  // Benchmark frame with the tags clustered mid-way, d2 ≈ 1 m.
  rfsim::Deployment dep(rfsim::Point{0.0, 0.0}, rfsim::Point{1.5, 0.0});
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double dy = 0.06 * (static_cast<double>(k) -
                              static_cast<double>(n_tags - 1) / 2.0);
    dep.add_tag({0.5, dy});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  const std::vector<double> powers_dbm{-5, 0, 5, 10, 15, 20};
  const std::size_t n_packets = bench::trials();

  const auto spec = bench::spec(
      "fig8b_es_power", "Fig. 8(b) — FER vs excitation-source power",
      "§VII-B1, Pt = -5..20 dBm step 5, 2/3/4 tags",
      {core::Axis::numeric("tags", {2, 3, 4}),
       core::Axis::numeric("tx_power", powers_dbm, "dBm")},
      n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const auto n_tags = static_cast<std::size_t>(point.value(0));
    core::SystemConfig point_cfg = cfg;
    point_cfg.max_tags = n_tags;
    point_cfg.tx_power_dbm = point.value(1);
    const auto dep = make_deployment(n_tags);
    recorder.record(point.flat(), "fer",
                    core::measure_fer(point_cfg, dep, n_packets, point.seed()).fer);
  });

  const auto fer = [&](std::size_t t, std::size_t p) {
    return recorder.metric(t * powers_dbm.size() + p, "fer");
  };
  Table table({"Pt (dBm)", "FER 2 tags", "FER 3 tags", "FER 4 tags"});
  for (std::size_t p = 0; p < powers_dbm.size(); ++p) {
    table.add_row({Table::num(powers_dbm[p], 0), Table::num(fer(0, p), 3),
                   Table::num(fer(1, p), 3), Table::num(fer(2, p), 3)});
  }
  recorder.print_table(table);

  bool monotone = true;
  for (std::size_t t = 0; t < 3; ++t) {
    if (fer(t, 0) < fer(t, powers_dbm.size() - 1)) monotone = false;
  }
  std::printf("error decreases as transmit power increases: %s\n",
              recorder.check("error decreases with transmit power", monotone)
                  ? "HOLDS"
                  : "VIOLATED");
  const double weakest = fer(2, 0);
  std::printf("error very high at -5 dBm (signal buried in noise): %s (%.2f)\n",
              recorder.check("error very high at -5 dBm", weakest > 0.5)
                  ? "HOLDS"
                  : "VIOLATED",
              weakest);
  return recorder.finish();
}
