// Fig. 8(b) — frame-detection error rate vs excitation-source transmit
// power, −5..20 dBm in 5 dB steps, 2/3/4 concurrent tags.
#include <cstdio>

#include "common.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace cbma;

namespace {

rfsim::Deployment make_deployment(std::size_t n_tags) {
  // Benchmark frame with the tags clustered mid-way, d2 ≈ 1 m.
  rfsim::Deployment dep(rfsim::Point{0.0, 0.0}, rfsim::Point{1.5, 0.0});
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double dy = 0.06 * (static_cast<double>(k) -
                              static_cast<double>(n_tags - 1) / 2.0);
    dep.add_tag({0.5, dy});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  bench::print_header("Fig. 8(b) — FER vs excitation-source power",
                      "§VII-B1, Pt = -5..20 dBm step 5, 2/3/4 tags", cfg);

  const std::size_t n_tag_counts[] = {2, 3, 4};
  const double powers_dbm[] = {-5, 0, 5, 10, 15, 20};
  std::vector<std::vector<double>> fer(3, std::vector<double>(std::size(powers_dbm)));
  const std::size_t n_packets = bench::trials();

  bench::parallel_for(3 * std::size(powers_dbm), [&](std::size_t idx) {
    const std::size_t t = idx / std::size(powers_dbm);
    const std::size_t p = idx % std::size(powers_dbm);
    core::SystemConfig point_cfg = cfg;
    point_cfg.max_tags = n_tag_counts[t];
    point_cfg.tx_power_dbm = powers_dbm[p];
    const auto dep = make_deployment(n_tag_counts[t]);
    fer[t][p] = core::measure_fer(point_cfg, dep, n_packets, bench::point_seed(idx)).fer;
  });

  Table table({"Pt (dBm)", "FER 2 tags", "FER 3 tags", "FER 4 tags"});
  for (std::size_t p = 0; p < std::size(powers_dbm); ++p) {
    table.add_row({Table::num(powers_dbm[p], 0), Table::num(fer[0][p], 3),
                   Table::num(fer[1][p], 3), Table::num(fer[2][p], 3)});
  }
  std::printf("%s\n", table.render().c_str());

  bool monotone = true;
  for (std::size_t t = 0; t < 3; ++t) {
    if (fer[t].front() < fer[t].back()) monotone = false;
  }
  std::printf("error decreases as transmit power increases: %s\n",
              monotone ? "HOLDS" : "VIOLATED");
  std::printf("error very high at -5 dBm (signal buried in noise): %s (%.2f)\n",
              fer[2].front() > 0.5 ? "HOLDS" : "VIOLATED", fer[2].front());
  return 0;
}
