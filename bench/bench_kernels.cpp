// Micro-benchmarks (google-benchmark) of the hot kernels: spreading,
// sliding complex correlation, channel synthesis, frame decode, and a full
// end-to-end collided round. These bound the simulator's packets/second
// and document where the cycles go.
#include <benchmark/benchmark.h>

#include "core/system.h"
#include "phy/spreader.h"
#include "pn/correlation.h"
#include "rfsim/channel.h"
#include "rx/decoder.h"

namespace {

using namespace cbma;

void BM_Spread(benchmark::State& state) {
  const auto code = pn::make_code_set(pn::CodeFamily::kTwoNC, 10, 20)[0];
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = i & 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::spread(bits, code));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Spread)->Arg(112)->Arg(1024);

void BM_GoldFamilyConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pn::make_code_set(pn::CodeFamily::kGold, 10, 31));
  }
}
BENCHMARK(BM_GoldFamilyConstruction);

void BM_SlidingComplexPeak(benchmark::State& state) {
  Rng rng(1);
  const auto code = pn::make_code_set(pn::CodeFamily::kTwoNC, 10, 20)[0];
  const auto tmpl = pn::mean_removed_template(code, 4);
  std::vector<std::complex<double>> signal(8192);
  for (auto& s : signal) s = {rng.gaussian(), rng.gaussian()};
  const auto lags = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pn::sliding_complex_peak(signal, tmpl, 0, lags));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SlidingComplexPeak)->Arg(64)->Arg(256);

void BM_ChannelSynthesis(benchmark::State& state) {
  Rng rng(2);
  rfsim::ChannelConfig cc;
  cc.samples_per_chip = 4;
  cc.chip_rate_hz = 32e6;
  cc.noise_power_w = 1e-9;
  const rfsim::Channel channel(cc);
  const std::vector<std::uint8_t> chips(3584, 1);  // a 112-bit frame at L=32
  std::vector<rfsim::TagTransmission> txs(static_cast<std::size_t>(state.range(0)));
  for (auto& tx : txs) {
    tx.chips = chips;
    tx.amplitude = 1e-6;
    tx.delay_chips = 8.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.receive(txs, rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(chips.size()) *
                          state.range(0));
}
BENCHMARK(BM_ChannelSynthesis)->Arg(2)->Arg(10);

void BM_DecodeFrame(benchmark::State& state) {
  Rng rng(3);
  const auto codes = pn::make_code_set(pn::CodeFamily::kTwoNC, 10, 20);
  phy::TagConfig tc;
  tc.id = 0;
  tc.code = codes[0];
  const phy::Tag tag(tc);
  const std::vector<std::uint8_t> payload(8, 0x5A);
  const auto chips = tag.chip_sequence(payload);
  rfsim::ChannelConfig cc;
  cc.samples_per_chip = 4;
  cc.chip_rate_hz = 32e6;
  rfsim::TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.delay_chips = 8.0;
  const auto iq = rfsim::Channel(cc).receive(std::span(&tx, 1), rng);
  const rx::Decoder decoder(codes[0], 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(iq, 32, 0.0));
  }
}
BENCHMARK(BM_DecodeFrame);

void BM_EndToEndRound(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.max_tags = static_cast<std::size_t>(state.range(0));
  auto dep = rfsim::Deployment::paper_frame();
  for (int k = 0; k < state.range(0); ++k) {
    dep.add_tag({0.1 * k, 0.6});
  }
  const core::CbmaSystem sys(cfg, dep);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.transmit_round(rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndRound)->Arg(2)->Arg(5)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
