// Micro-benchmarks (google-benchmark) of the hot kernels: spreading,
// sliding complex correlation, channel synthesis, frame decode, and the
// full end-to-end collided round on both the legacy (allocating) and the
// batched (scratch-reusing) transmit paths. These bound the simulator's
// packets/second and document where the cycles go.
//
// Besides the console table, the run writes BENCH_kernels.json (google
// benchmark's JSON schema) next to the working directory so tooling and CI
// can track the ns/packet counters without scraping stdout. Pass
// --benchmark_out=... to redirect it.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/metrics_plane.h"
#include "core/system.h"
#include "util/profiler.h"
#include "net/network.h"
#include "phy/spreader.h"
#include "pn/correlation.h"
#include "rfsim/channel.h"
#include "rx/correlation_engine.h"
#include "rx/decoder.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace {

using namespace cbma;

/// Attach a "ns_per_packet" counter: wall nanoseconds per processed item,
/// the figure DESIGN.md §4.7 quotes (items = packets for the end-to-end
/// benches, chips/lags for the kernels).
void set_rate_counters(benchmark::State& state, std::int64_t items_per_iter) {
  state.counters["ns_per_packet"] = benchmark::Counter(
      static_cast<double>(items_per_iter) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
}

/// Shared epilogue for the rate-counted benches: items-processed bookkeeping
/// plus the ns_per_packet counter (previously copy-pasted per bench).
void finish_rate(benchmark::State& state, std::int64_t items_per_iter) {
  state.SetItemsProcessed(state.iterations() * items_per_iter);
  set_rate_counters(state, 1);
}

void BM_Spread(benchmark::State& state) {
  const auto code = pn::make_code_set(pn::CodeFamily::kTwoNC, 10, 20)[0];
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = i & 1;
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    phy::spread_into(bits, code, out);
    benchmark::DoNotOptimize(out.data());
  }
  finish_rate(state, state.range(0));
}
BENCHMARK(BM_Spread)->Arg(112)->Arg(1024);

void BM_GoldFamilyConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pn::make_code_set(pn::CodeFamily::kGold, 10, 31));
  }
}
BENCHMARK(BM_GoldFamilyConstruction);

void BM_SlidingComplexPeak(benchmark::State& state) {
  Rng rng(1);
  const auto code = pn::make_code_set(pn::CodeFamily::kTwoNC, 10, 20)[0];
  const auto tmpl = pn::mean_removed_template(code, 4);
  std::vector<std::complex<double>> signal(8192);
  for (auto& s : signal) s = {rng.gaussian(), rng.gaussian()};
  const auto lags = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pn::sliding_complex_peak(signal, tmpl, 0, lags));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SlidingComplexPeak)->Arg(64)->Arg(256);

/// The split-kernel variant the receiver actually runs: the window is
/// deinterleaved once outside the timed region (as process_iq does per
/// packet), and the peak search streams the contiguous re/im arrays.
void BM_SlidingComplexPeakSplit(benchmark::State& state) {
  Rng rng(1);
  const auto code = pn::make_code_set(pn::CodeFamily::kTwoNC, 10, 20)[0];
  const auto tmpl = pn::mean_removed_template(code, 4);
  std::vector<std::complex<double>> signal(8192);
  for (auto& s : signal) s = {rng.gaussian(), rng.gaussian()};
  std::vector<double> re, im;
  pn::split_iq(signal, re, im);
  const auto lags = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pn::sliding_complex_peak(re, im, tmpl, 0, lags));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SlidingComplexPeakSplit)->Arg(64)->Arg(256);

void BM_ChannelSynthesis(benchmark::State& state) {
  Rng rng(2);
  rfsim::ChannelConfig cc;
  cc.samples_per_chip = 4;
  cc.chip_rate_hz = 32e6;
  cc.noise_power_w = 1e-9;
  const rfsim::Channel channel(cc);
  const std::vector<std::uint8_t> chips(3584, 1);  // a 112-bit frame at L=32
  std::vector<rfsim::TagTransmission> txs(static_cast<std::size_t>(state.range(0)));
  for (auto& tx : txs) {
    tx.chips = chips;
    tx.amplitude = 1e-6;
    tx.delay_chips = 8.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.receive(txs, rng));
  }
  finish_rate(state, static_cast<std::int64_t>(chips.size()) * state.range(0));
}
BENCHMARK(BM_ChannelSynthesis)->Arg(2)->Arg(10);

/// Channel synthesis into caller-owned buffers — the batched pipeline's
/// zero-allocation path (window, envelope and waveform capacity all reused).
void BM_ChannelSynthesisScratch(benchmark::State& state) {
  Rng rng(2);
  rfsim::ChannelConfig cc;
  cc.samples_per_chip = 4;
  cc.chip_rate_hz = 32e6;
  cc.noise_power_w = 1e-9;
  const rfsim::Channel channel(cc);
  const std::vector<std::uint8_t> chips(3584, 1);
  std::vector<rfsim::TagTransmission> txs(static_cast<std::size_t>(state.range(0)));
  for (auto& tx : txs) {
    tx.chips = chips;
    tx.amplitude = 1e-6;
    tx.delay_chips = 8.0;
  }
  const rfsim::ContinuousTone tone;
  rfsim::ChannelScratch scratch;
  std::vector<std::complex<double>> iq;
  for (auto _ : state) {
    channel.receive_into(txs, tone, {}, rng, scratch, iq);
    benchmark::DoNotOptimize(iq.data());
  }
  finish_rate(state, static_cast<std::int64_t>(chips.size()) * state.range(0));
}
BENCHMARK(BM_ChannelSynthesisScratch)->Arg(2)->Arg(10);

void BM_DecodeFrame(benchmark::State& state) {
  Rng rng(3);
  const auto codes = pn::make_code_set(pn::CodeFamily::kTwoNC, 10, 20);
  phy::TagConfig tc;
  tc.id = 0;
  tc.code = codes[0];
  const phy::Tag tag(tc);
  const std::vector<std::uint8_t> payload(8, 0x5A);
  const auto chips = tag.chip_sequence(payload);
  rfsim::ChannelConfig cc;
  cc.samples_per_chip = 4;
  cc.chip_rate_hz = 32e6;
  rfsim::TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.delay_chips = 8.0;
  const auto iq = rfsim::Channel(cc).receive(std::span(&tx, 1), rng);
  const rx::Decoder decoder(codes[0], 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(iq, 32, 0.0));
  }
}
BENCHMARK(BM_DecodeFrame);

/// Per-packet-allocating entry point: transmit(options, rng) builds a fresh
/// TransmitScratch each packet. Kept as the before/after reference for the
/// batched path — the allocation cost is the point here.
void BM_EndToEndRound(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.max_tags = static_cast<std::size_t>(state.range(0));
  auto dep = rfsim::Deployment::paper_frame();
  for (int k = 0; k < state.range(0); ++k) {
    dep.add_tag({0.1 * k, 0.6});
  }
  const core::CbmaSystem sys(cfg, dep);
  Rng rng(4);
  const core::TransmitOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.transmit(options, rng));
  }
  finish_rate(state, state.range(0));
}
BENCHMARK(BM_EndToEndRound)->Arg(2)->Arg(5)->Arg(10);

/// The batched pipeline: transmit(options, rng, scratch) with one scratch
/// reused across packets — what run_packets and the experiment sweeps run.
/// ns_per_packet here is the repo's headline per-packet figure.
void BM_EndToEndBatched(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.max_tags = static_cast<std::size_t>(state.range(0));
  auto dep = rfsim::Deployment::paper_frame();
  for (int k = 0; k < state.range(0); ++k) {
    dep.add_tag({0.1 * k, 0.6});
  }
  const core::CbmaSystem sys(cfg, dep);
  Rng rng(4);
  const core::TransmitOptions options;
  core::TransmitScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.transmit(options, rng, scratch));
  }
  finish_rate(state, state.range(0));
}
BENCHMARK(BM_EndToEndBatched)->Arg(2)->Arg(5)->Arg(10);

/// Same batched pipeline, but timed manually on util::monotonic_ns — the
/// single clock every span timer and bench shares (DESIGN.md §7). Each
/// iteration is also a bench/iteration telemetry span, so a CBMA_TELEMETRY=1
/// run can cross-check google-benchmark's wall time against the in-pipeline
/// span percentiles, and a CBMA_TRACE run shows the iterations on the
/// timeline. Disabled telemetry costs one relaxed atomic load per iteration.
void BM_EndToEndBatchedManualClock(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.max_tags = static_cast<std::size_t>(state.range(0));
  auto dep = rfsim::Deployment::paper_frame();
  for (int k = 0; k < state.range(0); ++k) {
    dep.add_tag({0.1 * k, 0.6});
  }
  const core::CbmaSystem sys(cfg, dep);
  Rng rng(4);
  const core::TransmitOptions options;
  core::TransmitScratch scratch;
  for (auto _ : state) {
    const std::uint64_t begin_ns = util::monotonic_ns();
    {
      const telemetry::ScopedSpan span(telemetry::Span::kBenchIteration);
      benchmark::DoNotOptimize(sys.transmit(options, rng, scratch));
    }
    state.SetIterationTime(
        static_cast<double>(util::monotonic_ns() - begin_ns) * 1e-9);
  }
  finish_rate(state, state.range(0));
}
BENCHMARK(BM_EndToEndBatchedManualClock)->Arg(5)->UseManualTime();

/// The chunked streaming receiver on a continuous stream of Arg(0) decodable
/// rounds (round + noise gap, fed in 4096-sample chunks through one warm
/// session). Two counters feed the CI gates: ns_per_sample is the
/// steady-state ingest cost, and rx_ring_bytes is the resident ring
/// footprint — which must be identical between the 1x and 10x stream
/// lengths, the O(window) memory claim of DESIGN.md §10
/// (check_perf_regression.py --ring-flat).
void BM_StreamingRx(benchmark::State& state) {
  rx::ReceiverConfig cfg;
  cfg.samples_per_chip = 4;
  cfg.preamble_bits = 8;
  cfg.max_payload_bytes = 4;  // tight lookahead: rounds finalize back to back
  const auto codes = pn::make_code_set(pn::CodeFamily::kTwoNC, 2, 20);
  const rx::Receiver receiver(cfg, codes);

  Rng rng(5);
  phy::TagConfig tc;
  tc.id = 0;
  tc.code = codes[0];
  tc.preamble_bits = 8;
  const std::vector<std::uint8_t> payload{0x5A, 0xC3, 0x3C};
  const auto chips = phy::Tag(tc).chip_sequence(payload);
  rfsim::ChannelConfig cc;
  cc.samples_per_chip = 4;
  cc.chip_rate_hz = 32e6;
  cc.noise_power_w = 1e-4;
  rfsim::TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.phase = rng.phase();
  tx.delay_chips = 64.0;
  auto unit = rfsim::Channel(cc).receive(std::span(&tx, 1), rng);
  std::vector<std::complex<double>> gap(3000, {0.0, 0.0});
  rfsim::AwgnSource(1e-4).add_to(gap, rng);
  unit.insert(unit.end(), gap.begin(), gap.end());

  std::vector<std::complex<double>> stream;
  for (std::int64_t k = 0; k < state.range(0); ++k) {
    stream.insert(stream.end(), unit.begin(), unit.end());
  }

  std::uint64_t decoded = 0;
  rx::StreamingReceiver session(
      receiver, [&](rx::RxReport r) { decoded += r.decoded_count(); });
  const std::span<const std::complex<double>> samples(stream);
  for (auto _ : state) {
    session.reset();
    for (std::size_t off = 0; off < samples.size(); off += 4096) {
      session.feed(samples.subspan(
          off, std::min<std::size_t>(4096, samples.size() - off)));
    }
    session.flush();
  }
  benchmark::DoNotOptimize(decoded);
  state.counters["rx_ring_bytes"] =
      static_cast<double>(session.ring_bytes());
  state.counters["ns_per_sample"] = benchmark::Counter(
      static_cast<double>(samples.size()) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_StreamingRx)->Arg(1)->Arg(10);

// --- detection correlation engines (DESIGN.md §9) --------------------------
//
// One batched peaks() call — every code of the family over one anchor
// window — per iteration, the unit UserDetector pays once per detection
// round. The three registrations share a (K codes, L chips/bit, W lags)
// grid so tools/check_perf_regression.py --crossover can reconstruct the
// naive-vs-FFT crossover curves and verify the auto engine's cost model
// picks the faster side wherever the gap is decisive. ns_per_packet here is
// ns per peaks() batch.

constexpr std::size_t kDetectSpc = 4;
constexpr std::size_t kDetectPreambleBits = 8;

void run_detect_peaks(benchmark::State& state, rx::DetectEngine kind) {
  const auto n_codes = static_cast<std::size_t>(state.range(0));
  const auto code_len = static_cast<std::size_t>(state.range(1));
  const auto lags = static_cast<std::size_t>(state.range(2));
  Rng rng(5);
  // Synthetic bipolar chip templates of the detector's shape (preamble bits
  // × code length); timing does not depend on the code family.
  std::vector<std::vector<double>> tmpls(n_codes);
  for (auto& t : tmpls) {
    t.resize(kDetectPreambleBits * code_len);
    for (auto& v : t) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
  }
  const std::size_t n = tmpls.front().size() * kDetectSpc;
  std::vector<double> re(n + lags), im(n + lags);
  for (std::size_t i = 0; i < re.size(); ++i) {
    rng.gaussian_pair(re[i], im[i]);
  }
  std::vector<double> fold_re, fold_im;
  pn::fold_chip_sums(re, kDetectSpc, fold_re);
  pn::fold_chip_sums(im, kDetectSpc, fold_im);
  const auto engine = rx::make_correlation_engine(kind, tmpls, kDetectSpc, lags);
  const auto scratch = engine->make_scratch();
  std::vector<std::size_t> code_idx(n_codes);
  for (std::size_t i = 0; i < n_codes; ++i) code_idx[i] = i;
  std::vector<pn::ComplexCorrelationPeak> peaks(n_codes);
  const rx::CorrelationWindow window{re, im, fold_re, fold_im, kDetectSpc};
  for (auto _ : state) {
    engine->peaks(window, code_idx, 0, lags, peaks, *scratch);
    benchmark::DoNotOptimize(peaks.data());
  }
  finish_rate(state, 1);
}

void BM_DetectPeaksNaive(benchmark::State& state) {
  run_detect_peaks(state, rx::DetectEngine::kNaive);
}
void BM_DetectPeaksFft(benchmark::State& state) {
  run_detect_peaks(state, rx::DetectEngine::kFft);
}
void BM_DetectPeaksAuto(benchmark::State& state) {
  run_detect_peaks(state, rx::DetectEngine::kAuto);
}

void detect_peaks_grid(benchmark::internal::Benchmark* b) {
  for (const std::int64_t k : {4, 16, 64}) {
    for (const std::int64_t l : {32, 128}) {
      for (const std::int64_t w : {64, 512}) {
        b->Args({k, l, w});
      }
    }
  }
}
BENCHMARK(BM_DetectPeaksNaive)->Apply(detect_peaks_grid);
BENCHMARK(BM_DetectPeaksFft)->Apply(detect_peaks_grid);
BENCHMARK(BM_DetectPeaksAuto)->Apply(detect_peaks_grid);

/// One multi-cell network round on an Arg(0) x Arg(0) gateway grid with 4
/// tags per cell: association/roaming, per-cell CBMA MAC (one packet per
/// cell round to isolate the network layer's overhead around the
/// per-packet pipeline), inter-cell leakage summation. Runs the cells on
/// one worker so the figure is a stable single-thread cost; ns_per_round
/// is per *cell* round — the entry tools/perf_baseline.json gates.
void BM_NetMulticellRound(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  net::NetworkConfig cfg;
  cfg.cell.code_family = pn::CodeFamily::kGold;
  cfg.cell.max_tags = 4;
  cfg.cell.tx_power_dbm = 30.0;
  cfg.reuse.family_size = 64;
  cfg.packets_per_round = 1;
  auto network = net::Network::grid(cfg, 6.0 * static_cast<double>(side),
                                    4.0 * static_cast<double>(side), side, side);
  Rng rng(6);
  network.place_random_tags(side * side * 4, rng);
  network.run_round(7, /*max_workers=*/1);  // warm-up: builds every cell
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.run_round(7, /*max_workers=*/1));
  }
  const auto cells = static_cast<std::int64_t>(side * side);
  state.counters["ns_per_round"] = benchmark::Counter(
      static_cast<double>(cells) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(BM_NetMulticellRound)->Arg(2);

/// BM_NetMulticellRound with the metrics plane live: identical workload
/// plus per-round sampling into the in-memory windowed store (no
/// Prometheus file — the export path stays empty so the figure measures
/// sampling, not filesystem I/O). check_perf_regression.py
/// --metrics-overhead gates this against the metrics-off twin at +2%
/// ns_per_round. Telemetry's enabled flag is saved/restored because
/// enabling the plane arms it.
void BM_NetMulticellRoundMetrics(benchmark::State& state) {
  const bool telemetry_was_on = telemetry::enabled();
  const bool metrics_was_on = metrics::enabled();
  const std::string saved_path = metrics::export_path();
  metrics::set_export_path("");
  core::MetricsPlane::enable();
  core::MetricsPlane::set_cadence(1);
  core::MetricsPlane::reset();

  const auto side = static_cast<std::size_t>(state.range(0));
  net::NetworkConfig cfg;
  cfg.cell.code_family = pn::CodeFamily::kGold;
  cfg.cell.max_tags = 4;
  cfg.cell.tx_power_dbm = 30.0;
  cfg.reuse.family_size = 64;
  cfg.packets_per_round = 1;
  auto network = net::Network::grid(cfg, 6.0 * static_cast<double>(side),
                                    4.0 * static_cast<double>(side), side, side);
  Rng rng(6);
  network.place_random_tags(side * side * 4, rng);
  network.run_round(7, /*max_workers=*/1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.run_round(7, /*max_workers=*/1));
  }
  const auto cells = static_cast<std::int64_t>(side * side);
  state.counters["ns_per_round"] = benchmark::Counter(
      static_cast<double>(cells) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(state.iterations() * cells);

  core::MetricsPlane::reset();
  metrics::set_export_path(saved_path);
  metrics::set_enabled(metrics_was_on);
  telemetry::set_enabled(telemetry_was_on);
}
BENCHMARK(BM_NetMulticellRoundMetrics)->Arg(2);

/// BM_NetMulticellRound with the hierarchical profiler live: identical
/// workload plus span-tree attribution and parallel_for busy/idle
/// measurement into the in-memory node pools (no collapsed-stack file —
/// the export path is untouched so the figure measures recording, not
/// filesystem I/O). check_perf_regression.py --profile-overhead gates
/// this against the profiler-off twin at +2% ns_per_round.
void BM_NetMulticellRoundProfile(benchmark::State& state) {
  const bool profiler_was_on = profiler::enabled();
  profiler::set_enabled(true);
  profiler::reset();

  const auto side = static_cast<std::size_t>(state.range(0));
  net::NetworkConfig cfg;
  cfg.cell.code_family = pn::CodeFamily::kGold;
  cfg.cell.max_tags = 4;
  cfg.cell.tx_power_dbm = 30.0;
  cfg.reuse.family_size = 64;
  cfg.packets_per_round = 1;
  auto network = net::Network::grid(cfg, 6.0 * static_cast<double>(side),
                                    4.0 * static_cast<double>(side), side, side);
  Rng rng(6);
  network.place_random_tags(side * side * 4, rng);
  network.run_round(7, /*max_workers=*/1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.run_round(7, /*max_workers=*/1));
  }
  const auto cells = static_cast<std::int64_t>(side * side);
  state.counters["ns_per_round"] = benchmark::Counter(
      static_cast<double>(cells) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(state.iterations() * cells);

  profiler::reset();
  profiler::set_enabled(profiler_was_on);
}
BENCHMARK(BM_NetMulticellRoundProfile)->Arg(2);

}  // namespace

// Custom main: always emit machine-readable results alongside the console
// table by defaulting --benchmark_out to BENCH_kernels.json (an explicit
// --benchmark_out on the command line wins). Every other google-benchmark
// flag passes through untouched.
int main(int argc, char** argv) {
  bool has_out_flag = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out_flag = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out_flag) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
