// Robustness under injected faults — BER/throughput vs excitation dropout
// duty cycle and tag chip-clock drift (rfsim::ImpairmentSuite).
//
// Generalizes Fig. 12's continuous-tone vs OFDM contrast into a swept grid:
// duty 1.0 is the clean always-on excitation; lower duties gate the carrier
// in 802.11-frame-scale bursts the tags cannot predict. The paper's
// qualitative ordering (continuous ≫ bursty excitation) must reproduce at
// every drift setting, and the ARQ layer shows how much of the raw loss a
// retry budget claws back. Every per-frame failure is a reported
// DecodeOutcome — an all-failed point records zeros and "n/a", never a
// crash (the graceful-degradation contract this bench exists to prove).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "common.h"
#include "core/metrics_plane.h"
#include "core/system.h"
#include "mac/arq.h"
#include "mac/throughput.h"
#include "phy/frame.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

constexpr std::size_t kTags = 3;

rfsim::Deployment make_deployment() {
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < kTags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(kTags);
    dep.add_tag({0.25 * std::cos(angle), 0.75 + 0.25 * std::sin(angle)});
  }
  return dep;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.max_tags = kTags;

  // Axis 0: excitation on-air fraction (1.0 = continuous tone, the clean
  // Fig. 12 condition; 0.42 ≈ the paper's 500 µs-frame / 700 µs-gap OFDM).
  const std::vector<double> duties{1.0, 0.75, 0.5, 0.3};
  // Axis 1: chip-clock error spread across the group (static ± wander/4).
  const std::vector<double> drifts_ppm{0.0, 50.0, 200.0};
  const std::size_t n_packets = bench::trials(300);

  const auto spec = bench::spec(
      "robustness_impairments",
      "Robustness — reception under excitation dropout and clock drift",
      "generalizes Fig. 12 (tone vs OFDM excitation) via ImpairmentSuite",
      {core::Axis::numeric("dropout_duty", duties),
       core::Axis::numeric("drift_ppm", drifts_ppm)},
      n_packets);
  core::RunRecorder recorder(spec, cfg);
  recorder.print_header();

  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    core::SystemConfig point_cfg = cfg;
    const double duty = point.value(0);
    const double ppm = point.value(1);
    if (duty < 1.0) {
      point_cfg.impairments.dropout.enabled = true;
      point_cfg.impairments.dropout.duty = duty;
      point_cfg.impairments.dropout.mean_burst_s = 500e-6;
    }
    if (ppm > 0.0) {
      point_cfg.impairments.drift.enabled = true;
      point_cfg.impairments.drift.max_static_ppm = ppm;
      point_cfg.impairments.drift.wander_ppm = ppm / 4.0;
    }

    core::CbmaSystem sys(point_cfg, make_deployment());
    Rng rng(point.seed());

    // Saturated stop-and-wait ARQ: every slot always owes a frame, so the
    // whole group transmits each round and the tracker accounts retries.
    mac::ArqTracker arq({/*max_attempts=*/4}, kTags);
    core::TransmitScratch scratch;
    const core::TransmitOptions options;
    std::size_t sent = 0, decoded = 0;
    std::size_t no_sync = 0, not_detected = 0, bad_crc = 0, truncated = 0;
    std::size_t id_mismatch = 0;
    // Decoded-per-round spread over rounds where anything got through at
    // all — legitimately empty under deep dropout, hence the count() guard
    // before min()/max() below (RunningStats throws on empty extremes).
    RunningStats nonempty_rounds;
    for (std::size_t p = 0; p < n_packets; ++p) {
      for (std::size_t slot = 0; slot < kTags; ++slot) {
        if (!arq.pending(slot)) arq.offer(slot);
      }
      const auto due = arq.due();
      const auto report = sys.transmit(options, rng, scratch);
      arq.on_round(report.ack, due);
      sent += kTags;
      decoded += report.decoded_count();
      no_sync += report.outcome_count(rx::DecodeOutcome::kNoFrameSync);
      not_detected += report.outcome_count(rx::DecodeOutcome::kNotDetected);
      bad_crc += report.outcome_count(rx::DecodeOutcome::kBadCrc);
      truncated += report.outcome_count(rx::DecodeOutcome::kTruncated);
      id_mismatch += report.outcome_count(rx::DecodeOutcome::kIdMismatch);
      if (report.decoded_count() > 0) {
        nonempty_rounds.add(static_cast<double>(report.decoded_count()));
      }
    }

    const double prr =
        static_cast<double>(decoded) / static_cast<double>(sent);
    mac::CbmaRate rate;
    rate.per_tag_bitrate_bps = point_cfg.bitrate_bps;
    rate.n_tags = kTags;
    rate.frame_bits = phy::frame_bit_count(point_cfg.payload_bytes,
                                           point_cfg.preamble_bits);
    rate.payload_bits = point_cfg.payload_bytes * 8;
    rate.frame_error_rate = 1.0 - prr;

    recorder.record(point.flat(), "prr", prr);
    recorder.record(point.flat(), "goodput_kbps",
                    mac::cbma_throughput(rate).aggregate_goodput_bps / 1e3);
    recorder.record(point.flat(), "arq_delivery_ratio",
                    arq.stats().delivery_ratio());
    recorder.record(point.flat(), "frac_no_sync",
                    static_cast<double>(no_sync) / static_cast<double>(sent));
    recorder.record(point.flat(), "frac_not_detected",
                    static_cast<double>(not_detected) /
                        static_cast<double>(sent));
    recorder.record(point.flat(), "frac_bad_crc",
                    static_cast<double>(bad_crc) / static_cast<double>(sent));
    recorder.record(point.flat(), "frac_truncated",
                    static_cast<double>(truncated) /
                        static_cast<double>(sent));
    // Raw per-outcome tallies alongside the fractions: downstream analysis
    // (failure-taxonomy queries over BENCH_*.json) should not have to
    // reconstruct integer counts from rounded ratios. Mirrors the six
    // DecodeOutcome states plus the denominators.
    recorder.record(point.flat(), "count_sent", static_cast<double>(sent));
    recorder.record(point.flat(), "count_ok", static_cast<double>(decoded));
    recorder.record(point.flat(), "count_no_sync",
                    static_cast<double>(no_sync));
    recorder.record(point.flat(), "count_not_detected",
                    static_cast<double>(not_detected));
    recorder.record(point.flat(), "count_bad_crc",
                    static_cast<double>(bad_crc));
    recorder.record(point.flat(), "count_truncated",
                    static_cast<double>(truncated));
    recorder.record(point.flat(), "count_id_mismatch",
                    static_cast<double>(id_mismatch));
    recorder.record(point.flat(), "min_decoded_nonempty_round",
                    nonempty_rounds.count() > 0 ? nonempty_rounds.min() : 0.0);
    recorder.record(point.flat(), "max_decoded_nonempty_round",
                    nonempty_rounds.count() > 0 ? nonempty_rounds.max() : 0.0);
  });

  const auto flat = [&](std::size_t d, std::size_t j) {
    return d * drifts_ppm.size() + j;
  };

  Table table({"excitation duty", "drift ppm", "PRR", "goodput",
               "ARQ delivery", "no-sync", "not-detected", "bad-CRC"});
  for (std::size_t d = 0; d < duties.size(); ++d) {
    for (std::size_t j = 0; j < drifts_ppm.size(); ++j) {
      const std::size_t f = flat(d, j);
      table.add_row(
          {duties[d] >= 1.0 ? "continuous" : Table::percent(duties[d], 0),
           Table::num(drifts_ppm[j], 0),
           Table::percent(recorder.metric(f, "prr"), 1),
           Table::num(recorder.metric(f, "goodput_kbps"), 0) + " kbps",
           Table::percent(recorder.metric(f, "arq_delivery_ratio"), 1),
           Table::percent(recorder.metric(f, "frac_no_sync"), 1),
           Table::percent(recorder.metric(f, "frac_not_detected"), 1),
           Table::percent(recorder.metric(f, "frac_bad_crc"), 1)});
    }
  }
  recorder.print_table(table);

  const double clean = recorder.metric(flat(0, 0), "prr");
  const double deep_dropout = recorder.metric(flat(duties.size() - 1, 0), "prr");
  const double max_drift = recorder.metric(flat(0, drifts_ppm.size() - 1), "prr");
  bool ordering_every_drift = true;
  for (std::size_t j = 0; j < drifts_ppm.size(); ++j) {
    if (recorder.metric(flat(0, j), "prr") <
        recorder.metric(flat(duties.size() - 1, j), "prr")) {
      ordering_every_drift = false;
    }
  }

  std::printf("continuous excitation beats deep dropout (Fig. 12 ordering): "
              "%s (%.1f%% -> %.1f%%)\n",
              recorder.check("continuous excitation beats deep dropout",
                             clean > deep_dropout)
                  ? "HOLDS"
                  : "VIOLATED",
              100.0 * clean, 100.0 * deep_dropout);
  std::printf("ordering holds at every drift setting: %s\n",
              recorder.check("dropout ordering holds at every drift setting",
                             ordering_every_drift)
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("clock drift alone costs less than deep dropout: %s "
              "(drift %.1f%% vs dropout %.1f%%)\n",
              recorder.check("drift alone costs less than deep dropout",
                             max_drift >= deep_dropout)
                  ? "HOLDS"
                  : "VIOLATED",
              100.0 * max_drift, 100.0 * deep_dropout);

  // Anomaly watchdog: rules apply to every grid point, so they must stay
  // silent under legitimate physics (deep dropout drives PRR to zero at
  // small trial counts) and only fire on pipeline breakage or a point
  // collapsing far below its neighbors. Warnings land on stderr and in the
  // JSON "watchdog" section.
  const std::size_t fired = recorder.run_watchdog({
      // Every point must have attempted frames — zero means the bench
      // itself broke, not that the channel got hard.
      {.metric = "count_sent", .floor = 0.5},
      // Dropout/drift degrade smoothly; a point far below the mean of its
      // single-axis neighbors is an anomaly, not physics.
      {.metric = "prr", .neighbor_tolerance = 0.5},
  });
  if (fired > 0) {
    std::printf("\nwatchdog: %zu anomaly warning(s) — see stderr / JSON\n",
                fired);
  }

  // CBMA_METRICS=<path>: a short *sequential* timeline pass (the sweep
  // above runs parallel, which the plane's tick() contract forbids) —
  // per-window PRR and decode-outcome series under "cond=duty<d>/ppm<p>"
  // scopes, across the dropout axis at the drift extremes.
  if (core::MetricsPlane::enabled()) {
    core::MetricsPlane::set_cadence(1);
    constexpr std::size_t kWindows = 6;
    const std::size_t packets_per_window =
        std::max<std::size_t>(1, n_packets / 30);
    std::size_t condition = 0;
    for (const double duty : duties) {
      for (const double ppm : {drifts_ppm.front(), drifts_ppm.back()}) {
        core::SystemConfig point_cfg = cfg;
        if (duty < 1.0) {
          point_cfg.impairments.dropout.enabled = true;
          point_cfg.impairments.dropout.duty = duty;
          point_cfg.impairments.dropout.mean_burst_s = 500e-6;
        }
        if (ppm > 0.0) {
          point_cfg.impairments.drift.enabled = true;
          point_cfg.impairments.drift.max_static_ppm = ppm;
          point_cfg.impairments.drift.wander_ppm = ppm / 4.0;
        }
        core::CbmaSystem sys(point_cfg, make_deployment());
        Rng rng(util::point_seed(bench::base_seed(), 7000 + condition));
        char scope[64];
        std::snprintf(scope, sizeof scope, "cond=duty%g/ppm%g", duty, ppm);
        for (std::size_t w = 0; w < kWindows; ++w) {
          const auto stats = sys.run_packets(packets_per_window, rng);
          const auto sent_w = stats.total_sent();
          core::MetricsPlane::record_value(
              "bench.prr", scope,
              sent_w > 0 ? static_cast<double>(stats.total_acked()) /
                               static_cast<double>(sent_w)
                         : 0.0);
          for (std::size_t o = 0; o < stats.outcomes.size(); ++o) {
            if (stats.outcomes[o] == 0) continue;
            core::MetricsPlane::record_value(
                std::string("rx.outcome.") +
                    rx::to_string(static_cast<rx::DecodeOutcome>(o)),
                scope, static_cast<double>(stats.outcomes[o]));
          }
          core::MetricsPlane::tick();
        }
        ++condition;
      }
    }
  }
  return recorder.finish();
}
