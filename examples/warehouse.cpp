// Warehouse scenario: the multi-cell network layer end to end. A 3 x 3
// grid of gateways covers an 18 m x 12 m warehouse floor (nine 6 m x 4 m
// bays); 72 roaming asset tags associate to the strongest gateway by the
// obstacle-shadowed two-hop link budget, the code-reuse scheduler
// partitions one 64-code Gold family across the cell interference graph,
// and every round runs all nine cells' CBMA MAC concurrently with foreign
// gateways' excitation leakage summed into each cell's channel.
#include <cstdio>
#include <string>

#include "net/network.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace cbma;

int main() {
  net::NetworkConfig config;
  config.cell.code_family = pn::CodeFamily::kGold;
  config.cell.max_tags = 8;          // codes per cell slice
  config.cell.tx_power_dbm = 30.0;   // AP-class excitation per bay
  config.reuse.family_size = 64;
  config.packets_per_round = 10;
  config.tag_step_m = 0.4;  // forklifts move the stock around
  net::Network warehouse = net::Network::grid(config, 18.0, 12.0, 3, 3);

  // Racking rows between the bays: steel shelving, heavy penetration loss.
  rfsim::ObstacleMap racks;
  racks.add({{-9.0, 2.0}, {-1.0, 2.0}, 12.0});
  racks.add({{1.0, -2.0}, {9.0, -2.0}, 12.0});
  warehouse.set_obstacles(racks);

  Rng rng(20190707);
  warehouse.place_random_tags(72, rng);

  std::printf("warehouse: %zu gateways over an 18 m x 12 m floor, %zu tags\n",
              warehouse.cell_count(), warehouse.tag_count());
  std::printf("code reuse: %zu colors x %zu codes from a %zu-code Gold family\n\n",
              warehouse.colors_used(), config.cell.max_tags,
              config.reuse.family_size);

  for (std::size_t round = 0; round < 3; ++round) {
    const auto result = warehouse.run_round(1000 + round);
    Table table({"cell", "color", "codes", "tags", "FER", "goodput Mbps",
                 "intercell dBm"});
    for (const auto& cell : result.cells) {
      const auto& gw = warehouse.gateways()[cell.gateway_id];
      table.add_row({std::to_string(cell.gateway_id),
                     std::to_string(gw.color),
                     "[" + std::to_string(gw.code_offset) + "," +
                         std::to_string(gw.code_offset + gw.code_count) + ")",
                     std::to_string(cell.tags_served) + "/" +
                         std::to_string(cell.tags_total),
                     Table::percent(cell.stats.frame_error_rate(), 1),
                     Table::num(cell.goodput_bps / 1e6, 2),
                     Table::num(cell.interference_dbm, 1)});
    }
    std::printf("round %zu (%zu tags roamed):\n%s\n", round + 1, result.roamed,
                table.render().c_str());
    std::printf("aggregate goodput %.2f Mbps over %zu/%zu served tags, "
                "Jain fairness %.3f\n\n",
                result.aggregate_goodput_bps / 1e6, result.tags_served,
                result.tags_total, result.jain_fairness);
  }

  std::printf("one 64-code family would cap a single cell at 64 concurrent\n"
              "tags; spatial reuse serves all 72 across nine bays — the\n"
              "CDMA answer to the code-family ceiling, at network scale.\n");
  return 0;
}
