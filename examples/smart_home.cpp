// Smart-home scenario (the paper's Fig. 1 motivation): ten battery-free
// sensor tags scattered through a room report readings concurrently to one
// WiFi access point. Each round every sensor backscatters a small reading
// frame; the AP decodes the collision, ACKs, and Algorithm 1 keeps the
// received power levels equalized as conditions change.
#include <cstdio>
#include <string>

#include "core/system.h"
#include "util/table.h"

using namespace cbma;

namespace {

// A sensor reading: type byte + 16-bit value, little-endian.
std::vector<std::uint8_t> encode_reading(std::uint8_t sensor_type, int value) {
  return {sensor_type, static_cast<std::uint8_t>(value & 0xFF),
          static_cast<std::uint8_t>((value >> 8) & 0xFF)};
}

const char* kSensorNames[] = {"thermostat", "humidity", "door",   "window",
                              "motion",     "light",    "smoke",  "power",
                              "valve",      "lock"};

}  // namespace

int main() {
  core::SystemConfig config;
  config.max_tags = 10;
  config.payload_bytes = 3;

  // Access point setup: ES and RX co-located at the room's edge; sensors
  // spread over a 4 m x 6 m living area.
  rfsim::Deployment deployment(rfsim::Point{-0.3, -2.5}, rfsim::Point{0.3, -2.5});
  Rng rng(2024);
  deployment.place_random_tags(10, rfsim::Room{4.0, 6.0}, rng, 0.3, 0.4);
  core::CbmaSystem home(config, deployment);

  std::printf("smart home: 10 sensor tags, one AP — %s\n\n",
              config.summary().c_str());

  // Commissioning: equalize power levels once at install time.
  const auto outcome = home.run_power_control({}, 40, rng);
  std::printf("commissioning: power control used %zu rounds%s\n\n", outcome.rounds,
              outcome.exhausted ? " (cap reached; some links are marginal)" : "");

  // Ten reporting rounds: all sensors transmit concurrently each round.
  Table table({"round", "delivered", "readings received"});
  core::RoundStats totals(10);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<int> values;
    for (std::size_t s = 0; s < 10; ++s) {
      const int value = 180 + rng.uniform_int(0, 80);  // e.g. 18.0-26.0 °C
      values.push_back(value);
      payloads.push_back(encode_reading(static_cast<std::uint8_t>(s), value));
    }
    core::TransmitOptions options;
    options.payloads = payloads;
    const auto report = home.transmit(options, rng);

    std::string received;
    int delivered = 0;
    for (std::size_t s = 0; s < 10; ++s) {
      totals.record(s, report.results[s].crc_ok);
      if (report.results[s].crc_ok) {
        ++delivered;
        const auto& p = report.results[s].payload;
        const int value = p[1] | (p[2] << 8);
        if (!received.empty()) received += ", ";
        received += std::string(kSensorNames[s]) + "=" + std::to_string(value);
        if (value != values[s]) {
          std::printf("!! corrupted-but-CRC-valid reading (should not happen)\n");
        }
      }
    }
    table.add_row({std::to_string(round + 1), std::to_string(delivered) + "/10",
                   received.size() > 60 ? received.substr(0, 57) + "..." : received});
  }
  std::printf("%s\n", table.render().c_str());

  const auto ratios = totals.ack_ratios();
  std::printf("per-sensor delivery over 10 rounds:\n");
  for (std::size_t s = 0; s < 10; ++s) {
    std::printf("  %-10s %5.1f%%  (SNR %.1f dB, impedance level %zu)\n",
                kSensorNames[s], 100.0 * ratios[s],
                home.snr_db(s), home.impedance_level(s));
  }
  std::printf("\noverall delivery: %.1f%% of %zu concurrent sensor frames\n",
              100.0 * (1.0 - totals.frame_error_rate()), totals.total_sent());
  return 0;
}
