// Waveform walk-through: the tag's two-layer modulation made visible.
// Renders (in ASCII) the square-wave subcarrier, the AND-gated OOK chips
// (paper Fig. 4 / Eq. 3), the harmonic structure of Eq. 2, the
// single-sideband variant of footnote 1, and the µW energy budget of §VI.
#include <cstdio>
#include <string>

#include "phy/energy.h"
#include "phy/frame.h"
#include "phy/modulator.h"
#include "phy/spreader.h"
#include "pn/code.h"
#include "util/units.h"

using namespace cbma;

namespace {

void plot(const char* label, std::span<const double> signal, std::size_t n) {
  std::printf("%-18s ", label);
  for (std::size_t i = 0; i < n && i < signal.size(); ++i) {
    std::printf("%c", signal[i] > 0.5 ? '#' : (signal[i] < -0.5 ? '_' : '.'));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const double delta_f = 20e6;   // the paper's 20 MHz subcarrier
  const double fs = 320e6;       // 16 samples per subcarrier period
  const std::size_t spc = 32;    // samples per chip at this rate

  std::printf("CBMA tag modulation walk-through\n");
  std::printf("================================\n\n");

  // Layer 1: the Δf square wave that shifts the excitation tone.
  const auto carrier = phy::square_wave(delta_f, fs, 8 * spc);
  plot("square wave", carrier, 96);

  // Layer 2: OOK — the coded chips gate the square wave (AND, Fig. 4).
  const auto code = pn::make_code_set(pn::CodeFamily::kTwoNC, 4, 8)[1];
  const std::vector<std::uint8_t> bits{1, 0};
  const auto chips = phy::spread(bits, code);
  std::printf("%-18s ", "chips (bit 1,0)");
  for (std::size_t i = 0; i < 6; ++i) std::printf("%c  ", chips[i] ? '1' : '0');
  std::printf("...\n");
  const auto ook = phy::ook_modulate(std::span(chips.data(), 3), spc, carrier);
  plot("OOK output", ook, 96);

  // Eq. 2: harmonic levels of the square wave.
  std::printf("\nEq. 2 harmonic structure (measured on the waveform):\n");
  const auto long_wave = phy::square_wave(delta_f, fs, 1 << 14);
  for (const unsigned n : {1u, 3u, 5u, 7u}) {
    const double mag = phy::tone_magnitude(long_wave, n * delta_f, fs);
    std::printf("  harmonic %u: amplitude %.3f (theory 4/%uπ = %.3f, %+.1f dB)\n", n,
                mag, n, phy::square_wave_harmonic_amplitude(n),
                phy::square_wave_harmonic_rel_db(n));
  }

  // Footnote 1: single-sideband synthesis.
  const auto ssb = phy::ssb_square_wave(delta_f, fs, 1 << 14);
  std::printf("\nsingle-sideband variant (footnote 1):\n");
  std::printf("  wanted sideband (+Δf) : %.3f\n",
              phy::tone_magnitude_complex(ssb, delta_f, fs));
  std::printf("  image sideband (−Δf)  : %.5f\n",
              phy::tone_magnitude_complex(ssb, -delta_f, fs));
  std::printf("  suppression           : %.1f dB\n",
              phy::sideband_suppression_db(ssb, delta_f, fs));

  // §VI energy budget.
  phy::TagEnergyModel energy;
  const std::size_t frame_bits = phy::frame_bit_count(8);
  std::printf("\nenergy budget (§VI, µW-scale reflection):\n");
  std::printf("  transmit power        : %.2f µW\n",
              energy.transmit_power_w() * 1e6);
  std::printf("  energy per %zu-bit frame: %.2f nJ @1 Mbps\n", frame_bits,
              energy.frame_energy_j(frame_bits, 1e6) * 1e9);
  std::printf("  frames per coin cell  : %.1e (200 mAh @3 V)\n",
              2160.0 * energy.frames_per_joule(frame_bits, 1e6));
  return 0;
}
