// Coexistence scenario (§VII-C3): CBMA shares the air with a WiFi access
// point and a Bluetooth headset, and finally loses its clean tone when the
// excitation source switches to OFDM traffic. Demonstrates injecting
// interference and excitation models through the public API and shows the
// Fig. 12 behaviour interactively.
#include <cstdio>
#include <memory>

#include "core/system.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

core::CbmaSystem make_cell(const core::SystemConfig& config) {
  auto deployment = rfsim::Deployment::paper_frame();
  deployment.add_tag({0.0, 0.5});
  deployment.add_tag({0.3, -0.6});
  deployment.add_tag({-0.3, 0.8});
  return core::CbmaSystem(config, deployment);
}

}  // namespace

int main() {
  core::SystemConfig config;
  config.max_tags = 3;
  const std::size_t packets = 300;
  const double itf_w = units::dbm_to_watts(-58.0);

  std::printf("coexistence demo: 3 tags, 300 packets per condition\n\n");
  Table table({"environment", "packet reception rate", "note"});

  {
    core::CbmaSystem cell = make_cell(config);
    Rng rng(1);
    const auto stats = cell.run_packets(packets, rng);
    table.add_row({"quiet lab, tone excitation",
                   Table::percent(1.0 - stats.frame_error_rate(), 1),
                   "baseline"});
  }
  {
    core::CbmaSystem cell = make_cell(config);
    cell.add_interferer(std::make_unique<rfsim::WifiInterferer>(itf_w));
    Rng rng(2);
    const auto stats = cell.run_packets(packets, rng);
    table.add_row({"busy WiFi neighbour",
                   Table::percent(1.0 - stats.frame_error_rate(), 1),
                   "CSMA bursts, channel mostly idle"});
  }
  {
    core::CbmaSystem cell = make_cell(config);
    cell.add_interferer(std::make_unique<rfsim::BluetoothInterferer>(2.0 * itf_w));
    Rng rng(3);
    const auto stats = cell.run_packets(packets, rng);
    table.add_row({"Bluetooth headset nearby",
                   Table::percent(1.0 - stats.frame_error_rate(), 1),
                   "FHSS: few dwells land in-band"});
  }
  {
    core::CbmaSystem cell = make_cell(config);
    cell.add_interferer(std::make_unique<rfsim::WifiInterferer>(itf_w));
    cell.add_interferer(std::make_unique<rfsim::BluetoothInterferer>(2.0 * itf_w));
    Rng rng(4);
    const auto stats = cell.run_packets(packets, rng);
    table.add_row({"WiFi + Bluetooth together",
                   Table::percent(1.0 - stats.frame_error_rate(), 1),
                   "interference compounds mildly"});
  }
  {
    core::CbmaSystem cell = make_cell(config);
    cell.set_excitation(std::make_unique<rfsim::OfdmExcitation>(500e-6, 700e-6));
    Rng rng(5);
    const auto stats = cell.run_packets(packets, rng);
    table.add_row({"OFDM excitation source",
                   Table::percent(1.0 - stats.frame_error_rate(), 1),
                   "tags cannot reflect during gaps"});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway (paper Fig. 12): CBMA coexists with WiFi/Bluetooth at a\n"
              "negligible cost, but an intermittent OFDM excitation starves the\n"
              "tags of carrier to reflect and reception drops sharply.\n");
  return 0;
}
