// Coexistence scenario (§VII-C3): CBMA shares the air with a WiFi access
// point and a Bluetooth headset, and finally loses its clean tone when the
// excitation source switches to OFDM traffic. Demonstrates injecting
// interference and excitation models through the public API, driving the
// condition grid through the declarative core::SweepSpec/SweepRunner
// experiment API (the same machinery the bench/ drivers use), and shows
// the Fig. 12 behaviour interactively.
#include <cstdio>
#include <memory>

#include "core/sweep.h"
#include "core/system.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

core::CbmaSystem make_cell(const core::SystemConfig& config) {
  auto deployment = rfsim::Deployment::paper_frame();
  deployment.add_tag({0.0, 0.5});
  deployment.add_tag({0.3, -0.6});
  deployment.add_tag({-0.3, 0.8});
  return core::CbmaSystem(config, deployment);
}

}  // namespace

int main() {
  core::SystemConfig config;
  config.max_tags = 3;
  const std::size_t packets = 300;
  const double itf_w = units::dbm_to_watts(-58.0);

  struct Environment {
    const char* name;
    const char* note;
  };
  const Environment environments[] = {
      {"quiet lab, tone excitation", "baseline"},
      {"busy WiFi neighbour", "CSMA bursts, channel mostly idle"},
      {"Bluetooth headset nearby", "FHSS: few dwells land in-band"},
      {"WiFi + Bluetooth together", "interference compounds mildly"},
      {"OFDM excitation source", "tags cannot reflect during gaps"},
  };

  // Declarative sweep over the five environments; the runner fans the
  // points out over worker threads exactly like the bench drivers do.
  core::SweepSpec spec;
  spec.name = "coexistence";
  spec.title = "coexistence demo";
  spec.axes = {core::Axis::categorical(
      "environment", {"quiet", "wifi", "bluetooth", "wifi+bluetooth", "ofdm"})};
  spec.trials = packets;

  std::printf("coexistence demo: 3 tags, 300 packets per condition\n\n");

  double prr[5] = {0, 0, 0, 0, 0};
  core::SweepRunner(spec).run([&](const core::SweepPoint& point) {
    const std::size_t c = point.flat();
    core::CbmaSystem cell = make_cell(config);
    if (c == 1 || c == 3) {
      cell.add_interferer(std::make_unique<rfsim::WifiInterferer>(itf_w));
    }
    if (c == 2 || c == 3) {
      cell.add_interferer(std::make_unique<rfsim::BluetoothInterferer>(2.0 * itf_w));
    }
    if (c == 4) {
      cell.set_excitation(std::make_unique<rfsim::OfdmExcitation>(500e-6, 700e-6));
    }
    Rng rng(c + 1);
    const auto stats = cell.run_packets(packets, rng);
    prr[c] = 1.0 - stats.frame_error_rate();
  });

  Table table({"environment", "packet reception rate", "note"});
  for (std::size_t c = 0; c < std::size(environments); ++c) {
    table.add_row({environments[c].name, Table::percent(prr[c], 1),
                   environments[c].note});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway (paper Fig. 12): CBMA coexists with WiFi/Bluetooth at a\n"
              "negligible cost, but an intermittent OFDM excitation starves the\n"
              "tags of carrier to reflect and reception drops sharply.\n");
  return 0;
}
