// Dense-deployment scenario: thirty tags populate a warehouse bay but the
// code space serves ten concurrent transmitters at a time. The §V-C node
// selector drafts a group, abandons members whose ACK ratio stays under
// 70 % after power control, and replaces them from the idle pool using
// Eq. 1 predictions with the λ/2 exclusion rule.
#include <algorithm>
#include <cstdio>

#include "core/system.h"
#include "mac/node_selection.h"
#include "util/table.h"

using namespace cbma;

int main() {
  core::SystemConfig config;
  config.max_tags = 10;

  rfsim::Deployment deployment = rfsim::Deployment::paper_frame();
  Rng rng(555);
  deployment.place_random_tags(30, rfsim::Room{4.0, 6.0}, rng, 0.15, 0.3);
  core::CbmaSystem cell(config, deployment);

  std::printf("dense deployment: population 30 tags, concurrent group of 10\n\n");

  // Initial group: a random draw, as §V-C starts from.
  std::vector<std::size_t> order(30);
  for (std::size_t i = 0; i < 30; ++i) order[i] = i;
  rng.shuffle(order);
  cell.set_active_group({order.begin(), order.begin() + 10});

  mac::NodeSelectionConfig ns_cfg;
  const mac::NodeSelector selector(ns_cfg, cell.link_budget());
  std::printf("exclusion radius (lambda/2): %.3f m\n\n", selector.exclusion_radius());

  Table table({"round", "group FER", "bad tags (<70% ACK)", "replacements"});
  for (int round = 0; round < 8; ++round) {
    cell.run_power_control({}, 30, rng);
    const auto stats = cell.run_packets(60, rng);
    const auto ratios = stats.ack_ratios();
    const auto bad = static_cast<int>(std::count_if(
        ratios.begin(), ratios.end(),
        [&](double r) { return r < ns_cfg.bad_ack_ratio; }));

    const auto old_group = cell.active_group();
    auto new_group = selector.reselect(cell.population(), old_group, ratios,
                                       static_cast<std::size_t>(round), rng);
    int replaced = 0;
    for (std::size_t slot = 0; slot < new_group.size(); ++slot) {
      if (new_group[slot] != old_group[slot]) ++replaced;
    }
    table.add_row({std::to_string(round + 1),
                   Table::percent(stats.frame_error_rate(), 1),
                   std::to_string(bad), std::to_string(replaced)});
    if (bad == 0) break;  // §V-C goal: every member healthy
    cell.set_active_group(new_group);
  }
  std::printf("%s\n", table.render().c_str());

  const auto final_stats = cell.run_packets(100, rng);
  std::printf("final group FER: %.1f%%\n",
              100.0 * final_stats.frame_error_rate());
  std::printf("final group members (population index : predicted P_r):\n");
  for (const auto idx : cell.active_group()) {
    std::printf("  tag %2zu : %.1f dBm\n", idx, cell.predicted_power_dbm(idx));
  }
  return 0;
}
