// Quickstart: three backscatter tags transmit concurrently, the receiver
// separates and decodes them, and the acknowledgement drives Algorithm 1's
// power control. Walks the public API end to end in ~60 lines of logic.
#include <cstdio>
#include <string>

#include "core/probe_session.h"
#include "core/system.h"

using namespace cbma;

int main() {
  // 1. Configure the cell — defaults mirror the paper's implementation
  //    (2 GHz carrier, 20 MHz subcarrier shift, 1 Mbps tags, 2NC codes).
  core::SystemConfig config;
  config.max_tags = 3;

  // 2. Deploy: excitation source at (-0.5, 0), receiver at (0.5, 0)
  //    (the paper's Fig. 3 frame), three tags at different ranges.
  auto deployment = rfsim::Deployment::paper_frame();
  deployment.add_tag({0.0, 0.4});    // close — strong backscatter
  deployment.add_tag({0.3, -0.7});   // mid-range
  deployment.add_tag({-0.2, 1.0});   // far — weakest
  core::CbmaSystem system(config, deployment);

  std::printf("CBMA quickstart — %s\n\n", config.summary().c_str());
  for (std::size_t i = 0; i < deployment.tag_count(); ++i) {
    std::printf("tag %zu: d1=%.2fm d2=%.2fm SNR=%.1f dB\n", i,
                deployment.es_to_tag(i), deployment.tag_to_rx(i),
                system.snr_db(i));
  }

  // 3. One collided transmission: every tag sends its own payload at the
  //    same time in the same band. TransmitOptions can also pin per-tag
  //    delays or restrict the transmitting subset; every field left empty
  //    picks the randomized default.
  Rng rng(7);
  const std::vector<std::vector<std::uint8_t>> payloads{
      {'h', 'e', 'l', 'l', 'o'},
      {'w', 'o', 'r', 'l', 'd'},
      {'c', 'b', 'm', 'a', '!'},
  };
  core::TransmitOptions options;
  options.payloads = payloads;
  const auto report = system.transmit(options, rng);

  std::printf("\ncollided round: frame %sdetected\n",
              report.frame_start ? "" : "NOT ");
  for (const auto& r : report.results) {
    std::string text(r.payload.begin(), r.payload.end());
    std::printf("  tag %zu: detected=%s corr=%.2f crc=%s payload=\"%s\"\n",
                r.tag_index, r.detected ? "yes" : "no", r.correlation,
                r.crc_ok ? "ok" : "bad", r.crc_ok ? text.c_str() : "-");
  }
  std::printf("ACK broadcast for tags:");
  for (const auto id : report.ack.decoded_tags) std::printf(" %zu", id);
  std::printf("\n");

  // 4. Run a packet batch, then let Algorithm 1 equalize the received
  //    power levels via the tags' impedance switches.
  const auto before = system.run_packets(100, rng);
  const auto outcome = system.run_power_control({}, 40, rng);
  const auto after = system.run_packets(100, rng);

  std::printf("\npower control (Algorithm 1):\n");
  std::printf("  FER before: %.3f\n", before.frame_error_rate());
  std::printf("  rounds used: %zu (cap 3x tags)%s\n", outcome.rounds,
              outcome.exhausted ? ", exhausted" : "");
  for (std::size_t i = 0; i < deployment.tag_count(); ++i) {
    std::printf("  tag %zu impedance level: %zu (SNR now %.1f dB)\n", i,
                system.impedance_level(i), system.snr_db(i));
  }
  std::printf("  FER after : %.3f\n", after.frame_error_rate());

  // 5. Peek inside the pipeline: enable the signal-probe layer, rerun one
  //    collided round, and dump the per-stage taps (excitation envelope,
  //    composite IQ, sync energy, correlation profiles, soft bits) plus the
  //    per-tag link-quality rows. Inspect with tools/probe_inspect.py.
  core::ProbeSession::enable("quickstart_probe.bin");
  const auto probed = system.transmit(options, rng);
  std::printf("\nsignal probes (see quickstart_probe.bin.json):\n");
  for (std::size_t i = 0; i < probed.link_quality.size(); ++i) {
    const auto& lq = probed.link_quality[i];
    if (!lq.valid) continue;
    std::printf("  tag %zu: SNR=%.1f dB EVM=%.3f margin-ratio=%.1f\n", i,
                lq.snr_db, lq.evm, lq.margin_ratio);
  }
  if (!core::ProbeSession::write_dump_if_requested()) return 1;
  core::ProbeSession::disable();
  return 0;
}
