// Office-floor scenario: the paper's "challenging indoor" setting made
// concrete. An open-plan office with interior walls (obstacle shadowing),
// rich multipath, a busy WiFi AP and Bluetooth peripherals; 16 asset tags
// are deployed and the AdaptiveSession runs the paper's complete workflow —
// power control each round, node selection when a member stays unhealthy —
// until the concurrent group converges.
#include <cstdio>
#include <memory>

#include "core/session.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

int main() {
  core::SystemConfig config;
  config.max_tags = 6;           // code space for six concurrent tags
  config.multipath.enabled = true;
  config.tx_power_dbm = 30.0;    // 1 W EIRP — an AP-class excitation source

  // Reader at the room centre; 16 tags across a 3 m x 3.5 m office bay
  // (backscatter range caps the practical cell size — see Table I).
  rfsim::Deployment deployment(rfsim::Point{-0.4, 0.0}, rfsim::Point{0.4, 0.0});
  Rng rng(31337);
  deployment.place_random_tags(16, rfsim::Room{3.0, 3.5}, rng, 0.25, 0.4);
  core::CbmaSystem office(config, deployment);

  // Interior walls: a meeting-room corner and a long partition.
  rfsim::ObstacleMap walls;
  walls.add({{-1.5, 1.1}, {0.4, 1.1}, 8.0});    // drywall partition
  walls.add({{0.4, 1.1}, {0.4, 1.75}, 8.0});    // meeting-corner side wall
  walls.add({{-0.8, -1.2}, {1.5, -1.2}, 5.0});  // glass wall, lighter loss
  office.set_obstacles(walls);

  // Ambient radios sharing the band.
  office.add_interferer(
      std::make_unique<rfsim::WifiInterferer>(units::dbm_to_watts(-58.0)));
  office.add_interferer(
      std::make_unique<rfsim::BluetoothInterferer>(units::dbm_to_watts(-55.0)));

  std::printf("office floor: 16 tags, 3 walls, WiFi+BT interference, multipath\n\n");
  std::printf("predicted (theory) vs shadowed strength of the first tags:\n");
  for (std::size_t i = 0; i < 6; ++i) {
    std::printf("  tag %zu: Eq.1 %.1f dBm, with walls %.1f dBm\n", i,
                office.predicted_power_dbm(i), office.received_power_dbm(i));
  }

  // Start with an arbitrary group of six and let the session converge.
  office.set_active_group({0, 1, 2, 3, 4, 5});
  core::SessionConfig session_cfg;
  session_cfg.packets_per_round = 30;
  session_cfg.max_rounds = 8;
  session_cfg.final_packets = 100;

  core::AdaptiveSession session(office, session_cfg);
  const auto result = session.run(rng);

  Table table({"round", "group FER", "reselected", "PC adjustments"});
  for (const auto& round : result.history) {
    table.add_row({std::to_string(round.round + 1), Table::percent(round.fer, 1),
                   round.reselected ? "yes" : "no",
                   std::to_string(round.pc_adjustments)});
  }
  std::printf("\n%s\n", table.render().c_str());

  std::printf("converged: %s (after %zu round%s)\n",
              result.converged ? "yes" : "no", result.rounds_to_converge,
              result.rounds_to_converge == 1 ? "" : "s");
  std::printf("steady-state FER of the working group: %.1f%%\n",
              100.0 * result.final_fer);
  std::printf("final group:");
  for (const auto idx : office.active_group()) std::printf(" %zu", idx);
  std::printf("\n\nthe session keeps the cell delivering despite walls and "
              "interference —\nthe paper's 'challenging indoor' claim, end to end.\n");
  return 0;
}
