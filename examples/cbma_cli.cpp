// cbma_cli — run a custom CBMA scenario from the command line.
//
//   cbma_cli [--tags N] [--radius M] [--distance M] [--packets P]
//            [--family gold|2nc] [--bitrate MBPS] [--power DBM]
//            [--payload BYTES] [--pc] [--wifi] [--bluetooth] [--ofdm]
//            [--multipath] [--probe PATH] [--cells N] [--profile] [--seed S]
//
// Tags are placed on a ring of the given radius centred `--distance`
// metres from the receiver side of the paper frame. Reports per-tag SNR,
// delivery and the aggregate FER/goodput, optionally after Algorithm 1.
//
// With `--cells N` the CLI switches to the net:: multi-cell layer: an
// N x N gateway grid over 6 m x 4 m bays, `--tags` tags per cell, shared
// 64-code family sliced by the spatial-reuse scheduler. Ring geometry and
// the probe/stream/interferer flags do not apply in that mode.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/probe_session.h"
#include "core/profile_plane.h"
#include "core/system.h"
#include "mac/throughput.h"
#include "net/network.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/units.h"

using namespace cbma;

namespace {

struct CliOptions {
  std::size_t tags = 4;
  double radius_m = 0.25;
  double distance_m = 0.75;
  std::size_t packets = 200;
  pn::CodeFamily family = pn::CodeFamily::kTwoNC;
  double bitrate_mbps = 1.0;
  double power_dbm = 20.0;
  std::size_t payload = 8;
  bool power_control = false;
  bool wifi = false;
  bool bluetooth = false;
  bool ofdm = false;
  bool multipath = false;
  std::string probe;  ///< signal-probe dump path ("" = probing off)
  std::size_t stream_chunk = 0;  ///< rx ingestion chunk (0 = whole rounds)
  std::size_t cells = 0;  ///< cells per side (0 = single-cell ring mode)
  bool profile = false;   ///< print the top-10 exclusive-time table
  std::uint64_t seed = 1;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --tags N         concurrent tags (default 4)\n"
      "  --radius M       tag ring radius in metres (default 0.25)\n"
      "  --distance M     ring centre offset from origin (default 0.75)\n"
      "  --packets P      collided packets to send (default 200)\n"
      "  --family F       gold | 2nc (default 2nc)\n"
      "  --bitrate R      per-tag bit rate in Mbps (default 1)\n"
      "  --power P        excitation power in dBm (default 20)\n"
      "  --payload B      payload bytes per frame (default 8)\n"
      "  --pc             run Algorithm 1 power control first\n"
      "  --wifi           add a WiFi interferer\n"
      "  --bluetooth      add a Bluetooth interferer\n"
      "  --ofdm           use an intermittent OFDM excitation source\n"
      "  --multipath      enable Rician multipath echoes\n"
      "  --probe PATH     capture signal probes to PATH (+ PATH.json manifest)\n"
      "  --stream CHUNK   feed the receiver in CHUNK-sample pieces through the\n"
      "                   streaming session (identical results; default: whole\n"
      "                   rounds)\n"
      "  --cells N        multi-cell mode: N x N gateway grid, --tags tags per\n"
      "                   cell, spatial code reuse over a shared 64-code family\n"
      "  --profile        profile the run and print the top-10 caller paths by\n"
      "                   exclusive time (see also CBMA_PROFILE=PATH)\n"
      "  --seed S         RNG seed (default 1)\n",
      argv0);
}

bool parse(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return false;
    } else if (arg == "--tags") {
      const char* v = need_value("--tags");
      if (!v) return false;
      opt.tags = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--radius") {
      const char* v = need_value("--radius");
      if (!v) return false;
      opt.radius_m = std::atof(v);
    } else if (arg == "--distance") {
      const char* v = need_value("--distance");
      if (!v) return false;
      opt.distance_m = std::atof(v);
    } else if (arg == "--packets") {
      const char* v = need_value("--packets");
      if (!v) return false;
      opt.packets = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--family") {
      const char* v = need_value("--family");
      if (!v) return false;
      if (std::strcmp(v, "gold") == 0) {
        opt.family = pn::CodeFamily::kGold;
      } else if (std::strcmp(v, "2nc") == 0) {
        opt.family = pn::CodeFamily::kTwoNC;
      } else {
        std::fprintf(stderr, "unknown code family '%s'\n", v);
        return false;
      }
    } else if (arg == "--bitrate") {
      const char* v = need_value("--bitrate");
      if (!v) return false;
      opt.bitrate_mbps = std::atof(v);
    } else if (arg == "--power") {
      const char* v = need_value("--power");
      if (!v) return false;
      opt.power_dbm = std::atof(v);
    } else if (arg == "--payload") {
      const char* v = need_value("--payload");
      if (!v) return false;
      opt.payload = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--probe") {
      const char* v = need_value("--probe");
      if (!v) return false;
      opt.probe = v;
    } else if (arg == "--stream") {
      const char* v = need_value("--stream");
      if (!v) return false;
      opt.stream_chunk = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--cells") {
      const char* v = need_value("--cells");
      if (!v) return false;
      opt.cells = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = need_value("--seed");
      if (!v) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg == "--pc") {
      opt.power_control = true;
    } else if (arg == "--wifi") {
      opt.wifi = true;
    } else if (arg == "--bluetooth") {
      opt.bluetooth = true;
    } else if (arg == "--ofdm") {
      opt.ofdm = true;
    } else if (arg == "--multipath") {
      opt.multipath = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return false;
    }
  }
  return true;
}

// With --profile: where did the time go — top-10 caller paths by exclusive
// time out of the profiler's attribution tree, plus the collapsed-stack
// export if CBMA_PROFILE=<path> also asked for the flamegraph file.
void print_profile_report() {
  if (!core::ProfilePlane::enabled()) return;
  const auto rows = core::ProfilePlane::top_exclusive(10);
  Table table({"caller path", "count", "incl ms", "excl ms"});
  for (const auto& row : rows) {
    table.add_row({row.path, std::to_string(row.count),
                   Table::num(static_cast<double>(row.incl_ns) / 1e6, 3),
                   Table::num(static_cast<double>(row.excl_ns) / 1e6, 3)});
  }
  std::printf("\nprofile (top 10 by exclusive time):\n%s\n",
              table.render().c_str());
  if (!core::ProfilePlane::write_collapsed_if_requested()) {
    std::fprintf(stderr, "profile: collapsed-stack export failed\n");
  }
}

// Multi-cell mode (`--cells N`): the net:: layer over an N x N bay grid.
int run_multicell(const CliOptions& opt) {
  constexpr double kBayWidth = 6.0;
  constexpr double kBayHeight = 4.0;
  constexpr std::size_t kRounds = 3;

  net::NetworkConfig cfg;
  cfg.cell.max_tags = opt.tags;
  cfg.cell.code_family = opt.family;
  cfg.cell.code_min_length = opt.family == pn::CodeFamily::kGold ? 31 : 20;
  cfg.cell.bitrate_bps = opt.bitrate_mbps * 1e6;
  cfg.cell.tx_power_dbm = opt.power_dbm;
  cfg.cell.payload_bytes = opt.payload;
  cfg.cell.multipath.enabled = opt.multipath;
  cfg.packets_per_round = opt.packets;

  const auto side = opt.cells;
  auto network = net::Network::grid(cfg,
                                    kBayWidth * static_cast<double>(side),
                                    kBayHeight * static_cast<double>(side),
                                    side, side);
  Rng rng(opt.seed);
  network.place_random_tags(side * side * opt.tags, rng);

  std::printf("scenario: %s\n", network.config().cell.summary().c_str());
  std::printf("%zux%zu gateway grid over %.0fm x %.0fm, %zu tags, "
              "%zu reuse colors; %zu packets/cell/round; seed %llu\n\n",
              side, side, kBayWidth * static_cast<double>(side),
              kBayHeight * static_cast<double>(side), network.tag_count(),
              network.colors_used(), opt.packets,
              static_cast<unsigned long long>(opt.seed));

  net::NetworkRoundResult result;
  std::size_t roamed = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    result = network.run_round(util::point_seed(opt.seed, 100 + round));
    roamed += result.roamed;
  }

  Table table({"cell", "color", "codes", "tags", "FER", "goodput Mbps",
               "intercell dBm"});
  for (const auto& cell : result.cells) {
    const auto& gw = network.gateways()[cell.gateway_id];
    table.add_row(
        {std::to_string(cell.gateway_id), std::to_string(gw.color),
         "[" + std::to_string(gw.code_offset) + "," +
             std::to_string(gw.code_offset + gw.code_count) + ")",
         std::to_string(cell.tags_served) + "/" +
             std::to_string(cell.tags_total),
         cell.stats.total_sent() > 0
             ? Table::percent(cell.stats.frame_error_rate(), 1)
             : "-",
         Table::num(cell.goodput_bps / 1e6, 2),
         Table::num(cell.interference_dbm, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("tags served        : %zu/%zu\n", result.tags_served,
              result.tags_total);
  std::printf("tags roamed        : %zu (over %zu rounds)\n", roamed, kRounds);
  std::printf("aggregate goodput  : %.2f Mbps\n",
              result.aggregate_goodput_bps / 1e6);
  std::printf("Jain fairness      : %.3f\n", result.jain_fairness);
  print_profile_report();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!parse(argc, argv, opt)) return 1;
  if (opt.tags < 1 || opt.packets < 1) {
    std::fprintf(stderr, "--tags and --packets must be positive\n");
    return 1;
  }
  if (opt.profile) core::ProfilePlane::enable();
  if (opt.cells > 0) {
    try {
      return run_multicell(opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "multi-cell setup failed: %s\n", e.what());
      return 1;
    }
  }

  core::SystemConfig config;
  config.max_tags = opt.tags;
  config.code_family = opt.family;
  config.code_min_length = opt.family == pn::CodeFamily::kGold ? 31 : 20;
  config.bitrate_bps = opt.bitrate_mbps * 1e6;
  config.tx_power_dbm = opt.power_dbm;
  config.payload_bytes = opt.payload;
  config.multipath.enabled = opt.multipath;
  config.probe = opt.probe;  // "" keeps probing off (strict identity)
  config.rx_chunk_samples = opt.stream_chunk;  // 0 keeps whole-round feeds

  auto deployment = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < opt.tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(opt.tags);
    deployment.add_tag({opt.radius_m * std::cos(angle),
                        opt.distance_m + opt.radius_m * std::sin(angle)});
  }

  core::CbmaSystem system(config, deployment);
  if (opt.wifi) {
    system.add_interferer(
        std::make_unique<rfsim::WifiInterferer>(units::dbm_to_watts(-58.0)));
  }
  if (opt.bluetooth) {
    system.add_interferer(
        std::make_unique<rfsim::BluetoothInterferer>(units::dbm_to_watts(-55.0)));
  }
  if (opt.ofdm) {
    system.set_excitation(std::make_unique<rfsim::OfdmExcitation>(500e-6, 700e-6));
  }

  std::printf("scenario: %s\n", config.summary().c_str());
  std::printf("%zu tags on a %.2fm ring at %.2fm; %zu packets; seed %llu\n\n",
              opt.tags, opt.radius_m, opt.distance_m, opt.packets,
              static_cast<unsigned long long>(opt.seed));

  Rng rng(opt.seed);
  if (opt.power_control) {
    const auto outcome = system.run_power_control({}, 40, rng);
    std::printf("power control: %zu adjustment rounds%s\n\n", outcome.rounds,
                outcome.exhausted ? " (cycle cap reached)" : "");
  }

  const auto stats = system.run_packets(opt.packets, rng);
  const auto ratios = stats.ack_ratios();

  Table table({"tag", "SNR (dB)", "impedance level", "delivered"});
  for (std::size_t k = 0; k < opt.tags; ++k) {
    table.add_row({std::to_string(k), Table::num(system.snr_db(k), 1),
                   std::to_string(system.impedance_level(k)),
                   Table::percent(ratios[k], 1)});
  }
  std::printf("%s\n", table.render().c_str());

  mac::CbmaRate rate;
  rate.per_tag_bitrate_bps = config.bitrate_bps;
  rate.n_tags = opt.tags;
  rate.frame_bits = phy::frame_bit_count(config.payload_bytes);
  rate.payload_bits = config.payload_bytes * 8;
  rate.frame_error_rate = stats.frame_error_rate();
  const auto rates = mac::cbma_throughput(rate);

  std::printf("group FER          : %.2f%%\n", 100.0 * stats.frame_error_rate());
  std::printf("aggregate raw rate : %.2f Mbps\n", rates.aggregate_raw_bps / 1e6);
  std::printf("aggregate goodput  : %.2f Mbps\n", rates.aggregate_goodput_bps / 1e6);

  if (core::ProbeSession::enabled()) {
    if (!core::ProbeSession::write_dump_if_requested()) return 1;
    std::printf("probe dump         : %s (+ .json manifest)\n",
                opt.probe.empty() ? "$CBMA_PROBE" : opt.probe.c_str());
  }
  print_profile_report();
  return 0;
}
