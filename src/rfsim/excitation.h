// Excitation-source models.
//
// The tag can only backscatter while the excitation source is radiating, so
// the receiver-side observable of the excitation is its *amplitude envelope*
// scaling every tag's contribution. A continuous tone has a constant
// envelope; an OFDM (WiFi-like) excitation is intermittent — frames
// separated by idle gaps the tag cannot predict — which is exactly why the
// paper's Fig. 12 shows a sharp reception drop with OFDM excitation.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "util/rng.h"

namespace cbma::rfsim {

class ExcitationSource {
 public:
  virtual ~ExcitationSource() = default;
  virtual std::string name() const = 0;

  /// Fill `out` with the excitation amplitude envelope (values in [0, 1])
  /// for a window sampled at `sample_rate_hz`.
  virtual void envelope(std::span<double> out, double sample_rate_hz, Rng& rng) const = 0;
};

/// Constant single-frequency tone: envelope ≡ 1.
class ContinuousTone final : public ExcitationSource {
 public:
  std::string name() const override { return "tone"; }
  void envelope(std::span<double> out, double sample_rate_hz, Rng& rng) const override;
};

/// Bursty OFDM excitation: busy periods (frames on air, envelope 1)
/// alternating with idle periods (inter-frame gaps, envelope 0), both
/// exponentially distributed.
class OfdmExcitation final : public ExcitationSource {
 public:
  OfdmExcitation(double mean_busy_s, double mean_idle_s);

  std::string name() const override { return "ofdm"; }
  void envelope(std::span<double> out, double sample_rate_hz, Rng& rng) const override;

  /// Long-run fraction of time the excitation is on air.
  double duty_cycle() const { return mean_busy_s_ / (mean_busy_s_ + mean_idle_s_); }

 private:
  double mean_busy_s_;
  double mean_idle_s_;
};

}  // namespace cbma::rfsim
