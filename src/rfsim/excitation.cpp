#include "rfsim/excitation.h"

#include <algorithm>

#include "util/expect.h"

namespace cbma::rfsim {

void ContinuousTone::envelope(std::span<double> out, double sample_rate_hz,
                              Rng& rng) const {
  (void)sample_rate_hz;
  (void)rng;
  std::fill(out.begin(), out.end(), 1.0);
}

OfdmExcitation::OfdmExcitation(double mean_busy_s, double mean_idle_s)
    : mean_busy_s_(mean_busy_s), mean_idle_s_(mean_idle_s) {
  CBMA_REQUIRE(mean_busy_s > 0.0 && mean_idle_s > 0.0,
               "busy/idle durations must be positive");
}

void OfdmExcitation::envelope(std::span<double> out, double sample_rate_hz,
                              Rng& rng) const {
  CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  std::size_t pos = 0;
  // Random initial phase of the busy/idle cycle so frame starts are not
  // correlated with backscatter frame starts.
  bool busy = rng.bernoulli(duty_cycle());
  while (pos < out.size()) {
    const double duration_s = rng.exponential(busy ? mean_busy_s_ : mean_idle_s_);
    const auto n = std::max<std::size_t>(1, static_cast<std::size_t>(duration_s * sample_rate_hz));
    const std::size_t end = std::min(out.size(), pos + n);
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(pos),
              out.begin() + static_cast<std::ptrdiff_t>(end), busy ? 1.0 : 0.0);
    pos = end;
    busy = !busy;
  }
}

}  // namespace cbma::rfsim
