#include "rfsim/obstacle.h"

#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::rfsim {
namespace {

/// Orientation of the ordered triple (a, b, c): >0 counter-clockwise,
/// <0 clockwise, 0 collinear.
double cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool on_segment(const Point& a, const Point& b, const Point& p) {
  return std::min(a.x, b.x) - 1e-12 <= p.x && p.x <= std::max(a.x, b.x) + 1e-12 &&
         std::min(a.y, b.y) - 1e-12 <= p.y && p.y <= std::max(a.y, b.y) + 1e-12;
}

}  // namespace

bool segments_intersect(const Point& p1, const Point& p2, const Point& q1,
                        const Point& q2) {
  const double d1 = cross(q1, q2, p1);
  const double d2 = cross(q1, q2, p2);
  const double d3 = cross(p1, p2, q1);
  const double d4 = cross(p1, p2, q2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && on_segment(q1, q2, p1)) return true;
  if (d2 == 0 && on_segment(q1, q2, p2)) return true;
  if (d3 == 0 && on_segment(p1, p2, q1)) return true;
  if (d4 == 0 && on_segment(p1, p2, q2)) return true;
  return false;
}

ObstacleMap::ObstacleMap(std::vector<Obstacle> obstacles)
    : obstacles_(std::move(obstacles)) {
  for (const auto& o : obstacles_) {
    CBMA_REQUIRE(o.loss_db >= 0.0, "obstacle loss must be non-negative");
  }
}

void ObstacleMap::add(Obstacle obstacle) {
  CBMA_REQUIRE(obstacle.loss_db >= 0.0, "obstacle loss must be non-negative");
  obstacles_.push_back(obstacle);
}

const Obstacle& ObstacleMap::obstacle(std::size_t i) const {
  CBMA_REQUIRE(i < obstacles_.size(), "obstacle index out of range");
  return obstacles_[i];
}

double ObstacleMap::path_loss_db(const Point& from, const Point& to) const {
  double loss = 0.0;
  for (const auto& o : obstacles_) {
    if (segments_intersect(from, to, o.a, o.b)) loss += o.loss_db;
  }
  return loss;
}

double ObstacleMap::received_power(const LinkBudget& budget, const Deployment& dep,
                                   std::size_t tag_index) const {
  const double clear = budget.received_power(dep, tag_index);
  const double loss_db = path_loss_db(dep.excitation_source(), dep.tag(tag_index)) +
                         path_loss_db(dep.tag(tag_index), dep.receiver());
  return clear * units::from_db(-loss_db);
}

double ObstacleMap::received_amplitude(const LinkBudget& budget,
                                       const Deployment& dep,
                                       std::size_t tag_index) const {
  return std::sqrt(received_power(budget, dep, tag_index));
}

}  // namespace cbma::rfsim
