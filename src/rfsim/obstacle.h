// Obstacle shadowing for the "challenging indoor scenarios with obstacles"
// the paper's headline claim references (§I, abstract). An obstacle is a
// wall/furniture line segment with a penetration loss; a propagation hop
// (ES→tag or tag→RX) that crosses it is attenuated by that loss. The
// ObstacleMap composes with the Friis budget to give shadowed received
// powers and amplitudes.
#pragma once

#include <cstddef>
#include <vector>

#include "rfsim/friis.h"
#include "rfsim/geometry.h"

namespace cbma::rfsim {

/// A straight attenuating segment (interior wall, cabinet, shelf...).
struct Obstacle {
  Point a;
  Point b;
  double loss_db = 10.0;  ///< per-crossing penetration loss
};

/// Do segments [p1,p2] and [q1,q2] intersect (proper or touching)?
bool segments_intersect(const Point& p1, const Point& p2, const Point& q1,
                        const Point& q2);

class ObstacleMap {
 public:
  ObstacleMap() = default;
  explicit ObstacleMap(std::vector<Obstacle> obstacles);

  void add(Obstacle obstacle);
  std::size_t size() const { return obstacles_.size(); }
  const Obstacle& obstacle(std::size_t i) const;

  /// Total penetration loss (dB) along the straight path from `from` to
  /// `to`: the sum of the losses of every crossed obstacle.
  double path_loss_db(const Point& from, const Point& to) const;

  /// Shadowed received power for tag i of a deployment: Eq. 1 attenuated
  /// by the losses of both hops.
  double received_power(const LinkBudget& budget, const Deployment& dep,
                        std::size_t tag_index) const;

  /// √ of the above (the amplitude the channel consumes).
  double received_amplitude(const LinkBudget& budget, const Deployment& dep,
                            std::size_t tag_index) const;

 private:
  std::vector<Obstacle> obstacles_;
};

}  // namespace cbma::rfsim
