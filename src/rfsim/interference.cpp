#include "rfsim/interference.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace cbma::rfsim {
namespace {

/// Add complex Gaussian energy of total power `power_w` to iq[begin, end).
void add_burst(std::vector<std::complex<double>>& iq, std::size_t begin, std::size_t end,
               double power_w, Rng& rng) {
  const double sigma = std::sqrt(power_w / 2.0);
  for (std::size_t s = begin; s < end; ++s) {
    iq[s] += std::complex<double>(rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma));
  }
}

}  // namespace

WifiInterferer::WifiInterferer(double power_w, double mean_frame_s, double mean_idle_s)
    : power_w_(power_w), mean_frame_s_(mean_frame_s), mean_idle_s_(mean_idle_s) {
  CBMA_REQUIRE(power_w >= 0.0, "negative interference power");
  CBMA_REQUIRE(mean_frame_s > 0.0 && mean_idle_s > 0.0, "durations must be positive");
}

double WifiInterferer::occupancy() const {
  return mean_frame_s_ / (mean_frame_s_ + mean_idle_s_);
}

void WifiInterferer::add_to(std::vector<std::complex<double>>& iq, double sample_rate_hz,
                            Rng& rng) const {
  CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  if (power_w_ <= 0.0) return;
  std::size_t pos = 0;
  bool busy = rng.bernoulli(occupancy());
  while (pos < iq.size()) {
    const double duration_s = rng.exponential(busy ? mean_frame_s_ : mean_idle_s_);
    const auto n = std::max<std::size_t>(1, static_cast<std::size_t>(duration_s * sample_rate_hz));
    const std::size_t end = std::min(iq.size(), pos + n);
    if (busy) add_burst(iq, pos, end, power_w_, rng);
    pos = end;
    busy = !busy;
  }
}

CarrierLeakageInterferer::CarrierLeakageInterferer(double power_w,
                                                   double freq_offset_hz,
                                                   std::string source)
    : power_w_(power_w), freq_offset_hz_(freq_offset_hz), source_(std::move(source)) {
  CBMA_REQUIRE(power_w >= 0.0, "negative interference power");
}

void CarrierLeakageInterferer::add_to(std::vector<std::complex<double>>& iq,
                                      double sample_rate_hz, Rng& rng) const {
  CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  if (power_w_ <= 0.0) return;
  const double amplitude = std::sqrt(power_w_);
  const double phase0 = rng.phase();
  const double dphi =
      2.0 * 3.14159265358979323846 * freq_offset_hz_ / sample_rate_hz;
  // Coherent tone: rotate incrementally instead of calling sin/cos per
  // sample (the offset is tiny relative to the sample rate, so the
  // recurrence stays numerically clean over a window).
  std::complex<double> tone = std::polar(amplitude, phase0);
  const std::complex<double> rot = std::polar(1.0, dphi);
  for (auto& s : iq) {
    s += tone;
    tone *= rot;
  }
}

BluetoothInterferer::BluetoothInterferer(double power_w, unsigned overlap_channels,
                                         double dwell_s)
    : power_w_(power_w), overlap_channels_(overlap_channels), dwell_s_(dwell_s) {
  CBMA_REQUIRE(power_w >= 0.0, "negative interference power");
  CBMA_REQUIRE(overlap_channels <= kChannels, "more overlap channels than BT has");
  CBMA_REQUIRE(dwell_s > 0.0, "dwell must be positive");
}

double BluetoothInterferer::occupancy() const {
  return static_cast<double>(overlap_channels_) / static_cast<double>(kChannels);
}

void BluetoothInterferer::add_to(std::vector<std::complex<double>>& iq,
                                 double sample_rate_hz, Rng& rng) const {
  CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  if (power_w_ <= 0.0) return;
  const auto dwell_samples =
      std::max<std::size_t>(1, static_cast<std::size_t>(dwell_s_ * sample_rate_hz));
  for (std::size_t pos = 0; pos < iq.size(); pos += dwell_samples) {
    if (!rng.bernoulli(occupancy())) continue;
    const std::size_t end = std::min(iq.size(), pos + dwell_samples);
    add_burst(iq, pos, end, power_w_, rng);
  }
}

}  // namespace cbma::rfsim
