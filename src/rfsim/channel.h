// The composite channel: assembles the receiver's complex-baseband window
// from every concurrently backscattering tag, the excitation envelope,
// ambient interference and thermal noise.
//
// Per DESIGN.md §4.1 the simulation runs at chip rate × samples_per_chip;
// each tag contributes a_i · e^{jφ_i} · chips_i(t − τ_i) where τ_i is the
// tag's asynchronous timing offset in (fractional) chips. Fractional delays
// are realized by linear interpolation, so sub-chip misalignment degrades
// correlation exactly as it does on hardware (Fig. 11).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "rfsim/excitation.h"
#include "rfsim/impairment.h"
#include "rfsim/interference.h"
#include "rfsim/noise.h"
#include "util/rng.h"

namespace cbma::rfsim {

/// One tag's on-air contribution for a window.
struct TagTransmission {
  std::span<const std::uint8_t> chips;  ///< on/off chip sequence (frame, spread)
  double amplitude = 0.0;               ///< received amplitude (Friis × |ΔΓ| × 4/π)
  double phase = 0.0;                   ///< carrier phase at the receiver
  double delay_chips = 0.0;             ///< asynchronous start offset, ≥ 0
  /// Residual frequency offset of this tag's subcarrier oscillator relative
  /// to the receiver's tuning (Hz). Independent tag oscillators drift by
  /// tens of ppm, so the *relative* phase between two tags rotates within a
  /// frame — without this, two equal-power tags at opposite phase would
  /// cancel in the magnitude envelope for the whole frame, which hardware
  /// does not exhibit.
  double freq_offset_hz = 0.0;
};

/// Rician-style multipath: `extra_taps` delayed Rayleigh echoes per tag.
struct MultipathConfig {
  bool enabled = false;
  unsigned extra_taps = 2;
  double max_excess_delay_chips = 1.5;
  double relative_power_db = -9.0;  ///< mean echo power relative to the LOS path
};

struct ChannelConfig {
  std::size_t samples_per_chip = 4;
  double chip_rate_hz = 31e6;  ///< for converting interferer durations to samples
  double noise_power_w = 0.0;
  double tail_pad_chips = 8.0;  ///< silence appended after the longest burst
  MultipathConfig multipath;
  /// Fault-injection stages applied during synthesis (all off by default):
  /// excitation dropout gates the envelope, SPDT settling shapes each tag's
  /// chip waveform, and impulsive bursts + ADC distortion hit the received
  /// window after noise. See DESIGN.md §6 for the ordering contract.
  ImpairmentConfig impairments;
};

/// Reusable synthesis buffers: sized once for a group's window length and
/// reused across packets so the per-packet path performs no allocation.
struct ChannelScratch {
  std::vector<double> envelope;  ///< excitation amplitude envelope
  std::vector<double> waveform;  ///< current tag's per-sample 0/1 expansion
};

class Channel {
 public:
  explicit Channel(ChannelConfig config);

  const ChannelConfig& config() const { return config_; }
  double sample_rate_hz() const;

  /// Synthesize the received window. `interferers` may be empty; the
  /// excitation envelope scales tag contributions only (noise and
  /// interference do not depend on the excitation source).
  std::vector<std::complex<double>> receive(
      std::span<const TagTransmission> tags, const ExcitationSource& excitation,
      std::span<const Interferer* const> interferers, Rng& rng) const;

  /// Convenience overload: continuous-tone excitation, no interferers.
  std::vector<std::complex<double>> receive(std::span<const TagTransmission> tags,
                                            Rng& rng) const;

  /// receive() into caller-owned buffers: `iq` and the scratch vectors are
  /// resized (capacity reused), so a sweep synthesizes thousands of windows
  /// with zero steady-state allocation.
  void receive_into(std::span<const TagTransmission> tags,
                    const ExcitationSource& excitation,
                    std::span<const Interferer* const> interferers, Rng& rng,
                    ChannelScratch& scratch,
                    std::vector<std::complex<double>>& iq) const;

  /// Magnitude envelope P(t) = √(I² + Q²) — the quantity the paper's
  /// receiver operates on (§V-B).
  static std::vector<double> magnitude(std::span<const std::complex<double>> iq);

 private:
  void add_tag_path(std::vector<std::complex<double>>& iq,
                    std::span<const double> waveform, double amplitude_scale,
                    double phase, double delay_chips, double freq_offset_hz,
                    std::span<const double> envelope) const;

  ChannelConfig config_;
  ImpairmentSuite impairments_;
};

}  // namespace cbma::rfsim
