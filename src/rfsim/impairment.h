// Composable, seed-deterministic fault injection for the simulated cell.
//
// The paper's robustness results are measured under degraded conditions —
// bursty OFDM excitation instead of a continuous tone (Fig. 12), large
// inter-tag power differences (Table II) — while the clean simulation models
// an always-on tone, ideal tag clocks, instantaneous SPDT switching and an
// ideal receiver front end. ImpairmentSuite injects those degradations as
// orthogonal, individually-gated stages so any bench can measure how
// gracefully the system degrades:
//
//   excitation side  DropoutImpairment      bursty on/off gating of the
//                                           excitation envelope (generalizes
//                                           the Fig. 12 OFDM envelope)
//   tag side         ClockDriftImpairment   chip-clock ppm error per tag:
//                                           subcarrier frequency offset plus
//                                           the accumulated timing skew
//                    SwitchingImpairment    SPDT start jitter and RC-style
//                                           settling of chip transitions
//   receiver side    ImpulsiveImpairment    impulsive interference bursts in
//                                           the received window
//                    AdcImpairment          front-end saturation (clipping)
//                                           and uniform quantization
//
// Every stage is off by default and draws from the caller's Rng only when
// enabled, so a default ImpairmentConfig leaves the RNG stream — and thus
// every existing bench table and BENCH_*.json byte — untouched. See
// DESIGN.md §6 for the model and the stage-ordering contract.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cbma::rfsim {

/// Excitation dropout: the carrier gates on and off in exponentially
/// distributed bursts (the tag cannot backscatter while it is off). `duty`
/// is the long-run on-air fraction; 1.0 keeps the excitation continuous.
struct DropoutImpairment {
  bool enabled = false;
  double duty = 1.0;           ///< long-run on-air fraction in (0, 1]
  double mean_burst_s = 500e-6;  ///< mean on-duration (802.11-frame scale)
};

/// Tag chip-clock error. Each group slot gets a static crystal offset
/// spread uniformly over [-max_static_ppm, +max_static_ppm] (assigned
/// deterministically at system construction), plus an optional per-frame
/// uniform wander of ±wander_ppm (temperature drift). A ppm error on the
/// chip clock shifts the derived subcarrier by the same relative amount and
/// skews the frame timing by ppm × frame length.
struct ClockDriftImpairment {
  bool enabled = false;
  double max_static_ppm = 0.0;  ///< per-slot crystal offset spread
  double wander_ppm = 0.0;      ///< additional per-frame uniform wander
};

/// SPDT switch non-ideality: a uniform [0, jitter_chips] extra start delay
/// per frame, and first-order settling of every chip transition with time
/// constant settle_chips (fraction of a chip) — short chips never reach the
/// full reflection coefficient, eroding correlation margin.
struct SwitchingImpairment {
  bool enabled = false;
  double jitter_chips = 0.0;
  double settle_chips = 0.0;  ///< RC time constant, in chips (0 = ideal)
};

/// Impulsive interference: bursts arriving as a Poisson process (exponential
/// inter-arrival at `events_per_s`), each an exponentially distributed
/// duration of constant-envelope noise at `amplitude` with a random phase.
struct ImpulsiveImpairment {
  bool enabled = false;
  double events_per_s = 0.0;
  double mean_duration_s = 1e-6;
  double amplitude = 0.0;  ///< per-burst envelope (same units as tag amplitude)
};

/// Receiver ADC front end: I and Q are independently clipped to
/// ±full_scale and quantized to `bits` uniform levels across that range.
struct AdcImpairment {
  bool enabled = false;
  double full_scale = 0.0;  ///< clip level; must be > 0 when enabled
  unsigned bits = 12;       ///< quantizer resolution (1..32)
};

struct ImpairmentConfig {
  DropoutImpairment dropout;
  ClockDriftImpairment drift;
  SwitchingImpairment switching;
  ImpulsiveImpairment impulsive;
  AdcImpairment adc;

  bool any_enabled() const {
    return dropout.enabled || drift.enabled || switching.enabled ||
           impulsive.enabled || adc.enabled;
  }

  /// Descriptive message per violated constraint (empty = valid);
  /// SystemConfig::validate() splices these into its own report.
  std::vector<std::string> validate() const;

  /// Compact "dropout(duty=0.5) adc(10b)" token for config summaries;
  /// empty when nothing is enabled, so default configs keep their
  /// fingerprint.
  std::string summary() const;
};

/// One tag's drawn perturbation for a frame; the system applies it to the
/// TagTransmission it hands the channel.
struct TagPerturbation {
  double extra_delay_chips = 0.0;
  double extra_freq_offset_hz = 0.0;
};

/// Applies an ImpairmentConfig's stages. Stateless beyond the config —
/// all randomness comes from the caller's Rng, in a fixed stage order, so
/// results are reproducible from the seed alone.
class ImpairmentSuite {
 public:
  ImpairmentSuite() = default;
  explicit ImpairmentSuite(ImpairmentConfig config);

  const ImpairmentConfig& config() const { return config_; }
  bool any_enabled() const { return config_.any_enabled(); }

  /// Static crystal offset (ppm) assigned to group slot `slot` of
  /// `slot_count`: slots are spread evenly over ±max_static_ppm (a single
  /// slot sits at +max_static_ppm). Deterministic — no RNG.
  double static_clock_ppm(std::size_t slot, std::size_t slot_count) const;

  /// Per-frame clock perturbation of a tag whose crystal offset is
  /// `static_ppm`: the subcarrier offset in Hz plus the mean timing skew
  /// over a `frame_chips`-chip burst. Draws once iff wander is enabled.
  TagPerturbation perturb_clock(double static_ppm, double subcarrier_hz,
                                double frame_chips, Rng& rng) const;

  /// Extra SPDT start delay for one frame (chips); draws iff enabled.
  double switching_jitter_chips(Rng& rng) const;

  /// Gate the excitation envelope with exponential on/off dropout bursts.
  void gate_excitation(std::span<double> envelope, double sample_rate_hz,
                       Rng& rng) const;

  /// First-order settling of the per-sample 0/1 chip waveform (no RNG).
  void settle_waveform(std::span<double> waveform,
                       std::size_t samples_per_chip) const;

  /// Receiver-side distortion, applied after noise: impulsive bursts first
  /// (they pass through the front end), then ADC clipping + quantization.
  void distort_rx(std::span<std::complex<double>> iq, double sample_rate_hz,
                  Rng& rng) const;

 private:
  ImpairmentConfig config_;
};

}  // namespace cbma::rfsim
