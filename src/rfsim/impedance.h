// Antenna-termination impedance networks and reflection coefficients.
//
// The paper's tag switches its antenna among four terminations via an
// HMC190B SPDT: a 3 pF capacitor, a 1 pF capacitor, an open circuit and a
// 2 nH inductor (§VI). The backscattered amplitude is proportional to the
// difference of reflection coefficients between the modulation states,
// |ΔΓ|. We compute Γ = (Z − Z0)/(Z + Z0) exactly from the circuit values;
// the *effective* per-state amplitude factors used by the simulation are
// calibrated to a monotone ~11 dB range (DESIGN.md §4.3) because the
// magnitude spread of ideal pure reactances is dominated by PCB parasitics
// we cannot measure.
#pragma once

#include <complex>
#include <string>
#include <vector>

namespace cbma::rfsim {

/// Impedance of an ideal series R-L-C network at frequency `hz`.
/// Pass capacitance_f = 0 for "no capacitor" (short, not open).
std::complex<double> series_rlc_impedance(double resistance_ohm, double inductance_h,
                                          double capacitance_f, double hz);

/// Reflection coefficient Γ = (Z − Z0)/(Z + Z0) against a real reference
/// impedance (default 50 Ω).
std::complex<double> reflection_coefficient(std::complex<double> z, double z0 = 50.0);

/// Γ of an open-circuit termination (exactly +1 in the ideal case).
std::complex<double> open_circuit_gamma();

/// One switchable termination state of the tag.
struct ReflectionState {
  std::string name;
  std::complex<double> gamma;   ///< computed reflection coefficient
  double amplitude_factor;      ///< calibrated backscatter amplitude multiplier, (0, 1]
};

/// The tag's switchable power levels (Algorithm 1's Z = 1..Z_max).
/// Levels are ordered weakest → strongest so Algorithm 1's Z ← Z + 1 is a
/// power *increase* until it wraps ("when the tag receives few ACK
/// feedback packets … we have to increase the power", §V-B).
class ReflectionStateBank {
 public:
  /// Paper configuration: {2 nH, 3 pF, 1 pF, open} with an 8 Ω series
  /// parasitic; calibrated amplitude factors −11/−7/−3/0 dB.
  static ReflectionStateBank paper_bank(double carrier_hz = 2.0e9);

  /// Synthetic bank for design-space studies: `levels` states spaced
  /// evenly in power from −range_db up to 0 dB (Γ is not derived from a
  /// circuit here; the amplitude ladder is the object under study).
  static ReflectionStateBank uniform_bank(std::size_t levels, double range_db);

  /// Index of the strongest (last) level.
  std::size_t strongest_level() const { return states_.size() - 1; }

  std::size_t size() const { return states_.size(); }
  const ReflectionState& state(std::size_t level) const;

  /// Backscatter amplitude multiplier for impedance level `level` (0-based).
  double amplitude_factor(std::size_t level) const;
  /// Same in power dB relative to the strongest state.
  double power_db(std::size_t level) const;

 private:
  explicit ReflectionStateBank(std::vector<ReflectionState> states);
  std::vector<ReflectionState> states_;
};

}  // namespace cbma::rfsim
