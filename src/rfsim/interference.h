// Ambient interferer models for the Fig. 12 working-condition study.
//
// Both interferers are modelled by their medium-occupancy statistics, which
// is what determines their impact on the narrowband backscatter channel:
//  * WiFi: CSMA/CA — exponentially distributed frame bursts separated by
//    DIFS+backoff idle gaps, so the channel is only intermittently occupied;
//  * Bluetooth: 79-channel FHSS with 625 µs dwells, so only the dwells that
//    hop onto the backscatter band inject energy.
#pragma once

#include <complex>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cbma::rfsim {

class Interferer {
 public:
  virtual ~Interferer() = default;
  virtual std::string name() const = 0;

  /// Add this interferer's contribution to a complex-baseband window
  /// sampled at `sample_rate_hz`.
  virtual void add_to(std::vector<std::complex<double>>& iq, double sample_rate_hz,
                      Rng& rng) const = 0;

  /// Long-run fraction of samples this interferer occupies.
  virtual double occupancy() const = 0;
};

/// 802.11 CSMA/CA interferer: bursts of `mean_frame_s` separated by idle
/// gaps of `mean_idle_s`; while bursting, adds noise-like energy of
/// `power_w` (in-band leakage of the wideband WiFi frame).
class WifiInterferer final : public Interferer {
 public:
  WifiInterferer(double power_w, double mean_frame_s = 500e-6,
                 double mean_idle_s = 1500e-6);

  std::string name() const override { return "wifi"; }
  void add_to(std::vector<std::complex<double>>& iq, double sample_rate_hz,
              Rng& rng) const override;
  double occupancy() const override;

 private:
  double power_w_;
  double mean_frame_s_;
  double mean_idle_s_;
};

/// Residual excitation-carrier leakage from a *non-serving* gateway — the
/// inter-cell interference term of the multi-cell network layer (net::).
/// A neighbouring cell's excitation source is a continuous tone at the
/// carrier; after the receiver's subcarrier-offset filtering a fraction of
/// it survives as a near-DC complex tone of `power_w` (one-hop Friis from
/// the foreign ES to this RX, scaled by the rejection factor). The tone's
/// phase is drawn per window (the foreign oscillator is not phase-locked to
/// this cell), and `freq_offset_hz` models the residual offset between the
/// two gateways' carrier oscillators.
class CarrierLeakageInterferer final : public Interferer {
 public:
  explicit CarrierLeakageInterferer(double power_w, double freq_offset_hz = 0.0,
                                    std::string source = "gateway");

  std::string name() const override { return "leakage:" + source_; }
  void add_to(std::vector<std::complex<double>>& iq, double sample_rate_hz,
              Rng& rng) const override;
  /// A carrier is always on — the leakage occupies every sample.
  double occupancy() const override { return 1.0; }

  double power_w() const { return power_w_; }

 private:
  double power_w_;
  double freq_offset_hz_;
  std::string source_;  ///< which gateway leaks (diagnostics)
};

/// Bluetooth FHSS interferer: fixed 625 µs dwells; each dwell lands on the
/// backscatter band with probability `overlap_channels / 79`, injecting
/// `power_w` of narrowband energy for that dwell.
class BluetoothInterferer final : public Interferer {
 public:
  explicit BluetoothInterferer(double power_w, unsigned overlap_channels = 4,
                               double dwell_s = 625e-6);

  std::string name() const override { return "bluetooth"; }
  void add_to(std::vector<std::complex<double>>& iq, double sample_rate_hz,
              Rng& rng) const override;
  double occupancy() const override;

  static constexpr unsigned kChannels = 79;

 private:
  double power_w_;
  unsigned overlap_channels_;
  double dwell_s_;
};

}  // namespace cbma::rfsim
