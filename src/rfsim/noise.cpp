#include "rfsim/noise.h"

#include <cmath>

#include "util/expect.h"

namespace cbma::rfsim {

AwgnSource::AwgnSource(double noise_power_w) : power_(noise_power_w) {
  CBMA_REQUIRE(noise_power_w >= 0.0, "noise power must be non-negative");
  per_dim_sigma_ = std::sqrt(noise_power_w / 2.0);
}

std::complex<double> AwgnSource::sample(Rng& rng) const {
  return {rng.gaussian(0.0, per_dim_sigma_), rng.gaussian(0.0, per_dim_sigma_)};
}

void AwgnSource::add_to(std::vector<std::complex<double>>& iq, Rng& rng) const {
  if (power_ <= 0.0) return;
  // The noise fill touches every sample of every synthesized window; use
  // the paired polar draw so each sample costs one engine word per
  // dimension and the log/sqrt is shared by I and Q.
  double a, b;
  for (auto& s : iq) {
    rng.gaussian_pair(a, b);
    s += std::complex<double>(a * per_dim_sigma_, b * per_dim_sigma_);
  }
}

}  // namespace cbma::rfsim
