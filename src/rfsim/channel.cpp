#include "rfsim/channel.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/probe.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace cbma::rfsim {

Channel::Channel(ChannelConfig config)
    : config_(config), impairments_(config.impairments) {
  CBMA_REQUIRE(config_.samples_per_chip >= 1, "samples_per_chip must be positive");
  CBMA_REQUIRE(config_.chip_rate_hz > 0.0, "chip rate must be positive");
  CBMA_REQUIRE(config_.noise_power_w >= 0.0, "negative noise power");
  CBMA_REQUIRE(config_.tail_pad_chips >= 0.0, "negative tail pad");
}

double Channel::sample_rate_hz() const {
  return config_.chip_rate_hz * static_cast<double>(config_.samples_per_chip);
}

void Channel::add_tag_path(std::vector<std::complex<double>>& iq,
                           std::span<const double> waveform, double amplitude_scale,
                           double phase, double delay_chips, double freq_offset_hz,
                           std::span<const double> envelope) const {
  const auto spc = static_cast<double>(config_.samples_per_chip);
  const double delay_samples = delay_chips * spc;
  std::complex<double> gain =
      amplitude_scale * std::complex<double>(std::cos(phase), std::sin(phase));
  // Per-sample oscillator rotation for the tag's residual frequency offset.
  const double dphi = 2.0 * units::kPi * freq_offset_hz / sample_rate_hz();
  const std::complex<double> rotator(std::cos(dphi), std::sin(dphi));
  const std::size_t n = waveform.size();

  // The fractional part of the delay is constant over the burst, so the
  // linear interpolation collapses to a fixed two-tap filter over the
  // pre-expanded per-sample waveform: sample s blends expansion samples
  // (s-first-1, s-first) with constant weights. No per-sample division,
  // floor or branch on the chip index.
  const auto first = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac0 = delay_samples - static_cast<double>(first);
  const std::size_t last = std::min(iq.size(), first + n + 2);

  // The naive oscillator update gain *= rotator is a serial dependency at
  // FP-multiply latency for every sample of the burst. Factor the rotation
  // as rotator^(B·blk + j) = rot_block^blk · rot_table[j]: the per-sample
  // multiplications become independent (pipelined), only one multiply per
  // block stays serial, and absorbed ('0') chips skip the rotation math
  // entirely.
  constexpr std::size_t kBlock = 64;
  std::complex<double> rot_table[kBlock];
  std::complex<double> r{1.0, 0.0};
  for (auto& entry : rot_table) {
    entry = r;
    r *= rotator;
  }
  const std::complex<double> rot_block = r;  // rotator^kBlock
  std::complex<double> gain_block = gain;    // oscillator state at block start

  if (frac0 == 0.0) {
    for (std::size_t s = first, j = 0; s < last; ++s, ++j) {
      if (j == kBlock) {
        gain_block *= rot_block;
        j = 0;
      }
      const std::size_t k = s - first;
      const double v = k < n ? waveform[k] : 0.0;
      if (v != 0.0) iq[s] += (gain_block * rot_table[j]) * (v * envelope[s]);
    }
  } else {
    const double w_prev = frac0;
    const double w_cur = 1.0 - frac0;
    for (std::size_t s = first, j = 0; s < last; ++s, ++j) {
      if (j == kBlock) {
        gain_block *= rot_block;
        j = 0;
      }
      const std::size_t k = s - first;
      const double prev = (k >= 1 && k - 1 < n) ? waveform[k - 1] : 0.0;
      const double cur = k < n ? waveform[k] : 0.0;
      const double v = prev * w_prev + cur * w_cur;
      if (v != 0.0) iq[s] += (gain_block * rot_table[j]) * (v * envelope[s]);
    }
  }
}

void Channel::receive_into(std::span<const TagTransmission> tags,
                           const ExcitationSource& excitation,
                           std::span<const Interferer* const> interferers, Rng& rng,
                           ChannelScratch& scratch,
                           std::vector<std::complex<double>>& iq) const {
  const telemetry::ScopedSpan span(telemetry::Span::kChannelSynthesis);
  // Window length: the latest-ending tag burst plus the tail pad.
  double latest_end_chips = 0.0;
  for (const auto& t : tags) {
    CBMA_REQUIRE(t.delay_chips >= 0.0, "tag delay must be non-negative");
    latest_end_chips = std::max(
        latest_end_chips, t.delay_chips + static_cast<double>(t.chips.size()));
  }
  const auto n_samples = static_cast<std::size_t>(
      std::ceil((latest_end_chips + config_.tail_pad_chips) *
                static_cast<double>(config_.samples_per_chip)));
  iq.assign(n_samples, {0.0, 0.0});
  telemetry::count(telemetry::Counter::kChannelWindows);
  telemetry::count(telemetry::Counter::kChannelSamples, n_samples);
  if (n_samples == 0) return;

  scratch.envelope.assign(n_samples, 1.0);
  excitation.envelope(scratch.envelope, sample_rate_hz(), rng);
  // Injected excitation dropout gates whatever envelope the source produced
  // (a tone turns bursty; an OFDM source loses additional air time).
  impairments_.gate_excitation(scratch.envelope, sample_rate_hz(), rng);
  // Signal-probe tap: the excitation envelope as the tags actually see it
  // (source shape × dropout gating). Strict no-op when probing is off.
  probe::record_tap(probe::Tap::kExcitationEnvelope, 0, scratch.envelope);

  for (const auto& tag : tags) {
    // Expand the chip sequence to per-sample 0/1 values once per tag; the
    // line-of-sight path and every multipath echo reuse the expansion.
    scratch.waveform.resize(tag.chips.size() * config_.samples_per_chip);
    double* w = scratch.waveform.data();
    for (const auto c : tag.chips) {
      const double v = c ? 1.0 : 0.0;
      for (std::size_t s = 0; s < config_.samples_per_chip; ++s) *w++ = v;
    }
    impairments_.settle_waveform(scratch.waveform, config_.samples_per_chip);

    add_tag_path(iq, scratch.waveform, tag.amplitude, tag.phase, tag.delay_chips,
                 tag.freq_offset_hz, scratch.envelope);
    if (config_.multipath.enabled) {
      const double mean_echo_amp =
          units::amplitude_from_db(config_.multipath.relative_power_db);
      for (unsigned k = 0; k < config_.multipath.extra_taps; ++k) {
        // Rayleigh echo amplitude with the configured mean power.
        const double a = std::abs(rng.gaussian(0.0, mean_echo_amp)) * tag.amplitude;
        const double extra = rng.uniform(0.0, config_.multipath.max_excess_delay_chips);
        add_tag_path(iq, scratch.waveform, a, rng.phase(), tag.delay_chips + extra,
                     tag.freq_offset_hz, scratch.envelope);
      }
    }
  }

  for (const Interferer* itf : interferers) {
    CBMA_ASSERT(itf != nullptr);
    itf->add_to(iq, sample_rate_hz(), rng);
  }

  AwgnSource(config_.noise_power_w).add_to(iq, rng);
  // Receiver-side impairments see the fully composed antenna signal:
  // impulsive bursts add on top of noise, then the ADC clips and quantizes.
  impairments_.distort_rx(iq, sample_rate_hz(), rng);
  // Signal-probe tap: the composite IQ window exactly as handed to the
  // receiver — every tag path, interferer, noise and RX distortion applied.
  probe::record_tap_iq(probe::Tap::kCompositeIq, 0, iq);
}

std::vector<std::complex<double>> Channel::receive(
    std::span<const TagTransmission> tags, const ExcitationSource& excitation,
    std::span<const Interferer* const> interferers, Rng& rng) const {
  ChannelScratch scratch;
  std::vector<std::complex<double>> iq;
  receive_into(tags, excitation, interferers, rng, scratch, iq);
  return iq;
}

std::vector<std::complex<double>> Channel::receive(std::span<const TagTransmission> tags,
                                                   Rng& rng) const {
  const ContinuousTone tone;
  return receive(tags, tone, {}, rng);
}

std::vector<double> Channel::magnitude(std::span<const std::complex<double>> iq) {
  std::vector<double> out(iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) out[i] = std::abs(iq[i]);
  return out;
}

}  // namespace cbma::rfsim
