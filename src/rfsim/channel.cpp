#include "rfsim/channel.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::rfsim {

Channel::Channel(ChannelConfig config) : config_(config) {
  CBMA_REQUIRE(config_.samples_per_chip >= 1, "samples_per_chip must be positive");
  CBMA_REQUIRE(config_.chip_rate_hz > 0.0, "chip rate must be positive");
  CBMA_REQUIRE(config_.noise_power_w >= 0.0, "negative noise power");
  CBMA_REQUIRE(config_.tail_pad_chips >= 0.0, "negative tail pad");
}

double Channel::sample_rate_hz() const {
  return config_.chip_rate_hz * static_cast<double>(config_.samples_per_chip);
}

void Channel::add_tag_path(std::vector<std::complex<double>>& iq,
                           const TagTransmission& tag, double amplitude_scale,
                           double phase, double delay_chips, double freq_offset_hz,
                           std::span<const double> envelope) const {
  const auto spc = static_cast<double>(config_.samples_per_chip);
  const double delay_samples = delay_chips * spc;
  std::complex<double> gain =
      amplitude_scale * std::complex<double>(std::cos(phase), std::sin(phase));
  // Per-sample oscillator rotation for the tag's residual frequency offset.
  const double dphi = 2.0 * units::kPi * freq_offset_hz / sample_rate_hz();
  const std::complex<double> rotator(std::cos(dphi), std::sin(dphi));
  const std::size_t n_chip_samples = tag.chips.size() * config_.samples_per_chip;

  // chip value at integer sample index of the tag's own timeline
  const auto chip_at = [&](std::ptrdiff_t s) -> double {
    if (s < 0 || static_cast<std::size_t>(s) >= n_chip_samples) return 0.0;
    return tag.chips[static_cast<std::size_t>(s) / config_.samples_per_chip] ? 1.0 : 0.0;
  };

  const auto first = static_cast<std::size_t>(std::max(0.0, std::floor(delay_samples)));
  const std::size_t last =
      std::min(iq.size(), first + n_chip_samples + 2);  // +2 covers interpolation spill
  for (std::size_t s = first; s < last; ++s) {
    const double p = static_cast<double>(s) - delay_samples;
    const auto i0 = static_cast<std::ptrdiff_t>(std::floor(p));
    const double frac = p - static_cast<double>(i0);
    const double v = chip_at(i0) * (1.0 - frac) + chip_at(i0 + 1) * frac;
    if (v != 0.0) iq[s] += gain * (v * envelope[s]);
    gain *= rotator;
  }
}

std::vector<std::complex<double>> Channel::receive(
    std::span<const TagTransmission> tags, const ExcitationSource& excitation,
    std::span<const Interferer* const> interferers, Rng& rng) const {
  // Window length: the latest-ending tag burst plus the tail pad.
  double latest_end_chips = 0.0;
  for (const auto& t : tags) {
    CBMA_REQUIRE(t.delay_chips >= 0.0, "tag delay must be non-negative");
    latest_end_chips = std::max(
        latest_end_chips, t.delay_chips + static_cast<double>(t.chips.size()));
  }
  const auto n_samples = static_cast<std::size_t>(
      std::ceil((latest_end_chips + config_.tail_pad_chips) *
                static_cast<double>(config_.samples_per_chip)));
  std::vector<std::complex<double>> iq(n_samples, {0.0, 0.0});
  if (n_samples == 0) return iq;

  std::vector<double> envelope(n_samples, 1.0);
  excitation.envelope(envelope, sample_rate_hz(), rng);

  for (const auto& tag : tags) {
    // Line-of-sight path.
    add_tag_path(iq, tag, tag.amplitude, tag.phase, tag.delay_chips,
                 tag.freq_offset_hz, envelope);
    if (config_.multipath.enabled) {
      const double mean_echo_amp =
          units::amplitude_from_db(config_.multipath.relative_power_db);
      for (unsigned k = 0; k < config_.multipath.extra_taps; ++k) {
        // Rayleigh echo amplitude with the configured mean power.
        const double a = std::abs(rng.gaussian(0.0, mean_echo_amp)) * tag.amplitude;
        const double extra = rng.uniform(0.0, config_.multipath.max_excess_delay_chips);
        add_tag_path(iq, tag, a, rng.phase(), tag.delay_chips + extra,
                     tag.freq_offset_hz, envelope);
      }
    }
  }

  for (const Interferer* itf : interferers) {
    CBMA_ASSERT(itf != nullptr);
    itf->add_to(iq, sample_rate_hz(), rng);
  }

  AwgnSource(config_.noise_power_w).add_to(iq, rng);
  return iq;
}

std::vector<std::complex<double>> Channel::receive(std::span<const TagTransmission> tags,
                                                   Rng& rng) const {
  const ContinuousTone tone;
  return receive(tags, tone, {}, rng);
}

std::vector<double> Channel::magnitude(std::span<const std::complex<double>> iq) {
  std::vector<double> out(iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) out[i] = std::abs(iq[i]);
  return out;
}

}  // namespace cbma::rfsim
