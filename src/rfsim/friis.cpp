#include "rfsim/friis.h"

#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::rfsim {

double LinkBudget::wavelength() const { return units::wavelength(carrier_hz); }

double LinkBudget::received_power(double d1, double d2) const {
  CBMA_REQUIRE(d1 > 0.0 && d2 > 0.0, "hop distances must be positive");
  const double lambda = wavelength();
  const double four_pi = 4.0 * units::kPi;
  const double hop1 = tx_power_w * tx_gain / (four_pi * d1 * d1);
  const double tag = (lambda * lambda * tag_gain * tag_gain / four_pi) *
                     (delta_gamma * delta_gamma / 4.0) * alpha;
  const double hop2 = (1.0 / (four_pi * d2 * d2)) * (lambda * lambda * rx_gain / four_pi);
  return hop1 * tag * hop2;
}

double LinkBudget::received_power(const Deployment& dep, std::size_t tag_index) const {
  return received_power(dep.es_to_tag(tag_index), dep.tag_to_rx(tag_index));
}

double LinkBudget::received_amplitude(double d1, double d2) const {
  return std::sqrt(received_power(d1, d2));
}

SignalStrengthField signal_strength_field(const LinkBudget& budget,
                                          const Point& es, const Point& rx,
                                          double x_min, double x_max,
                                          double y_min, double y_max,
                                          std::size_t nx, std::size_t ny) {
  CBMA_REQUIRE(nx >= 2 && ny >= 2, "grid needs at least 2x2 points");
  CBMA_REQUIRE(x_max > x_min && y_max > y_min, "degenerate grid extent");
  SignalStrengthField field{x_min, x_max, y_min, y_max, nx, ny, {}};
  field.dbm.resize(nx * ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const double y = y_min + (y_max - y_min) * static_cast<double>(iy) /
                                 static_cast<double>(ny - 1);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double x = x_min + (x_max - x_min) * static_cast<double>(ix) /
                                   static_cast<double>(nx - 1);
      const Point tag{x, y};
      const double d1 = std::max(distance(es, tag), 1e-3);
      const double d2 = std::max(distance(tag, rx), 1e-3);
      field.dbm[iy * nx + ix] = units::watts_to_dbm(budget.received_power(d1, d2));
    }
  }
  return field;
}

}  // namespace cbma::rfsim
