#include "rfsim/friis.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::rfsim {
namespace {

/// One shared validation for every link-budget entry point: distances below
/// the configured minimum separation fail loudly with the offending hop and
/// the knob that governs it. `min_separation_m` itself must be positive —
/// a zero or negative knob would reopen the silent near-field divergence.
void require_separation(double d, const char* hop, double min_separation_m) {
  if (!(min_separation_m > 0.0)) {
    throw MinSeparationError(
        "LinkBudget::min_separation_m must be positive (got " +
        std::to_string(min_separation_m) + ")");
  }
  if (!(d >= min_separation_m)) {
    throw MinSeparationError(
        std::string(hop) + " distance " + std::to_string(d) +
        " m is below LinkBudget::min_separation_m = " +
        std::to_string(min_separation_m) +
        " m — co-located or near-field node placement");
  }
}

}  // namespace

double LinkBudget::wavelength() const { return units::wavelength(carrier_hz); }

double LinkBudget::received_power(double d1, double d2) const {
  require_separation(d1, "ES->tag hop", min_separation_m);
  require_separation(d2, "tag->RX hop", min_separation_m);
  const double lambda = wavelength();
  const double four_pi = 4.0 * units::kPi;
  const double hop1 = tx_power_w * tx_gain / (four_pi * d1 * d1);
  const double tag = (lambda * lambda * tag_gain * tag_gain / four_pi) *
                     (delta_gamma * delta_gamma / 4.0) * alpha;
  const double hop2 = (1.0 / (four_pi * d2 * d2)) * (lambda * lambda * rx_gain / four_pi);
  return hop1 * tag * hop2;
}

double LinkBudget::received_power(const Deployment& dep, std::size_t tag_index) const {
  return received_power(dep.es_to_tag(tag_index), dep.tag_to_rx(tag_index));
}

double LinkBudget::received_amplitude(double d1, double d2) const {
  return std::sqrt(received_power(d1, d2));
}

double LinkBudget::one_hop_power(double d) const {
  require_separation(d, "ES->RX hop", min_separation_m);
  const double lambda = wavelength();
  const double four_pi_d = 4.0 * units::kPi * d;
  return tx_power_w * tx_gain * rx_gain * lambda * lambda /
         (four_pi_d * four_pi_d);
}

SignalStrengthField signal_strength_field(const LinkBudget& budget,
                                          const Point& es, const Point& rx,
                                          double x_min, double x_max,
                                          double y_min, double y_max,
                                          std::size_t nx, std::size_t ny) {
  CBMA_REQUIRE(nx >= 2 && ny >= 2, "grid needs at least 2x2 points");
  CBMA_REQUIRE(x_max > x_min && y_max > y_min, "degenerate grid extent");
  CBMA_REQUIRE(budget.min_separation_m > 0.0,
               "LinkBudget::min_separation_m must be positive");
  SignalStrengthField field{x_min, x_max, y_min, y_max, nx, ny, {}};
  field.dbm.resize(nx * ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const double y = y_min + (y_max - y_min) * static_cast<double>(iy) /
                                 static_cast<double>(ny - 1);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double x = x_min + (x_max - x_min) * static_cast<double>(ix) /
                                   static_cast<double>(nx - 1);
      const Point tag{x, y};
      // Field plots sample arbitrary grid points, including ones that land
      // on an endpoint; those evaluate at the configured minimum separation
      // rather than diverging (or throwing on a plot).
      const double d1 = std::max(distance(es, tag), budget.min_separation_m);
      const double d2 = std::max(distance(tag, rx), budget.min_separation_m);
      field.dbm[iy * nx + ix] = units::watts_to_dbm(budget.received_power(d1, d2));
    }
  }
  return field;
}

}  // namespace cbma::rfsim
