// Additive white Gaussian noise for the complex-baseband channel.
#pragma once

#include <complex>
#include <vector>

#include "util/rng.h"

namespace cbma::rfsim {

class AwgnSource {
 public:
  /// `noise_power_w`: total complex noise power (variance of I plus
  /// variance of Q).
  explicit AwgnSource(double noise_power_w);

  double noise_power() const { return power_; }

  /// One complex noise sample.
  std::complex<double> sample(Rng& rng) const;

  /// Add noise in place to a baseband buffer.
  void add_to(std::vector<std::complex<double>>& iq, Rng& rng) const;

 private:
  double power_;
  double per_dim_sigma_;
};

}  // namespace cbma::rfsim
