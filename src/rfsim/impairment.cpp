#include "rfsim/impairment.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace cbma::rfsim {

std::vector<std::string> ImpairmentConfig::validate() const {
  std::vector<std::string> errors;
  const auto fail = [&errors](const std::string& msg) { errors.push_back(msg); };
  if (dropout.enabled) {
    if (!(dropout.duty > 0.0) || dropout.duty > 1.0) {
      fail("impairments.dropout.duty must be in (0, 1]");
    }
    if (!(dropout.mean_burst_s > 0.0)) {
      fail("impairments.dropout.mean_burst_s must be positive");
    }
  }
  if (drift.enabled) {
    if (drift.max_static_ppm < 0.0) {
      fail("impairments.drift.max_static_ppm must be non-negative");
    }
    if (drift.wander_ppm < 0.0) {
      fail("impairments.drift.wander_ppm must be non-negative");
    }
  }
  if (switching.enabled) {
    if (switching.jitter_chips < 0.0) {
      fail("impairments.switching.jitter_chips must be non-negative");
    }
    if (switching.settle_chips < 0.0) {
      fail("impairments.switching.settle_chips must be non-negative");
    }
  }
  if (impulsive.enabled) {
    if (!(impulsive.events_per_s > 0.0)) {
      fail("impairments.impulsive.events_per_s must be positive");
    }
    if (!(impulsive.mean_duration_s > 0.0)) {
      fail("impairments.impulsive.mean_duration_s must be positive");
    }
    if (impulsive.amplitude < 0.0) {
      fail("impairments.impulsive.amplitude must be non-negative");
    }
  }
  if (adc.enabled) {
    if (!(adc.full_scale > 0.0)) {
      fail("impairments.adc.full_scale must be positive when enabled");
    }
    if (adc.bits < 1 || adc.bits > 32) {
      fail("impairments.adc.bits must be in [1, 32]");
    }
  }
  return errors;
}

std::string ImpairmentConfig::summary() const {
  if (!any_enabled()) return "";
  std::ostringstream os;
  const char* sep = "";
  if (dropout.enabled) {
    os << sep << "dropout(duty=" << dropout.duty << ")";
    sep = " ";
  }
  if (drift.enabled) {
    os << sep << "drift(" << drift.max_static_ppm << "+-" << drift.wander_ppm
       << "ppm)";
    sep = " ";
  }
  if (switching.enabled) {
    os << sep << "switch(j=" << switching.jitter_chips
       << " s=" << switching.settle_chips << ")";
    sep = " ";
  }
  if (impulsive.enabled) {
    os << sep << "impulse(" << impulsive.events_per_s << "/s)";
    sep = " ";
  }
  if (adc.enabled) {
    os << sep << "adc(" << adc.bits << "b)";
  }
  return os.str();
}

ImpairmentSuite::ImpairmentSuite(ImpairmentConfig config)
    : config_(config) {
  const auto errors = config_.validate();
  CBMA_REQUIRE(errors.empty(),
               errors.empty() ? std::string() : errors.front());
}

double ImpairmentSuite::static_clock_ppm(std::size_t slot,
                                         std::size_t slot_count) const {
  if (!config_.drift.enabled || config_.drift.max_static_ppm == 0.0) return 0.0;
  CBMA_REQUIRE(slot < slot_count, "slot outside the group");
  if (slot_count == 1) return config_.drift.max_static_ppm;
  // Even spread over [-max, +max]: worst-case relative drift between two
  // tags of a group is then the full 2×max the config advertises.
  const double t = static_cast<double>(slot) / static_cast<double>(slot_count - 1);
  return config_.drift.max_static_ppm * (2.0 * t - 1.0);
}

TagPerturbation ImpairmentSuite::perturb_clock(double static_ppm,
                                               double subcarrier_hz,
                                               double frame_chips,
                                               Rng& rng) const {
  TagPerturbation p;
  if (!config_.drift.enabled) return p;
  telemetry::count(telemetry::Counter::kImpairmentClockPerturbs);
  double ppm = static_ppm;
  if (config_.drift.wander_ppm > 0.0) {
    ppm += rng.uniform(-config_.drift.wander_ppm, config_.drift.wander_ppm);
  }
  const double rel = ppm * 1e-6;
  // The subcarrier is divided down from the chip clock, so a relative chip
  // clock error shifts it by the same fraction; the timing skew accumulates
  // linearly over the burst, so the mean misalignment is half the total.
  p.extra_freq_offset_hz = rel * subcarrier_hz;
  p.extra_delay_chips = 0.5 * rel * frame_chips;
  return p;
}

double ImpairmentSuite::switching_jitter_chips(Rng& rng) const {
  if (!config_.switching.enabled || config_.switching.jitter_chips <= 0.0) {
    return 0.0;
  }
  telemetry::count(telemetry::Counter::kImpairmentSwitchJitters);
  return rng.uniform(0.0, config_.switching.jitter_chips);
}

void ImpairmentSuite::gate_excitation(std::span<double> envelope,
                                      double sample_rate_hz, Rng& rng) const {
  const auto& d = config_.dropout;
  if (!d.enabled || d.duty >= 1.0) return;
  CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  telemetry::count(telemetry::Counter::kImpairmentDropoutGates);
  const double mean_off_s = d.mean_burst_s * (1.0 - d.duty) / d.duty;
  std::size_t pos = 0;
  // Random initial phase of the on/off cycle (same scheme as the OFDM
  // excitation): frame starts must not correlate with gate edges.
  bool on = rng.bernoulli(d.duty);
  while (pos < envelope.size()) {
    const double duration_s = rng.exponential(on ? d.mean_burst_s : mean_off_s);
    const auto n = std::max<std::size_t>(
        1, static_cast<std::size_t>(duration_s * sample_rate_hz));
    const std::size_t end = std::min(envelope.size(), pos + n);
    if (!on) {
      std::fill(envelope.begin() + static_cast<std::ptrdiff_t>(pos),
                envelope.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    }
    pos = end;
    on = !on;
  }
}

void ImpairmentSuite::settle_waveform(std::span<double> waveform,
                                      std::size_t samples_per_chip) const {
  const auto& sw = config_.switching;
  if (!sw.enabled || sw.settle_chips <= 0.0 || waveform.empty()) return;
  // First-order RC response sampled at the chip-expansion rate: each sample
  // moves a fixed fraction of the remaining distance to its target level.
  const double tau_samples =
      sw.settle_chips * static_cast<double>(samples_per_chip);
  const double k = 1.0 - std::exp(-1.0 / tau_samples);
  double level = waveform[0];  // switch starts settled at the first chip
  for (double& v : waveform) {
    level += (v - level) * k;
    v = level;
  }
}

void ImpairmentSuite::distort_rx(std::span<std::complex<double>> iq,
                                 double sample_rate_hz, Rng& rng) const {
  if (iq.empty()) return;
  const auto& imp = config_.impulsive;
  if (imp.enabled) {
    CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
    const double window_s = static_cast<double>(iq.size()) / sample_rate_hz;
    double t = rng.exponential(1.0 / imp.events_per_s);
    while (t < window_s) {
      const auto start = static_cast<std::size_t>(t * sample_rate_hz);
      const double dur_s = rng.exponential(imp.mean_duration_s);
      const auto len = std::max<std::size_t>(
          1, static_cast<std::size_t>(dur_s * sample_rate_hz));
      const double phi = rng.phase();
      const std::complex<double> burst(imp.amplitude * std::cos(phi),
                                       imp.amplitude * std::sin(phi));
      telemetry::count(telemetry::Counter::kImpairmentImpulsiveBursts);
      const std::size_t end = std::min(iq.size(), start + len);
      for (std::size_t s = start; s < end; ++s) iq[s] += burst;
      t += dur_s + rng.exponential(1.0 / imp.events_per_s);
    }
  }
  const auto& adc = config_.adc;
  if (adc.enabled) {
    const double fs = adc.full_scale;
    // LSB of a mid-tread uniform quantizer across ±full_scale.
    const double lsb =
        2.0 * fs / static_cast<double>((std::uint64_t{1} << adc.bits) - 1);
    std::uint64_t clipped = 0;
    for (auto& sample : iq) {
      const double ri = sample.real(), rq = sample.imag();
      double i = std::clamp(ri, -fs, fs);
      double q = std::clamp(rq, -fs, fs);
      clipped += (i != ri) || (q != rq) ? 1 : 0;
      i = std::round(i / lsb) * lsb;
      q = std::round(q / lsb) * lsb;
      sample = {i, q};
    }
    telemetry::count(telemetry::Counter::kImpairmentAdcClippedSamples, clipped);
  }
}

}  // namespace cbma::rfsim
