#include "rfsim/impedance.h"

#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::rfsim {

std::complex<double> series_rlc_impedance(double resistance_ohm, double inductance_h,
                                          double capacitance_f, double hz) {
  CBMA_REQUIRE(resistance_ohm >= 0.0, "negative resistance");
  CBMA_REQUIRE(hz > 0.0, "frequency must be positive");
  const double omega = 2.0 * units::kPi * hz;
  double reactance = omega * inductance_h;
  if (capacitance_f > 0.0) reactance -= 1.0 / (omega * capacitance_f);
  return {resistance_ohm, reactance};
}

std::complex<double> reflection_coefficient(std::complex<double> z, double z0) {
  CBMA_REQUIRE(z0 > 0.0, "reference impedance must be positive");
  return (z - z0) / (z + z0);
}

std::complex<double> open_circuit_gamma() { return {1.0, 0.0}; }

ReflectionStateBank::ReflectionStateBank(std::vector<ReflectionState> states)
    : states_(std::move(states)) {
  CBMA_REQUIRE(!states_.empty(), "bank needs at least one state");
}

ReflectionStateBank ReflectionStateBank::uniform_bank(std::size_t levels,
                                                      double range_db) {
  CBMA_REQUIRE(levels >= 1, "bank needs at least one level");
  CBMA_REQUIRE(range_db >= 0.0, "range must be non-negative");
  std::vector<ReflectionState> states;
  states.reserve(levels);
  for (std::size_t k = 0; k < levels; ++k) {
    const double db =
        levels == 1 ? 0.0
                    : -range_db + range_db * static_cast<double>(k) /
                                      static_cast<double>(levels - 1);
    states.push_back({"uniform#" + std::to_string(k), open_circuit_gamma(),
                      units::amplitude_from_db(db)});
  }
  return ReflectionStateBank(std::move(states));
}

ReflectionStateBank ReflectionStateBank::paper_bank(double carrier_hz) {
  constexpr double kParasiticOhm = 8.0;  // HMC190B series insertion resistance
  const auto gamma_c = [&](double cap) {
    return reflection_coefficient(series_rlc_impedance(kParasiticOhm, 0.0, cap, carrier_hz));
  };
  const auto gamma_l = [&](double ind) {
    return reflection_coefficient(series_rlc_impedance(kParasiticOhm, ind, 0.0, carrier_hz));
  };
  // Amplitude factors: −11, −7, −3, 0 dB (power), monotone increasing so
  // Algorithm 1's Z ← Z + 1 raises the backscattered power until wrap.
  std::vector<ReflectionState> states = {
      {"2nH", gamma_l(2e-9), units::amplitude_from_db(-11.0)},
      {"3pF", gamma_c(3e-12), units::amplitude_from_db(-7.0)},
      {"1pF", gamma_c(1e-12), units::amplitude_from_db(-3.0)},
      {"open", open_circuit_gamma(), units::amplitude_from_db(0.0)},
  };
  return ReflectionStateBank(std::move(states));
}

const ReflectionState& ReflectionStateBank::state(std::size_t level) const {
  CBMA_REQUIRE(level < states_.size(), "impedance level out of range");
  return states_[level];
}

double ReflectionStateBank::amplitude_factor(std::size_t level) const {
  return state(level).amplitude_factor;
}

double ReflectionStateBank::power_db(std::size_t level) const {
  return units::to_db(amplitude_factor(level) * amplitude_factor(level));
}

}  // namespace cbma::rfsim
