// Planar geometry for deployments: the paper's coordinate frame (Fig. 3)
// places the excitation source at (−D, 0) and the receiver at (D, 0) with
// D = 50 cm, and tags at arbitrary positions in a 4 m × 6 m office.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cbma::rfsim {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b);

/// Rectangular room centred on the origin.
struct Room {
  double width = 4.0;   // metres, x extent
  double height = 6.0;  // metres, y extent

  bool contains(const Point& p) const;
  Point random_point(Rng& rng) const;
};

/// Positions of every element of a CBMA cell.
class Deployment {
 public:
  /// Paper benchmark frame: ES at (−d, 0), RX at (+d, 0).
  Deployment(Point excitation_source, Point receiver);

  static Deployment paper_frame(double d = 0.5) {
    return Deployment(Point{-d, 0.0}, Point{d, 0.0});
  }

  const Point& excitation_source() const { return es_; }
  const Point& receiver() const { return rx_; }

  std::size_t tag_count() const { return tags_.size(); }
  const Point& tag(std::size_t i) const;
  const std::vector<Point>& tags() const { return tags_; }

  void add_tag(Point p);
  void set_tag(std::size_t i, Point p);
  void clear_tags();

  /// Distance from the excitation source to tag i (paper's d1).
  double es_to_tag(std::size_t i) const;
  /// Distance from tag i to the receiver (paper's d2).
  double tag_to_rx(std::size_t i) const;
  /// Distance between two tags (used by the λ/2 exclusion rule).
  double tag_to_tag(std::size_t i, std::size_t j) const;

  /// Place `count` tags uniformly in `room`, enforcing a minimum pairwise
  /// separation (and a minimum distance to ES/RX so Friis stays finite).
  void place_random_tags(std::size_t count, const Room& room, Rng& rng,
                         double min_separation = 0.0, double min_to_endpoints = 0.1);

 private:
  Point es_;
  Point rx_;
  std::vector<Point> tags_;
};

}  // namespace cbma::rfsim
