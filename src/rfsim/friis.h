// The paper's two-hop link budget (Eq. 1):
//
//   P_r = (P_t G_t / 4π d1²) · (λ² G_tag² / 4π · |ΔΓ|²/4 · α) · (1 / 4π d2² · λ² G_r / 4π)
//
// The first factor is propagation from the excitation source to the tag, the
// middle factor the fraction of incident power re-radiated by the tag, and
// the last factor propagation from the tag to the receiver. Fig. 5 plots
// this field over tag positions; the node-selection scheme ranks candidate
// tags by it, and the multi-cell network layer (net::) associates tags to
// gateways with it.
#pragma once

#include <stdexcept>
#include <vector>

#include "rfsim/geometry.h"

namespace cbma::rfsim {

/// Thrown when a link-budget evaluation is asked for a hop shorter than
/// LinkBudget::min_separation_m. Near-field Friis diverges as d → 0, so a
/// placement engine that co-locates two nodes must fail loudly here instead
/// of silently producing a petawatt link (the pre-fix behaviour clamped the
/// distance to a hidden 1e-3 m constant in one code path and rejected only
/// d ≤ 0 in the other).
class MinSeparationError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct LinkBudget {
  double tx_power_w = 0.1;        ///< P_t, watts (20 dBm default).
  double tx_gain = 1.58;          ///< G_t, linear (≈2 dBi).
  double tag_gain = 1.58;         ///< G_tag, linear.
  double rx_gain = 1.58;          ///< G_r, linear.
  double carrier_hz = 2.0e9;      ///< sets λ.
  double delta_gamma = 1.0;       ///< |ΔΓ|, backscatter coefficient.
  double alpha = 0.5;             ///< scattering efficiency α.
  /// Shortest hop distance Eq. 1 is valid for. Every evaluation below this
  /// throws MinSeparationError; signal_strength_field floors its grid
  /// distances here instead (a field plot legitimately samples points that
  /// graze the endpoints). The default matches the historical clamp.
  double min_separation_m = 1e-3;

  double wavelength() const;

  /// Received backscatter power (watts) for hop distances d1 (ES→tag) and
  /// d2 (tag→RX), exactly per Eq. 1. Throws MinSeparationError when either
  /// hop is shorter than min_separation_m.
  double received_power(double d1, double d2) const;

  /// Received power for tag i of a deployment.
  double received_power(const Deployment& dep, std::size_t tag_index) const;

  /// Corresponding received *amplitude* (√P) — the quantity that adds
  /// coherently in the baseband simulation.
  double received_amplitude(double d1, double d2) const;

  /// Single-hop Friis power (watts) over distance `d`: P_t G_t G_r λ² /
  /// (4π d)². This is the direct excitation-source → receiver path — the
  /// term the multi-cell layer sums as inter-cell excitation leakage.
  /// Throws MinSeparationError below min_separation_m.
  double one_hop_power(double d) const;
};

/// A sampled field of received signal strength over tag positions (Fig. 5).
struct SignalStrengthField {
  double x_min, x_max, y_min, y_max;
  std::size_t nx, ny;
  std::vector<double> dbm;  ///< row-major, ny rows of nx values

  double at(std::size_t ix, std::size_t iy) const { return dbm[iy * nx + ix]; }
};

/// Evaluate Eq. 1 over a grid of candidate tag positions for a fixed
/// ES/RX placement. Grid points closer to an endpoint than
/// budget.min_separation_m evaluate at exactly that separation — the
/// documented floor of the field plot, not a hidden constant.
SignalStrengthField signal_strength_field(const LinkBudget& budget,
                                          const Point& es, const Point& rx,
                                          double x_min, double x_max,
                                          double y_min, double y_max,
                                          std::size_t nx, std::size_t ny);

}  // namespace cbma::rfsim
