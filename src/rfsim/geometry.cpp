#include "rfsim/geometry.h"

#include <cmath>

#include "util/expect.h"

namespace cbma::rfsim {

double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

bool Room::contains(const Point& p) const {
  return std::abs(p.x) <= width / 2.0 && std::abs(p.y) <= height / 2.0;
}

Point Room::random_point(Rng& rng) const {
  return Point{rng.uniform(-width / 2.0, width / 2.0),
               rng.uniform(-height / 2.0, height / 2.0)};
}

Deployment::Deployment(Point excitation_source, Point receiver)
    : es_(excitation_source), rx_(receiver) {}

const Point& Deployment::tag(std::size_t i) const {
  CBMA_REQUIRE(i < tags_.size(), "tag index out of range");
  return tags_[i];
}

void Deployment::add_tag(Point p) { tags_.push_back(p); }

void Deployment::set_tag(std::size_t i, Point p) {
  CBMA_REQUIRE(i < tags_.size(), "tag index out of range");
  tags_[i] = p;
}

void Deployment::clear_tags() { tags_.clear(); }

double Deployment::es_to_tag(std::size_t i) const { return distance(es_, tag(i)); }

double Deployment::tag_to_rx(std::size_t i) const { return distance(tag(i), rx_); }

double Deployment::tag_to_tag(std::size_t i, std::size_t j) const {
  return distance(tag(i), tag(j));
}

void Deployment::place_random_tags(std::size_t count, const Room& room, Rng& rng,
                                   double min_separation, double min_to_endpoints) {
  CBMA_REQUIRE(min_separation >= 0.0, "negative separation");
  constexpr int kMaxAttemptsPerTag = 10'000;
  for (std::size_t n = 0; n < count; ++n) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerTag; ++attempt) {
      const Point cand = room.random_point(rng);
      if (distance(cand, es_) < min_to_endpoints) continue;
      if (distance(cand, rx_) < min_to_endpoints) continue;
      bool clear = true;
      for (const auto& t : tags_) {
        if (distance(cand, t) < min_separation) {
          clear = false;
          break;
        }
      }
      if (clear) {
        tags_.push_back(cand);
        placed = true;
        break;
      }
    }
    CBMA_REQUIRE(placed, "could not place tags with the requested separation");
  }
}

}  // namespace cbma::rfsim
