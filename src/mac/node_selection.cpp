#include "mac/node_selection.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace cbma::mac {

NodeSelector::NodeSelector(NodeSelectionConfig config, rfsim::LinkBudget budget)
    : config_(config), budget_(budget) {
  CBMA_REQUIRE(config_.bad_ack_ratio >= 0.0 && config_.bad_ack_ratio <= 1.0,
               "bad ACK ratio out of range");
  CBMA_REQUIRE(config_.initial_acceptance >= 0.0 && config_.initial_acceptance <= 1.0,
               "acceptance out of range");
  CBMA_REQUIRE(config_.cooling_rounds > 0.0, "cooling must be positive");
  CBMA_REQUIRE(config_.candidate_attempts >= 1, "need at least one attempt");
}

double NodeSelector::exclusion_radius() const {
  if (config_.exclusion_radius_m > 0.0) return config_.exclusion_radius_m;
  return budget_.wavelength() / 2.0;
}

double NodeSelector::predicted_dbm(const rfsim::Deployment& population,
                                   std::size_t i) const {
  return units::watts_to_dbm(budget_.received_power(population, i));
}

double NodeSelector::acceptance_probability(std::size_t round) const {
  return config_.initial_acceptance *
         std::exp(-static_cast<double>(round) / config_.cooling_rounds);
}

bool NodeSelector::violates_exclusion(const rfsim::Deployment& population,
                                      std::span<const std::size_t> group,
                                      std::size_t candidate,
                                      std::size_t replacing_slot) const {
  const double radius = exclusion_radius();
  for (std::size_t slot = 0; slot < group.size(); ++slot) {
    if (slot == replacing_slot) continue;
    if (population.tag_to_tag(group[slot], candidate) < radius) return true;
  }
  return false;
}

std::vector<std::size_t> NodeSelector::reselect(const rfsim::Deployment& population,
                                                std::vector<std::size_t> group,
                                                std::span<const double> ack_ratios,
                                                std::size_t round, Rng& rng) const {
  CBMA_REQUIRE(ack_ratios.size() == group.size(), "ACK ratio arity mismatch");
  CBMA_REQUIRE(population.tag_count() >= group.size(), "population smaller than group");

  // Idle pool: population members not currently in the group.
  std::vector<bool> in_group(population.tag_count(), false);
  for (const auto idx : group) {
    CBMA_REQUIRE(idx < population.tag_count(), "group index out of population");
    in_group[idx] = true;
  }
  std::vector<std::size_t> idle;
  for (std::size_t i = 0; i < population.tag_count(); ++i) {
    if (!in_group[i]) idle.push_back(i);
  }

  for (std::size_t slot = 0; slot < group.size(); ++slot) {
    if (ack_ratios[slot] >= config_.bad_ack_ratio) continue;  // tag is fine
    telemetry::count(telemetry::Counter::kNodeSelectAbandoned);
    if (idle.empty()) break;  // §V-C: no spare tags — would need to move them

    const double old_dbm = predicted_dbm(population, group[slot]);
    for (std::size_t attempt = 0; attempt < config_.candidate_attempts; ++attempt) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(idle.size()) - 1));
      const std::size_t candidate = idle[pick];
      if (violates_exclusion(population, group, candidate, slot)) continue;

      const double new_dbm = predicted_dbm(population, candidate);
      const bool improves = new_dbm > old_dbm;
      if (improves || rng.bernoulli(acceptance_probability(round))) {
        // Swap: the abandoned tag returns to the idle pool.
        idle[pick] = group[slot];
        group[slot] = candidate;
        telemetry::count(telemetry::Counter::kNodeSelectReplaced);
        if (!improves) {
          telemetry::count(telemetry::Counter::kNodeSelectAnnealed);
        }
        break;
      }
    }
  }
  return group;
}

}  // namespace cbma::mac
