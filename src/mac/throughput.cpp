#include "mac/throughput.h"

#include "util/expect.h"

namespace cbma::mac {

ThroughputReport cbma_throughput(const CbmaRate& rate) {
  CBMA_REQUIRE(rate.per_tag_bitrate_bps > 0.0, "bitrate must be positive");
  CBMA_REQUIRE(rate.n_tags >= 1, "need at least one tag");
  CBMA_REQUIRE(rate.frame_bits >= rate.payload_bits, "frame smaller than payload");
  CBMA_REQUIRE(rate.frame_error_rate >= 0.0 && rate.frame_error_rate <= 1.0,
               "FER out of range");

  ThroughputReport out;
  out.aggregate_raw_bps = rate.per_tag_bitrate_bps * static_cast<double>(rate.n_tags);
  const double payload_fraction =
      static_cast<double>(rate.payload_bits) / static_cast<double>(rate.frame_bits);
  out.aggregate_goodput_bps =
      out.aggregate_raw_bps * payload_fraction * (1.0 - rate.frame_error_rate);
  out.per_tag_goodput_bps = out.aggregate_goodput_bps / static_cast<double>(rate.n_tags);
  return out;
}

}  // namespace cbma::mac
