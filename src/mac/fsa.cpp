#include "mac/fsa.h"

#include <algorithm>
#include <vector>

#include "util/expect.h"

namespace cbma::mac {

double FsaResult::efficiency() const {
  return slots_used == 0 ? 0.0
                         : static_cast<double>(successes) / static_cast<double>(slots_used);
}

FsaSimulator::FsaSimulator(FsaConfig config) : config_(config) {
  CBMA_REQUIRE(config_.initial_frame_size >= 1, "frame size must be positive");
  CBMA_REQUIRE(config_.max_frame_size >= config_.initial_frame_size,
               "max frame smaller than initial frame");
}

namespace {

/// Run one frame; returns per-slot occupancy outcome counts and marks which
/// of the `pending` tags succeeded.
void run_frame(std::size_t frame_size, std::vector<std::size_t>& pending, FsaResult& res,
               Rng& rng) {
  std::vector<int> occupancy(frame_size, 0);
  std::vector<std::size_t> slot_of(pending.size());
  for (std::size_t t = 0; t < pending.size(); ++t) {
    const auto slot =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(frame_size) - 1));
    slot_of[t] = slot;
    ++occupancy[slot];
  }
  for (const int occ : occupancy) {
    if (occ == 0) {
      ++res.idle_slots;
    } else if (occ == 1) {
      ++res.successes;
    } else {
      ++res.collisions;
    }
  }
  res.slots_used += frame_size;
  ++res.frames;

  std::vector<std::size_t> still_pending;
  still_pending.reserve(pending.size());
  for (std::size_t t = 0; t < pending.size(); ++t) {
    if (occupancy[slot_of[t]] != 1) still_pending.push_back(pending[t]);
  }
  pending = std::move(still_pending);
}

std::size_t next_frame_size(const FsaConfig& config, std::size_t collided_slots) {
  if (!config.adaptive) return config.initial_frame_size;
  // Schoute estimator: 2.39 tags per collided slot, with a 1-slot floor.
  const auto estimate = static_cast<std::size_t>(2.39 * static_cast<double>(collided_slots));
  return std::min(config.max_frame_size, std::max<std::size_t>(1, estimate));
}

}  // namespace

FsaResult FsaSimulator::resolve_all(std::size_t n_tags, Rng& rng) const {
  CBMA_REQUIRE(n_tags >= 1, "need at least one tag");
  FsaResult res;
  std::vector<std::size_t> pending(n_tags);
  for (std::size_t i = 0; i < n_tags; ++i) pending[i] = i;

  std::size_t frame_size = config_.initial_frame_size;
  while (!pending.empty()) {
    const std::size_t collisions_before = res.collisions;
    run_frame(frame_size, pending, res, rng);
    frame_size = next_frame_size(config_, res.collisions - collisions_before);
  }
  return res;
}

FsaResult FsaSimulator::run_saturated(std::size_t n_tags, std::size_t n_frames,
                                      Rng& rng) const {
  CBMA_REQUIRE(n_tags >= 1, "need at least one tag");
  CBMA_REQUIRE(n_frames >= 1, "need at least one frame");
  FsaResult res;
  std::size_t frame_size = config_.initial_frame_size;
  for (std::size_t f = 0; f < n_frames; ++f) {
    std::vector<std::size_t> tags(n_tags);
    for (std::size_t i = 0; i < n_tags; ++i) tags[i] = i;
    const std::size_t collisions_before = res.collisions;
    run_frame(frame_size, tags, res, rng);
    frame_size = next_frame_size(config_, res.collisions - collisions_before);
  }
  return res;
}

}  // namespace cbma::mac
