#include "mac/single_tag.h"

#include "util/expect.h"

namespace cbma::mac {

SingleTagThroughput single_tag_round_robin(const SingleTagConfig& config,
                                           std::size_t n_tags) {
  CBMA_REQUIRE(n_tags >= 1, "need at least one tag");
  CBMA_REQUIRE(config.bitrate_bps > 0.0, "bitrate must be positive");
  CBMA_REQUIRE(config.frame_bits >= config.payload_bits, "frame smaller than payload");
  CBMA_REQUIRE(config.frame_error_rate >= 0.0 && config.frame_error_rate < 1.0,
               "FER out of range");

  const double frame_s = static_cast<double>(config.frame_bits) / config.bitrate_bps;
  const double slot_s = config.poll_s + frame_s + config.guard_s;

  SingleTagThroughput out;
  out.per_round_s = slot_s * static_cast<double>(n_tags);
  const double payload_per_slot =
      static_cast<double>(config.payload_bits) * (1.0 - config.frame_error_rate);
  out.aggregate_goodput_bps = payload_per_slot / slot_s;
  out.per_tag_goodput_bps = out.aggregate_goodput_bps / static_cast<double>(n_tags);
  return out;
}

}  // namespace cbma::mac
