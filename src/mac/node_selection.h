// Node (tag) selection (§V-C): when power control alone cannot equalize the
// group, tags whose ACK ratio stays below 70 % are abandoned and replaced
// from the idle-tag pool. A randomly picked candidate is always accepted if
// its theoretical received strength (paper Eq. 1) improves on the abandoned
// tag's; otherwise it is accepted with a probability that shrinks as the
// round count T grows (simulated-annealing style, per the paper's
// description). Candidates within the exclusion radius (λ/2) of an already
// selected tag are skipped so the group never concentrates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rfsim/friis.h"
#include "rfsim/geometry.h"
#include "util/rng.h"

namespace cbma::mac {

struct NodeSelectionConfig {
  double bad_ack_ratio = 0.70;     ///< abandon tags below this ACK ratio
  double exclusion_radius_m = 0.0; ///< 0 → λ/2 from the link budget
  double initial_acceptance = 0.8; ///< worse-candidate acceptance at T = 0
  double cooling_rounds = 5.0;     ///< e-folding of the acceptance in rounds
  std::size_t candidate_attempts = 16;  ///< random picks per bad tag
};

class NodeSelector {
 public:
  NodeSelector(NodeSelectionConfig config, rfsim::LinkBudget budget);

  const NodeSelectionConfig& config() const { return config_; }
  double exclusion_radius() const;

  /// Predicted received strength of population tag `i` (Eq. 1, dBm).
  double predicted_dbm(const rfsim::Deployment& population, std::size_t i) const;

  /// Probability of accepting a non-improving candidate at round T.
  double acceptance_probability(std::size_t round) const;

  /// One reselection round.
  ///  * `population`: every tag position in the environment;
  ///  * `group`: indices into the population currently transmitting;
  ///  * `ack_ratios`: per-group-member ACK ratios from the last round.
  /// Returns the new group (same size; members may be replaced).
  std::vector<std::size_t> reselect(const rfsim::Deployment& population,
                                    std::vector<std::size_t> group,
                                    std::span<const double> ack_ratios,
                                    std::size_t round, Rng& rng) const;

 private:
  bool violates_exclusion(const rfsim::Deployment& population,
                          std::span<const std::size_t> group, std::size_t candidate,
                          std::size_t replacing_slot) const;

  NodeSelectionConfig config_;
  rfsim::LinkBudget budget_;
};

}  // namespace cbma::mac
