// ACK-driven retransmission (ARQ) on top of the CBMA round structure.
//
// §III-B's acknowledgement exists so tags learn which frames got through;
// the natural link-layer on top is per-tag stop-and-wait: a tag repeats its
// current frame in every round until its ID appears in the ACK, up to a
// retry budget. This tracker implements the receiver-side/protocol
// bookkeeping: which slots still owe a frame, how many attempts each
// message took, and the delivery/drop statistics a deployment would
// monitor.
#pragma once

#include <cstddef>
#include <vector>

#include "rx/receiver.h"

namespace cbma::mac {

struct ArqConfig {
  std::size_t max_attempts = 4;  ///< transmissions per message (1 = no retry)
};

struct ArqStats {
  std::size_t offered = 0;          ///< messages handed to the link layer
  std::size_t delivered = 0;        ///< ACKed within the budget
  std::size_t dropped = 0;          ///< budget exhausted
  std::size_t transmissions = 0;    ///< total on-air attempts
  std::vector<std::size_t> attempts_histogram;  ///< [k] = delivered on attempt k+1

  double delivery_ratio() const;
  /// Mean attempts per *delivered* message (≥ 1).
  double mean_attempts() const;
};

class ArqTracker {
 public:
  ArqTracker(ArqConfig config, std::size_t group_size);

  std::size_t group_size() const { return pending_.size(); }
  const ArqStats& stats() const { return stats_; }

  /// Hand slot `slot` a new message to deliver. The slot must be idle
  /// (nothing pending); returns false if it still owes a frame.
  bool offer(std::size_t slot);

  /// Slots that must transmit this round (everything with a pending
  /// message).
  std::vector<std::size_t> due() const;

  /// Account one round's ACK outcome for the slots that transmitted.
  /// Delivered messages leave the pending set; messages that exhausted the
  /// attempt budget are dropped.
  void on_round(const rx::AckMessage& ack,
                std::span<const std::size_t> transmitted);

  /// Does this slot still owe a frame?
  bool pending(std::size_t slot) const;

 private:
  ArqConfig config_;
  std::vector<std::size_t> attempts_;  ///< attempts used by the pending message
  std::vector<bool> pending_;
  ArqStats stats_;
};

}  // namespace cbma::mac
