#include "mac/power_control.h"

#include "util/expect.h"
#include "util/stats.h"

namespace cbma::mac {

PowerController::PowerController(PowerControlConfig config, std::size_t n_tags)
    : config_(config), n_tags_(n_tags) {
  CBMA_REQUIRE(n_tags >= 1, "controller needs at least one tag");
  CBMA_REQUIRE(config_.fer_threshold >= 0.0 && config_.fer_threshold <= 1.0,
               "FER threshold out of range");
  CBMA_REQUIRE(config_.ack_ratio_threshold >= 0.0 && config_.ack_ratio_threshold <= 1.0,
               "ACK ratio threshold out of range");
  CBMA_REQUIRE(config_.cycle_cap_factor >= 1, "cycle cap factor must be positive");
}

std::size_t PowerController::cycle_cap() const {
  return config_.cycle_cap_factor * n_tags_;
}

bool PowerController::exhausted() const { return cycles_ >= cycle_cap(); }

void PowerController::reset() { cycles_ = 0; }

PowerController::Decision PowerController::update(std::span<const double> ack_ratios) {
  CBMA_REQUIRE(ack_ratios.size() == n_tags_, "ACK ratio arity mismatch");
  Decision d;
  d.step_tag.assign(n_tags_, false);

  // Line 14: FER = 1 − mean ACK ratio over the group.
  double sum = 0.0;
  for (const double r : ack_ratios) {
    CBMA_REQUIRE(r >= 0.0 && r <= 1.0, "ACK ratio out of range");
    sum += r;
  }
  d.fer = 1.0 - sum / static_cast<double>(n_tags_);

  if (exhausted()) {
    d.exhausted = true;
    return d;
  }

  if (d.fer > config_.fer_threshold) {
    for (std::size_t i = 0; i < n_tags_; ++i) {
      if (ack_ratios[i] < config_.ack_ratio_threshold) {
        d.step_tag[i] = true;
        d.adjusted = true;
      }
    }
    if (d.adjusted) ++cycles_;
  }
  d.exhausted = exhausted();
  return d;
}

}  // namespace cbma::mac
