// Algorithm 1 (§V-B): ACK-feedback-driven impedance power control.
//
// After each round of m packets the controller receives every tag's ACK
// ratio. If the group frame-error rate exceeds the threshold, every tag
// whose ACK ratio is below 50 % advances to its next impedance level
// (wrapping at Z_max). To avoid an infinite loop the paper caps execution
// at 3 × (number of tags) cycles; after that the controller reports itself
// exhausted and node selection (§V-C) takes over.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cbma::mac {

struct PowerControlConfig {
  double fer_threshold = 0.10;       ///< Algorithm 1 line 15 "Threshold"
  double ack_ratio_threshold = 0.50; ///< line 17
  std::size_t cycle_cap_factor = 3;  ///< cap = factor × n tags (§V-B)
};

class PowerController {
 public:
  PowerController(PowerControlConfig config, std::size_t n_tags);

  struct Decision {
    double fer = 0.0;              ///< group FER this round (line 14)
    bool adjusted = false;         ///< any tag stepped this round
    std::vector<bool> step_tag;    ///< which tags advance an impedance level
    bool exhausted = false;        ///< cycle cap reached — stop adjusting
  };

  /// Feed one round of per-tag ACK ratios (successful ACKs / packets sent).
  Decision update(std::span<const double> ack_ratios);

  std::size_t cycles_used() const { return cycles_; }
  std::size_t cycle_cap() const;
  bool exhausted() const;

  void reset();

 private:
  PowerControlConfig config_;
  std::size_t n_tags_;
  std::size_t cycles_ = 0;
};

}  // namespace cbma::mac
