// Framed slotted ALOHA — the TDMA-style anti-collision baseline the paper
// compares against (§I, §IX). The receiver coordinates the frame size; each
// tag picks a uniform slot per frame; a slot with exactly one transmission
// succeeds. The adaptive variant re-sizes the next frame to the estimated
// backlog (Schoute's 2.39 × collided-slots estimator), which is the
// standard EPC Gen2-style behaviour.
#pragma once

#include <cstddef>

#include "util/rng.h"

namespace cbma::mac {

struct FsaConfig {
  std::size_t initial_frame_size = 16;
  bool adaptive = true;         ///< resize frames to the backlog estimate
  std::size_t max_frame_size = 1024;
};

struct FsaResult {
  std::size_t slots_used = 0;
  std::size_t successes = 0;
  std::size_t collisions = 0;
  std::size_t idle_slots = 0;
  std::size_t frames = 0;

  /// Fraction of slots that carried a successful transmission
  /// (≤ 1/e ≈ 0.368 for well-sized frames).
  double efficiency() const;
};

class FsaSimulator {
 public:
  explicit FsaSimulator(FsaConfig config);

  /// Resolve `n_tags` tags each holding one packet; runs frames until all
  /// tags have succeeded.
  FsaResult resolve_all(std::size_t n_tags, Rng& rng) const;

  /// Continuous traffic: every tag always has a packet; run `n_frames`
  /// frames and count outcomes.
  FsaResult run_saturated(std::size_t n_tags, std::size_t n_frames, Rng& rng) const;

 private:
  FsaConfig config_;
};

}  // namespace cbma::mac
