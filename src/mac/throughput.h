// Throughput accounting for the CBMA system and its baselines — used by the
// Table I summary and the >10× headline comparison bench.
#pragma once

#include <cstddef>

namespace cbma::mac {

struct CbmaRate {
  double per_tag_bitrate_bps = 1e6;  ///< raw on-air bit rate of each tag
  std::size_t n_tags = 10;
  std::size_t frame_bits = 8 + 8 * (2 + 16 + 2);
  std::size_t payload_bits = 16 * 8;
  double frame_error_rate = 0.0;
};

struct ThroughputReport {
  double aggregate_raw_bps = 0.0;      ///< Σ tag bit rates (the paper's "bit rate")
  double aggregate_goodput_bps = 0.0;  ///< payload actually delivered
  double per_tag_goodput_bps = 0.0;
};

/// CBMA: all tags transmit concurrently, so rates add across the group and
/// only framing overhead and frame errors discount the payload.
ThroughputReport cbma_throughput(const CbmaRate& rate);

}  // namespace cbma::mac
