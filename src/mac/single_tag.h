// Single-tag round-robin baseline ("BackFi-like"): the conventional
// backscatter regime the paper's headline compares against, where only one
// tag occupies the channel at a time and the reader polls tags in turn.
// Per-transmission cost = polling/guard overhead + the frame itself; the
// aggregate channel throughput is therefore bounded by one tag's rate
// regardless of how many tags wait.
#pragma once

#include <cstddef>

namespace cbma::mac {

struct SingleTagConfig {
  double bitrate_bps = 1e6;       ///< one tag's on-air bit rate
  std::size_t frame_bits = 8 + 8 * (2 + 16 + 2);  ///< preamble+len+payload+CRC
  std::size_t payload_bits = 16 * 8;
  double guard_s = 20e-6;         ///< inter-poll guard / turnaround
  double poll_s = 20e-6;          ///< reader poll per tag
  double frame_error_rate = 0.0;  ///< per-frame loss of the single link
};

struct SingleTagThroughput {
  double per_round_s = 0.0;       ///< time to serve all tags once
  double aggregate_goodput_bps = 0.0;
  double per_tag_goodput_bps = 0.0;
};

/// Goodput of the round-robin schedule over `n_tags`.
SingleTagThroughput single_tag_round_robin(const SingleTagConfig& config,
                                           std::size_t n_tags);

}  // namespace cbma::mac
