#include "mac/arq.h"

#include <algorithm>

#include "util/expect.h"
#include "util/telemetry.h"

namespace cbma::mac {

double ArqStats::delivery_ratio() const {
  const std::size_t resolved = delivered + dropped;
  if (resolved == 0) return 0.0;
  return static_cast<double>(delivered) / static_cast<double>(resolved);
}

double ArqStats::mean_attempts() const {
  if (delivered == 0) return 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < attempts_histogram.size(); ++k) {
    total += static_cast<double>(attempts_histogram[k]) * static_cast<double>(k + 1);
  }
  return total / static_cast<double>(delivered);
}

ArqTracker::ArqTracker(ArqConfig config, std::size_t group_size)
    : config_(config), attempts_(group_size, 0), pending_(group_size, false) {
  CBMA_REQUIRE(group_size >= 1, "tracker needs at least one slot");
  CBMA_REQUIRE(config_.max_attempts >= 1, "need at least one attempt");
  stats_.attempts_histogram.assign(config_.max_attempts, 0);
}

bool ArqTracker::offer(std::size_t slot) {
  CBMA_REQUIRE(slot < pending_.size(), "slot out of range");
  if (pending_[slot]) return false;
  pending_[slot] = true;
  attempts_[slot] = 0;
  ++stats_.offered;
  telemetry::count(telemetry::Counter::kArqOffered);
  return true;
}

std::vector<std::size_t> ArqTracker::due() const {
  std::vector<std::size_t> out;
  for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
    if (pending_[slot]) out.push_back(slot);
  }
  return out;
}

bool ArqTracker::pending(std::size_t slot) const {
  CBMA_REQUIRE(slot < pending_.size(), "slot out of range");
  return pending_[slot];
}

void ArqTracker::on_round(const rx::AckMessage& ack,
                          std::span<const std::size_t> transmitted) {
  for (const auto slot : transmitted) {
    CBMA_REQUIRE(slot < pending_.size(), "slot out of range");
    CBMA_REQUIRE(pending_[slot], "slot transmitted without a pending message");
    ++attempts_[slot];
    ++stats_.transmissions;
    telemetry::count(telemetry::Counter::kArqTransmissions);
    if (ack.contains(slot)) {
      pending_[slot] = false;
      ++stats_.delivered;
      ++stats_.attempts_histogram[attempts_[slot] - 1];
      telemetry::count(telemetry::Counter::kArqDelivered);
    } else if (attempts_[slot] >= config_.max_attempts) {
      pending_[slot] = false;
      ++stats_.dropped;
      telemetry::count(telemetry::Counter::kArqDropped);
    }
  }
}

}  // namespace cbma::mac
