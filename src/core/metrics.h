// Per-round and per-experiment counters shared by the system driver,
// the MAC schemes and the benches.
#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.h"

namespace cbma::core {

/// Outcome of a batch of collided packets for one tag group.
struct RoundStats {
  std::vector<std::size_t> sent;   ///< per group slot
  std::vector<std::size_t> acked;  ///< per group slot
  /// Distribution of rx::TagDecodeResult::correlation_margin over the
  /// *detected* frames of the batch (CbmaSystem::run_packets feeds it) —
  /// how decisively each code beat its runner-up, the paper's PN-code
  /// separation argument as a measured quantity.
  RunningStats correlation_margin;

  explicit RoundStats(std::size_t group_size = 0);

  void record(std::size_t slot, bool acked_ok);
  void record_margin(double margin) { correlation_margin.add(margin); }
  void merge(const RoundStats& other);

  std::size_t total_sent() const;
  std::size_t total_acked() const;

  /// Per-slot ACK ratio (0 for slots that sent nothing).
  std::vector<double> ack_ratios() const;

  /// Group frame error rate: missing packets / transmitted packets —
  /// the paper's error-rate definition (§IV).
  double frame_error_rate() const;
};

}  // namespace cbma::core
