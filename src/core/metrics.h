// Per-round and per-experiment counters shared by the system driver,
// the MAC schemes and the benches.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "rx/link_quality.h"
#include "util/stats.h"

namespace cbma::core {

/// Number of rx::DecodeOutcome states (kOk .. kIdMismatch). RoundStats
/// tallies by index so core/ needs no switch over the rx enum; keep in
/// sync with rx/receiver.h (core_metrics_test statically cross-checks).
inline constexpr std::size_t kDecodeOutcomeCount = 6;

/// Outcome of a batch of collided packets for one tag group.
struct RoundStats {
  std::vector<std::size_t> sent;   ///< per group slot
  std::vector<std::size_t> acked;  ///< per group slot
  /// Distribution of rx::TagDecodeResult::correlation_margin over the
  /// *detected* frames of the batch (CbmaSystem::run_packets feeds it) —
  /// how decisively each code beat its runner-up, the paper's PN-code
  /// separation argument as a measured quantity.
  RunningStats correlation_margin;
  /// Per-outcome packet tally indexed by rx::DecodeOutcome — the decode
  /// failure taxonomy the metrics plane turns into per-cell series.
  std::array<std::size_t, kDecodeOutcomeCount> outcomes{};
  /// Signal-quality rollup over the batch's decoded frames (empty unless
  /// the probe or metrics plane asked the receiver for quality reports).
  rx::LinkQualityRollup quality;

  explicit RoundStats(std::size_t group_size = 0);

  void record(std::size_t slot, bool acked_ok);
  void record_margin(double margin) { correlation_margin.add(margin); }
  /// Tally one packet's decode outcome (index = rx::DecodeOutcome value;
  /// out-of-range indices are ignored rather than asserted so a future
  /// outcome state degrades to "uncounted", not a crash).
  void record_outcome(std::size_t outcome_index);
  void merge(const RoundStats& other);

  std::size_t total_sent() const;
  std::size_t total_acked() const;

  /// Per-slot ACK ratio (0 for slots that sent nothing).
  std::vector<double> ack_ratios() const;

  /// Group frame error rate: missing packets / transmitted packets —
  /// the paper's error-rate definition (§IV).
  double frame_error_rate() const;
};

}  // namespace cbma::core
