// Top-level system configuration: one struct gathers every knob of the
// CBMA cell so experiments are reproducible from a printed config.
// Defaults follow the paper's implementation (§VI): 2 GHz carrier, 20 MHz
// subcarrier shift, 1 Mbps tag bit rate (1 µs symbol), one-byte 10101010
// preamble, 2NC codes (the family the paper adopts after Fig. 9(b)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pn/code.h"
#include "rfsim/channel.h"
#include "rfsim/impairment.h"
#include "rx/receiver.h"

namespace cbma::core {

struct SystemConfig {
  // --- PHY / framing ---
  pn::CodeFamily code_family = pn::CodeFamily::kTwoNC;
  std::size_t code_min_length = 20;  ///< floor on code length (chips per bit)
  std::size_t max_tags = 10;         ///< group capacity (codes generated)
  /// Size of the code family to construct before slicing. 0 (default)
  /// builds exactly max_tags codes — the single-cell behaviour. A
  /// multi-cell deployment sets this to the shared family size (e.g. the
  /// paper's 64-code Gold family) so every cell derives its codes from the
  /// *same* family and the reuse scheduler can hand out disjoint
  /// [code_offset, code_offset + max_tags) slices.
  std::size_t code_family_size = 0;
  /// First family index this cell uses (only meaningful with a non-zero
  /// code_family_size). Slot k maps to family code code_offset + k.
  std::size_t code_offset = 0;
  std::size_t preamble_bits = phy::kDefaultPreambleBits;
  std::size_t payload_bytes = 8;
  double bitrate_bps = 1e6;  ///< per-tag data rate (1 µs symbol time)

  // --- RF / link budget ---
  double carrier_hz = 2.0e9;
  double subcarrier_hz = 20.0e6;    ///< Δf square-wave shift (documentation)
  double tx_power_dbm = 20.0;       ///< excitation source power P_t
  double antenna_gain = 1.58;       ///< G_t = G_tag = G_r (≈2 dBi)
  double alpha = 0.5;               ///< scattering efficiency in Eq. 1
  double noise_figure_db = 6.0;
  /// Extra noise margin over thermal: excitation-tone leakage at the offset
  /// frequency, phase noise and ADC quantization of the real receiver.
  /// Calibrated so benchmark-geometry SNRs land in the paper's observed
  /// 3–10 dB range (Table II); see DESIGN.md §4.3.
  double noise_margin_db = 24.0;
  /// Shortest node separation the link budget accepts before declaring the
  /// placement degenerate (rfsim::LinkBudget::min_separation_m). Hops
  /// shorter than this throw rfsim::MinSeparationError instead of being
  /// silently clamped.
  double min_node_separation_m = 1e-3;

  // --- channel / timing ---
  std::size_t samples_per_chip = 4;
  rfsim::MultipathConfig multipath;       ///< off by default; macro benches enable it
  /// Fault injection (DESIGN.md §6): excitation dropout, tag clock drift,
  /// SPDT switching jitter/settling, impulsive interference, ADC
  /// saturation/quantization. Every stage defaults to off, in which case the
  /// simulation (and every RNG draw) is identical to the clean pipeline.
  rfsim::ImpairmentConfig impairments;
  double lead_in_chips = 64.0;            ///< silence before the earliest tag
  double max_async_jitter_chips = 1.0;    ///< uniform per-tag start offset
  /// Residual oscillator offset of each tag's subcarrier, uniform in
  /// ±cfo_max_hz per frame (≈75 ppm of the 20 MHz shift).
  double cfo_max_hz = 1500.0;
  /// Tag impedance bank: 4 levels uses the paper's circuit-derived bank
  /// (2 nH / 3 pF / 1 pF / open); any other count builds a synthetic
  /// uniform ladder over `impedance_range_db` for design-space studies.
  std::size_t impedance_levels = 4;
  double impedance_range_db = 11.0;
  /// Impedance level every tag starts at; kStrongestImpedance (the
  /// default) maps to the bank's strongest state.
  static constexpr std::size_t kStrongestImpedance =
      static_cast<std::size_t>(-1);
  std::size_t initial_impedance_level = kStrongestImpedance;

  // --- receiver ---
  rx::FrameSyncConfig sync{};
  rx::UserDetectConfig detect{};
  double phase_tracking_gain = 0.25;
  /// Receiver ingestion chunk size in samples. 0 (default) feeds each
  /// round's window to the streaming core in one piece — the batch path.
  /// Any positive value drives the same core in chunks of this size; the
  /// reports are byte-identical either way (DESIGN.md §10 chunk-invariance
  /// contract), so this knob exists to exercise and measure the streaming
  /// path, not to change results.
  std::size_t rx_chunk_samples = 0;

  // --- observability ---
  /// Signal-probe dump path (DESIGN.md §8). Non-empty = enable the probe
  /// subsystem and write the binary dump + manifest there on finish —
  /// the programmatic equivalent of CBMA_PROBE=<path>. Empty (default)
  /// leaves probing strictly off: zero allocations, zero RNG draws, every
  /// bench table and BENCH_*.json byte-identical. Deliberately excluded
  /// from summary() so a probe-enabled rerun of an experiment keeps the
  /// same config fingerprint as the run it is explaining.
  std::string probe;
  /// Metrics-plane Prometheus exposition path (DESIGN.md §12). Non-empty =
  /// enable the windowed time-series plane and rewrite the text exposition
  /// there at every window boundary — the programmatic equivalent of
  /// CBMA_METRICS=<path>. Empty (default) leaves the plane strictly off
  /// under the same identity contract as `probe`, and is likewise excluded
  /// from summary()/the config fingerprint.
  std::string metrics;

  // --- derived quantities ---
  double chip_rate_hz() const;      ///< bitrate × code length
  std::size_t code_length() const;  ///< chips per bit for this config
  double sample_rate_hz() const;
  double noise_power_w() const;     ///< thermal × NF × margin over chip bandwidth
  double symbol_time_s() const { return 1.0 / bitrate_bps; }

  std::string summary() const;  ///< one-line description for bench headers

  /// Validate every knob and return a descriptive message per violation
  /// (empty = valid). CbmaSystem's constructor runs this and reports all
  /// problems at once, so a misconfigured sweep fails with the full list
  /// instead of dying on the first CBMA_REQUIRE it happens to hit.
  std::vector<std::string> validate() const;
};

}  // namespace cbma::core
