#include "core/session.h"

#include <algorithm>

#include "util/expect.h"

namespace cbma::core {

AdaptiveSession::AdaptiveSession(CbmaSystem& system, SessionConfig config)
    : system_(system), config_(config), selector_(config.ns, system.link_budget()) {
  CBMA_REQUIRE(config_.packets_per_round >= 1, "need at least one packet per round");
  CBMA_REQUIRE(config_.max_rounds >= 1, "need at least one round");
  CBMA_REQUIRE(config_.final_packets >= 1, "need a final measurement batch");
}

SessionResult AdaptiveSession::run(Rng& rng) {
  SessionResult result;
  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    SessionRound entry;
    entry.round = round;
    entry.group = system_.active_group();

    // Algorithm 1 equalizes within the current group.
    const auto pc = system_.run_power_control(config_.pc, config_.packets_per_round,
                                              rng);
    entry.pc_adjustments = pc.rounds;

    // Measure the adapted group.
    const auto stats = system_.run_packets(config_.packets_per_round, rng);
    entry.fer = stats.frame_error_rate();
    entry.ack_ratios = stats.ack_ratios();

    const bool all_healthy = std::all_of(
        entry.ack_ratios.begin(), entry.ack_ratios.end(),
        [&](double r) { return r >= config_.ns.bad_ack_ratio; });
    if (all_healthy) {
      result.history.push_back(std::move(entry));
      result.converged = true;
      result.rounds_to_converge = round + 1;
      break;
    }

    // §V-C: replace members that stayed under the bar.
    auto next = selector_.reselect(system_.population(), system_.active_group(),
                                   entry.ack_ratios, round, rng);
    entry.reselected = (next != system_.active_group());
    if (entry.reselected) system_.set_active_group(std::move(next));
    result.history.push_back(std::move(entry));
  }
  if (!result.converged) result.rounds_to_converge = config_.max_rounds;

  result.final_fer = system_.run_packets(config_.final_packets, rng).frame_error_rate();
  return result;
}

}  // namespace cbma::core
