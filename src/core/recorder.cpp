#include "core/recorder.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "core/metrics_plane.h"
#include "core/probe_session.h"
#include "core/profile_plane.h"
#include "core/telemetry.h"
#include "util/expect.h"
#include "util/json.h"

namespace cbma::core {

namespace {

/// FNV-1a 64-bit over the config summary: a stable fingerprint that ties a
/// JSON document to the exact configuration that produced it.
std::uint64_t fingerprint(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

RunRecorder::RunRecorder(SweepSpec spec, const SystemConfig& config)
    : spec_(std::move(spec)),
      config_summary_(config.summary()),
      config_fingerprint_(fingerprint(config_summary_)),
      points_(spec_.point_count()) {
  CBMA_REQUIRE(!spec_.name.empty(), "SweepSpec needs a bench name");
}

void RunRecorder::print_header() const {
  std::printf("=== %s ===\n", spec_.title.c_str());
  std::printf("reproduces : %s\n", spec_.paper_ref.c_str());
  std::printf("config     : %s\n", config_summary_.c_str());
  std::printf("trials/pt  : %zu (CBMA_TRIALS to change)  seed: %llu\n\n",
              spec_.trials, static_cast<unsigned long long>(spec_.base_seed));
}

void RunRecorder::record(std::size_t flat, const std::string& metric,
                         double value) {
  CBMA_REQUIRE(flat < points_.size(), "point index out of range");
  points_[flat].emplace_back(metric, value);
}

double RunRecorder::metric(std::size_t flat, const std::string& name) const {
  CBMA_REQUIRE(flat < points_.size(), "point index out of range");
  for (const auto& [k, v] : points_[flat]) {
    if (k == name) return v;
  }
  CBMA_REQUIRE(false, "no metric '" + name + "' recorded for point " +
                          std::to_string(flat));
  return 0.0;
}

void RunRecorder::print_table(const Table& table) {
  std::printf("%s\n", table.render().c_str());
  tables_.push_back({table.headers(), table.row_data()});
}

bool RunRecorder::check(const std::string& name, bool holds,
                        std::string detail) {
  checks_.push_back({name, holds, std::move(detail)});
  return holds;
}

void RunRecorder::note(std::string text) { notes_.push_back(std::move(text)); }

std::size_t RunRecorder::run_watchdog(const std::vector<WatchdogRule>& rules) {
  warnings_ = scan_sweep_anomalies(
      spec_,
      [this](std::size_t flat, const std::string& name) {
        return metric(flat, name);
      },
      rules);
  for (const auto& warning : warnings_) {
    std::fprintf(stderr, "watchdog: %s\n", warning.detail.c_str());
    // Watchdog firings double as structured events on the metrics plane
    // (no-op when it is off).
    MetricsPlane::record_event(metrics::Severity::kWarning, "watchdog",
                               "metric=" + warning.metric, warning.value,
                               warning.detail);
  }
  return warnings_.size();
}

std::string RunRecorder::json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kBenchJsonSchemaVersion);
  w.key("bench").value(spec_.name);
  w.key("title").value(spec_.title);
  w.key("paper_ref").value(spec_.paper_ref);

  w.key("config").begin_object();
  w.key("summary").value(config_summary_);
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(config_fingerprint_));
  w.key("fingerprint").value(fp);
  w.end_object();

  w.key("base_seed").value(static_cast<std::uint64_t>(spec_.base_seed));
  w.key("trials_per_point").value(spec_.trials);
  // Provenance: CI exports CBMA_GIT_SHA=$GITHUB_SHA; local runs may not
  // have it, and the field stays deterministic either way.
  if (const char* sha = std::getenv("CBMA_GIT_SHA")) {
    w.key("git_sha").value(sha);
  }

  w.key("axes").begin_array();
  for (const auto& axis : spec_.axes) {
    w.begin_object();
    w.key("name").value(axis.name);
    if (axis.is_numeric()) {
      if (!axis.unit.empty()) w.key("unit").value(axis.unit);
      w.key("values").begin_array();
      for (const double v : axis.values) w.value(v);
      w.end_array();
    } else {
      w.key("labels").begin_array();
      for (const auto& l : axis.labels) w.value(l);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  w.key("points").begin_array();
  for (std::size_t flat = 0; flat < points_.size(); ++flat) {
    w.begin_object();
    const SweepPoint point(spec_, flat);
    w.key("index").begin_array();
    for (std::size_t a = 0; a < spec_.axes.size(); ++a) w.value(point.index(a));
    w.end_array();
    w.key("metrics").begin_object();
    for (const auto& [k, v] : points_[flat]) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("tables").begin_array();
  for (const auto& table : tables_) {
    w.begin_object();
    w.key("headers").begin_array();
    for (const auto& h : table.headers) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : table.rows) {
      w.begin_array();
      for (const auto& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("checks").begin_array();
  for (const auto& check : checks_) {
    w.begin_object();
    w.key("name").value(check.name);
    w.key("holds").value(check.holds);
    if (!check.detail.empty()) w.key("detail").value(check.detail);
    w.end_object();
  }
  w.end_array();

  w.key("notes").begin_array();
  for (const auto& n : notes_) w.value(n);
  w.end_array();

  // Observability export: present only when telemetry is enabled, so the
  // default document stays byte-identical (DESIGN.md §7). Span timings are
  // wall-clock and therefore not deterministic; counters are. Neither
  // enters the config fingerprint above.
  if (Telemetry::enabled()) {
    Telemetry::write_json_section(w);
  }

  // Same contract for the probe exports: the "link_quality" section rides
  // along only when probing is enabled, and "watchdog" only when probing is
  // enabled or a rule actually fired — a silent watchdog on a default run
  // leaves the document byte-identical (DESIGN.md §8).
  if (ProbeSession::enabled()) {
    ProbeSession::write_json_section(w);
  }
  // The windowed time-series + event log ride along under the same
  // contract: sections exist only while the metrics plane is enabled
  // (DESIGN.md §12), so the default document stays byte-identical.
  if (MetricsPlane::enabled()) {
    MetricsPlane::write_json_section(w);
  }
  // The profiler's attribution tree + worker-utilization report: present
  // only while CBMA_PROFILE is live (DESIGN.md §13). Timings are
  // wall-clock; tree shape and counts are deterministic.
  if (ProfilePlane::enabled()) {
    ProfilePlane::write_json_section(w);
  }
  if (!warnings_.empty() || ProbeSession::enabled()) {
    w.key("watchdog").begin_array();
    for (const auto& warning : warnings_) {
      w.begin_object();
      w.key("metric").value(warning.metric);
      w.key("point").value(warning.flat);
      w.key("kind").value(warning.kind);
      w.key("value").value(warning.value);
      w.key("reference").value(warning.reference);
      w.key("detail").value(warning.detail);
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
  return w.str();
}

int RunRecorder::finish() const {
  std::string path = "BENCH_" + spec_.name + ".json";
  if (const char* dir = std::getenv("CBMA_BENCH_DIR")) {
    if (*dir != '\0') {
      // Create the target directory rather than failing with an opaque
      // stream error — a missing results dir is the common CI/first-run
      // case, and a real permission problem deserves a named errno.
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr,
                     "error: cannot create CBMA_BENCH_DIR '%s': %s\n", dir,
                     ec.message().c_str());
        return 1;
      }
      path = std::string(dir) + "/" + path;
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << json() << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    return 1;
  }
  // CBMA_TRACE=<path> drops a Chrome/Perfetto timeline of the run next to
  // the JSON (no-op unless telemetry is enabled).
  if (!Telemetry::write_trace_if_requested()) return 1;
  // CBMA_PROBE=<path> likewise drops the signal-probe dump + manifest
  // (no-op unless probing is enabled).
  if (!ProbeSession::write_dump_if_requested()) return 1;
  // CBMA_METRICS=<path>: leave a final Prometheus snapshot covering the
  // whole run (the plane also rewrites it live at window boundaries).
  if (!MetricsPlane::write_prometheus_if_requested()) return 1;
  // CBMA_PROFILE=<path>: the collapsed-stack flamegraph of the run
  // (no-op unless the profiler is enabled).
  if (!ProfilePlane::write_collapsed_if_requested()) return 1;
  return 0;
}

}  // namespace cbma::core
