#include "core/experiment.h"

#include <algorithm>

#include "util/expect.h"

namespace cbma::core {

FerPoint measure_fer(const SystemConfig& config, const rfsim::Deployment& deployment,
                     std::size_t n_packets, std::uint64_t seed) {
  CBMA_REQUIRE(n_packets >= 1, "need at least one packet");
  Rng rng(seed);
  CbmaSystem system(config, deployment);
  FerPoint point;
  point.stats = system.run_packets(n_packets, rng);
  point.fer = point.stats.frame_error_rate();
  point.snr_db.reserve(system.group_size());
  for (const auto idx : system.active_group()) {
    point.snr_db.push_back(system.snr_db(idx));
  }
  return point;
}

std::string to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline: return "none";
    case Scheme::kPowerControl: return "power-control";
    case Scheme::kPowerControlAndSelection: return "power-control+selection";
  }
  return "?";
}

double run_scheme_trial(const SystemConfig& config, const SchemeRunConfig& run,
                        Scheme scheme, std::uint64_t seed) {
  CBMA_REQUIRE(run.population >= run.group_size, "population smaller than group");
  CBMA_REQUIRE(run.group_size >= 1, "group must be non-empty");
  Rng rng(seed);

  auto deployment = rfsim::Deployment::paper_frame();
  deployment.place_random_tags(run.population, run.room, rng, run.min_separation_m);
  CbmaSystem system(config, deployment);

  // Random initial group.
  std::vector<std::size_t> population_indices(run.population);
  for (std::size_t i = 0; i < run.population; ++i) population_indices[i] = i;
  rng.shuffle(population_indices);
  std::vector<std::size_t> group(population_indices.begin(),
                                 population_indices.begin() +
                                     static_cast<std::ptrdiff_t>(run.group_size));
  system.set_active_group(group);

  // Uncontrolled starting state: every tag at an arbitrary impedance level
  // (see the Scheme enum's documentation).
  for (std::size_t i = 0; i < system.population().tag_count(); ++i) {
    system.set_impedance_level(
        i, static_cast<std::size_t>(rng.uniform_int(
               0, static_cast<int>(system.impedance_level_count()) - 1)));
  }

  if (scheme == Scheme::kBaseline) {
    return system.run_packets(run.final_packets, rng).frame_error_rate();
  }

  system.run_power_control(run.pc, run.packets_per_round, rng);

  if (scheme == Scheme::kPowerControlAndSelection) {
    const mac::NodeSelector selector(run.ns, system.link_budget());
    for (std::size_t round = 0; round < run.selection_rounds; ++round) {
      const auto stats = system.run_packets(run.packets_per_round, rng);
      const auto ratios = stats.ack_ratios();
      const bool all_good = std::all_of(ratios.begin(), ratios.end(), [&](double r) {
        return r >= run.ns.bad_ack_ratio;
      });
      if (all_good) break;
      auto new_group = selector.reselect(system.population(), system.active_group(),
                                         ratios, round, rng);
      if (new_group == system.active_group()) continue;
      system.set_active_group(std::move(new_group));
      // Newly drafted tags start from the strongest level; re-run Algorithm 1
      // so the refreshed group re-equalizes.
      system.run_power_control(run.pc, run.packets_per_round, rng);
    }
  }

  return system.run_packets(run.final_packets, rng).frame_error_rate();
}

std::vector<double> scheme_error_rates(const SystemConfig& config,
                                       const SchemeRunConfig& run, Scheme scheme,
                                       std::size_t trials, std::uint64_t seed) {
  CBMA_REQUIRE(trials >= 1, "need at least one trial");
  std::vector<double> out;
  out.reserve(trials);
  Rng seeder(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    out.push_back(run_scheme_trial(config, run, scheme, seeder.engine()()));
  }
  return out;
}

}  // namespace cbma::core
