// MetricsPlane: the sampling cadence + export half of the metrics plane
// (DESIGN.md §12). util/metrics owns the bounded storage; this facade owns
// *when* samples are taken and *what* they mean:
//
//  - tick() is called once per round from a sequential context (after any
//    parallel_for has joined). Every `cadence` rounds it closes a window:
//    telemetry counter totals become per-window deltas, span histograms
//    become per-window count/mean/p50/p90/p99 series (computed from the
//    histogram *delta*, so each window's percentiles cover only that
//    window's spans), and the Prometheus snapshot is rewritten if
//    CBMA_METRICS named a path.
//  - record_cell() attributes one cell's round result to scope "cell=<id>"
//    — goodput, FER, code-slice occupancy, per-outcome decode tallies and
//    the link-quality rollup.
//  - record_event() feeds the bounded structured event log (roam,
//    code_slice_overflow, watchdog, decode_failure, ...).
//
// Same identity contract as telemetry/probe: when disabled (CBMA_METRICS
// unset and no enable() call) every entry point returns before touching
// state — no allocation, no clock read, no RNG draw, byte-identical bench
// output. Enabling metrics arms util/telemetry too (the counter/span
// series need it); it never arms the probe.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

#include "core/metrics.h"
#include "util/metrics.h"

namespace cbma::util {
class JsonWriter;
}  // namespace cbma::util

namespace cbma::core {

class MetricsPlane {
 public:
  /// One cell's contribution to the current window. net::Network fills one
  /// per cell each round from its CellRoundResult (sequentially, step 5).
  struct CellSample {
    std::size_t cell_id = 0;
    double goodput_bps = 0.0;
    double frame_error_rate = 0.0;
    std::size_t tags_served = 0;
    std::size_t tags_total = 0;
    std::size_t sent = 0;
    std::size_t acked = 0;
    std::array<std::size_t, kDecodeOutcomeCount> outcomes{};
    rx::LinkQualityRollup quality;
  };

  /// True when the plane is live (CBMA_METRICS set, SystemConfig::metrics,
  /// or enable()). The first true observation arms util/telemetry so the
  /// counter/span series have a source.
  static bool enabled();

  /// Turn the plane on; a non-empty path becomes the Prometheus exposition
  /// target (equivalent to CBMA_METRICS=<path>).
  static void enable(std::string prometheus_path = "");
  static void disable();

  /// Drop all recorded series/events and the plane's round counter +
  /// telemetry baselines. Cadence and the enabled flag are unchanged.
  static void reset();

  /// Rounds per window (default 1). 0 is clamped to 1.
  static void set_cadence(std::size_t rounds);
  static std::size_t cadence();

  /// Per-round heartbeat — MUST be called from a sequential context (no
  /// telemetry workers recording). Closes a window at each cadence
  /// boundary.
  static void tick();

  static void record_cell(const CellSample& sample);

  /// Generic sample into (name, scope) at the current window.
  static void record_value(std::string_view name, std::string_view scope,
                           double value, std::string_view unit = {});

  static void record_event(metrics::Severity severity, std::string_view type,
                           std::string_view scope, double value,
                           std::string_view detail);

  /// Emit the "timeseries" + "events" sections into an open JSON object
  /// (RunRecorder::json calls this only when enabled).
  static void write_json_section(util::JsonWriter& w);

  /// Rewrite the Prometheus snapshot at metrics::export_path(), atomically.
  /// No-op (true) when disabled or no path is configured.
  static bool write_prometheus_if_requested();
};

}  // namespace cbma::core
