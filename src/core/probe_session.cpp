#include "core/probe_session.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>
#include <vector>

namespace cbma::core {

namespace {

constexpr char kMagic[8] = {'C', 'B', 'P', 'R', 'O', 'B', 'E', '1'};
constexpr std::size_t kRecordHeaderBytes = 8 + 4 + 4 + 8 + 4 + 4;

/// Explicit little-endian encoding: the dump is a cross-machine artifact,
/// so the writer pins the byte order instead of inheriting the host's.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

/// Per-tag aggregate of the captured link-quality rows.
struct TagAggregate {
  std::size_t frames = 0;
  std::size_t decoded = 0;
  double snr_db = 0.0;
  double evm = 0.0;
  double soft_margin = 0.0;
  double margin_ratio = 0.0;
  double power_norm = 0.0;
  double correlation = 0.0;
};

void write_link_sample(util::JsonWriter& w, const probe::LinkQualitySample& s) {
  w.begin_object();
  w.key("seq").value(s.seq);
  w.key("point").value(s.point);
  w.key("tag").value(static_cast<std::uint64_t>(s.tag));
  w.key("detected").value(s.detected);
  w.key("decoded").value(s.decoded);
  w.key("snr_db").value(s.snr_db);
  w.key("evm").value(s.evm);
  w.key("soft_margin").value(s.soft_margin);
  w.key("margin_ratio").value(s.margin_ratio);
  w.key("power_norm").value(s.power_norm);
  w.key("correlation").value(s.correlation);
  w.end_object();
}

}  // namespace

void ProbeSession::write_json_section(util::JsonWriter& w) {
  const auto capture = probe::snapshot();

  // std::map keys the per-tag aggregates in ascending tag order, which
  // keeps the emitted section deterministic for identical captures.
  std::map<std::uint32_t, TagAggregate> tags;
  for (const auto& s : capture.link) {
    auto& agg = tags[s.tag];
    ++agg.frames;
    agg.decoded += s.decoded ? 1 : 0;
    agg.snr_db += s.snr_db;
    agg.evm += s.evm;
    agg.soft_margin += s.soft_margin;
    agg.margin_ratio += s.margin_ratio;
    agg.power_norm += s.power_norm;
    agg.correlation += s.correlation;
  }

  w.key("link_quality").begin_object();
  w.key("samples").value(static_cast<std::uint64_t>(capture.link.size()));
  w.key("dropped").value(static_cast<std::uint64_t>(capture.dropped_link));
  w.key("tags").begin_array();
  for (const auto& [tag, agg] : tags) {
    const auto n = static_cast<double>(agg.frames);
    w.begin_object();
    w.key("tag").value(static_cast<std::uint64_t>(tag));
    w.key("frames").value(static_cast<std::uint64_t>(agg.frames));
    w.key("decoded").value(static_cast<std::uint64_t>(agg.decoded));
    w.key("snr_db_mean").value(agg.snr_db / n);
    w.key("evm_mean").value(agg.evm / n);
    w.key("soft_margin_mean").value(agg.soft_margin / n);
    w.key("margin_ratio_mean").value(agg.margin_ratio / n);
    w.key("power_norm_mean").value(agg.power_norm / n);
    w.key("correlation_mean").value(agg.correlation / n);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool ProbeSession::write_dump(const std::string& path) {
  const auto capture = probe::snapshot();

  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create probe dump directory '%s': %s\n",
                   target.parent_path().string().c_str(), ec.message().c_str());
      return false;
    }
  }

  // Binary dump: magic + back-to-back records, assembled in memory first so
  // the manifest can carry exact byte offsets without a second file pass.
  std::string blob(kMagic, sizeof kMagic);
  std::vector<std::size_t> offsets;
  offsets.reserve(capture.taps.size());
  for (const auto& r : capture.taps) {
    offsets.push_back(blob.size());
    put_u64(blob, r.seq);
    put_u32(blob, static_cast<std::uint32_t>(r.tap));
    put_u32(blob, r.context);
    put_u64(blob, r.point);
    put_u32(blob, r.complex_iq ? 1u : 0u);
    put_u32(blob, static_cast<std::uint32_t>(r.data.size()));
    for (const double v : r.data) put_f64(blob, v);
  }

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot open probe dump '%s' for writing\n",
                   path.c_str());
      return false;
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: failed writing probe dump '%s'\n", path.c_str());
      return false;
    }
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("magic").value("CBPROBE1");
  w.key("schema_version").value(kProbeDumpSchemaVersion);
  w.key("dump").value(target.filename().string());
  w.key("dump_bytes").value(static_cast<std::uint64_t>(blob.size()));
  w.key("records").value(static_cast<std::uint64_t>(capture.taps.size()));
  w.key("dropped_taps").value(static_cast<std::uint64_t>(capture.dropped_taps));
  w.key("dropped_link").value(static_cast<std::uint64_t>(capture.dropped_link));
  w.key("taps").begin_array();
  for (std::size_t i = 0; i < capture.taps.size(); ++i) {
    const auto& r = capture.taps[i];
    w.begin_object();
    w.key("seq").value(r.seq);
    w.key("tap").value(probe::tap_name(r.tap));
    w.key("context").value(static_cast<std::uint64_t>(r.context));
    w.key("point").value(r.point);
    w.key("iq").value(r.complex_iq);
    w.key("doubles").value(static_cast<std::uint64_t>(r.data.size()));
    w.key("samples").value(static_cast<std::uint64_t>(
        r.complex_iq ? r.data.size() / 2 : r.data.size()));
    w.key("offset").value(static_cast<std::uint64_t>(offsets[i]));
    w.key("payload_offset")
        .value(static_cast<std::uint64_t>(offsets[i] + kRecordHeaderBytes));
    w.end_object();
  }
  w.end_array();
  w.key("link_quality").begin_array();
  for (const auto& s : capture.link) write_link_sample(w, s);
  w.end_array();
  w.end_object();

  const std::string manifest_path = path + ".json";
  std::ofstream manifest(manifest_path, std::ios::binary | std::ios::trunc);
  if (!manifest) {
    std::fprintf(stderr, "error: cannot open probe manifest '%s' for writing\n",
                 manifest_path.c_str());
    return false;
  }
  manifest << w.str() << '\n';
  manifest.flush();
  if (!manifest) {
    std::fprintf(stderr, "error: failed writing probe manifest '%s'\n",
                 manifest_path.c_str());
    return false;
  }
  return true;
}

bool ProbeSession::write_dump_if_requested() {
  if (!enabled()) return true;
  const auto path = probe::dump_path();
  if (path.empty()) return true;
  return write_dump(path);
}

}  // namespace cbma::core
