#include "core/sweep.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "util/expect.h"
#include "util/telemetry.h"

namespace cbma::core {

Axis Axis::numeric(std::string name, std::vector<double> values,
                   std::string unit) {
  Axis axis;
  axis.name = std::move(name);
  axis.values = std::move(values);
  axis.unit = std::move(unit);
  CBMA_REQUIRE(!axis.values.empty(), "axis '" + axis.name + "' has no values");
  return axis;
}

Axis Axis::categorical(std::string name, std::vector<std::string> labels) {
  Axis axis;
  axis.name = std::move(name);
  axis.labels = std::move(labels);
  CBMA_REQUIRE(!axis.labels.empty(), "axis '" + axis.name + "' has no labels");
  return axis;
}

std::size_t SweepSpec::point_count() const {
  std::size_t n = 1;
  for (const auto& axis : axes) {
    const std::size_t s = axis.size();
    // Unchecked n *= s wraps silently for pathological grids and the
    // resulting "small" sweep would run (and record into) the wrong points.
    CBMA_REQUIRE(s == 0 || n <= std::numeric_limits<std::size_t>::max() / s,
                 "sweep grid overflows std::size_t at axis '" + axis.name + "'");
    n *= s;
  }
  return n;
}

SweepPoint::SweepPoint(const SweepSpec& spec, std::size_t flat)
    : spec_(&spec), flat_(flat), seed_(util::point_seed(spec.base_seed, flat)) {
  // Row-major decomposition: the last axis varies fastest.
  index_.resize(spec.axes.size());
  std::size_t rest = flat;
  for (std::size_t a = spec.axes.size(); a-- > 0;) {
    const std::size_t n = spec.axes[a].size();
    index_[a] = rest % n;
    rest /= n;
  }
  CBMA_ASSERT(rest == 0);
}

double SweepPoint::value(std::size_t axis) const {
  const Axis& ax = spec_->axes.at(axis);
  CBMA_REQUIRE(ax.is_numeric(), "axis '" + ax.name + "' is categorical");
  return ax.values[index_[axis]];
}

const std::string& SweepPoint::label(std::size_t axis) const {
  const Axis& ax = spec_->axes.at(axis);
  CBMA_REQUIRE(!ax.is_numeric(), "axis '" + ax.name + "' is numeric");
  return ax.labels[index_[axis]];
}

void SweepRunner::run(const std::function<void(const SweepPoint&)>& body,
                      std::size_t workers) const {
  const std::size_t n = spec_.point_count();
  const telemetry::ScopedSpan span_run(telemetry::Span::kSweepRun);
  if (telemetry::enabled()) {
    // Mirror parallel_for's pool sizing so sweep.workers reports the
    // threads actually launched (utilization = Σ sweep/point ÷
    // (sweep/run × workers) is then meaningful).
    const std::size_t max_workers =
        workers != 0 ? workers
                     : std::max(1u, std::thread::hardware_concurrency());
    telemetry::count(telemetry::Counter::kSweepWorkers,
                     std::min<std::size_t>(max_workers, n));
  }
  util::parallel_for(
      n,
      [&](std::size_t flat) {
        const telemetry::ScopedSpan span_point(telemetry::Span::kSweepPoint);
        telemetry::count(telemetry::Counter::kSweepPoints);
        body(SweepPoint(spec_, flat));
      },
      workers);
}

}  // namespace cbma::core
