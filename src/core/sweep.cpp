#include "core/sweep.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "util/expect.h"
#include "util/probe.h"
#include "util/profiler.h"
#include "util/telemetry.h"

namespace cbma::core {

Axis Axis::numeric(std::string name, std::vector<double> values,
                   std::string unit) {
  Axis axis;
  axis.name = std::move(name);
  axis.values = std::move(values);
  axis.unit = std::move(unit);
  CBMA_REQUIRE(!axis.values.empty(), "axis '" + axis.name + "' has no values");
  return axis;
}

Axis Axis::categorical(std::string name, std::vector<std::string> labels) {
  Axis axis;
  axis.name = std::move(name);
  axis.labels = std::move(labels);
  CBMA_REQUIRE(!axis.labels.empty(), "axis '" + axis.name + "' has no labels");
  return axis;
}

std::size_t SweepSpec::point_count() const {
  std::size_t n = 1;
  for (const auto& axis : axes) {
    const std::size_t s = axis.size();
    // Unchecked n *= s wraps silently for pathological grids and the
    // resulting "small" sweep would run (and record into) the wrong points.
    CBMA_REQUIRE(s == 0 || n <= std::numeric_limits<std::size_t>::max() / s,
                 "sweep grid overflows std::size_t at axis '" + axis.name + "'");
    n *= s;
  }
  return n;
}

SweepPoint::SweepPoint(const SweepSpec& spec, std::size_t flat)
    : spec_(&spec), flat_(flat), seed_(util::point_seed(spec.base_seed, flat)) {
  // Row-major decomposition: the last axis varies fastest.
  index_.resize(spec.axes.size());
  std::size_t rest = flat;
  for (std::size_t a = spec.axes.size(); a-- > 0;) {
    const std::size_t n = spec.axes[a].size();
    index_[a] = rest % n;
    rest /= n;
  }
  CBMA_ASSERT(rest == 0);
}

double SweepPoint::value(std::size_t axis) const {
  const Axis& ax = spec_->axes.at(axis);
  CBMA_REQUIRE(ax.is_numeric(), "axis '" + ax.name + "' is categorical");
  return ax.values[index_[axis]];
}

const std::string& SweepPoint::label(std::size_t axis) const {
  const Axis& ax = spec_->axes.at(axis);
  CBMA_REQUIRE(!ax.is_numeric(), "axis '" + ax.name + "' is numeric");
  return ax.labels[index_[axis]];
}

void SweepRunner::run(const std::function<void(const SweepPoint&)>& body,
                      std::size_t workers) const {
  const std::size_t n = spec_.point_count();
  const telemetry::ScopedSpan span_run(telemetry::Span::kSweepRun);
  if (telemetry::enabled()) {
    // Mirror parallel_for's pool sizing so sweep.workers reports the
    // threads actually launched (utilization = Σ sweep/point ÷
    // (sweep/run × workers) is then meaningful).
    const std::size_t max_workers =
        workers != 0 ? workers
                     : std::max(1u, std::thread::hardware_concurrency());
    telemetry::count(telemetry::Counter::kSweepWorkers,
                     std::min<std::size_t>(max_workers, n));
  }
  util::ParallelStats stats;
  util::parallel_for(
      n,
      [&](std::size_t flat) {
        const telemetry::ScopedSpan span_point(telemetry::Span::kSweepPoint);
        telemetry::count(telemetry::Counter::kSweepPoints);
        // Label every probe capture made by this body with its grid point
        // (flat + 1 so point 0 stays the "outside any sweep" marker).
        const probe::ScopedPoint probe_point(flat + 1);
        body(SweepPoint(spec_, flat));
      },
      workers, &stats);
  // Worker-utilization report for the profiler (collected only while it
  // is live; the pool has joined, so this is the sequential context).
  if (stats.collected) profiler::record_parallel("sweep/run", stats);
}

std::vector<WatchdogWarning> scan_sweep_anomalies(
    const SweepSpec& spec,
    const std::function<double(std::size_t, const std::string&)>& metric,
    const std::vector<WatchdogRule>& rules) {
  const std::size_t n = spec.point_count();
  // Row-major strides: moving one step along axis a changes flat by
  // stride[a] (the last axis varies fastest).
  std::vector<std::size_t> stride(spec.axes.size(), 1);
  for (std::size_t a = spec.axes.size(); a-- > 1;) {
    stride[a - 1] = stride[a] * spec.axes[a].size();
  }

  std::vector<WatchdogWarning> warnings;
  char buf[256];
  for (const auto& rule : rules) {
    // Orient every comparison so "worse" is always "lower": negate when
    // lower raw values are better (error rates, latencies). A floor with
    // |floor| >= 1e300 is "disabled" regardless of orientation.
    const double sign = rule.higher_is_better ? 1.0 : -1.0;
    const bool has_floor = std::abs(rule.floor) < 1e300;
    for (std::size_t flat = 0; flat < n; ++flat) {
      const double raw = metric(flat, rule.metric);
      const double oriented = sign * raw;

      if (has_floor && oriented < sign * rule.floor) {
        WatchdogWarning warning;
        warning.metric = rule.metric;
        warning.flat = flat;
        warning.kind = "floor";
        warning.value = raw;
        warning.reference = rule.floor;
        std::snprintf(buf, sizeof buf,
                      "%s at point %zu is %g, %s the declared floor %g",
                      rule.metric.c_str(), flat, raw,
                      rule.higher_is_better ? "below" : "above", rule.floor);
        warning.detail = buf;
        warnings.push_back(warning);
      }

      if (rule.neighbor_tolerance >= 1e300) continue;
      for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        const SweepPoint point(spec, flat);
        const std::size_t i = point.index(a);
        double neighbor_sum = 0.0;
        std::size_t neighbor_count = 0;
        if (i > 0) {
          neighbor_sum += sign * metric(flat - stride[a], rule.metric);
          ++neighbor_count;
        }
        if (i + 1 < spec.axes[a].size()) {
          neighbor_sum += sign * metric(flat + stride[a], rule.metric);
          ++neighbor_count;
        }
        // Only interior points along this axis: an edge point on a smooth
        // monotonic curve deviates from its single neighbor by the full
        // step, which is exactly the non-anomaly the tolerance protects.
        if (neighbor_count < 2) continue;
        const double neighbor_mean =
            neighbor_sum / static_cast<double>(neighbor_count);
        if (oriented < neighbor_mean - rule.neighbor_tolerance) {
          WatchdogWarning warning;
          warning.metric = rule.metric;
          warning.flat = flat;
          warning.kind = "neighbor";
          warning.value = raw;
          warning.reference = sign * neighbor_mean;
          std::snprintf(
              buf, sizeof buf,
              "%s at point %zu is %g, deviating from its '%s'-axis "
              "neighbor mean %g by more than %g",
              rule.metric.c_str(), flat, raw, spec.axes[a].name.c_str(),
              sign * neighbor_mean, rule.neighbor_tolerance);
          warning.detail = buf;
          warnings.push_back(warning);
          break;  // one neighbor warning per (rule, point) is enough
        }
      }
    }
  }
  return warnings;
}

}  // namespace cbma::core
