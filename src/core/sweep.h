// Declarative experiment sweeps: a SweepSpec names a bench, its paper
// reference and its parameter axes (tag count, distance, ES power, code
// family, ...) as typed descriptors; a SweepRunner executes the row-major
// point grid across threads with util::point_seed-derived per-point seeds,
// so every result is independent of the thread count. RunRecorder
// (core/recorder.h) collects the per-point metrics and emits the table +
// BENCH_<name>.json pair every bench shares.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/parallel.h"

namespace cbma::core {

/// One dimension of a sweep grid: numeric values with an optional unit, or
/// categorical labels (code family, receiver variant, working condition).
struct Axis {
  static Axis numeric(std::string name, std::vector<double> values,
                      std::string unit = "");
  static Axis categorical(std::string name, std::vector<std::string> labels);

  std::string name;
  std::string unit;                 ///< numeric axes only (may be empty)
  std::vector<double> values;       ///< numeric axes
  std::vector<std::string> labels;  ///< categorical axes

  bool is_numeric() const { return labels.empty(); }
  std::size_t size() const {
    return is_numeric() ? values.size() : labels.size();
  }
};

/// Everything that identifies an experiment run: the bench name (keys the
/// BENCH_<name>.json artifact), its paper reference, the axes of its point
/// grid, and the trial/seed plumbing. An empty axis list is a single-point
/// experiment (summary benches like Table I).
struct SweepSpec {
  std::string name;       ///< bench identifier, e.g. "fig8a_distance"
  std::string title;      ///< printed banner title
  std::string paper_ref;  ///< figure/table/section reproduced
  std::vector<Axis> axes;
  std::size_t trials = 0;  ///< trials (packets/groups) per grid point
  std::uint64_t base_seed = 0;

  /// Product of axis sizes; 1 for an empty axis list.
  std::size_t point_count() const;
};

/// One grid point handed to the sweep body: the row-major flat index, the
/// per-axis indices, and the deterministic per-point seed.
class SweepPoint {
 public:
  SweepPoint(const SweepSpec& spec, std::size_t flat);

  std::size_t flat() const { return flat_; }
  /// Index along the given axis.
  std::size_t index(std::size_t axis) const { return index_[axis]; }
  /// Value / label along the given axis.
  double value(std::size_t axis) const;
  const std::string& label(std::size_t axis) const;
  /// util::point_seed(base_seed, flat) — the per-point default. Benches
  /// needing paired seeds (same deployment across schemes) derive their own
  /// from the spec's base seed instead.
  std::uint64_t seed() const { return seed_; }

 private:
  const SweepSpec* spec_;
  std::size_t flat_;
  std::uint64_t seed_;
  std::vector<std::size_t> index_;
};

/// One anomaly rule for the sweep watchdog: a per-point floor and/or a
/// neighbor-deviation tolerance for a recorded metric. `higher_is_better`
/// orients both tests (a PRR dips *below*, a FER spikes *above*).
struct WatchdogRule {
  std::string metric;
  /// Config-declared floor: warn when a point's value falls on the wrong
  /// side of it (below for higher-is-better metrics, above otherwise).
  /// Any |floor| >= 1e300 — including the default — disables the test.
  double floor = -1e300;
  /// Neighbor test: warn when a point interior to an axis is worse than
  /// the mean of its two neighbors along that axis by more than this.
  /// Smooth monotonic degradation (the expected shape of most sweeps)
  /// keeps every interior point near its neighbor mean, so only genuine
  /// dips/spikes fire; axis-edge points are exempt (their single neighbor
  /// would report the full step as deviation). Leave at the default
  /// (infinite tolerance) to disable.
  double neighbor_tolerance = 1e300;
  bool higher_is_better = true;
};

/// One fired rule: which metric, where, and the numbers that tripped it.
struct WatchdogWarning {
  std::string metric;
  std::size_t flat = 0;      ///< grid point (row-major flat index)
  std::string kind;          ///< "floor" or "neighbor"
  double value = 0.0;        ///< the point's recorded value
  double reference = 0.0;    ///< the floor, or the neighbor mean
  std::string detail;        ///< human-readable "metric at point ..." line
};

/// Scan a sweep's recorded metrics against the rules. `metric(flat, name)`
/// supplies the recorded value for a grid point (RunRecorder::metric bound
/// by the caller). Pure function of its inputs — deterministic, no RNG.
std::vector<WatchdogWarning> scan_sweep_anomalies(
    const SweepSpec& spec,
    const std::function<double(std::size_t, const std::string&)>& metric,
    const std::vector<WatchdogRule>& rules);

/// Executes a spec's point grid. The body must only touch per-point state
/// (its RunRecorder slot); the runner provides no cross-point ordering.
class SweepRunner {
 public:
  explicit SweepRunner(const SweepSpec& spec) : spec_(spec) {}

  /// Run `body` once per grid point over `workers` threads (0 = hardware
  /// concurrency). Results must depend only on the SweepPoint, never on the
  /// execution order — the golden test pins this across worker counts.
  void run(const std::function<void(const SweepPoint&)>& body,
           std::size_t workers = 0) const;

 private:
  SweepSpec spec_;
};

}  // namespace cbma::core
