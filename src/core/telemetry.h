// core::Telemetry — the experiment-facing façade over the lock-free
// telemetry machinery in util/telemetry.h. The util layer owns the hot
// path (spans, counters, flight recorder); this layer owns the exports:
// the "telemetry" section RunRecorder embeds in BENCH_*.json and the
// Chrome/Perfetto trace file a sweep run can drop for timeline inspection.
// It also speaks the upper layers' vocabulary (rx::DecodeOutcome labels in
// the flight-recorder export), which the util layer deliberately cannot.
//
// Everything here is a no-op unless telemetry is enabled (CBMA_TELEMETRY=1
// or Telemetry::enable()) — the disabled default leaves every bench table
// and JSON byte-identical. See DESIGN.md §7.
#pragma once

#include <string>

#include "util/json.h"
#include "util/telemetry.h"

namespace cbma::core {

class Telemetry {
 public:
  static bool enabled() { return telemetry::enabled(); }
  static void enable(bool on = true) { telemetry::set_enabled(on); }

  /// Zero every recorded span, counter, flight-recorder frame and trace
  /// event (e.g. between independent runs sharing a process).
  static void reset() { telemetry::reset(); }

  /// Aggregate all thread sinks. Call only while no worker is recording.
  static telemetry::Snapshot snapshot() { return telemetry::snapshot(); }

  /// Append the "telemetry" key + object to an open JSON object scope:
  /// per-span ns statistics (count/total/min/max/mean/p50/p90/p99),
  /// non-zero counters, thread count, and the flight recorder with
  /// human-readable DecodeOutcome labels. The caller decides *whether* to
  /// emit (RunRecorder only does when telemetry is enabled, keeping the
  /// disabled document byte-identical).
  static void write_json_section(util::JsonWriter& w);

  /// Write a Chrome trace_event file from the current capture; returns
  /// false with a stderr diagnostic on I/O failure. With trace capture off
  /// this still exports flight-recorder instants (spans need CBMA_TRACE).
  static bool write_trace(const std::string& path);

  /// Honor CBMA_TRACE: when telemetry is enabled and the variable names a
  /// path, write the trace there. Returns true when nothing was requested
  /// or the write succeeded — benches call this from finish().
  static bool write_trace_if_requested();
};

}  // namespace cbma::core
