#include "core/telemetry.h"

#include "rx/receiver.h"
#include "util/trace_export.h"

namespace cbma::core {

void Telemetry::write_json_section(util::JsonWriter& w) {
  const auto snap = telemetry::snapshot();
  w.key("telemetry").begin_object();
  w.key("threads").value(static_cast<std::uint64_t>(snap.threads));

  w.key("spans").begin_array();
  for (const auto& s : snap.spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("count").value(s.count);
    w.key("total_ns").value(s.total_ns);
    w.key("min_ns").value(s.min_ns);
    w.key("max_ns").value(s.max_ns);
    w.key("mean_ns").value(s.mean_ns);
    w.key("p50_ns").value(s.p50_ns);
    w.key("p90_ns").value(s.p90_ns);
    w.key("p99_ns").value(s.p99_ns);
    w.end_object();
  }
  w.end_array();

  w.key("counters").begin_object();
  for (const auto& c : snap.counters) w.key(c.name).value(c.value);
  w.end_object();

  w.key("flight_recorder").begin_array();
  for (const auto& f : snap.frames) {
    w.begin_object();
    w.key("seq").value(f.seq);
    w.key("ts_ns").value(f.ts_ns);
    w.key("tag").value(static_cast<std::uint64_t>(f.tag_id));
    w.key("code_length").value(static_cast<std::uint64_t>(f.pn_code_length));
    w.key("correlation").value(f.correlation);
    w.key("margin").value(f.margin);
    w.key("cfo_hz").value(f.cfo_hz);
    w.key("power_dbm").value(f.power_dbm);
    w.key("impedance_level")
        .value(static_cast<std::uint64_t>(f.impedance_level));
    w.key("outcome").value(
        rx::to_string(static_cast<rx::DecodeOutcome>(f.outcome)));
    w.key("impairment_gates")
        .value(static_cast<std::uint64_t>(f.impairment_gates));
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

bool Telemetry::write_trace(const std::string& path) {
  const auto snap = telemetry::snapshot();
  return util::write_chrome_trace(path, snap.events, snap.frames);
}

bool Telemetry::write_trace_if_requested() {
  const auto path = telemetry::trace_path();
  if (path.empty()) return true;
  // CBMA_TRACE was set, so a file is owed even when telemetry is disabled
  // or the run recorded no spans: the export is a valid (possibly empty)
  // trace document, not a silently missing one.
  return write_trace(path);
}

}  // namespace cbma::core
