// ProfilePlane: the export half of the hierarchical profiler (DESIGN.md
// §13). util/profiler owns the per-thread span stacks and the merged
// caller-path tree; this facade owns what leaves the process:
//
//  - write_json_section() emits the "profile" section of BENCH_*.json —
//    the attribution tree (count / inclusive / exclusive / same-thread
//    child time per caller path) plus the parallel_for worker-utilization
//    reports ("sweep/run", "net/round") with per-slot busy time, item
//    counts and the imbalance ratio.
//  - write_collapsed_if_requested() writes the Brendan Gregg
//    collapsed-stack flamegraph file ("a;b;c <exclusive_ns>" lines) to
//    the CBMA_PROFILE path.
//  - top_exclusive() flattens the tree into the top-N exclusive-time rows
//    cbma_cli --profile prints.
//
// Same identity contract as telemetry/probe/metrics: when disabled
// (CBMA_PROFILE unset and no enable() call) every entry point returns
// before touching state, and BENCH_*.json stays byte-identical. Unlike
// the metrics plane, enabling the profiler does NOT arm telemetry — the
// span sites feed the tree directly, so the two layers stay independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cbma::util {
class JsonWriter;
}  // namespace cbma::util

namespace cbma::core {

class ProfilePlane {
 public:
  /// True when the profiler is live (CBMA_PROFILE set or enable() called).
  static bool enabled();

  /// Turn the profiler on; a non-empty path becomes the collapsed-stack
  /// export target (equivalent to CBMA_PROFILE=<path>).
  static void enable(std::string collapsed_path = "");
  static void disable();

  /// Drop every thread's tree and the parallel-site aggregates. The
  /// enabled flag and export path are unchanged. Sequential-only.
  static void reset();

  /// One flattened caller path ("net/round;net/cell_round;rx/process")
  /// with its merged counts — the unit of the CLI table and the
  /// collapsed-stack export.
  struct Row {
    std::string path;
    std::uint64_t count = 0;
    std::uint64_t incl_ns = 0;
    std::uint64_t excl_ns = 0;
  };

  /// The top `n` rows by exclusive time (descending; ties break on the
  /// path string so the order is deterministic). Sequential-only.
  static std::vector<Row> top_exclusive(std::size_t n);

  /// Emit the "profile" section into an open JSON object
  /// (RunRecorder::json calls this only when enabled).
  static void write_json_section(util::JsonWriter& w);

  /// The collapsed-stack flamegraph document: one "frame;frame value"
  /// line per caller path with non-zero exclusive time, sorted by path.
  /// Values are exclusive nanoseconds.
  static std::string collapsed();

  /// Write collapsed() to profiler::export_path(), if one is configured.
  /// No-op (true) when disabled or no path is set.
  static bool write_collapsed_if_requested();
};

}  // namespace cbma::core
