// RunRecorder — the structured-results half of the experiment API. A bench
// builds one from its SweepSpec and SystemConfig; the sweep body records
// named metrics into per-point slots (thread-safe: each point owns its
// slot); the driver prints the same human-readable tables as before via
// print_table(); and finish() writes the schema-versioned BENCH_<name>.json
// document that CI validates and archives. See DESIGN.md §5 for the schema.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/sweep.h"
#include "util/table.h"

namespace cbma::core {

/// Version of the BENCH_*.json document layout. Bump on breaking changes
/// and describe the migration in DESIGN.md §5.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// A recorded paper-shape verdict ("error grows with distance": HOLDS).
struct ShapeCheck {
  std::string name;
  bool holds = false;
  std::string detail;
};

class RunRecorder {
 public:
  RunRecorder(SweepSpec spec, const SystemConfig& config);

  const SweepSpec& spec() const { return spec_; }

  /// Print the standard bench banner (title, paper ref, config, trials,
  /// seed) — the uniform header every experiment run starts with.
  void print_header() const;

  /// Record a named metric for grid point `flat`. Thread-safe across
  /// distinct points; metrics for one point keep insertion order.
  void record(std::size_t flat, const std::string& metric, double value);

  /// Read a recorded metric back (throws if absent) — lets the table
  /// builder consume the same values the JSON document carries.
  double metric(std::size_t flat, const std::string& name) const;

  /// Print a rendered table to stdout (exactly as the pre-recorder benches
  /// did) and mirror its cells into the JSON document.
  void print_table(const Table& table);

  /// Record a paper-shape verdict; returns `holds` so the caller can reuse
  /// the verdict in its printed summary line.
  bool check(const std::string& name, bool holds, std::string detail = "");

  /// Attach a free-form note to the JSON document (not printed).
  void note(std::string text);

  /// Scan the recorded metrics against the watchdog rules
  /// (scan_sweep_anomalies over this recorder's metric store), print every
  /// fired warning to stderr, keep them for the JSON document's "watchdog"
  /// section, and return how many fired. Call after the sweep body has
  /// recorded all rule-referenced metrics.
  std::size_t run_watchdog(const std::vector<WatchdogRule>& rules);

  const std::vector<WatchdogWarning>& watchdog_warnings() const {
    return warnings_;
  }

  /// The complete schema-versioned document. Deterministic: identical
  /// recorded results serialize to identical bytes (no timestamps, no
  /// thread counts), which the cross-thread golden test relies on.
  std::string json() const;

  /// Write BENCH_<spec.name>.json into $CBMA_BENCH_DIR (or the working
  /// directory) and return the exit code for main(): 0 on success.
  int finish() const;

 private:
  SweepSpec spec_;
  std::string config_summary_;
  std::uint64_t config_fingerprint_;
  /// Per-point named metrics, insertion-ordered.
  std::vector<std::vector<std::pair<std::string, double>>> points_;
  struct CapturedTable {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<CapturedTable> tables_;
  std::vector<ShapeCheck> checks_;
  std::vector<std::string> notes_;
  std::vector<WatchdogWarning> warnings_;
};

}  // namespace cbma::core
