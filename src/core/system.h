// CbmaSystem — the end-to-end cell: a population of deployed tags, the
// excitation source, the channel and the receiver, plus the MAC control
// loops (Algorithm 1 power control; §V-C node selection is layered on top
// by core/experiment.h and the examples).
//
// The system distinguishes the *population* (every tag in the environment,
// with a persistent impedance level each) from the *active group* (the
// subset currently transmitting). Group slot k always uses group code k,
// mirroring the paper's fixed code-per-tag assignment within a group.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "mac/power_control.h"
#include "phy/tag.h"
#include "rfsim/channel.h"
#include "rfsim/excitation.h"
#include "rfsim/friis.h"
#include "rfsim/geometry.h"
#include "rfsim/impedance.h"
#include "rfsim/interference.h"
#include "rfsim/obstacle.h"
#include "rx/receiver.h"
#include "rx/streaming_receiver.h"
#include "util/rng.h"

namespace cbma::core {

struct PowerControlOutcome {
  RoundStats final_stats{0};
  std::size_t rounds = 0;     ///< adjustment rounds consumed
  bool exhausted = false;     ///< hit the 3×n cycle cap
  double final_fer = 1.0;
};

/// Everything one collided transmission can vary, gathered behind a single
/// entry point. Every field is optional; an empty span selects the
/// randomized default, so `transmit({}, rng)` is the common random round.
struct TransmitOptions {
  /// One payload per transmitting slot. Empty: random payloads of
  /// config().payload_bytes are drawn per slot.
  std::span<const std::vector<std::uint8_t>> payloads{};
  /// Per-slot start offsets in chips, added to the configured lead-in.
  /// Empty: uniform jitter in [0, max_async_jitter_chips] is drawn per slot.
  std::span<const double> delay_chips{};
  /// Slot indices (into the active group) that transmit this round. Empty:
  /// the whole active group transmits. The receiver always probes every
  /// group code regardless (the §VII-B2 user-detection experiment).
  std::span<const std::size_t> slots{};
};

/// Reusable buffers for the whole transmit pipeline — chip expansion,
/// channel synthesis and the receiver's split-window stages. Sized on the
/// first packet of a group and reused, so a batched sweep runs the entire
/// per-packet path with zero steady-state allocation.
struct TransmitScratch {
  std::vector<std::vector<std::uint8_t>> chip_seqs;  ///< per-slot spread frames
  std::vector<std::uint8_t> frame_bits;              ///< framing intermediate
  std::vector<std::uint8_t> payload;                 ///< random-payload buffer
  std::vector<double> delays;                        ///< per-slot delay draws
  std::vector<rfsim::TagTransmission> txs;
  std::vector<const rfsim::Interferer*> interferers;
  rfsim::ChannelScratch channel;
  std::vector<std::complex<double>> iq;
  /// Persistent streaming Rx session (DESIGN.md §10) — the receiver-side
  /// scratch state. Lazily bound to the system's receiver
  /// on first transmit and rebound if the scratch moves between systems;
  /// its rings and window buffers stay warm across packets.
  std::unique_ptr<rx::StreamingReceiver> rx_session;
};

class CbmaSystem {
 public:
  CbmaSystem(SystemConfig config, rfsim::Deployment population);

  const SystemConfig& config() const { return config_; }
  const rfsim::Deployment& population() const { return population_; }
  rfsim::Deployment& population() { return population_; }

  // --- group management ---
  /// Activate a subset of the population (indices). Group size is capped by
  /// config().max_tags; slot k uses group code k.
  void set_active_group(std::vector<std::size_t> indices);
  const std::vector<std::size_t>& active_group() const { return group_; }
  std::size_t group_size() const { return group_.size(); }

  // --- per-population-tag impedance state (persists across regrouping) ---
  std::size_t impedance_level(std::size_t pop_index) const;
  void set_impedance_level(std::size_t pop_index, std::size_t level);
  void step_impedance(std::size_t pop_index);
  std::size_t impedance_level_count() const { return bank_.size(); }

  // --- RF environment ---
  void set_excitation(std::unique_ptr<rfsim::ExcitationSource> source);
  void add_interferer(std::unique_ptr<rfsim::Interferer> interferer);
  void clear_interferers();
  /// Obstacle shadowing: actual links are attenuated per crossing, while
  /// predicted_power_dbm stays the *theoretical* Eq. 1 value (the node
  /// selector plans with theory, as §V-C describes).
  void set_obstacles(rfsim::ObstacleMap obstacles);
  const rfsim::ObstacleMap& obstacles() const { return obstacles_; }

  // --- link queries ---
  /// Received backscatter power of population tag i at its current
  /// impedance level (dBm).
  double received_power_dbm(std::size_t pop_index) const;
  /// SNR of population tag i against the receiver noise floor (dB).
  double snr_db(std::size_t pop_index) const;
  /// Eq. 1 prediction at the strongest impedance level (node selection).
  double predicted_power_dbm(std::size_t pop_index) const;
  const rfsim::LinkBudget& link_budget() const { return budget_; }

  // --- transmission ---
  /// One collided transmission, fully described by `options` (payloads,
  /// delays and the transmitting subset all optional — see TransmitOptions).
  /// This is the single transmit entry point. (The pre-TransmitOptions
  /// transmit_round_* shims served their deprecation release and are gone;
  /// the RNG draw order they pinned is contractual on this function — see
  /// the draw-order comment in system.cpp and the determinism test.)
  rx::RxReport transmit(const TransmitOptions& options, Rng& rng) const;

  /// transmit() with caller-owned scratch — the zero-allocation batched
  /// path. Reusing one TransmitScratch across packets keeps every buffer of
  /// the pipeline (chips, window, split re/im, residuals) warm.
  rx::RxReport transmit(const TransmitOptions& options, Rng& rng,
                        TransmitScratch& scratch) const;

  /// `n_packets` collided transmissions with random payloads, batched over
  /// one TransmitScratch so the sweep allocates only on the first packet.
  RoundStats run_packets(std::size_t n_packets, Rng& rng) const;

  /// Algorithm 1: rounds of `packets_per_round` packets, stepping the
  /// impedance of under-performing tags until FER clears the threshold,
  /// no adjustment is needed, or the 3×n cycle cap is hit.
  PowerControlOutcome run_power_control(const mac::PowerControlConfig& pc_config,
                                        std::size_t packets_per_round, Rng& rng);

  // --- derived ---
  double chip_rate_hz() const { return config_.chip_rate_hz(); }
  double noise_power_w() const { return noise_power_w_; }
  const std::vector<pn::PnCode>& group_codes() const { return codes_; }
  const rx::Receiver& receiver() const { return *receiver_; }
  /// The fault-injection stages this cell runs under (config().impairments
  /// applied; all-off by default). The channel owns its own copy for the
  /// synthesis-side stages; this one drives the tag-side perturbations.
  const rfsim::ImpairmentSuite& impairments() const { return impairments_; }

 private:
  double tag_amplitude(std::size_t pop_index) const;

  SystemConfig config_;
  rfsim::Deployment population_;
  rfsim::LinkBudget budget_;
  rfsim::ReflectionStateBank bank_;
  std::vector<pn::PnCode> codes_;      ///< group codes, size = max_tags
  std::vector<std::size_t> group_;     ///< population indices
  std::vector<std::size_t> impedance_; ///< per population tag
  std::vector<phy::Tag> slot_tags_;    ///< PHY per group slot
  rfsim::ImpairmentSuite impairments_; ///< tag-side fault injection
  double noise_power_w_;
  rfsim::ObstacleMap obstacles_;
  std::unique_ptr<rfsim::Channel> channel_;
  std::unique_ptr<rx::Receiver> receiver_;
  std::unique_ptr<rfsim::ExcitationSource> excitation_;
  std::vector<std::unique_ptr<rfsim::Interferer>> interferers_;
};

}  // namespace cbma::core
