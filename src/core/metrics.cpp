#include "core/metrics.h"

#include "util/expect.h"

namespace cbma::core {

RoundStats::RoundStats(std::size_t group_size)
    : sent(group_size, 0), acked(group_size, 0) {}

void RoundStats::record(std::size_t slot, bool acked_ok) {
  CBMA_REQUIRE(slot < sent.size(), "slot out of range");
  ++sent[slot];
  if (acked_ok) ++acked[slot];
}

void RoundStats::record_outcome(std::size_t outcome_index) {
  if (outcome_index < outcomes.size()) ++outcomes[outcome_index];
}

void RoundStats::merge(const RoundStats& other) {
  CBMA_REQUIRE(other.sent.size() == sent.size(), "merging mismatched stats");
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] += other.sent[i];
    acked[i] += other.acked[i];
  }
  correlation_margin.merge(other.correlation_margin);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    outcomes[i] += other.outcomes[i];
  }
  quality.merge(other.quality);
}

std::size_t RoundStats::total_sent() const {
  std::size_t n = 0;
  for (const auto s : sent) n += s;
  return n;
}

std::size_t RoundStats::total_acked() const {
  std::size_t n = 0;
  for (const auto a : acked) n += a;
  return n;
}

std::vector<double> RoundStats::ack_ratios() const {
  std::vector<double> out(sent.size(), 0.0);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (sent[i] > 0) {
      out[i] = static_cast<double>(acked[i]) / static_cast<double>(sent[i]);
    }
  }
  return out;
}

double RoundStats::frame_error_rate() const {
  const std::size_t n = total_sent();
  if (n == 0) return 0.0;
  return 1.0 - static_cast<double>(total_acked()) / static_cast<double>(n);
}

}  // namespace cbma::core
