#include "core/config.h"

#include <sstream>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::core {

std::size_t SystemConfig::code_length() const {
  CBMA_REQUIRE(max_tags >= 1, "max_tags must be positive");
  const auto codes = pn::make_code_set(code_family, max_tags, code_min_length);
  return codes.front().length();
}

double SystemConfig::chip_rate_hz() const {
  return bitrate_bps * static_cast<double>(code_length());
}

double SystemConfig::sample_rate_hz() const {
  return chip_rate_hz() * static_cast<double>(samples_per_chip);
}

double SystemConfig::noise_power_w() const {
  // Matched-filter noise bandwidth is the chip rate; the margin models
  // excitation leakage / phase noise / quantization (DESIGN.md §4.3).
  return units::thermal_noise_watts(chip_rate_hz(),
                                    noise_figure_db + noise_margin_db);
}

std::string SystemConfig::summary() const {
  std::ostringstream os;
  os << pn::to_string(code_family) << " L=" << code_length()
     << " preamble=" << preamble_bits << "b payload=" << payload_bytes << "B"
     << " bitrate=" << bitrate_bps / 1e6 << "Mbps"
     << " Pt=" << tx_power_dbm << "dBm spc=" << samples_per_chip;
  return os.str();
}

}  // namespace cbma::core
