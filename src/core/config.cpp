#include "core/config.h"

#include <sstream>

#include "phy/frame.h"
#include "util/expect.h"
#include "util/units.h"

namespace cbma::core {

std::size_t SystemConfig::code_length() const {
  CBMA_REQUIRE(max_tags >= 1, "max_tags must be positive");
  // The family the cell draws from decides the chips-per-bit, so a sliced
  // multi-cell config (code_family_size > 0) must size the family, not the
  // slice — every cell sharing the family then agrees on the code length.
  const std::size_t family = code_family_size > 0 ? code_family_size : max_tags;
  const auto codes = pn::make_code_set(code_family, family, code_min_length);
  return codes.front().length();
}

double SystemConfig::chip_rate_hz() const {
  return bitrate_bps * static_cast<double>(code_length());
}

double SystemConfig::sample_rate_hz() const {
  return chip_rate_hz() * static_cast<double>(samples_per_chip);
}

double SystemConfig::noise_power_w() const {
  // Matched-filter noise bandwidth is the chip rate; the margin models
  // excitation leakage / phase noise / quantization (DESIGN.md §4.3).
  return units::thermal_noise_watts(chip_rate_hz(),
                                    noise_figure_db + noise_margin_db);
}

std::vector<std::string> SystemConfig::validate() const {
  std::vector<std::string> errors;
  const auto fail = [&errors](const std::string& msg) { errors.push_back(msg); };

  // --- PHY / framing ---
  if (max_tags < 1) fail("max_tags must be at least 1");
  const std::size_t family_size =
      code_family_size > 0 ? code_family_size : max_tags;
  if (code_family_size > 0 && code_offset + max_tags > code_family_size) {
    std::ostringstream os;
    os << "code slice [" << code_offset << ", " << code_offset + max_tags
       << ") exceeds code_family_size=" << code_family_size;
    fail(os.str());
  }
  if (code_family_size == 0 && code_offset != 0) {
    fail("code_offset requires a non-zero code_family_size to slice from");
  }
  if (code_family == pn::CodeFamily::kGold && max_tags >= 1) {
    // Mirror make_code_set's tabulated-degree search without constructing
    // the family (construction throws; validate reports instead).
    bool fits = false;
    for (const unsigned degree : {5u, 6u, 7u, 9u, 10u}) {
      const std::size_t length = (std::size_t{1} << degree) - 1;
      if (length + 2 >= family_size && length >= code_min_length) {
        fits = true;
        break;
      }
    }
    if (!fits) {
      std::ostringstream os;
      os << (code_family_size > 0 ? "code_family_size=" : "max_tags=")
         << family_size << " exceeds every tabulated Gold family with "
         << "code_min_length=" << code_min_length
         << " (largest available: degree 10, length 1023, 1025 codes)";
      fail(os.str());
    }
  }
  if (preamble_bits < 1) fail("preamble_bits must be at least 1");
  if (payload_bytes > phy::kMaxPayloadBytes) {
    std::ostringstream os;
    os << "payload_bytes=" << payload_bytes << " exceeds the frame limit of "
       << phy::kMaxPayloadBytes;
    fail(os.str());
  }
  if (!(bitrate_bps > 0.0)) fail("bitrate_bps must be positive");

  // --- RF / link budget ---
  if (!(carrier_hz > 0.0)) fail("carrier_hz must be positive");
  if (!(antenna_gain > 0.0)) fail("antenna_gain must be positive");
  if (!(alpha > 0.0) || alpha > 1.0) fail("alpha must be in (0, 1]");
  if (!(min_node_separation_m > 0.0)) {
    fail("min_node_separation_m must be positive");
  }

  // --- channel / timing ---
  if (samples_per_chip < 1) fail("samples_per_chip must be at least 1");
  if (lead_in_chips < 0.0) fail("lead_in_chips must be non-negative");
  if (max_async_jitter_chips < 0.0) {
    fail("max_async_jitter_chips must be non-negative");
  }
  if (cfo_max_hz < 0.0) fail("cfo_max_hz must be non-negative");
  if (impedance_levels < 1) fail("impedance_levels must be at least 1");
  if (impedance_range_db < 0.0) fail("impedance_range_db must be non-negative");
  if (initial_impedance_level != kStrongestImpedance &&
      initial_impedance_level >= impedance_levels) {
    std::ostringstream os;
    os << "initial_impedance_level=" << initial_impedance_level
       << " is outside the " << impedance_levels << "-level impedance bank";
    fail(os.str());
  }
  if (multipath.enabled) {
    if (multipath.max_excess_delay_chips < 0.0) {
      fail("multipath.max_excess_delay_chips must be non-negative");
    }
  }
  for (auto& msg : impairments.validate()) errors.push_back(std::move(msg));

  // --- receiver ---
  if (sync.window < 1) fail("sync.window must be at least 1");
  if (sync.head_average < 1) fail("sync.head_average must be at least 1");
  if (!(sync.min_baseline > 0.0)) {
    fail("sync.min_baseline must be positive");
  }
  if (!(detect.threshold > 0.0) || detect.threshold >= 1.0) {
    fail("detect.threshold must be in (0, 1)");
  }
  if (detect.relative_threshold < 0.0 || detect.relative_threshold > 1.0) {
    fail("detect.relative_threshold must be in [0, 1]");
  }
  if (detect.search_back_chips < 0.0 || detect.search_ahead_chips < 0.0) {
    fail("detect search window must be non-negative");
  }
  if (detect.group_window_chips < 0.0) {
    fail("detect.group_window_chips must be non-negative");
  }
  switch (detect.engine) {
    case rx::DetectEngine::kNaive:
    case rx::DetectEngine::kFft:
    case rx::DetectEngine::kAuto:
      break;
    default:
      fail("detect.engine must be naive, fft or auto");
      break;
  }
  if (phase_tracking_gain < 0.0 || phase_tracking_gain > 1.0) {
    fail("phase_tracking_gain must be in [0, 1]");
  }
  // Chunked ingestion is pure mechanics (reports are chunk-invariant), but
  // a nonsensical chunk size is almost certainly a units mistake — a
  // per-round window is tens of kilosamples, so cap at 2^26 samples.
  if (rx_chunk_samples > (std::size_t{1} << 26)) {
    std::ostringstream os;
    os << "rx_chunk_samples=" << rx_chunk_samples
       << " exceeds the 2^26-sample ingestion cap (0 = whole-round feeds)";
    fail(os.str());
  }
  return errors;
}

std::string SystemConfig::summary() const {
  std::ostringstream os;
  os << pn::to_string(code_family) << " L=" << code_length()
     << " preamble=" << preamble_bits << "b payload=" << payload_bytes << "B"
     << " bitrate=" << bitrate_bps / 1e6 << "Mbps"
     << " Pt=" << tx_power_dbm << "dBm spc=" << samples_per_chip;
  // A sliced family changes which codes the cell runs, so it must change
  // the fingerprint; the default whole-family config keeps its bytes.
  if (code_family_size > 0) {
    os << " codes=[" << code_offset << "," << code_offset + max_tags << ")/"
       << code_family_size;
  }
  // Impairments change what an experiment measures, so they must change the
  // config fingerprint; a default (all-off) config keeps its summary bytes.
  if (const auto imp = impairments.summary(); !imp.empty()) {
    os << " imp=[" << imp << "]";
  }
  // Engine choice changes detection numerics (within the §9.3 tolerance),
  // so a non-default engine must change the fingerprint; the default naive
  // engine keeps its summary bytes.
  if (detect.engine != rx::DetectEngine::kNaive) {
    os << " detect.engine=" << rx::to_string(detect.engine);
  }
  return os.str();
}

}  // namespace cbma::core
