#include "core/metrics_plane.h"

#include <atomic>
#include <cstdio>

#include "rx/receiver.h"
#include "util/json.h"
#include "util/telemetry.h"

namespace cbma::core {

namespace {

/// Sequential-context state: tick()/reset() are only legal while no
/// telemetry worker is recording, so plain fields suffice.
struct PlaneState {
  std::size_t cadence = 1;
  std::uint64_t rounds = 0;
  std::array<std::uint64_t, telemetry::kCounterCount> prev_counters{};
  std::array<telemetry::SpanHistogram, telemetry::kSpanCount> prev_spans{};
};

PlaneState& state() {
  static PlaneState s;
  return s;
}

/// Arm util/telemetry once per process when the plane goes live — the
/// counter/span series sample it. Armed stays true even if the plane is
/// later disabled (tests save/restore the telemetry flag themselves).
void arm_telemetry_once() {
  static std::atomic<bool> armed{false};
  if (!armed.exchange(true, std::memory_order_relaxed)) {
    telemetry::set_enabled(true);
  }
}

void push_span_window(const char* span, const telemetry::SpanHistogram& cur,
                      const telemetry::SpanHistogram& prev) {
  const std::uint64_t count = cur.count - prev.count;
  if (count == 0) return;
  std::array<std::uint64_t, telemetry::kHistogramBuckets> delta{};
  for (std::size_t b = 0; b < delta.size(); ++b) {
    delta[b] = cur.buckets[b] - prev.buckets[b];
  }
  const double mean_ns =
      static_cast<double>(cur.total_ns - prev.total_ns) /
      static_cast<double>(count);
  const std::string base(span);
  metrics::push(base + ".count", {}, static_cast<double>(count));
  metrics::push(base + ".mean_ns", {}, mean_ns, "ns");
  for (const auto [suffix, q] : {std::pair{".p50_ns", 0.50},
                                 std::pair{".p90_ns", 0.90},
                                 std::pair{".p99_ns", 0.99}}) {
    metrics::push(base + suffix, {},
                  telemetry::histogram_quantile(delta.data(), count, q,
                                                mean_ns),
                  "ns");
  }
}

}  // namespace

bool MetricsPlane::enabled() {
  if (!metrics::enabled()) return false;
  arm_telemetry_once();
  return true;
}

void MetricsPlane::enable(std::string prometheus_path) {
  metrics::set_enabled(true);
  if (!prometheus_path.empty()) {
    metrics::set_export_path(std::move(prometheus_path));
  }
  arm_telemetry_once();
}

void MetricsPlane::disable() { metrics::set_enabled(false); }

void MetricsPlane::reset() {
  metrics::reset();
  auto& s = state();
  s.rounds = 0;
  s.prev_counters = {};
  s.prev_spans = {};
}

void MetricsPlane::set_cadence(std::size_t rounds) {
  state().cadence = rounds == 0 ? 1 : rounds;
}

std::size_t MetricsPlane::cadence() { return state().cadence; }

void MetricsPlane::tick() {
  if (!enabled()) return;
  auto& s = state();
  ++s.rounds;
  if (s.rounds % s.cadence != 0) return;

  // Telemetry counters: per-window deltas of the merged totals. A counter
  // appears once it has ever fired, so quiet windows still chart as 0.
  const auto counters = telemetry::counter_totals();
  for (std::size_t c = 0; c < counters.size(); ++c) {
    if (counters[c] == 0) continue;
    metrics::push(telemetry::counter_name(
                      static_cast<telemetry::Counter>(c)),
                  {},
                  static_cast<double>(counters[c] - s.prev_counters[c]));
  }
  s.prev_counters = counters;

  // Span latencies: this window's count/mean/p50/p90/p99 from the
  // histogram delta since the previous boundary.
  const auto spans = telemetry::span_histograms();
  for (std::size_t sp = 0; sp < spans.size(); ++sp) {
    push_span_window(
        telemetry::span_name(static_cast<telemetry::Span>(sp)), spans[sp],
        s.prev_spans[sp]);
  }
  s.prev_spans = spans;

  metrics::advance_window();
  write_prometheus_if_requested();
}

void MetricsPlane::record_cell(const CellSample& sample) {
  if (!enabled()) return;
  const std::string scope = "cell=" + std::to_string(sample.cell_id);
  metrics::push("net.cell.goodput_bps", scope, sample.goodput_bps, "bps");
  metrics::push("net.cell.fer", scope, sample.frame_error_rate);
  metrics::push("net.cell.tags_served", scope,
                static_cast<double>(sample.tags_served));
  metrics::push("net.cell.tags_total", scope,
                static_cast<double>(sample.tags_total));
  metrics::push("net.cell.sent", scope, static_cast<double>(sample.sent));
  metrics::push("net.cell.acked", scope, static_cast<double>(sample.acked));
  for (std::size_t o = 0; o < sample.outcomes.size(); ++o) {
    if (sample.outcomes[o] == 0) continue;
    metrics::push(std::string("rx.outcome.") +
                      rx::to_string(static_cast<rx::DecodeOutcome>(o)),
                  scope, static_cast<double>(sample.outcomes[o]));
  }
  if (sample.quality.frames > 0) {
    metrics::push("link.snr_db", scope, sample.quality.snr_db_mean(), "dB");
    metrics::push("link.evm", scope, sample.quality.evm_mean());
    metrics::push("link.soft_margin", scope,
                  sample.quality.soft_margin_mean());
    metrics::push("link.margin_ratio", scope,
                  sample.quality.margin_ratio_mean());
  }
}

void MetricsPlane::record_value(std::string_view name, std::string_view scope,
                                double value, std::string_view unit) {
  if (!enabled()) return;
  metrics::push(name, scope, value, unit);
}

void MetricsPlane::record_event(metrics::Severity severity,
                                std::string_view type, std::string_view scope,
                                double value, std::string_view detail) {
  if (!enabled()) return;
  metrics::push_event(severity, type, scope, value, detail);
}

void MetricsPlane::write_json_section(util::JsonWriter& w) {
  const metrics::Snapshot snap = metrics::snapshot();

  w.key("timeseries").begin_object();
  w.key("windows").value(snap.windows);
  w.key("window_capacity")
      .value(static_cast<std::uint64_t>(metrics::window_capacity()));
  w.key("dropped").begin_object();
  w.key("points").value(snap.dropped_points);
  w.key("series").value(snap.dropped_series);
  w.key("events").value(snap.dropped_events);
  w.end_object();
  w.key("series").begin_array();
  for (const auto& series : snap.series) {
    w.begin_object();
    w.key("name").value(series.name);
    w.key("scope").value(series.scope);
    if (!series.unit.empty()) w.key("unit").value(series.unit);
    w.key("points").begin_array();
    for (const auto& p : series.points) {
      w.begin_array();
      w.value(p.window);
      w.value(p.value);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("events").begin_array();
  for (const auto& e : snap.events) {
    w.begin_object();
    w.key("seq").value(e.seq);
    w.key("window").value(e.window);
    w.key("severity").value(metrics::severity_name(e.severity));
    w.key("type").value(e.type);
    if (!e.scope.empty()) w.key("scope").value(e.scope);
    w.key("value").value(e.value);
    if (!e.detail.empty()) w.key("detail").value(e.detail);
    w.end_object();
  }
  w.end_array();
}

bool MetricsPlane::write_prometheus_if_requested() {
  if (!enabled()) return true;
  const std::string path = metrics::export_path();
  if (path.empty()) return true;
  return metrics::write_prometheus(path);
}

}  // namespace cbma::core
