// Reusable experiment drivers shared by the benches and examples: FER
// measurement over a fixed deployment, and the macro-benchmark scheme
// comparison (none / power control / power control + node selection) used
// by Figs. 9(c) and 10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/system.h"
#include "mac/node_selection.h"
#include "mac/power_control.h"

namespace cbma::core {

struct FerPoint {
  double fer = 1.0;
  RoundStats stats{0};
  std::vector<double> snr_db;  ///< per active tag, at its impedance level
};

/// Measure FER of `n_packets` collided packets over a fixed deployment with
/// every tag at the strongest impedance level.
FerPoint measure_fer(const SystemConfig& config, const rfsim::Deployment& deployment,
                     std::size_t n_packets, std::uint64_t seed);

/// The three macro-benchmark scheme levels (Fig. 10). The baseline ("no
/// control") leaves every tag at an arbitrary impedance state — without a
/// control loop a tag's reflection level is whatever its antenna detuning
/// happens to give, so some tags sit at weak levels below the receiver's
/// floor. Power control ramps each tag to a working level (Algorithm 1);
/// node selection additionally replaces tags that fail at every level.
enum class Scheme { kBaseline, kPowerControl, kPowerControlAndSelection };

std::string to_string(Scheme scheme);

struct SchemeRunConfig {
  std::size_t population = 20;        ///< tags deployed in the room
  std::size_t group_size = 5;
  std::size_t packets_per_round = 40; ///< per adaptation round
  std::size_t selection_rounds = 6;   ///< max §V-C reselection rounds
  std::size_t final_packets = 200;    ///< measurement after adaptation
  double min_separation_m = 0.05;
  rfsim::Room room{4.0, 6.0};         ///< the paper's office footprint
  mac::PowerControlConfig pc{};
  mac::NodeSelectionConfig ns{};
};

/// One macro-benchmark trial: deploy a random population, pick a random
/// initial group, run the scheme's adaptation, and return the error rate
/// of the final measurement batch.
double run_scheme_trial(const SystemConfig& config, const SchemeRunConfig& run,
                        Scheme scheme, std::uint64_t seed);

/// `trials` independent macro-benchmark error-rate samples (the Fig. 10
/// CDF's underlying data).
std::vector<double> scheme_error_rates(const SystemConfig& config,
                                       const SchemeRunConfig& run, Scheme scheme,
                                       std::size_t trials, std::uint64_t seed);

}  // namespace cbma::core
