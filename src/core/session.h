// AdaptiveSession — the paper's complete control workflow as one object:
// rounds of concurrent transmissions, Algorithm 1 power control after each
// batch, and §V-C node selection when power control alone cannot lift every
// member above the ACK bar. Keeps a per-round history so applications (and
// the macro benches) can inspect how the cell converged.
#pragma once

#include <cstddef>
#include <vector>

#include "core/system.h"
#include "mac/node_selection.h"
#include "mac/power_control.h"

namespace cbma::core {

struct SessionConfig {
  mac::PowerControlConfig pc{};
  mac::NodeSelectionConfig ns{};
  std::size_t packets_per_round = 40;   ///< measurement batch per round
  std::size_t max_rounds = 8;           ///< adaptation rounds before settling
  std::size_t final_packets = 100;      ///< steady-state measurement
};

struct SessionRound {
  std::size_t round = 0;
  std::vector<std::size_t> group;       ///< active group during the round
  double fer = 1.0;                     ///< batch FER
  std::vector<double> ack_ratios;       ///< per-slot
  std::size_t pc_adjustments = 0;       ///< Algorithm 1 rounds consumed
  bool reselected = false;              ///< §V-C changed the group
};

struct SessionResult {
  std::vector<SessionRound> history;
  double final_fer = 1.0;               ///< steady-state measurement
  std::size_t rounds_to_converge = 0;   ///< first round with all tags healthy
  bool converged = false;               ///< every member ≥ the ACK bar
};

class AdaptiveSession {
 public:
  AdaptiveSession(CbmaSystem& system, SessionConfig config);

  /// Run the adaptation loop and the final steady-state measurement.
  SessionResult run(Rng& rng);

  const SessionConfig& config() const { return config_; }

 private:
  CbmaSystem& system_;
  SessionConfig config_;
  mac::NodeSelector selector_;
};

}  // namespace cbma::core
