#include "core/profile_plane.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"
#include "util/profiler.h"
#include "util/telemetry.h"

namespace cbma::core {

namespace {

/// Depth-first flatten of the merged tree into ";"-joined caller-path rows
/// (the collapsed-stack frame order: outermost first). Span names use "/"
/// internally, so ";" is an unambiguous frame separator.
void flatten(const profiler::MergedNode& node, const std::string& prefix,
             std::vector<ProfilePlane::Row>& out) {
  ProfilePlane::Row row;
  row.path = prefix.empty()
                 ? std::string(telemetry::span_name(node.span))
                 : prefix + ";" + telemetry::span_name(node.span);
  row.count = node.count;
  row.incl_ns = node.incl_ns;
  row.excl_ns = node.excl_ns();
  for (const auto& child : node.children) flatten(child, row.path, out);
  out.push_back(std::move(row));
}

std::vector<ProfilePlane::Row> flatten_tree() {
  const profiler::TreeSnapshot snap = profiler::merged_tree();
  std::vector<ProfilePlane::Row> rows;
  for (const auto& root : snap.roots) flatten(root, "", rows);
  return rows;
}

void write_node(util::JsonWriter& w, const profiler::MergedNode& node) {
  w.begin_object();
  w.key("span").value(telemetry::span_name(node.span));
  w.key("count").value(node.count);
  w.key("incl_ns").value(node.incl_ns);
  w.key("excl_ns").value(node.excl_ns());
  w.key("child_ns").value(node.child_ns);
  w.key("children").begin_array();
  for (const auto& child : node.children) write_node(w, child);
  w.end_array();
  w.end_object();
}

}  // namespace

bool ProfilePlane::enabled() { return profiler::enabled(); }

void ProfilePlane::enable(std::string collapsed_path) {
  profiler::set_enabled(true);
  if (!collapsed_path.empty()) {
    profiler::set_export_path(std::move(collapsed_path));
  }
}

void ProfilePlane::disable() { profiler::set_enabled(false); }

void ProfilePlane::reset() { profiler::reset(); }

std::vector<ProfilePlane::Row> ProfilePlane::top_exclusive(std::size_t n) {
  std::vector<Row> rows = flatten_tree();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.excl_ns != b.excl_ns) return a.excl_ns > b.excl_ns;
    return a.path < b.path;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

void ProfilePlane::write_json_section(util::JsonWriter& w) {
  const profiler::TreeSnapshot snap = profiler::merged_tree();
  w.key("profile").begin_object();
  w.key("threads").value(static_cast<std::uint64_t>(snap.threads));
  w.key("dropped").value(snap.dropped);
  w.key("tree").begin_array();
  for (const auto& root : snap.roots) write_node(w, root);
  w.end_array();
  w.key("parallel").begin_array();
  for (const auto& site : profiler::parallel_stats()) {
    w.begin_object();
    w.key("site").value(site.site);
    w.key("calls").value(site.calls);
    w.key("items").value(site.items);
    w.key("wall_ns").value(site.wall_ns);
    w.key("busy_ns").value(site.busy_ns);
    w.key("imbalance").value(site.worst_imbalance);
    w.key("workers").begin_array();
    for (std::size_t slot = 0; slot < site.worker_busy_ns.size(); ++slot) {
      w.begin_object();
      w.key("busy_ns").value(site.worker_busy_ns[slot]);
      w.key("items").value(slot < site.worker_items.size()
                               ? site.worker_items[slot]
                               : 0);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string ProfilePlane::collapsed() {
  std::vector<Row> rows = flatten_tree();
  // Flamegraph semantics: a frame's own width is its exclusive time, so
  // zero-exclusive rows (pure pass-through parents, context anchors) are
  // implied by their children and add nothing.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.path < b.path; });
  std::string out;
  char buf[32];
  for (const auto& row : rows) {
    if (row.excl_ns == 0) continue;
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(row.excl_ns));
    out += row.path;
    out += buf;
  }
  return out;
}

bool ProfilePlane::write_collapsed_if_requested() {
  if (!enabled()) return true;
  const std::string path = profiler::export_path();
  if (path.empty()) return true;
  const std::string text = collapsed();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "profile: cannot open %s for writing\n", tmp.c_str());
    return false;
  }
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "profile: failed writing %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "profile: cannot rename %s over %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace cbma::core
