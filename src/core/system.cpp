#include "core/system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/metrics_plane.h"
#include "util/expect.h"
#include "util/probe.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace cbma::core {
namespace {

// Fraction of the reflected amplitude carried by the square-wave
// subcarrier's first harmonic in one sideband (paper Eq. 2: the Fourier
// coefficient of sin(2πΔf t) is 4/π, split across the ±Δf sidebands → 2/π).
constexpr double kSidebandAmplitudeFraction = 2.0 / units::kPi;

void random_payload_into(std::size_t bytes, Rng& rng,
                         std::vector<std::uint8_t>& out) {
  out.resize(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
}

std::string join_errors(const std::vector<std::string>& errors) {
  std::string msg = "invalid SystemConfig:";
  for (const auto& e : errors) {
    msg += "\n  - ";
    msg += e;
  }
  return msg;
}

/// Flight-recorder gate bitmask for the suite this round ran under.
std::uint8_t impairment_gate_bits(const rfsim::ImpairmentConfig& c) {
  std::uint8_t bits = 0;
  if (c.dropout.enabled) bits |= telemetry::kGateDropout;
  if (c.drift.enabled) bits |= telemetry::kGateDrift;
  if (c.switching.enabled) bits |= telemetry::kGateSwitching;
  if (c.impulsive.enabled) bits |= telemetry::kGateImpulsive;
  if (c.adc.enabled) bits |= telemetry::kGateAdc;
  return bits;
}

}  // namespace

CbmaSystem::CbmaSystem(SystemConfig config, rfsim::Deployment population)
    : config_(std::move(config)),
      population_(std::move(population)),
      bank_(config_.impedance_levels == 4
                ? rfsim::ReflectionStateBank::paper_bank(config_.carrier_hz)
                : rfsim::ReflectionStateBank::uniform_bank(
                      config_.impedance_levels, config_.impedance_range_db)) {
  CBMA_REQUIRE(population_.tag_count() >= 1, "population must contain tags");
  if (const auto errors = config_.validate(); !errors.empty()) {
    throw std::invalid_argument(join_errors(errors));
  }

  // SystemConfig::probe is the programmatic CBMA_PROBE: a non-empty path
  // switches the signal-probe subsystem on for the process and names the
  // dump target. The empty default touches nothing — probing stays in
  // whatever state the environment put it.
  if (!config_.probe.empty()) {
    probe::set_dump_path(config_.probe);
    probe::set_enabled(true);
  }
  // Same contract for SystemConfig::metrics and the metrics plane
  // (CBMA_METRICS): non-empty enables it and names the Prometheus target.
  if (!config_.metrics.empty()) {
    MetricsPlane::enable(config_.metrics);
  }

  budget_.tx_power_w = units::dbm_to_watts(config_.tx_power_dbm);
  budget_.tx_gain = budget_.tag_gain = budget_.rx_gain = config_.antenna_gain;
  budget_.carrier_hz = config_.carrier_hz;
  budget_.alpha = config_.alpha;
  budget_.delta_gamma = 1.0;  // impedance factors are applied per tag state
  budget_.min_separation_m = config_.min_node_separation_m;

  if (config_.code_family_size > 0) {
    // Multi-cell slice: build the shared family once and keep only this
    // cell's [code_offset, code_offset + max_tags) window, so cells whose
    // slices are disjoint are guaranteed distinct family members.
    auto family = pn::make_code_set(config_.code_family, config_.code_family_size,
                                    config_.code_min_length);
    codes_.assign(
        std::make_move_iterator(family.begin() +
                                static_cast<std::ptrdiff_t>(config_.code_offset)),
        std::make_move_iterator(family.begin() + static_cast<std::ptrdiff_t>(
                                                     config_.code_offset +
                                                     config_.max_tags)));
  } else {
    codes_ = pn::make_code_set(config_.code_family, config_.max_tags,
                               config_.code_min_length);
  }
  noise_power_w_ = config_.noise_power_w();

  // The frame synchronizer needs a noise-only baseline window plus two
  // head windows before the earliest tag; guarantee the lead-in covers
  // them at any samples-per-chip setting.
  const double min_lead_chips =
      static_cast<double>(config_.sync.window + 2 * config_.sync.head_average + 8) /
          static_cast<double>(config_.samples_per_chip) +
      config_.max_async_jitter_chips + 2.0;
  config_.lead_in_chips = std::max(config_.lead_in_chips, min_lead_chips);

  impairments_ = rfsim::ImpairmentSuite(config_.impairments);

  rfsim::ChannelConfig ch;
  ch.samples_per_chip = config_.samples_per_chip;
  ch.chip_rate_hz = config_.chip_rate_hz();
  ch.noise_power_w = noise_power_w_;
  ch.multipath = config_.multipath;
  ch.impairments = config_.impairments;
  channel_ = std::make_unique<rfsim::Channel>(ch);

  rx::ReceiverConfig rc;
  rc.sync = config_.sync;
  rc.detect = config_.detect;
  rc.samples_per_chip = config_.samples_per_chip;
  rc.preamble_bits = config_.preamble_bits;
  rc.phase_tracking_gain = config_.phase_tracking_gain;
  receiver_ = std::make_unique<rx::Receiver>(rc, codes_);

  excitation_ = std::make_unique<rfsim::ContinuousTone>();

  if (config_.initial_impedance_level == SystemConfig::kStrongestImpedance) {
    config_.initial_impedance_level = bank_.strongest_level();
  }
  CBMA_REQUIRE(config_.initial_impedance_level < bank_.size(),
               "initial impedance level out of range");
  impedance_.assign(population_.tag_count(), config_.initial_impedance_level);

  slot_tags_.reserve(config_.max_tags);
  for (std::size_t k = 0; k < config_.max_tags; ++k) {
    phy::TagConfig tc;
    tc.id = static_cast<std::uint32_t>(k);
    tc.code = codes_[k];
    tc.preamble_bits = config_.preamble_bits;
    tc.impedance_levels = bank_.size();
    slot_tags_.emplace_back(tc);
    // Static crystal offsets spread the slots over ±max_static_ppm — the
    // deterministic per-tag component of the clock-drift impairment (0 when
    // the drift stage is off).
    slot_tags_.back().set_clock_offset_ppm(
        impairments_.static_clock_ppm(k, config_.max_tags));
  }

  // Default group: the first max_tags population members (or all of them).
  std::vector<std::size_t> all;
  const std::size_t n = std::min<std::size_t>(population_.tag_count(), config_.max_tags);
  for (std::size_t i = 0; i < n; ++i) all.push_back(i);
  set_active_group(std::move(all));
}

void CbmaSystem::set_active_group(std::vector<std::size_t> indices) {
  CBMA_REQUIRE(!indices.empty(), "active group must be non-empty");
  CBMA_REQUIRE(indices.size() <= config_.max_tags, "group exceeds code capacity");
  for (const auto idx : indices) {
    CBMA_REQUIRE(idx < population_.tag_count(), "group index out of population");
  }
  group_ = std::move(indices);
}

std::size_t CbmaSystem::impedance_level(std::size_t pop_index) const {
  CBMA_REQUIRE(pop_index < impedance_.size(), "tag index out of population");
  return impedance_[pop_index];
}

void CbmaSystem::set_impedance_level(std::size_t pop_index, std::size_t level) {
  CBMA_REQUIRE(pop_index < impedance_.size(), "tag index out of population");
  CBMA_REQUIRE(level < bank_.size(), "impedance level out of range");
  impedance_[pop_index] = level;
}

void CbmaSystem::step_impedance(std::size_t pop_index) {
  CBMA_REQUIRE(pop_index < impedance_.size(), "tag index out of population");
  impedance_[pop_index] = (impedance_[pop_index] + 1) % bank_.size();
}

void CbmaSystem::set_excitation(std::unique_ptr<rfsim::ExcitationSource> source) {
  CBMA_REQUIRE(source != nullptr, "excitation source must be non-null");
  excitation_ = std::move(source);
}

void CbmaSystem::add_interferer(std::unique_ptr<rfsim::Interferer> interferer) {
  CBMA_REQUIRE(interferer != nullptr, "interferer must be non-null");
  interferers_.push_back(std::move(interferer));
}

void CbmaSystem::clear_interferers() { interferers_.clear(); }

void CbmaSystem::set_obstacles(rfsim::ObstacleMap obstacles) {
  obstacles_ = std::move(obstacles);
}

double CbmaSystem::tag_amplitude(std::size_t pop_index) const {
  const double base = obstacles_.received_amplitude(budget_, population_, pop_index);
  return base * bank_.amplitude_factor(impedance_[pop_index]) *
         kSidebandAmplitudeFraction;
}

double CbmaSystem::received_power_dbm(std::size_t pop_index) const {
  const double a = tag_amplitude(pop_index);
  return units::watts_to_dbm(a * a);
}

double CbmaSystem::snr_db(std::size_t pop_index) const {
  const double a = tag_amplitude(pop_index);
  return units::to_db((a * a) / noise_power_w_);
}

double CbmaSystem::predicted_power_dbm(std::size_t pop_index) const {
  return units::watts_to_dbm(budget_.received_power(population_, pop_index));
}

rx::RxReport CbmaSystem::transmit(const TransmitOptions& options, Rng& rng) const {
  TransmitScratch scratch;
  return transmit(options, rng, scratch);
}

rx::RxReport CbmaSystem::transmit(const TransmitOptions& options, Rng& rng,
                                  TransmitScratch& scratch) const {
  const telemetry::ScopedSpan span_total(telemetry::Span::kTransmitTotal);
  const bool whole_group = options.slots.empty();
  const std::size_t n = whole_group ? group_.size() : options.slots.size();
  if (!options.payloads.empty()) {
    CBMA_REQUIRE(options.payloads.size() == n, "one payload per transmitting slot");
  }
  if (!options.delay_chips.empty()) {
    CBMA_REQUIRE(options.delay_chips.size() == n, "one delay per transmitting slot");
  }
  for (const auto slot : options.slots) {
    CBMA_REQUIRE(slot < group_.size(), "slot outside the active group");
  }
  const auto slot_of = [&](std::size_t k) {
    return whole_group ? k : options.slots[k];
  };

  // RNG draw order is contractual: seeds recorded by earlier experiments
  // must keep replaying the same streams, and the determinism test pins the
  // order. Whole-group rounds draw payloads as a block, then delays as a
  // block, then (phase, cfo) per slot; subset rounds draw payloads as a
  // block, then (phase, delay, cfo) per slot.
  scratch.chip_seqs.resize(n);
  {
    const telemetry::ScopedSpan span_spread(telemetry::Span::kTransmitSpread);
    for (std::size_t k = 0; k < n; ++k) {
      if (options.payloads.empty()) {
        random_payload_into(config_.payload_bytes, rng, scratch.payload);
        slot_tags_[slot_of(k)].chip_sequence_into(scratch.payload,
                                                  scratch.frame_bits,
                                                  scratch.chip_seqs[k]);
      } else {
        slot_tags_[slot_of(k)].chip_sequence_into(options.payloads[k],
                                                  scratch.frame_bits,
                                                  scratch.chip_seqs[k]);
      }
    }
  }

  scratch.delays.resize(n);
  if (whole_group) {
    if (options.delay_chips.empty()) {
      for (auto& d : scratch.delays) {
        d = rng.uniform(0.0, config_.max_async_jitter_chips);
      }
    } else {
      // Explicit delays replace the jitter draws entirely (the legacy
      // with-delays path performed no delay draws).
      for (std::size_t k = 0; k < n; ++k) scratch.delays[k] = options.delay_chips[k];
    }
  }

  scratch.txs.clear();
  scratch.txs.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    rfsim::TagTransmission tx;
    tx.chips = scratch.chip_seqs[k];
    tx.amplitude = tag_amplitude(group_[slot_of(k)]);
    tx.phase = rng.phase();
    double delay;
    if (whole_group) {
      delay = scratch.delays[k];
    } else if (!options.delay_chips.empty()) {
      delay = options.delay_chips[k];
    } else {
      delay = rng.uniform(0.0, config_.max_async_jitter_chips);
    }
    CBMA_REQUIRE(delay >= 0.0, "tag delays must be non-negative");
    tx.delay_chips = config_.lead_in_chips + delay;
    tx.freq_offset_hz = rng.uniform(-config_.cfo_max_hz, config_.cfo_max_hz);
    // Injected tag-side faults. Draw order per slot (contractual, after the
    // clean phase/delay/CFO draws so an all-off config leaves the historical
    // RNG stream untouched): clock wander, then switching jitter.
    if (impairments_.any_enabled()) {
      const telemetry::ScopedSpan span_imp(
          telemetry::Span::kTransmitImpairments);
      const auto clock = impairments_.perturb_clock(
          slot_tags_[slot_of(k)].clock_offset_ppm(), config_.subcarrier_hz,
          static_cast<double>(scratch.chip_seqs[k].size()), rng);
      tx.freq_offset_hz += clock.extra_freq_offset_hz;
      tx.delay_chips = std::max(0.0, tx.delay_chips + clock.extra_delay_chips +
                                         impairments_.switching_jitter_chips(rng));
    }
    scratch.txs.push_back(tx);
  }

  scratch.interferers.clear();
  scratch.interferers.reserve(interferers_.size());
  for (const auto& p : interferers_) scratch.interferers.push_back(p.get());

  channel_->receive_into(scratch.txs, *excitation_, scratch.interferers, rng,
                         scratch.channel, scratch.iq);
  // The streaming session is the receiver's per-packet state; process()
  // feeds the round's window whole (rx_chunk_samples == 0) or in chunks —
  // byte-identical reports either way (§10 chunk invariance).
  if (!scratch.rx_session ||
      &scratch.rx_session->receiver() != receiver_.get()) {
    scratch.rx_session = std::make_unique<rx::StreamingReceiver>(*receiver_);
  }
  auto report =
      scratch.rx_session->process(scratch.iq, config_.rx_chunk_samples);

  if (telemetry::enabled()) {
    telemetry::count(telemetry::Counter::kTransmitPackets);
    telemetry::count(telemetry::Counter::kTransmitFramesSent, n);
    telemetry::count(telemetry::Counter::kRxFramesDecoded,
                     report.decoded_count());
    const std::uint8_t gates = impairment_gate_bits(impairments_.config());
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t slot = slot_of(k);
      const auto& r = report.results[slot];
      telemetry::FrameTrace frame;
      frame.tag_id = static_cast<std::uint32_t>(slot);
      frame.pn_code_length = static_cast<std::uint32_t>(codes_[slot].length());
      frame.correlation = r.correlation;
      frame.margin = r.correlation - config_.detect.threshold;
      frame.cfo_hz = scratch.txs[k].freq_offset_hz;
      const double a = scratch.txs[k].amplitude;
      frame.power_dbm = units::watts_to_dbm(a * a);
      frame.impedance_level =
          static_cast<std::uint32_t>(impedance_[group_[slot]]);
      frame.outcome = static_cast<std::uint8_t>(r.outcome);
      frame.impairment_gates = gates;
      telemetry::record_frame(frame);
    }
  }
  return report;
}


RoundStats CbmaSystem::run_packets(std::size_t n_packets, Rng& rng) const {
  RoundStats stats(group_.size());
  TransmitScratch scratch;
  const TransmitOptions options;
  for (std::size_t p = 0; p < n_packets; ++p) {
    const auto report = transmit(options, rng, scratch);
    for (std::size_t slot = 0; slot < group_.size(); ++slot) {
      const auto& r = report.results[slot];
      stats.record(slot, r.crc_ok);
      stats.record_outcome(static_cast<std::size_t>(r.outcome));
      if (r.detected) {
        stats.record_margin(r.correlation_margin);
        // The receiver fills link_quality only while the probe or metrics
        // plane asked for it; empty means nothing to roll up.
        if (slot < report.link_quality.size()) {
          stats.quality.add(report.link_quality[slot]);
        }
      }
    }
  }
  return stats;
}

PowerControlOutcome CbmaSystem::run_power_control(
    const mac::PowerControlConfig& pc_config, std::size_t packets_per_round,
    Rng& rng) {
  mac::PowerController controller(pc_config, group_.size());
  // Algorithm 1 adapts from each tag's *current* level: tags whose ACK
  // ratio stays under 50 % cycle through the impedance states ("the power
  // control is performed circularly to try every possible power level",
  // §V-B) while healthy tags keep their working level.
  PowerControlOutcome outcome;
  while (true) {
    outcome.final_stats = run_packets(packets_per_round, rng);
    const auto ratios = outcome.final_stats.ack_ratios();
    const auto decision = controller.update(ratios);
    outcome.final_fer = decision.fer;
    if (!decision.adjusted || decision.exhausted) {
      outcome.exhausted = decision.exhausted;
      break;
    }
    for (std::size_t slot = 0; slot < group_.size(); ++slot) {
      if (decision.step_tag[slot]) step_impedance(group_[slot]);
    }
    ++outcome.rounds;
  }
  return outcome;
}

}  // namespace cbma::core
