#include "core/system.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::core {
namespace {

// Fraction of the reflected amplitude carried by the square-wave
// subcarrier's first harmonic in one sideband (paper Eq. 2: the Fourier
// coefficient of sin(2πΔf t) is 4/π, split across the ±Δf sidebands → 2/π).
constexpr double kSidebandAmplitudeFraction = 2.0 / units::kPi;

std::vector<std::uint8_t> random_payload(std::size_t bytes, Rng& rng) {
  std::vector<std::uint8_t> out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

}  // namespace

CbmaSystem::CbmaSystem(SystemConfig config, rfsim::Deployment population)
    : config_(std::move(config)),
      population_(std::move(population)),
      bank_(config_.impedance_levels == 4
                ? rfsim::ReflectionStateBank::paper_bank(config_.carrier_hz)
                : rfsim::ReflectionStateBank::uniform_bank(
                      config_.impedance_levels, config_.impedance_range_db)) {
  CBMA_REQUIRE(population_.tag_count() >= 1, "population must contain tags");
  CBMA_REQUIRE(config_.max_tags >= 1, "max_tags must be positive");

  budget_.tx_power_w = units::dbm_to_watts(config_.tx_power_dbm);
  budget_.tx_gain = budget_.tag_gain = budget_.rx_gain = config_.antenna_gain;
  budget_.carrier_hz = config_.carrier_hz;
  budget_.alpha = config_.alpha;
  budget_.delta_gamma = 1.0;  // impedance factors are applied per tag state

  codes_ = pn::make_code_set(config_.code_family, config_.max_tags,
                             config_.code_min_length);
  noise_power_w_ = config_.noise_power_w();

  // The frame synchronizer needs a noise-only baseline window plus two
  // head windows before the earliest tag; guarantee the lead-in covers
  // them at any samples-per-chip setting.
  const double min_lead_chips =
      static_cast<double>(config_.sync.window + 2 * config_.sync.head_average + 8) /
          static_cast<double>(config_.samples_per_chip) +
      config_.max_async_jitter_chips + 2.0;
  config_.lead_in_chips = std::max(config_.lead_in_chips, min_lead_chips);

  rfsim::ChannelConfig ch;
  ch.samples_per_chip = config_.samples_per_chip;
  ch.chip_rate_hz = config_.chip_rate_hz();
  ch.noise_power_w = noise_power_w_;
  ch.multipath = config_.multipath;
  channel_ = std::make_unique<rfsim::Channel>(ch);

  rx::ReceiverConfig rc;
  rc.sync = config_.sync;
  rc.detect = config_.detect;
  rc.samples_per_chip = config_.samples_per_chip;
  rc.preamble_bits = config_.preamble_bits;
  rc.phase_tracking_gain = config_.phase_tracking_gain;
  receiver_ = std::make_unique<rx::Receiver>(rc, codes_);

  excitation_ = std::make_unique<rfsim::ContinuousTone>();

  if (config_.initial_impedance_level == SystemConfig::kStrongestImpedance) {
    config_.initial_impedance_level = bank_.strongest_level();
  }
  CBMA_REQUIRE(config_.initial_impedance_level < bank_.size(),
               "initial impedance level out of range");
  impedance_.assign(population_.tag_count(), config_.initial_impedance_level);

  slot_tags_.reserve(config_.max_tags);
  for (std::size_t k = 0; k < config_.max_tags; ++k) {
    phy::TagConfig tc;
    tc.id = static_cast<std::uint32_t>(k);
    tc.code = codes_[k];
    tc.preamble_bits = config_.preamble_bits;
    tc.impedance_levels = bank_.size();
    slot_tags_.emplace_back(tc);
  }

  // Default group: the first max_tags population members (or all of them).
  std::vector<std::size_t> all;
  const std::size_t n = std::min<std::size_t>(population_.tag_count(), config_.max_tags);
  for (std::size_t i = 0; i < n; ++i) all.push_back(i);
  set_active_group(std::move(all));
}

void CbmaSystem::set_active_group(std::vector<std::size_t> indices) {
  CBMA_REQUIRE(!indices.empty(), "active group must be non-empty");
  CBMA_REQUIRE(indices.size() <= config_.max_tags, "group exceeds code capacity");
  for (const auto idx : indices) {
    CBMA_REQUIRE(idx < population_.tag_count(), "group index out of population");
  }
  group_ = std::move(indices);
}

std::size_t CbmaSystem::impedance_level(std::size_t pop_index) const {
  CBMA_REQUIRE(pop_index < impedance_.size(), "tag index out of population");
  return impedance_[pop_index];
}

void CbmaSystem::set_impedance_level(std::size_t pop_index, std::size_t level) {
  CBMA_REQUIRE(pop_index < impedance_.size(), "tag index out of population");
  CBMA_REQUIRE(level < bank_.size(), "impedance level out of range");
  impedance_[pop_index] = level;
}

void CbmaSystem::step_impedance(std::size_t pop_index) {
  CBMA_REQUIRE(pop_index < impedance_.size(), "tag index out of population");
  impedance_[pop_index] = (impedance_[pop_index] + 1) % bank_.size();
}

void CbmaSystem::set_excitation(std::unique_ptr<rfsim::ExcitationSource> source) {
  CBMA_REQUIRE(source != nullptr, "excitation source must be non-null");
  excitation_ = std::move(source);
}

void CbmaSystem::add_interferer(std::unique_ptr<rfsim::Interferer> interferer) {
  CBMA_REQUIRE(interferer != nullptr, "interferer must be non-null");
  interferers_.push_back(std::move(interferer));
}

void CbmaSystem::clear_interferers() { interferers_.clear(); }

void CbmaSystem::set_obstacles(rfsim::ObstacleMap obstacles) {
  obstacles_ = std::move(obstacles);
}

double CbmaSystem::tag_amplitude(std::size_t pop_index) const {
  const double base = obstacles_.received_amplitude(budget_, population_, pop_index);
  return base * bank_.amplitude_factor(impedance_[pop_index]) *
         kSidebandAmplitudeFraction;
}

double CbmaSystem::received_power_dbm(std::size_t pop_index) const {
  const double a = tag_amplitude(pop_index);
  return units::watts_to_dbm(a * a);
}

double CbmaSystem::snr_db(std::size_t pop_index) const {
  const double a = tag_amplitude(pop_index);
  return units::to_db((a * a) / noise_power_w_);
}

double CbmaSystem::predicted_power_dbm(std::size_t pop_index) const {
  return units::watts_to_dbm(budget_.received_power(population_, pop_index));
}

rx::RxReport CbmaSystem::transmit_round(
    std::span<const std::vector<std::uint8_t>> payloads, Rng& rng) const {
  std::vector<double> delays(payloads.size());
  for (auto& d : delays) d = rng.uniform(0.0, config_.max_async_jitter_chips);
  return transmit_round_with_delays(payloads, delays, rng);
}

rx::RxReport CbmaSystem::transmit_round_with_delays(
    std::span<const std::vector<std::uint8_t>> payloads,
    std::span<const double> delay_chips, Rng& rng) const {
  CBMA_REQUIRE(payloads.size() == group_.size(), "one payload per active tag");
  CBMA_REQUIRE(delay_chips.size() == group_.size(), "one delay per active tag");

  std::vector<std::vector<std::uint8_t>> chip_seqs;
  chip_seqs.reserve(group_.size());
  std::vector<rfsim::TagTransmission> txs;
  txs.reserve(group_.size());

  for (std::size_t slot = 0; slot < group_.size(); ++slot) {
    chip_seqs.push_back(slot_tags_[slot].chip_sequence(payloads[slot]));
  }
  for (std::size_t slot = 0; slot < group_.size(); ++slot) {
    CBMA_REQUIRE(delay_chips[slot] >= 0.0, "tag delays must be non-negative");
    rfsim::TagTransmission tx;
    tx.chips = chip_seqs[slot];
    tx.amplitude = tag_amplitude(group_[slot]);
    tx.phase = rng.phase();
    tx.delay_chips = config_.lead_in_chips + delay_chips[slot];
    tx.freq_offset_hz = rng.uniform(-config_.cfo_max_hz, config_.cfo_max_hz);
    txs.push_back(tx);
  }

  std::vector<const rfsim::Interferer*> itf;
  itf.reserve(interferers_.size());
  for (const auto& p : interferers_) itf.push_back(p.get());

  const auto iq = channel_->receive(txs, *excitation_, itf, rng);
  return receiver_->process_iq(iq);
}

rx::RxReport CbmaSystem::transmit_round(Rng& rng) const {
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(group_.size());
  for (std::size_t i = 0; i < group_.size(); ++i) {
    payloads.push_back(random_payload(config_.payload_bytes, rng));
  }
  return transmit_round(payloads, rng);
}

rx::RxReport CbmaSystem::transmit_round_subset(std::span<const std::size_t> slots,
                                               Rng& rng) const {
  CBMA_REQUIRE(!slots.empty(), "at least one slot must transmit");

  std::vector<std::vector<std::uint8_t>> chip_seqs;
  chip_seqs.reserve(slots.size());
  std::vector<rfsim::TagTransmission> txs;
  txs.reserve(slots.size());

  for (const auto slot : slots) {
    CBMA_REQUIRE(slot < group_.size(), "slot outside the active group");
    chip_seqs.push_back(
        slot_tags_[slot].chip_sequence(random_payload(config_.payload_bytes, rng)));
  }
  for (std::size_t k = 0; k < slots.size(); ++k) {
    rfsim::TagTransmission tx;
    tx.chips = chip_seqs[k];
    tx.amplitude = tag_amplitude(group_[slots[k]]);
    tx.phase = rng.phase();
    tx.delay_chips =
        config_.lead_in_chips + rng.uniform(0.0, config_.max_async_jitter_chips);
    tx.freq_offset_hz = rng.uniform(-config_.cfo_max_hz, config_.cfo_max_hz);
    txs.push_back(tx);
  }

  std::vector<const rfsim::Interferer*> itf;
  itf.reserve(interferers_.size());
  for (const auto& p : interferers_) itf.push_back(p.get());

  const auto iq = channel_->receive(txs, *excitation_, itf, rng);
  return receiver_->process_iq(iq);
}

RoundStats CbmaSystem::run_packets(std::size_t n_packets, Rng& rng) const {
  RoundStats stats(group_.size());
  for (std::size_t p = 0; p < n_packets; ++p) {
    const auto report = transmit_round(rng);
    for (std::size_t slot = 0; slot < group_.size(); ++slot) {
      stats.record(slot, report.results[slot].crc_ok);
    }
  }
  return stats;
}

PowerControlOutcome CbmaSystem::run_power_control(
    const mac::PowerControlConfig& pc_config, std::size_t packets_per_round,
    Rng& rng) {
  mac::PowerController controller(pc_config, group_.size());
  // Algorithm 1 adapts from each tag's *current* level: tags whose ACK
  // ratio stays under 50 % cycle through the impedance states ("the power
  // control is performed circularly to try every possible power level",
  // §V-B) while healthy tags keep their working level.
  PowerControlOutcome outcome;
  while (true) {
    outcome.final_stats = run_packets(packets_per_round, rng);
    const auto ratios = outcome.final_stats.ack_ratios();
    const auto decision = controller.update(ratios);
    outcome.final_fer = decision.fer;
    if (!decision.adjusted || decision.exhausted) {
      outcome.exhausted = decision.exhausted;
      break;
    }
    for (std::size_t slot = 0; slot < group_.size(); ++slot) {
      if (decision.step_tag[slot]) step_impedance(group_[slot]);
    }
    ++outcome.rounds;
  }
  return outcome;
}

}  // namespace cbma::core
