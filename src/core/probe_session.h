// core::ProbeSession — the experiment-facing façade over the signal-probe
// capture in util/probe.h, owning the two exports:
//
//  * the probe dump: a compact length-prefixed binary file of every tapped
//    waveform (CBPROBE1 format, below) plus a <path>.json manifest that
//    indexes it — what tools/probe_inspect.py validates and slices;
//  * the "link_quality" section RunRecorder embeds in BENCH_*.json —
//    per-tag aggregates of the receiver's LinkQualityReport rows.
//
// Dump format (schema_version 1, all integers/doubles little-endian):
//   file  = "CBPROBE1" then records back-to-back
//   record = u64 seq | u32 tap | u32 context | u64 point | u32 iq(0/1)
//            | u32 n_doubles | n_doubles × f64
// Complex records interleave re/im (n_doubles = 2 × samples). The manifest
// repeats every record header with its byte offset, so a reader never has
// to trust the binary's own framing — the cross-check IS the validation.
//
// Everything here is a no-op unless probing is enabled (CBMA_PROBE=<path>
// or SystemConfig::probe) — the disabled default leaves every bench table
// and JSON byte-identical. See DESIGN.md §8.
#pragma once

#include <string>

#include "util/json.h"
#include "util/probe.h"

namespace cbma::core {

/// Version of the probe dump + manifest layout. Bump on breaking changes
/// and describe the migration in DESIGN.md §8.
inline constexpr int kProbeDumpSchemaVersion = 1;

class ProbeSession {
 public:
  static bool enabled() { return probe::enabled(); }

  /// Programmatic CBMA_PROBE: turn capture on and aim the dump at `path`.
  static void enable(std::string dump_path) {
    probe::set_dump_path(std::move(dump_path));
    probe::set_enabled(true);
  }
  static void disable() { probe::set_enabled(false); }

  /// Drop every captured record (e.g. between independent runs sharing a
  /// process). The enabled flag and dump path are unchanged.
  static void reset() { probe::reset(); }

  /// Append the "link_quality" key + object to an open JSON object scope:
  /// sample/drop totals plus per-tag aggregates (frames, decoded, mean
  /// SNR/EVM/soft-margin/margin-ratio/power/correlation). The caller
  /// decides *whether* to emit (RunRecorder only does when probing is
  /// enabled, keeping the disabled document byte-identical).
  static void write_json_section(util::JsonWriter& w);

  /// Write the binary dump to `path` and its manifest to `path`.json,
  /// creating parent directories. Returns false with a stderr diagnostic
  /// on I/O failure.
  static bool write_dump(const std::string& path);

  /// Honor the configured dump path: when probing is enabled and a path is
  /// set, write the dump there. Returns true when nothing was requested or
  /// the write succeeded — benches call this from finish().
  static bool write_dump_if_requested();
};

}  // namespace cbma::core
