// Cross-correlation decoding (§III-B): after user detection fixes a user's
// timing offset and carrier phase, every bit period of the complex baseband
// is correlated against the user's mean-removed bipolar code; the bit is
// the sign of the correlation projected onto the tracked carrier phase.
// With the footnote-2 convention ('0' chips are the negation of '1' chips)
// the two-template comparison the paper describes reduces to this single
// sign test, and a decision-directed loop tracks the slow phase drift from
// the tag's residual oscillator offset.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "phy/frame.h"
#include "pn/code.h"

namespace cbma::rx {

struct DecodedFrame {
  std::vector<std::uint8_t> bits;  ///< all decoded bits after the preamble
  std::vector<double> soft;        ///< per-bit coherent correlation values
  std::optional<phy::ParsedFrame> frame;
  bool crc_ok = false;
  /// The window ended (or the advertised length was impossible) before the
  /// frame body completed — decoding stopped early rather than failing CRC.
  bool truncated = false;
  double final_phase = 0.0;        ///< tracked carrier phase after the frame
};

class Decoder {
 public:
  /// `phase_gain`: first-order gain of the decision-directed phase tracker
  /// (0 disables tracking; the residual CFO rotates the carrier by well
  /// under a degree per bit, so a light loop suffices and stays robust
  /// against MAI-noisy bits).
  Decoder(pn::PnCode code, std::size_t preamble_bits, std::size_t samples_per_chip,
          double phase_gain = 0.25);

  const pn::PnCode& code() const { return code_; }

  /// Coherent soft value of one bit period at `offset`, projected onto
  /// carrier phase `phase` (positive → '1').
  double decode_bit_soft(std::span<const std::complex<double>> iq, std::size_t offset,
                         double phase) const;

  /// Decode the whole frame whose *preamble* starts at `preamble_offset`,
  /// starting from carrier phase estimate `phase0` (from user detection).
  /// Reads the length field first, then exactly the advertised body.
  DecodedFrame decode(std::span<const std::complex<double>> iq,
                      std::size_t preamble_offset, double phase0) const;

  /// decode() on a window already deinterleaved into split re/im arrays —
  /// the receiver's hot path (it splits the window once and every
  /// per-code correlation streams contiguous doubles).
  DecodedFrame decode(std::span<const double> re, std::span<const double> im,
                      std::size_t preamble_offset, double phase0) const;

  std::size_t samples_per_bit() const { return samples_per_bit_; }

  double phase_gain() const { return phase_gain_; }

 private:
  pn::PnCode code_;
  std::size_t preamble_bits_;
  std::size_t samples_per_chip_;
  std::size_t samples_per_bit_;
  double phase_gain_;
  std::vector<double> bit_template_;  ///< mean-removed, upsampled bipolar code
};

}  // namespace cbma::rx
