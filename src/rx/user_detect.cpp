#include "rx/user_detect.h"

#include <algorithm>

#include "phy/frame.h"
#include "pn/correlation.h"
#include "util/expect.h"
#include "util/probe.h"

namespace cbma::rx {
namespace {

/// Upsampled template of a code's spread preamble, built per bit period
/// from the *per-code-period* mean-removed bipolar code (sign flipped for
/// '0' bits). Removing the mean per code period — rather than over the
/// whole preamble — is essential: with the footnote-2 negation convention
/// the dense '0'-bit chips are nearly identical across users, and a
/// whole-preamble mean removal would leave every code correlating with
/// every frame.
std::vector<double> preamble_template(const pn::PnCode& code, std::size_t preamble_bits,
                                      std::size_t samples_per_chip) {
  const auto bits = phy::alternating_preamble(preamble_bits);
  const auto bit_template = pn::mean_removed_template(code, samples_per_chip);
  std::vector<double> tmpl;
  tmpl.reserve(bits.size() * bit_template.size());
  for (const auto bit : bits) {
    for (const double v : bit_template) tmpl.push_back(bit ? v : -v);
  }
  return tmpl;
}

}  // namespace

UserDetector::UserDetector(UserDetectConfig config, std::span<const pn::PnCode> codes,
                           std::size_t preamble_bits, std::size_t samples_per_chip)
    : config_(config), samples_per_chip_(samples_per_chip) {
  CBMA_REQUIRE(!codes.empty(), "detector needs at least one code");
  CBMA_REQUIRE(samples_per_chip >= 1, "samples_per_chip must be positive");
  CBMA_REQUIRE(config_.threshold > 0.0 && config_.threshold < 1.0,
               "threshold must be in (0,1)");
  CBMA_REQUIRE(config_.relative_threshold >= 0.0 && config_.relative_threshold <= 1.0,
               "relative threshold must be in [0,1]");
  CBMA_REQUIRE(config_.search_back_chips >= 0.0 && config_.search_ahead_chips >= 0.0,
               "search window must be non-negative");
  CBMA_REQUIRE(config_.group_window_chips >= 0.0,
               "group window must be non-negative");
  templates_.reserve(codes.size());
  chip_templates_.reserve(codes.size());
  tmpl_norm2_.reserve(codes.size());
  for (const auto& code : codes) {
    templates_.push_back(preamble_template(code, preamble_bits, samples_per_chip));
    chip_templates_.push_back(preamble_template(code, preamble_bits, 1));
    double e = 0.0;
    for (const double v : templates_.back()) e += v * v;
    tmpl_norm2_.push_back(e);
  }
  // The FFT engine sizes its overlap-save plan for the anchor round's
  // search window — the wide all-codes batch where the fast path pays off.
  const auto spc = static_cast<double>(samples_per_chip_);
  const auto anchor_lags = static_cast<std::size_t>(
      (config_.search_back_chips + config_.search_ahead_chips) * spc) + 1;
  engine_ = make_correlation_engine(config_.engine, chip_templates_,
                                    samples_per_chip_, anchor_lags);
}

DetectedUser UserDetector::probe(std::span<const std::complex<double>> iq,
                                 std::size_t coarse_start, std::size_t tag_index) const {
  CBMA_REQUIRE(tag_index < templates_.size(), "tag index out of group");
  const auto spc = static_cast<double>(samples_per_chip_);
  const auto back = static_cast<std::size_t>(config_.search_back_chips * spc);
  const auto ahead = static_cast<std::size_t>(config_.search_ahead_chips * spc);
  const std::size_t begin = coarse_start > back ? coarse_start - back : 0;
  const std::size_t end = coarse_start + ahead + 1;
  const auto peak = pn::sliding_complex_peak(iq, templates_[tag_index], begin, end);
  return DetectedUser{tag_index, peak.offset, peak.value, peak.phase};
}

std::vector<DetectedUser> UserDetector::detect(const DetectionInput& input,
                                               Scratch& scratch) const {
  const auto re = input.re;
  const auto im = input.im;
  const std::size_t coarse_start = input.coarse_start;
  CBMA_REQUIRE(re.size() == im.size(), "split window components disagree");
  // Successive detection with interference cancellation on a residual copy.
  scratch.residual_re.assign(re.begin(), re.end());
  scratch.residual_im.assign(im.begin(), im.end());
  pn::fold_chip_sums(scratch.residual_re, samples_per_chip_, scratch.fold_re);
  pn::fold_chip_sums(scratch.residual_im, samples_per_chip_, scratch.fold_im);
  if (!scratch.engine) scratch.engine = engine_->make_scratch();
  std::span<const double> res_re = scratch.residual_re;
  std::span<const double> res_im = scratch.residual_im;
  std::vector<bool> taken(templates_.size(), false);

  const auto spc = static_cast<double>(samples_per_chip_);
  const auto group_span =
      static_cast<std::size_t>(config_.group_window_chips * spc);

  // Signal-probe tap: every code's |correlation| across the anchor search
  // window, on the window *before* any cancellation — the per-code profile
  // a human compares against the thresholds when a detection goes wrong.
  // Strictly probe-gated: the hot path neither allocates nor computes this.
  // Computed from the exact folded dot, so the profile is engine-invariant.
  if (probe::enabled()) {
    const auto back = static_cast<std::size_t>(config_.search_back_chips * spc);
    const auto ahead = static_cast<std::size_t>(config_.search_ahead_chips * spc);
    const std::size_t pbegin = coarse_start > back ? coarse_start - back : 0;
    const std::size_t pend = coarse_start + ahead + 1;
    std::vector<double> profile;
    profile.reserve(pend - pbegin);
    for (std::size_t i = 0; i < templates_.size(); ++i) {
      profile.clear();
      for (std::size_t off = pbegin; off < pend; ++off) {
        profile.push_back(std::abs(pn::complex_correlate_folded_at(
            scratch.fold_re, scratch.fold_im, chip_templates_[i],
            samples_per_chip_, off)));
      }
      probe::record_tap(probe::Tap::kCorrelationProfile,
                        static_cast<std::uint32_t>(i), profile);
    }
  }

  std::vector<DetectedUser> out;
  double anchor_correlation = 0.0;
  for (std::size_t round = 0; round < templates_.size(); ++round) {
    // Search window: free around the coarse trigger for the anchor, the
    // group window around the anchor afterwards.
    std::size_t begin, end;
    if (out.empty()) {
      const auto back = static_cast<std::size_t>(config_.search_back_chips * spc);
      const auto ahead = static_cast<std::size_t>(config_.search_ahead_chips * spc);
      begin = coarse_start > back ? coarse_start - back : 0;
      end = coarse_start + ahead + 1;
    } else {
      const std::size_t anchor = out.front().offset_samples;
      begin = anchor > group_span ? anchor - group_span : 0;
      end = anchor + group_span + 1;
    }

    // One engine batch per round: every still-unassigned code over the
    // round's window, against the current residual.
    scratch.code_idx.clear();
    for (std::size_t i = 0; i < templates_.size(); ++i) {
      if (!taken[i]) scratch.code_idx.push_back(i);
    }
    scratch.peaks.resize(scratch.code_idx.size());
    const CorrelationWindow window{res_re, res_im, scratch.fold_re,
                                   scratch.fold_im, samples_per_chip_};
    engine_->peaks(window, scratch.code_idx, begin, end, scratch.peaks,
                   *scratch.engine);

    DetectedUser best;
    for (std::size_t k = 0; k < scratch.code_idx.size(); ++k) {
      const std::size_t i = scratch.code_idx[k];
      const auto& peak = scratch.peaks[k];
      if (peak.value > best.correlation) {
        // The displaced leader becomes the runner-up this code had to beat.
        const double displaced = best.correlation;
        best = DetectedUser{i, peak.offset, peak.value, peak.phase, displaced};
      } else if (peak.value > best.runner_up) {
        best.runner_up = peak.value;
      }
    }
    if (best.correlation < config_.threshold) break;
    if (out.empty()) {
      anchor_correlation = best.correlation;
    } else if (best.correlation < config_.relative_threshold * anchor_correlation) {
      break;
    }
    taken[best.tag_index] = true;
    out.push_back(best);

    if (!config_.enable_sic) continue;
    // Cancel the detected user's preamble contribution: the complex gain is
    // the least-squares fit of the template at the detected offset.
    const auto& tmpl = templates_[best.tag_index];
    const auto corr = pn::complex_correlate_folded_at(
        scratch.fold_re, scratch.fold_im, chip_templates_[best.tag_index],
        samples_per_chip_, best.offset_samples);
    const double gain_re = corr.real() / tmpl_norm2_[best.tag_index];
    const double gain_im = corr.imag() / tmpl_norm2_[best.tag_index];
    std::size_t cancel_end = best.offset_samples;
    for (std::size_t k = 0; k < tmpl.size(); ++k) {
      const std::size_t s = best.offset_samples + k;
      if (s >= scratch.residual_re.size()) break;
      scratch.residual_re[s] -= gain_re * tmpl[k];
      scratch.residual_im[s] -= gain_im * tmpl[k];
      cancel_end = s + 1;
    }
    // The residual changed over [offset, cancel_end): refresh the folded
    // sums whose chip window overlaps that span.
    const std::size_t refold_begin = best.offset_samples >= samples_per_chip_ - 1
                                         ? best.offset_samples - (samples_per_chip_ - 1)
                                         : 0;
    pn::refold_chip_sums(scratch.residual_re, samples_per_chip_, refold_begin,
                         cancel_end, scratch.fold_re);
    pn::refold_chip_sums(scratch.residual_im, samples_per_chip_, refold_begin,
                         cancel_end, scratch.fold_im);
  }
  return out;
}

}  // namespace cbma::rx
