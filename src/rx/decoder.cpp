#include "rx/decoder.h"

#include <cmath>

#include "pn/correlation.h"
#include "util/expect.h"
#include "util/units.h"

namespace cbma::rx {
namespace {

/// Wrap an angle to (−π, π].
double wrap_angle(double a) {
  while (a > units::kPi) a -= 2.0 * units::kPi;
  while (a <= -units::kPi) a += 2.0 * units::kPi;
  return a;
}

}  // namespace

Decoder::Decoder(pn::PnCode code, std::size_t preamble_bits,
                 std::size_t samples_per_chip, double phase_gain)
    : code_(std::move(code)),
      preamble_bits_(preamble_bits),
      samples_per_chip_(samples_per_chip),
      phase_gain_(phase_gain) {
  CBMA_REQUIRE(!code_.empty(), "decoder needs a code");
  CBMA_REQUIRE(samples_per_chip >= 1, "samples_per_chip must be positive");
  CBMA_REQUIRE(preamble_bits >= 1, "preamble must be at least one bit");
  CBMA_REQUIRE(phase_gain >= 0.0 && phase_gain <= 1.0,
               "phase gain must lie in [0, 1]");
  samples_per_bit_ = code_.length() * samples_per_chip_;
  bit_template_ = pn::mean_removed_template(code_, samples_per_chip_);
}

double Decoder::decode_bit_soft(std::span<const std::complex<double>> iq,
                                std::size_t offset, double phase) const {
  const auto corr = pn::complex_correlate_at(iq, bit_template_, offset);
  return corr.real() * std::cos(phase) + corr.imag() * std::sin(phase);
}

DecodedFrame Decoder::decode(std::span<const std::complex<double>> iq,
                             std::size_t preamble_offset, double phase0) const {
  std::vector<double> re, im;
  pn::split_iq(iq, re, im);
  return decode(re, im, preamble_offset, phase0);
}

DecodedFrame Decoder::decode(std::span<const double> re, std::span<const double> im,
                             std::size_t preamble_offset, double phase0) const {
  DecodedFrame out;
  const std::size_t body_start = preamble_offset + preamble_bits_ * samples_per_bit_;
  double phase = phase0;

  const auto decode_bits = [&](std::size_t first_bit, std::size_t count) {
    for (std::size_t b = first_bit; b < first_bit + count; ++b) {
      const std::size_t off = body_start + b * samples_per_bit_;
      if (off + samples_per_bit_ > re.size()) return false;
      const auto corr = pn::complex_correlate_at(re, im, bit_template_, off);
      const double soft = corr.real() * std::cos(phase) + corr.imag() * std::sin(phase);
      out.soft.push_back(soft);
      const bool bit = soft > 0.0;
      out.bits.push_back(bit ? 1 : 0);
      // Decision-directed phase update: re-reference the correlation to the
      // decided symbol and nudge the tracked phase toward it.
      const std::complex<double> re_ref = bit ? corr : -corr;
      if (std::abs(re_ref) > 0.0 && phase_gain_ > 0.0) {
        phase += phase_gain_ * wrap_angle(std::arg(re_ref) - phase);
      }
    }
    return true;
  };

  // Length byte first, then exactly the advertised id + payload + CRC.
  // Early exits report `truncated` instead of throwing: garbage or cut-off
  // windows are expected inputs under degraded excitation, and the caller
  // (Receiver::process_iq) turns them into a failed DecodeOutcome.
  if (!decode_bits(0, 8)) {
    out.truncated = true;
    return out;
  }
  std::size_t length = 0;
  for (std::size_t i = 0; i < 8; ++i) length = (length << 1) | out.bits[i];
  if (length > phy::kMaxPayloadBytes) {
    out.truncated = true;  // impossible length byte: garbage, not a frame
    return out;
  }
  out.bits.reserve(8 + 8 * (length + 3));
  out.soft.reserve(8 + 8 * (length + 3));
  if (!decode_bits(8, 8 * (length + 3))) {
    out.truncated = true;
    return out;
  }

  out.frame = phy::parse_frame_body(out.bits);
  out.crc_ok = out.frame.has_value() && out.frame->crc_ok;
  out.final_phase = wrap_angle(phase);
  return out;
}

}  // namespace cbma::rx
