// Push-based chunked spelling of the CBMA receiver (DESIGN.md §10): feed()
// accepts arbitrarily-sized IQ chunks, carries the frame synchronizer's
// comparator state across chunk boundaries in ring buffers, and hands each
// completed detection window to the batch UserDetector/Decoder stages — so
// a session runs indefinitely at O(window) memory, independent of how many
// samples it has consumed.
//
// The correctness keystone is chunk invariance: every decision (comparator
// firing, window extent, detection, decode) is keyed to absolute stream
// positions and sample content only, never to where a chunk boundary fell.
// Feeding one whole buffer is therefore byte-identical to replaying the
// same buffer in chunks of any size — and Receiver::process_iq is exactly
// that one-whole-buffer feed, which is what makes the batch API a thin
// wrapper instead of a second pipeline.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rx/receiver.h"
#include "util/ring_buffer.h"

namespace cbma::rx {

class StreamingReceiver {
 public:
  /// Invoked once per completed RxReport (offsets and frame_start are
  /// absolute stream positions). When no sink is installed, reports queue
  /// internally for take_report().
  using ReportSink = std::function<void(RxReport)>;

  /// The receiver supplies the group codes, templates and decoders; the
  /// session owns all mutable state. `receiver` must outlive the session.
  explicit StreamingReceiver(const Receiver& receiver, ReportSink sink = {});

  const Receiver& receiver() const { return *receiver_; }

  /// Consume one chunk of complex-baseband samples. Emits zero or more
  /// reports (a report completes as soon as its lookahead window is full —
  /// no flush needed on a continuous stream).
  void feed(std::span<const std::complex<double>> iq);

  /// End of stream: run any in-flight detection window on the samples seen
  /// so far and emit it. If nothing has been emitted since the last
  /// flush/reset, an all-kNoFrameSync report is emitted so every fed
  /// stretch yields at least one report (the batch silent-window contract).
  /// Feeding may continue afterwards; positions keep counting.
  void flush();

  /// Fresh session at stream position 0. Buffers keep their high-water
  /// capacity, so a reused session allocates nothing in steady state.
  void reset();

  /// The batch entry: reset, feed the buffer (in `chunk_samples`-sized
  /// chunks when non-zero), flush, and return the first report — the
  /// streaming core's spelling of the old whole-round Receiver::process_iq.
  RxReport process(std::span<const std::complex<double>> iq,
                   std::size_t chunk_samples = 0);

  /// Pop the oldest queued report (sink-less mode). False when none.
  bool take_report(RxReport& out);

  // --- session statistics ---
  std::uint64_t samples_consumed() const { return pos_; }
  std::uint64_t reports_emitted() const { return reports_emitted_; }
  /// Resident ring storage (samples + sync prefix) — the O(window) bound
  /// BM_StreamingRx proves stays flat as the stream grows.
  std::size_t ring_bytes() const;
  /// ring_bytes() plus the reusable attempt-window copies and scratch.
  std::size_t resident_bytes() const;
  /// Lookahead retained past a sync trigger before its window is finalized
  /// (derived from the detect search window and the longest decodable
  /// frame under ReceiverConfig::max_payload_bytes).
  std::size_t lookahead_samples() const { return need_ahead_; }

 private:
  void advance(bool end_of_stream);
  void run_attempt();
  void emit_segment(std::uint64_t rearm_pos);
  void start_segment(std::uint64_t rearm_pos);
  void release_rings();

  const Receiver* receiver_;
  ReportSink sink_;

  // Window geometry, derived once from the receiver config.
  std::size_t back_margin_ = 0;  ///< window start margin before a trigger
  std::size_t need_ahead_ = 0;   ///< lookahead required after a trigger
  std::size_t keep_behind_ = 0;  ///< sample-ring retention behind the cursor

  util::RingBuffer<double> ring_re_;
  util::RingBuffer<double> ring_im_;
  FrameSynchronizer::Stream sync_stream_;
  std::uint64_t pos_ = 0;  ///< samples consumed (absolute stream position)

  // In-flight segment: the RxReport under construction and its sync walk.
  RxReport report_;
  int attempt_ = 0;
  bool collecting_ = false;   ///< a trigger is waiting for its lookahead
  std::uint64_t trigger_ = 0;

  std::uint64_t reports_emitted_ = 0;
  std::uint64_t reports_since_mark_ = 0;  ///< since last flush/reset

  // Reusable attempt buffers (the pre-streaming receiver scratch, folded in).
  std::vector<double> win_re_;
  std::vector<double> win_im_;
  std::vector<double> win_mag_;
  UserDetector::Scratch detect_scratch_;
  std::vector<RxReport> pending_;
};

}  // namespace cbma::rx
