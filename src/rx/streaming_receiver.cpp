#include "rx/streaming_receiver.h"

#include <algorithm>
#include <cmath>

#include "phy/frame.h"
#include "util/expect.h"
#include "util/metrics.h"
#include "util/probe.h"
#include "util/telemetry.h"

namespace cbma::rx {
namespace {

// Bounded sync-trigger walk per report: a noise spike can fire the energy
// comparator ahead of the true frame, so each segment examines up to this
// many successive triggers and keeps the attempt that validated the most
// frames (same policy and promotion rule as the historical batch walk).
constexpr int kMaxSyncAttempts = 4;

/// Per-report DecodeOutcome tallies into the telemetry counters — one call
/// per group code, so the counters mirror RxReport::outcome_count exactly.
void count_outcomes(const RxReport& report) {
  using telemetry::Counter;
  for (const auto& r : report.results) {
    switch (r.outcome) {
      case DecodeOutcome::kOk: telemetry::count(Counter::kRxOutcomeOk); break;
      case DecodeOutcome::kNoFrameSync:
        telemetry::count(Counter::kRxOutcomeNoFrameSync);
        break;
      case DecodeOutcome::kNotDetected:
        telemetry::count(Counter::kRxOutcomeNotDetected);
        break;
      case DecodeOutcome::kTruncated:
        telemetry::count(Counter::kRxOutcomeTruncated);
        break;
      case DecodeOutcome::kBadCrc:
        telemetry::count(Counter::kRxOutcomeBadCrc);
        break;
      case DecodeOutcome::kIdMismatch:
        telemetry::count(Counter::kRxOutcomeIdMismatch);
        break;
    }
  }
}

}  // namespace

StreamingReceiver::StreamingReceiver(const Receiver& receiver, ReportSink sink)
    : receiver_(&receiver), sink_(std::move(sink)), sync_stream_(receiver.sync_) {
  const auto& cfg = receiver.config();
  const std::size_t spc = cfg.samples_per_chip;
  const auto spcd = static_cast<double>(spc);
  const auto back =
      static_cast<std::size_t>(cfg.detect.search_back_chips * spcd);
  const auto ahead =
      static_cast<std::size_t>(cfg.detect.search_ahead_chips * spcd);
  const auto group_span =
      static_cast<std::size_t>(cfg.detect.group_window_chips * spcd);

  std::size_t max_code_len = 0;
  for (std::size_t i = 0; i < receiver.group_size(); ++i) {
    max_code_len = std::max(max_code_len, receiver.code(i).length());
  }
  const std::size_t spb = max_code_len * spc;  // samples per bit

  // How far a detection window must extend past its trigger: the latest
  // anchor offset the detector can return (trigger + ahead), plus the
  // longer of the preamble template and the longest frame the decoder will
  // chase (preamble + length byte + max_payload_bytes-bounded body + CRC).
  const std::size_t frame_bits =
      cfg.preamble_bits + 8 + 8 * (cfg.max_payload_bytes + 3);
  const std::size_t tmpl_samples = cfg.preamble_bits * spb;
  need_ahead_ = ahead + 1 + std::max(tmpl_samples, frame_bits * spb) + spc;

  // How far the window reaches back before the trigger: the detector's own
  // back-search, plus the group-window dip below the anchor and the SIC
  // refold margin — so every read the batch pipeline performed on a
  // from-zero buffer lands inside the copied window (offsets translate 1:1
  // and the results stay bit-identical).
  back_margin_ = back + group_span + spc;
  keep_behind_ = back_margin_ + 64;

  start_segment(0);
}

void StreamingReceiver::start_segment(std::uint64_t rearm_pos) {
  report_ = RxReport{};
  report_.results.resize(receiver_->group_size());
  for (std::size_t i = 0; i < report_.results.size(); ++i) {
    report_.results[i].tag_index = i;
  }
  attempt_ = 0;
  collecting_ = false;
  sync_stream_.rearm(rearm_pos);
}

void StreamingReceiver::reset() {
  ring_re_.clear();
  ring_im_.clear();
  sync_stream_.reset();
  pos_ = 0;
  pending_.clear();
  reports_since_mark_ = 0;
  start_segment(0);
}

void StreamingReceiver::feed(std::span<const std::complex<double>> iq) {
  const telemetry::ScopedSpan span_rx(telemetry::Span::kRxProcess);
  {
    // Frame synchronization consumes the energy envelope (§III-B); the
    // sample rings retain the coherent window for detection and decoding.
    const telemetry::ScopedSpan span_sync(telemetry::Span::kRxFrameSync);
    for (const auto& v : iq) {
      const double re = v.real();
      const double im = v.imag();
      ring_re_.push(re);
      ring_im_.push(im);
      sync_stream_.push(std::sqrt(re * re + im * im));
      ++pos_;
    }
  }
  advance(false);
  release_rings();
}

void StreamingReceiver::flush() {
  const telemetry::ScopedSpan span_rx(telemetry::Span::kRxProcess);
  advance(true);
  // Emit the in-flight segment if it saw a trigger; otherwise emit the
  // all-kNoFrameSync report only when this fed stretch produced nothing —
  // the batch contract that every processed window yields one report.
  if (report_.frame_start.has_value() || reports_since_mark_ == 0) {
    emit_segment(pos_);
  } else {
    start_segment(pos_);
  }
  reports_since_mark_ = 0;
  release_rings();
}

void StreamingReceiver::advance(bool end_of_stream) {
  while (true) {
    if (!collecting_) {
      const auto trigger = [&] {
        const telemetry::ScopedSpan span_sync(telemetry::Span::kRxFrameSync);
        return sync_stream_.scan();
      }();
      if (!trigger) return;
      telemetry::count(telemetry::Counter::kRxSyncAttempts);
      if (!report_.frame_start) {
        report_.frame_start = static_cast<std::size_t>(*trigger);
      }
      trigger_ = *trigger;
      collecting_ = true;
    }
    // The window finalizes when its lookahead is complete — or at end of
    // stream, where the batch pipeline also ran on whatever it had.
    if (pos_ < trigger_ + need_ahead_ && !end_of_stream) return;
    run_attempt();
  }
}

void StreamingReceiver::run_attempt() {
  collecting_ = false;
  const std::uint64_t win_begin =
      trigger_ > back_margin_ ? trigger_ - back_margin_ : 0;
  const std::uint64_t win_end =
      std::min<std::uint64_t>(pos_, trigger_ + need_ahead_);
  ring_re_.copy_out(win_begin, win_end, win_re_);
  ring_im_.copy_out(win_begin, win_end, win_im_);
  const std::span<const double> re = win_re_;
  const std::span<const double> im = win_im_;
  const auto coarse = static_cast<std::size_t>(trigger_ - win_begin);

  // Signal-probe captures (strict no-ops when probing is off): the energy
  // envelope of this attempt's window, plus the window RMS every
  // link-quality power_norm is anchored on. The metrics plane also wants
  // link quality, but without the envelope tap — its RMS is computed
  // lazily below, only for windows that actually produce detections, so
  // the metrics-on hot path stays within its overhead budget.
  const bool probing = probe::enabled();
  const bool want_quality = probing || metrics::enabled();
  double window_rms = 0.0;
  bool rms_ready = false;
  if (probing) {
    win_mag_.resize(win_re_.size());
    double sum2 = 0.0;
    for (std::size_t i = 0; i < win_mag_.size(); ++i) {
      win_mag_[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
      sum2 += win_mag_[i] * win_mag_[i];
    }
    probe::record_tap(probe::Tap::kSyncEnergy, 0, win_mag_);
    window_rms = win_mag_.empty()
                     ? 0.0
                     : std::sqrt(sum2 / static_cast<double>(win_mag_.size()));
    rms_ready = true;
  }

  const auto detections = [&] {
    const telemetry::ScopedSpan span_detect(telemetry::Span::kRxDetect);
    return receiver_->detector_.detect(DetectionInput{re, im, coarse},
                                       detect_scratch_);
  }();
  telemetry::count(telemetry::Counter::kRxDetections, detections.size());

  RxReport candidate;
  candidate.frame_start = static_cast<std::size_t>(trigger_);
  candidate.results.resize(receiver_->group_size());
  if (want_quality) candidate.link_quality.resize(receiver_->group_size());
  for (std::size_t i = 0; i < candidate.results.size(); ++i) {
    candidate.results[i].tag_index = i;
    // Sync fired for this candidate; codes the detector skips below stay
    // at "not detected".
    candidate.results[i].outcome = DecodeOutcome::kNotDetected;
  }

  for (const auto& d : detections) {
    auto& r = candidate.results[d.tag_index];
    r.detected = true;
    r.correlation = d.correlation;
    r.correlation_margin = d.correlation - d.runner_up;
    // Detector offsets are window-relative; reports carry absolute stream
    // positions.
    r.offset_samples = static_cast<std::size_t>(win_begin) + d.offset_samples;

    const auto decoded = [&] {
      const telemetry::ScopedSpan span_decode(telemetry::Span::kRxDecode);
      return receiver_->decoders_[d.tag_index].decode(re, im, d.offset_samples,
                                                      d.phase);
    }();
    if (probing) {
      probe::record_tap(probe::Tap::kSoftBits,
                        static_cast<std::uint32_t>(d.tag_index), decoded.soft);
    }
    if (want_quality) {
      if (!rms_ready) {
        // Metrics-only path: one allocation-free |window|² pass, deferred
        // to the first detection of the attempt.
        double sum2 = 0.0;
        for (std::size_t i = 0; i < re.size(); ++i) {
          sum2 += re[i] * re[i] + im[i] * im[i];
        }
        window_rms = re.empty()
                         ? 0.0
                         : std::sqrt(sum2 / static_cast<double>(re.size()));
        rms_ready = true;
      }
      candidate.link_quality[d.tag_index] = compute_link_quality(
          decoded.soft, d.correlation, d.runner_up, window_rms);
    }
    // The frame's identity must match the code that decoded it: a wrong
    // code at a lucky lag reproduces another tag's bits sign-consistently
    // (CRC included), so the in-frame tag id is the discriminator.
    if (decoded.crc_ok &&
        decoded.frame->tag_id == static_cast<std::uint8_t>(d.tag_index)) {
      r.crc_ok = true;
      r.outcome = DecodeOutcome::kOk;
      r.payload = decoded.frame->payload;
      candidate.ack.decoded_tags.push_back(d.tag_index);
    } else if (decoded.truncated) {
      r.outcome = DecodeOutcome::kTruncated;
    } else if (decoded.crc_ok) {
      r.outcome = DecodeOutcome::kIdMismatch;
    } else {
      r.outcome = DecodeOutcome::kBadCrc;
    }
  }

  if (candidate.decoded_count() > report_.decoded_count() ||
      (attempt_ == 0 && !detections.empty())) {
    report_ = std::move(candidate);
  }
  ++attempt_;
  const std::size_t sync_window = receiver_->config().sync.window;
  if (report_.decoded_count() > 0) {
    // Success: emit and resume scanning past the consumed window.
    emit_segment(win_end);
  } else if (attempt_ >= kMaxSyncAttempts) {
    // Walk exhausted: emit the best failed attempt and keep listening —
    // a fresh segment continues where the walk would have re-armed.
    emit_segment(trigger_ + sync_window);
  } else {
    // Failed attempt: skip ahead past this trigger before re-arming.
    sync_stream_.rearm(trigger_ + sync_window);
  }
}

void StreamingReceiver::emit_segment(std::uint64_t rearm_pos) {
  if (telemetry::enabled()) count_outcomes(report_);
  // Record the *winning* candidate's link quality (rows therefore always
  // match the report the caller sees, which probe_inspect.py cross-checks).
  if (probe::enabled() && !report_.link_quality.empty()) {
    for (std::size_t i = 0; i < report_.results.size(); ++i) {
      const auto& r = report_.results[i];
      if (!r.detected) continue;
      const auto& q = report_.link_quality[i];
      probe::LinkQualitySample sample;
      sample.tag = static_cast<std::uint32_t>(i);
      sample.detected = true;
      sample.decoded = r.crc_ok;
      sample.snr_db = q.snr_db;
      sample.evm = q.evm;
      sample.soft_margin = q.soft_margin;
      sample.margin_ratio = q.margin_ratio;
      sample.power_norm = q.power_norm;
      sample.correlation = q.correlation;
      probe::record_link_quality(sample);
    }
  }
  ++reports_emitted_;
  ++reports_since_mark_;
  if (sink_) {
    sink_(std::move(report_));
  } else {
    pending_.push_back(std::move(report_));
  }
  start_segment(rearm_pos);
}

void StreamingReceiver::release_rings() {
  const std::uint64_t anchor = collecting_ ? trigger_ : sync_stream_.cursor();
  const std::uint64_t floor =
      anchor > keep_behind_ ? anchor - keep_behind_ : 0;
  ring_re_.release(floor);
  ring_im_.release(floor);
}

RxReport StreamingReceiver::process(std::span<const std::complex<double>> iq,
                                    std::size_t chunk_samples) {
  reset();
  // Queue internally even when a sink is installed: the batch entry returns
  // its report instead of publishing it.
  ReportSink saved = std::move(sink_);
  sink_ = nullptr;
  if (chunk_samples == 0) {
    feed(iq);
  } else {
    for (std::size_t off = 0; off < iq.size(); off += chunk_samples) {
      feed(iq.subspan(off, std::min(chunk_samples, iq.size() - off)));
    }
  }
  flush();
  CBMA_ASSERT(!pending_.empty());  // flush emits at least one report
  RxReport out = std::move(pending_.front());
  pending_.clear();
  sink_ = std::move(saved);
  return out;
}

bool StreamingReceiver::take_report(RxReport& out) {
  if (pending_.empty()) return false;
  out = std::move(pending_.front());
  pending_.erase(pending_.begin());
  return true;
}

std::size_t StreamingReceiver::ring_bytes() const {
  return ring_re_.bytes() + ring_im_.bytes() + sync_stream_.bytes();
}

std::size_t StreamingReceiver::resident_bytes() const {
  return ring_bytes() + (win_re_.capacity() + win_im_.capacity() +
                         win_mag_.capacity()) *
                            sizeof(double);
}

}  // namespace cbma::rx
