#include "rx/receiver.h"

#include <algorithm>
#include <string>

#include "phy/frame.h"
#include "rx/streaming_receiver.h"
#include "util/expect.h"

namespace cbma::rx {

const char* to_string(DecodeOutcome outcome) {
  switch (outcome) {
    case DecodeOutcome::kOk: return "ok";
    case DecodeOutcome::kNoFrameSync: return "no-frame-sync";
    case DecodeOutcome::kNotDetected: return "not-detected";
    case DecodeOutcome::kTruncated: return "truncated";
    case DecodeOutcome::kBadCrc: return "bad-crc";
    case DecodeOutcome::kIdMismatch: return "id-mismatch";
  }
  return "unknown";
}

bool AckMessage::contains(std::size_t tag_index) const {
  return std::find(decoded_tags.begin(), decoded_tags.end(), tag_index) !=
         decoded_tags.end();
}

const TagDecodeResult& RxReport::for_tag(std::size_t tag_index) const {
  CBMA_REQUIRE(tag_index < results.size(),
               "tag index " + std::to_string(tag_index) +
                   " outside report covering " + std::to_string(results.size()) +
                   " group codes");
  return results[tag_index];
}

std::size_t RxReport::outcome_count(DecodeOutcome outcome) const {
  std::size_t n = 0;
  for (const auto& r : results) n += r.outcome == outcome ? 1 : 0;
  return n;
}

Receiver::Receiver(ReceiverConfig config, std::vector<pn::PnCode> group_codes)
    : config_(config),
      codes_(std::move(group_codes)),
      sync_(config.sync),
      detector_(config.detect, codes_, config.preamble_bits, config.samples_per_chip) {
  CBMA_REQUIRE(!codes_.empty(), "receiver needs a tag group");
  CBMA_REQUIRE(config_.max_payload_bytes >= 1 &&
                   config_.max_payload_bytes <= phy::kMaxPayloadBytes,
               "max_payload_bytes outside the frame format's [1, 126]");
  decoders_.reserve(codes_.size());
  for (const auto& c : codes_) {
    decoders_.emplace_back(c, config_.preamble_bits, config_.samples_per_chip,
                           config_.phase_tracking_gain);
  }
}

const pn::PnCode& Receiver::code(std::size_t i) const {
  CBMA_REQUIRE(i < codes_.size(), "code index out of group");
  return codes_[i];
}

RxReport Receiver::process_iq(std::span<const std::complex<double>> iq) const {
  // One whole-buffer feed through the streaming core (DESIGN.md §10). The
  // pipeline itself — envelope sync walk, detection, decoding, telemetry
  // and probe taps — lives in StreamingReceiver; chunk invariance makes
  // this wrapper behaviorally identical to any chunked replay.
  StreamingReceiver session(*this);
  return session.process(iq);
}

}  // namespace cbma::rx
