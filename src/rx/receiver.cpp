#include "rx/receiver.h"

#include <algorithm>
#include <cmath>

#include "pn/correlation.h"
#include "util/expect.h"
#include "util/probe.h"
#include "util/telemetry.h"

namespace cbma::rx {

const char* to_string(DecodeOutcome outcome) {
  switch (outcome) {
    case DecodeOutcome::kOk: return "ok";
    case DecodeOutcome::kNoFrameSync: return "no-frame-sync";
    case DecodeOutcome::kNotDetected: return "not-detected";
    case DecodeOutcome::kTruncated: return "truncated";
    case DecodeOutcome::kBadCrc: return "bad-crc";
    case DecodeOutcome::kIdMismatch: return "id-mismatch";
  }
  return "unknown";
}

bool AckMessage::contains(std::size_t tag_index) const {
  return std::find(decoded_tags.begin(), decoded_tags.end(), tag_index) !=
         decoded_tags.end();
}

const TagDecodeResult& RxReport::for_tag(std::size_t tag_index) const {
  CBMA_REQUIRE(tag_index < results.size(), "tag index out of report");
  return results[tag_index];
}

std::size_t RxReport::outcome_count(DecodeOutcome outcome) const {
  std::size_t n = 0;
  for (const auto& r : results) n += r.outcome == outcome ? 1 : 0;
  return n;
}

Receiver::Receiver(ReceiverConfig config, std::vector<pn::PnCode> group_codes)
    : config_(config),
      codes_(std::move(group_codes)),
      sync_(config.sync),
      detector_(config.detect, codes_, config.preamble_bits, config.samples_per_chip) {
  CBMA_REQUIRE(!codes_.empty(), "receiver needs a tag group");
  decoders_.reserve(codes_.size());
  for (const auto& c : codes_) {
    decoders_.emplace_back(c, config_.preamble_bits, config_.samples_per_chip,
                           config_.phase_tracking_gain);
  }
}

const pn::PnCode& Receiver::code(std::size_t i) const {
  CBMA_REQUIRE(i < codes_.size(), "code index out of group");
  return codes_[i];
}

RxReport Receiver::process_iq(std::span<const std::complex<double>> iq) const {
  RxScratch scratch;
  return process_iq(iq, scratch);
}

namespace {

/// Per-round DecodeOutcome tallies into the telemetry counters — one call
/// per group code, so the counters mirror RxReport::outcome_count exactly.
void count_outcomes(const RxReport& report) {
  using telemetry::Counter;
  for (const auto& r : report.results) {
    switch (r.outcome) {
      case DecodeOutcome::kOk: telemetry::count(Counter::kRxOutcomeOk); break;
      case DecodeOutcome::kNoFrameSync:
        telemetry::count(Counter::kRxOutcomeNoFrameSync);
        break;
      case DecodeOutcome::kNotDetected:
        telemetry::count(Counter::kRxOutcomeNotDetected);
        break;
      case DecodeOutcome::kTruncated:
        telemetry::count(Counter::kRxOutcomeTruncated);
        break;
      case DecodeOutcome::kBadCrc:
        telemetry::count(Counter::kRxOutcomeBadCrc);
        break;
      case DecodeOutcome::kIdMismatch:
        telemetry::count(Counter::kRxOutcomeIdMismatch);
        break;
    }
  }
}

}  // namespace

RxReport Receiver::process_iq(std::span<const std::complex<double>> iq,
                              RxScratch& scratch) const {
  const telemetry::ScopedSpan span_rx(telemetry::Span::kRxProcess);
  RxReport report;
  report.results.resize(codes_.size());
  for (std::size_t i = 0; i < codes_.size(); ++i) report.results[i].tag_index = i;

  // Deinterleave the window once; every downstream stage (magnitude,
  // detection, cancellation, decoding) works on the split arrays.
  pn::split_iq(iq, scratch.re, scratch.im);
  const std::span<const double> re = scratch.re;
  const std::span<const double> im = scratch.im;

  // Frame synchronization operates on the energy envelope (§III-B).
  scratch.magnitude.resize(iq.size());
  std::span<double> magnitude = scratch.magnitude;
  {
    const telemetry::ScopedSpan span_sync(telemetry::Span::kRxFrameSync);
    for (std::size_t i = 0; i < iq.size(); ++i) {
      magnitude[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
    }
  }

  // Signal-probe captures (strict no-ops when probing is off): the energy
  // trace frame sync runs on, plus the window RMS every link-quality
  // power_norm is anchored on.
  const bool probing = probe::enabled();
  double window_rms = 0.0;
  if (probing) {
    probe::record_tap(probe::Tap::kSyncEnergy, 0, magnitude);
    double sum2 = 0.0;
    for (const double m : magnitude) sum2 += m * m;
    window_rms = magnitude.empty()
                     ? 0.0
                     : std::sqrt(sum2 / static_cast<double>(magnitude.size()));
  }

  // A noise spike can fire the energy comparator ahead of the true frame
  // and a partially-overlapping search window then locks onto a sidelobe;
  // real receivers keep listening after a CRC failure. Walk successive sync
  // triggers, decode each candidate, and keep the attempt that validated
  // the most frames (bounded, so an empty window stays cheap).
  constexpr int kMaxSyncAttempts = 4;
  std::size_t begin = 0;
  for (int attempt = 0; attempt < kMaxSyncAttempts; ++attempt) {
    const auto trigger = [&] {
      const telemetry::ScopedSpan span_sync(telemetry::Span::kRxFrameSync);
      return sync_.detect(magnitude, begin);
    }();
    if (!trigger) break;
    telemetry::count(telemetry::Counter::kRxSyncAttempts);
    if (!report.frame_start) report.frame_start = trigger;

    const auto detections = [&] {
      const telemetry::ScopedSpan span_detect(telemetry::Span::kRxDetect);
      return detector_.detect(DetectionInput{re, im, *trigger}, scratch.detect);
    }();
    telemetry::count(telemetry::Counter::kRxDetections, detections.size());
    RxReport candidate;
    candidate.frame_start = trigger;
    candidate.results.resize(codes_.size());
    if (probing) candidate.link_quality.resize(codes_.size());
    for (std::size_t i = 0; i < codes_.size(); ++i) {
      candidate.results[i].tag_index = i;
      // Sync fired for this candidate; codes the detector skips below stay
      // at "not detected".
      candidate.results[i].outcome = DecodeOutcome::kNotDetected;
    }

    for (const auto& d : detections) {
      auto& r = candidate.results[d.tag_index];
      r.detected = true;
      r.correlation = d.correlation;
      r.correlation_margin = d.correlation - d.runner_up;
      r.offset_samples = d.offset_samples;

      const auto decoded = [&] {
        const telemetry::ScopedSpan span_decode(telemetry::Span::kRxDecode);
        return decoders_[d.tag_index].decode(re, im, d.offset_samples, d.phase);
      }();
      if (probing) {
        probe::record_tap(probe::Tap::kSoftBits,
                          static_cast<std::uint32_t>(d.tag_index), decoded.soft);
        candidate.link_quality[d.tag_index] = compute_link_quality(
            decoded.soft, d.correlation, d.runner_up, window_rms);
      }
      // The frame's identity must match the code that decoded it: a wrong
      // code at a lucky lag reproduces another tag's bits sign-consistently
      // (CRC included), so the in-frame tag id is the discriminator.
      if (decoded.crc_ok &&
          decoded.frame->tag_id == static_cast<std::uint8_t>(d.tag_index)) {
        r.crc_ok = true;
        r.outcome = DecodeOutcome::kOk;
        r.payload = decoded.frame->payload;
        candidate.ack.decoded_tags.push_back(d.tag_index);
      } else if (decoded.truncated) {
        r.outcome = DecodeOutcome::kTruncated;
      } else if (decoded.crc_ok) {
        r.outcome = DecodeOutcome::kIdMismatch;
      } else {
        r.outcome = DecodeOutcome::kBadCrc;
      }
    }

    if (candidate.decoded_count() > report.decoded_count() ||
        (attempt == 0 && !detections.empty())) {
      report = std::move(candidate);
    }
    if (report.decoded_count() > 0) break;
    // Skip ahead past this trigger before re-arming.
    begin = *trigger + config_.sync.window;
  }
  if (telemetry::enabled()) count_outcomes(report);
  // Record the *winning* candidate's link quality (rows therefore always
  // match the report the caller sees, which probe_inspect.py cross-checks).
  if (probing && !report.link_quality.empty()) {
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const auto& r = report.results[i];
      if (!r.detected) continue;
      const auto& q = report.link_quality[i];
      probe::LinkQualitySample sample;
      sample.tag = static_cast<std::uint32_t>(i);
      sample.detected = true;
      sample.decoded = r.crc_ok;
      sample.snr_db = q.snr_db;
      sample.evm = q.evm;
      sample.soft_margin = q.soft_margin;
      sample.margin_ratio = q.margin_ratio;
      sample.power_norm = q.power_norm;
      sample.correlation = q.correlation;
      probe::record_link_quality(sample);
    }
  }
  return report;
}

}  // namespace cbma::rx
