// Frame synchronization by energy detection (§III-B):
// a moving-average filter of window W_n tracks the baseline power level;
// a new frame is declared when the instantaneous power level (short head
// average) exceeds the filtered baseline by the decision threshold
// P_th = 3 dB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/ring_buffer.h"

namespace cbma::rx {

struct FrameSyncConfig {
  std::size_t window = 128;       ///< W_n, baseline moving-average window (samples)
  double threshold_db = 3.0;      ///< P_th above the filtered level
  /// Samples averaged for the "current" level. Two consecutive windows of
  /// this size must BOTH clear the threshold, so an isolated noise spike
  /// (which can only dominate one of them) cannot fire the comparator.
  std::size_t head_average = 16;
  double min_baseline = 1e-30;    ///< numeric floor for silent channels
};

class FrameSynchronizer {
 public:
  explicit FrameSynchronizer(FrameSyncConfig config);

  const FrameSyncConfig& config() const { return config_; }

  /// First sample index at or after `begin` where the energy comparator
  /// fires, or nullopt. `magnitude` is P(t) = √(I²+Q²).
  std::optional<std::size_t> detect(std::span<const double> magnitude,
                                    std::size_t begin = 0) const;

  /// All trigger points, suppressing re-triggers within `refractory`
  /// samples of a previous detection (one detection per frame).
  std::vector<std::size_t> detect_all(std::span<const double> magnitude,
                                      std::size_t refractory) const;

  /// Incremental spelling of detect() for the streaming receiver
  /// (DESIGN.md §10). push() extends the same power prefix sums detect()
  /// builds — the identical sequence of additions, so the stored values are
  /// bit-for-bit the batch prefix array — and scan() advances the comparator
  /// over every position whose baseline and both head windows are complete,
  /// parking the cursor on a trigger until rearm() moves it (the streaming
  /// counterpart of calling detect(magnitude, begin) with a later begin).
  /// Fed the same envelope, scan() fires at exactly the positions detect()
  /// returns, regardless of how the pushes were chunked.
  class Stream {
   public:
    explicit Stream(const FrameSynchronizer& sync);

    /// Consume one envelope sample P(t) = √(I²+Q²).
    void push(double magnitude);
    /// Advance the comparator; returns the trigger position if it fired
    /// before running out of lookahead (2×head_average samples past the
    /// cursor). The cursor stays on the trigger until rearm().
    std::optional<std::uint64_t> scan();
    /// Restart the walk at `begin` (absolute stream position): the next
    /// trigger is the first s >= begin + window where the comparator fires.
    void rearm(std::uint64_t begin);
    /// Samples pushed so far (absolute stream position of the next sample).
    std::uint64_t position() const { return pushed_; }
    /// The comparator cursor — nothing before cursor − window is ever read
    /// again, which bounds what callers must retain.
    std::uint64_t cursor() const { return cursor_; }
    /// Back to position 0 with an empty prefix (capacity is kept).
    void reset();
    std::size_t bytes() const { return prefix_.bytes(); }

   private:
    const FrameSynchronizer* sync_;
    util::RingBuffer<double> prefix_;  ///< P(i) = Σ_{j<i} m_j² at absolute i
    double acc_ = 0.0;                 ///< running P(position())
    double ratio_ = 0.0;               ///< linear threshold, from_db(P_th)
    std::uint64_t pushed_ = 0;
    std::uint64_t cursor_ = 0;
  };

 private:
  FrameSyncConfig config_;
};

}  // namespace cbma::rx
