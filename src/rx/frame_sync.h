// Frame synchronization by energy detection (§III-B):
// a moving-average filter of window W_n tracks the baseline power level;
// a new frame is declared when the instantaneous power level (short head
// average) exceeds the filtered baseline by the decision threshold
// P_th = 3 dB.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace cbma::rx {

struct FrameSyncConfig {
  std::size_t window = 128;       ///< W_n, baseline moving-average window (samples)
  double threshold_db = 3.0;      ///< P_th above the filtered level
  /// Samples averaged for the "current" level. Two consecutive windows of
  /// this size must BOTH clear the threshold, so an isolated noise spike
  /// (which can only dominate one of them) cannot fire the comparator.
  std::size_t head_average = 16;
  double min_baseline = 1e-30;    ///< numeric floor for silent channels
};

class FrameSynchronizer {
 public:
  explicit FrameSynchronizer(FrameSyncConfig config);

  const FrameSyncConfig& config() const { return config_; }

  /// First sample index at or after `begin` where the energy comparator
  /// fires, or nullopt. `magnitude` is P(t) = √(I²+Q²).
  std::optional<std::size_t> detect(std::span<const double> magnitude,
                                    std::size_t begin = 0) const;

  /// All trigger points, suppressing re-triggers within `refractory`
  /// samples of a previous detection (one detection per frame).
  std::vector<std::size_t> detect_all(std::span<const double> magnitude,
                                      std::size_t refractory) const;

 private:
  FrameSyncConfig config_;
};

}  // namespace cbma::rx
