// Per-tag link-quality estimation (signal-probe subsystem, DESIGN.md §8):
// the receiver already computes everything the paper's evaluation reasons
// about — correlation peaks, soft decision values, window power — and then
// discards it. When probing is enabled, compute_link_quality condenses
// those into one report per detected tag: the numbers that explain *why* a
// frame lived or died, not just that it did.
#pragma once

#include <cstddef>
#include <span>

namespace cbma::rx {

/// Signal-domain health of one tag's frame in one receive window. Valid
/// only when `valid` is set (the tag was detected and decoding produced
/// soft values); every field is derived deterministically from the window —
/// no RNG, no clock.
struct LinkQualityReport {
  bool valid = false;
  /// Post-despreading SNR estimate from the soft decision statistics:
  /// 10·log10(mean²/var) over |soft| — the M2M4-style moment estimator.
  double snr_db = 0.0;
  /// Error-vector magnitude over the decoded bits: RMS deviation of
  /// |soft|/mean(|soft|) from the unit decision point (0 = noiseless).
  double evm = 0.0;
  /// Weakest bit relative to the average: min|soft| / mean|soft| in [0,1].
  /// A healthy frame sits near 1; a value near 0 names the bit that almost
  /// flipped.
  double soft_margin = 0.0;
  /// Detection-peak separation: peak correlation / runner-up code's peak
  /// (capped; large when no other code came close).
  double margin_ratio = 0.0;
  /// Mean despread amplitude normalized by the window RMS — the tag's
  /// backscatter strength relative to everything else on the air.
  double power_norm = 0.0;
  /// The detection correlation peak the ratios are anchored on.
  double correlation = 0.0;

  bool operator==(const LinkQualityReport&) const = default;
};

/// Cap applied to margin_ratio when the runner-up correlation is ~0.
inline constexpr double kMaxMarginRatio = 1e6;

/// Build a report from one decoded frame's soft values plus the detector's
/// peak/runner-up correlations and the receive window's RMS amplitude.
/// Returns an invalid report when `soft` is empty.
LinkQualityReport compute_link_quality(std::span<const double> soft,
                                       double correlation, double runner_up,
                                       double window_rms);

/// Running aggregate of LinkQualityReports — how the metrics plane rolls
/// per-tag quality up into per-cell series (core::RoundStats carries one;
/// net::Network scopes it per cell). Plain sums so merge() is exact and
/// deterministic; means report 0 over zero frames.
struct LinkQualityRollup {
  std::size_t frames = 0;  ///< valid reports accumulated
  double snr_db_sum = 0.0;
  double evm_sum = 0.0;
  double soft_margin_sum = 0.0;
  double margin_ratio_sum = 0.0;
  double power_norm_sum = 0.0;
  double correlation_sum = 0.0;

  void add(const LinkQualityReport& report);
  void merge(const LinkQualityRollup& other);

  double snr_db_mean() const;
  double evm_mean() const;
  double soft_margin_mean() const;
  double margin_ratio_mean() const;
  double power_norm_mean() const;
  double correlation_mean() const;
};

}  // namespace cbma::rx
