// The complete CBMA receiver pipeline (§III-B): energy-envelope frame
// synchronization → complex-correlation user detection → coherent per-user
// decoding → acknowledgement. One Receiver instance serves a tag group; it
// holds the group's PN codes and precomputed templates.
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pn/code.h"
#include "rx/decoder.h"
#include "rx/frame_sync.h"
#include "rx/link_quality.h"
#include "rx/user_detect.h"

namespace cbma::rx {

struct ReceiverConfig {
  FrameSyncConfig sync;
  UserDetectConfig detect;
  std::size_t samples_per_chip = 4;
  std::size_t preamble_bits = 8;
  double phase_tracking_gain = 0.25;  ///< decoder's decision-directed loop gain
  /// Longest payload the decoder will chase before a streaming session
  /// finalizes a detection window. The default (the frame-format limit)
  /// preserves exact batch semantics; a continuous-stream deployment that
  /// knows its payload sizes tightens it to shrink the per-trigger
  /// lookahead — and with it latency and ring memory (DESIGN.md §10).
  std::size_t max_payload_bytes = phy::kMaxPayloadBytes;
};

/// Why a tag's frame did or did not come through this round. The receiver
/// never throws on degraded input — every failure mode is reported here, in
/// pipeline order (the first stage that gave up).
enum class DecodeOutcome {
  kOk = 0,       ///< frame decoded, CRC and in-frame id verified
  kNoFrameSync,  ///< the energy comparator never fired on this window
  kNotDetected,  ///< frame sync fired but this code's correlation stayed low
  kTruncated,    ///< decoding ran off the window / impossible length byte
  kBadCrc,       ///< full frame decoded but CRC (or framing) failed
  kIdMismatch,   ///< CRC passed but the in-frame id names another tag's code
};

/// Stable diagnostic label ("ok", "no-frame-sync", ...).
const char* to_string(DecodeOutcome outcome);

struct TagDecodeResult {
  std::size_t tag_index = 0;
  bool detected = false;         ///< user detection fired for this code
  bool crc_ok = false;           ///< frame decoded, CRC and in-frame id verified
  DecodeOutcome outcome = DecodeOutcome::kNoFrameSync;  ///< failure reason
  double correlation = 0.0;      ///< preamble correlation peak
  /// Peak minus the runner-up code's peak in the same detection round —
  /// how decisively this code won. 0 when not detected (or unopposed).
  double correlation_margin = 0.0;
  std::size_t offset_samples = 0;
  std::vector<std::uint8_t> payload;  ///< valid only when crc_ok

  bool operator==(const TagDecodeResult&) const = default;
};

/// The acknowledgement the receiver broadcasts: IDs (group indices) of the
/// tags whose frames decoded successfully (§III-B "Acknowledgement").
struct AckMessage {
  std::vector<std::size_t> decoded_tags;

  bool contains(std::size_t tag_index) const;
  bool operator==(const AckMessage&) const = default;
};

struct RxReport {
  std::optional<std::size_t> frame_start;  ///< frame-sync trigger, if any
  std::vector<TagDecodeResult> results;    ///< one entry per group code
  AckMessage ack;
  /// Per-code link-quality reports (same indexing as `results`), populated
  /// only while signal probing or the metrics plane is enabled — empty
  /// otherwise, so the observability-off hot path performs zero extra
  /// allocations (DESIGN.md §8, §12).
  std::vector<LinkQualityReport> link_quality;

  /// Result for one group code; throws std::invalid_argument naming the
  /// offending index when `tag_index` is outside the report.
  const TagDecodeResult& for_tag(std::size_t tag_index) const;
  std::size_t decoded_count() const { return ack.decoded_tags.size(); }
  /// How many of this round's codes ended in the given outcome — the
  /// per-frame failure accounting the robustness benches aggregate.
  std::size_t outcome_count(DecodeOutcome outcome) const;

  /// Field-wise equality — what the batch-vs-streaming equivalence suite
  /// means by "byte-identical reports" (doubles compare exactly).
  bool operator==(const RxReport&) const = default;
};

class StreamingReceiver;

class Receiver {
 public:
  Receiver(ReceiverConfig config, std::vector<pn::PnCode> group_codes);

  const ReceiverConfig& config() const { return config_; }
  std::size_t group_size() const { return codes_.size(); }
  const pn::PnCode& code(std::size_t i) const;

  /// Full pipeline on a complex-baseband window. Frame sync runs on the
  /// magnitude envelope P(t) = √(I²+Q²) (the paper's §V-B quantity);
  /// detection and decoding are coherent. This is the batch entry: it feeds
  /// the whole window through a streaming session (DESIGN.md §10), so a
  /// chunked replay of the same window is byte-identical. Callers that
  /// process many windows should hold a rx::StreamingReceiver instead —
  /// the session keeps its rings and scratch warm across rounds.
  RxReport process_iq(std::span<const std::complex<double>> iq) const;

 private:
  friend class StreamingReceiver;  ///< the session drives the stages directly

  ReceiverConfig config_;
  std::vector<pn::PnCode> codes_;
  FrameSynchronizer sync_;
  UserDetector detector_;
  std::vector<Decoder> decoders_;
};

}  // namespace cbma::rx
