#include "rx/correlation_engine.h"

#include <algorithm>
#include <cmath>

#include "pn/simd.h"
#include "util/expect.h"
#include "util/telemetry.h"

namespace cbma::rx {

const char* to_string(DetectEngine engine) {
  switch (engine) {
    case DetectEngine::kNaive: return "naive";
    case DetectEngine::kFft: return "fft";
    case DetectEngine::kAuto: return "auto";
  }
  return "unknown";
}

namespace {

/// The reference engine: pn::sliding_complex_peak_folded per code, exactly
/// the kernel UserDetector ran before engines existed — bit-for-bit.
class NaiveEngine final : public CorrelationEngine {
 public:
  NaiveEngine(std::span<const std::vector<double>> chip_templates,
              std::size_t samples_per_chip)
      : templates_(chip_templates.begin(), chip_templates.end()),
        spc_(samples_per_chip) {}

  DetectEngine kind() const override { return DetectEngine::kNaive; }

  DetectEngine resolve(std::size_t, std::size_t) const override {
    return DetectEngine::kNaive;
  }

  std::unique_ptr<Scratch> make_scratch() const override {
    return std::make_unique<Scratch>();
  }

  void peaks(const CorrelationWindow& window,
             std::span<const std::size_t> code_indices,
             std::size_t search_begin, std::size_t search_end,
             std::span<pn::ComplexCorrelationPeak> out,
             Scratch& /*scratch*/) const override {
    CBMA_REQUIRE(out.size() == code_indices.size(),
                 "one output slot per requested code");
    telemetry::count(telemetry::Counter::kRxDetectNaiveBatches);
    for (std::size_t k = 0; k < code_indices.size(); ++k) {
      const std::size_t c = code_indices[k];
      CBMA_REQUIRE(c < templates_.size(), "code index out of family");
      out[k] = pn::sliding_complex_peak_folded(
          window.re, window.im, window.fold_re, window.fold_im, templates_[c],
          spc_, search_begin, search_end);
    }
  }

 private:
  std::vector<std::vector<double>> templates_;
  std::size_t spc_;
};

/// Overlap-save FFT engine (DESIGN.md §9.1). The folded sliding dot
///   dot(off) = Σ_c t[c] · fold[off + c·spc]
/// touches only fold entries of one residue class off mod spc, so each
/// class is an ordinary chip-rate correlation of the decimated fold
/// sequence g_r[u] = fold[base_r + u·spc] against the chip template. That
/// correlation runs as overlap-save: the template is split into blocks of
/// `block_` chips, each output chunk takes one forward FFT per block of the
/// matching g_r segment — shared by every code — and per code one
/// frequency-domain multiply-accumulate against precomputed conjugate block
/// spectra plus one inverse FFT. Normalization reuses the naive kernel's
/// exact running-sum recurrence (shared across codes), and each winning
/// offset is re-scored with the exact folded dot, so an FFT-vs-naive
/// discrepancy requires two lags within FP noise of each other (§9.3).
class FftEngine final : public CorrelationEngine {
 public:
  struct FftScratch final : Scratch {
    std::vector<double> mean_re, mean_im, s_norm2;  ///< per-lag window stats
    std::vector<double> fwd_re, fwd_im;  ///< per-block signal spectra
    std::vector<double> acc_re, acc_im;  ///< frequency-domain accumulator
  };

  FftEngine(std::span<const std::vector<double>> chip_templates,
            std::size_t samples_per_chip, std::size_t anchor_window_lags)
      : templates_(chip_templates.begin(), chip_templates.end()),
        spc_(samples_per_chip),
        chips_(templates_.front().size()),
        fft_n_(plan_size(chips_, samples_per_chip, anchor_window_lags)),
        block_(std::min(chips_, fft_n_ / 2)),
        n_blocks_((chips_ + block_ - 1) / block_),
        max_out_(fft_n_ - block_ + 1),
        plan_(fft_n_) {
    CBMA_REQUIRE(chips_ >= 1, "empty chip template");
    // Conjugate spectrum of every template block, laid out code-major so a
    // code's blocks stream contiguously in the hot loop.
    spec_re_.assign(templates_.size() * n_blocks_ * fft_n_, 0.0);
    spec_im_.assign(spec_re_.size(), 0.0);
    t_sum_.reserve(templates_.size());
    t_norm2_.reserve(templates_.size());
    const double spc_d = static_cast<double>(spc_);
    for (std::size_t c = 0; c < templates_.size(); ++c) {
      const auto& tmpl = templates_[c];
      CBMA_REQUIRE(tmpl.size() == chips_, "codes must share a template length");
      double sum = 0.0;
      double norm2 = 0.0;
      for (const double v : tmpl) {
        sum += v;
        norm2 += v * v;
      }
      // Sample-level norms: each chip value repeats spc times (matches
      // sliding_complex_peak_folded).
      t_sum_.push_back(spc_d * sum);
      t_norm2_.push_back(spc_d * norm2);
      for (std::size_t b = 0; b < n_blocks_; ++b) {
        const std::size_t b_begin = b * block_;
        const std::size_t b_len = std::min(block_, chips_ - b_begin);
        double* sr = spec_re_.data() + (c * n_blocks_ + b) * fft_n_;
        double* si = spec_im_.data() + (c * n_blocks_ + b) * fft_n_;
        std::copy_n(tmpl.data() + b_begin, b_len, sr);
        plan_.forward(sr, si);
        for (std::size_t i = 0; i < fft_n_; ++i) si[i] = -si[i];
      }
    }
  }

  DetectEngine kind() const override { return DetectEngine::kFft; }

  DetectEngine resolve(std::size_t, std::size_t) const override {
    return DetectEngine::kFft;
  }

  std::unique_ptr<Scratch> make_scratch() const override {
    return std::make_unique<FftScratch>();
  }

  /// Work estimate (real multiply-adds) of one peaks() call — the §9.2
  /// crossover cost model the auto engine compares against the naive
  /// kernel's 2 · lags · chips · codes.
  double estimated_flops(std::size_t n_codes, std::size_t n_lags) const {
    const double n = static_cast<double>(fft_n_);
    const double log_n = std::log2(n);
    const double m = std::max<double>(
        1.0, static_cast<double>(n_lags) / static_cast<double>(spc_));
    const double chunks = std::ceil(m / static_cast<double>(max_out_));
    const double blocks = static_cast<double>(n_blocks_);
    const double forward = chunks * blocks * 2.0 * n * log_n;
    const double per_code = chunks * (blocks * 4.0 * n + 2.0 * n * log_n);
    return static_cast<double>(spc_) *
               (forward + static_cast<double>(n_codes) * per_code) +
           10.0 * static_cast<double>(n_lags);
  }

  void peaks(const CorrelationWindow& window,
             std::span<const std::size_t> code_indices,
             std::size_t search_begin, std::size_t search_end,
             std::span<pn::ComplexCorrelationPeak> out,
             Scratch& scratch) const override {
    CBMA_REQUIRE(out.size() == code_indices.size(),
                 "one output slot per requested code");
    CBMA_REQUIRE(window.samples_per_chip == spc_,
                 "window samples_per_chip mismatches the engine plan");
    CBMA_REQUIRE(window.re.size() == window.im.size(),
                 "split window components disagree");
    CBMA_REQUIRE(search_begin <= search_end, "search window inverted");
    for (auto& o : out) o = pn::ComplexCorrelationPeak{};
    const std::size_t n = chips_ * spc_;
    if (code_indices.empty() || window.re.size() < n) return;
    CBMA_ASSERT(window.fold_re.size() == window.re.size() - spc_ + 1 &&
                window.fold_im.size() == window.fold_re.size());
    const std::size_t end =
        std::min(search_end, window.re.size() - n + 1);
    if (search_begin >= end) return;
    const std::size_t n_lags = end - search_begin;
    telemetry::count(telemetry::Counter::kRxDetectFftBatches);

    auto& s = static_cast<FftScratch&>(scratch);
    compute_window_stats(window, search_begin, end, n, s);
    s.fwd_re.resize(n_blocks_ * fft_n_);
    s.fwd_im.resize(n_blocks_ * fft_n_);
    s.acc_re.resize(fft_n_);
    s.acc_im.resize(fft_n_);

    // Mark "nothing found yet"; any real lag value (≥ 0) beats it.
    for (auto& o : out) o.value = -1.0;

    // One residue class per fold decimation phase, ascending base offset.
    for (std::size_t dr = 0; dr < spc_ && search_begin + dr < end; ++dr) {
      const std::size_t base = search_begin + dr;
      const std::size_t m_count = (end - base + spc_ - 1) / spc_;
      for (std::size_t m0 = 0; m0 < m_count; m0 += max_out_) {
        const std::size_t m_chunk = std::min(max_out_, m_count - m0);
        // Forward transforms of the g_r segments — shared by every code.
        for (std::size_t b = 0; b < n_blocks_; ++b) {
          const std::size_t b_len = std::min(block_, chips_ - b * block_);
          const std::size_t seg_len = m_chunk + b_len - 1;
          double* fr = s.fwd_re.data() + b * fft_n_;
          double* fi = s.fwd_im.data() + b * fft_n_;
          const std::size_t u0 = m0 + b * block_;
          for (std::size_t u = 0; u < seg_len; ++u) {
            const std::size_t x = base + (u0 + u) * spc_;
            fr[u] = window.fold_re[x];
            fi[u] = window.fold_im[x];
          }
          std::fill(fr + seg_len, fr + fft_n_, 0.0);
          std::fill(fi + seg_len, fi + fft_n_, 0.0);
          plan_.forward(fr, fi);
        }
        for (std::size_t k = 0; k < code_indices.size(); ++k) {
          const std::size_t c = code_indices[k];
          CBMA_REQUIRE(c < templates_.size(), "code index out of family");
          std::fill(s.acc_re.begin(), s.acc_re.end(), 0.0);
          std::fill(s.acc_im.begin(), s.acc_im.end(), 0.0);
          const double* sr = spec_re_.data() + c * n_blocks_ * fft_n_;
          const double* si = spec_im_.data() + c * n_blocks_ * fft_n_;
          for (std::size_t b = 0; b < n_blocks_; ++b) {
            pn::simd::cmul_acc(s.fwd_re.data() + b * fft_n_,
                               s.fwd_im.data() + b * fft_n_, sr + b * fft_n_,
                               si + b * fft_n_, s.acc_re.data(),
                               s.acc_im.data(), fft_n_);
          }
          plan_.inverse(s.acc_re.data(), s.acc_im.data());
          const double t_sum = t_sum_[c];
          const double t_norm2 = t_norm2_[c];
          auto& best = out[k];
          for (std::size_t m = 0; m < m_chunk; ++m) {
            const std::size_t off = base + (m0 + m) * spc_;
            const std::size_t j = off - search_begin;
            const double dc_re = s.acc_re[m] - s.mean_re[j] * t_sum;
            const double dc_im = s.acc_im[m] - s.mean_im[j] * t_sum;
            const double denom2 = s.s_norm2[j] * t_norm2;
            const double v =
                denom2 > 0.0
                    ? std::sqrt((dc_re * dc_re + dc_im * dc_im) / denom2)
                    : 0.0;
            // Naive keeps the first (lowest-offset) lag among exact ties —
            // classes are visited out of offset order, so break ties here.
            if (v > best.value || (v == best.value && off < best.offset)) {
              best.value = v;
              best.offset = off;
            }
          }
        }
      }
    }
    (void)n_lags;

    // Re-score every winner with the exact folded dot: value and phase are
    // then bit-identical to the naive kernel at that offset, leaving the
    // argmax choice as the only FFT-rounding-sensitive step (§9.3).
    for (std::size_t k = 0; k < code_indices.size(); ++k) {
      auto& o = out[k];
      if (o.value < 0.0) {
        o = pn::ComplexCorrelationPeak{};
        continue;
      }
      const std::size_t c = code_indices[k];
      const auto corr = pn::complex_correlate_folded_at(
          window.fold_re, window.fold_im, templates_[c], spc_, o.offset);
      const std::size_t j = o.offset - search_begin;
      const double dc_re = corr.real() - s.mean_re[j] * t_sum_[c];
      const double dc_im = corr.imag() - s.mean_im[j] * t_sum_[c];
      const double denom2 = s.s_norm2[j] * t_norm2_[c];
      o.value = denom2 > 0.0
                    ? std::sqrt((dc_re * dc_re + dc_im * dc_im) / denom2)
                    : 0.0;
      o.phase = std::atan2(corr.imag(), corr.real());
    }
  }

 private:
  static std::size_t plan_size(std::size_t chips, std::size_t spc,
                               std::size_t anchor_window_lags) {
    // Balance transform length against the anchor window: blocks of about
    // one output-chunk's width keep the inverse transform (paid per code)
    // small when the window is much shorter than the template.
    const std::size_t anchor_chips =
        std::max<std::size_t>(1, (anchor_window_lags + spc - 1) / spc);
    return pn::FftPlan::next_pow2(
        std::max<std::size_t>(64, 2 * std::min(anchor_chips, chips)));
  }

  /// Per-lag mean/energy of the sliding sample window — the same running
  /// sums, updated in the same order, as pn::sliding_complex_peak_folded,
  /// so the normalization factors match the naive kernel bit-for-bit.
  void compute_window_stats(const CorrelationWindow& window, std::size_t begin,
                            std::size_t end, std::size_t n,
                            FftScratch& s) const {
    const std::size_t n_lags = end - begin;
    s.mean_re.resize(n_lags);
    s.mean_im.resize(n_lags);
    s.s_norm2.resize(n_lags);
    const auto re = window.re;
    const auto im = window.im;
    const double inv_n = 1.0 / static_cast<double>(n);
    double s_sum_re = 0.0;
    double s_sum_im = 0.0;
    double s_sumsq = 0.0;
    for (std::size_t i = begin; i < begin + n; ++i) {
      s_sum_re += re[i];
      s_sum_im += im[i];
      s_sumsq += re[i] * re[i] + im[i] * im[i];
    }
    for (std::size_t off = begin; off < end; ++off) {
      const std::size_t j = off - begin;
      s.mean_re[j] = s_sum_re * inv_n;
      s.mean_im[j] = s_sum_im * inv_n;
      s.s_norm2[j] =
          s_sumsq - (s_sum_re * s_sum_re + s_sum_im * s_sum_im) * inv_n;
      if (off + n < re.size()) {
        s_sum_re += re[off + n] - re[off];
        s_sum_im += im[off + n] - im[off];
        s_sumsq += re[off + n] * re[off + n] + im[off + n] * im[off + n] -
                   re[off] * re[off] - im[off] * im[off];
      }
    }
  }

  std::vector<std::vector<double>> templates_;  ///< chip templates (rescoring)
  std::size_t spc_;
  std::size_t chips_;    ///< C — template length in chips
  std::size_t fft_n_;    ///< N — transform length
  std::size_t block_;    ///< B — template block length in chips
  std::size_t n_blocks_;
  std::size_t max_out_;  ///< outputs per chunk: N − B + 1
  pn::FftPlan plan_;
  std::vector<double> spec_re_, spec_im_;  ///< conj block spectra, code-major
  std::vector<double> t_sum_, t_norm2_;    ///< sample-level template norms
};

/// Auto engine: owns both concrete engines, picks per call by comparing the
/// naive kernel's exact work against the FFT plan's estimate (§9.2). The
/// factor accounts for the FFT's worse per-flop locality relative to the
/// naive kernel's pure streaming loop.
class AutoEngine final : public CorrelationEngine {
 public:
  struct AutoScratch final : Scratch {
    std::unique_ptr<Scratch> naive;
    std::unique_ptr<Scratch> fft;
  };

  AutoEngine(std::span<const std::vector<double>> chip_templates,
             std::size_t samples_per_chip, std::size_t anchor_window_lags)
      : naive_(chip_templates, samples_per_chip),
        fft_(chip_templates, samples_per_chip, anchor_window_lags),
        chips_(chip_templates.front().size()) {}

  DetectEngine kind() const override { return DetectEngine::kAuto; }

  DetectEngine resolve(std::size_t n_codes, std::size_t n_lags) const override {
    const double naive_flops = 2.0 * static_cast<double>(n_lags) *
                               static_cast<double>(chips_) *
                               static_cast<double>(n_codes);
    const double fft_flops = fft_.estimated_flops(n_codes, n_lags);
    return kFftCostFactor * fft_flops < naive_flops ? DetectEngine::kFft
                                                    : DetectEngine::kNaive;
  }

  std::unique_ptr<Scratch> make_scratch() const override {
    auto s = std::make_unique<AutoScratch>();
    s->naive = naive_.make_scratch();
    s->fft = fft_.make_scratch();
    return s;
  }

  void peaks(const CorrelationWindow& window,
             std::span<const std::size_t> code_indices,
             std::size_t search_begin, std::size_t search_end,
             std::span<pn::ComplexCorrelationPeak> out,
             Scratch& scratch) const override {
    auto& s = static_cast<AutoScratch&>(scratch);
    const std::size_t n_lags =
        search_end > search_begin ? search_end - search_begin : 0;
    if (resolve(code_indices.size(), n_lags) == DetectEngine::kFft) {
      fft_.peaks(window, code_indices, search_begin, search_end, out, *s.fft);
    } else {
      naive_.peaks(window, code_indices, search_begin, search_end, out,
                   *s.naive);
    }
  }

 private:
  static constexpr double kFftCostFactor = 1.5;

  NaiveEngine naive_;
  FftEngine fft_;
  std::size_t chips_;
};

}  // namespace

std::unique_ptr<CorrelationEngine> make_correlation_engine(
    DetectEngine kind, std::span<const std::vector<double>> chip_templates,
    std::size_t samples_per_chip, std::size_t anchor_window_lags) {
  CBMA_REQUIRE(!chip_templates.empty(), "engine needs at least one code");
  CBMA_REQUIRE(samples_per_chip >= 1, "samples_per_chip must be positive");
  for (const auto& t : chip_templates) {
    CBMA_REQUIRE(t.size() == chip_templates.front().size(),
                 "codes must share a template length");
    CBMA_REQUIRE(!t.empty(), "empty chip template");
  }
  switch (kind) {
    case DetectEngine::kNaive:
      return std::make_unique<NaiveEngine>(chip_templates, samples_per_chip);
    case DetectEngine::kFft:
      return std::make_unique<FftEngine>(chip_templates, samples_per_chip,
                                         anchor_window_lags);
    case DetectEngine::kAuto:
      return std::make_unique<AutoEngine>(chip_templates, samples_per_chip,
                                          anchor_window_lags);
  }
  CBMA_REQUIRE(false, "unknown detect engine");
  return nullptr;
}

}  // namespace cbma::rx
