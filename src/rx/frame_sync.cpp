#include "rx/frame_sync.h"

#include <algorithm>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::rx {

FrameSynchronizer::FrameSynchronizer(FrameSyncConfig config) : config_(config) {
  CBMA_REQUIRE(config_.window >= 2, "baseline window too small");
  CBMA_REQUIRE(config_.head_average >= 1, "head average must be positive");
  CBMA_REQUIRE(config_.threshold_db > 0.0, "threshold must be positive dB");
  CBMA_REQUIRE(config_.min_baseline > 0.0, "baseline floor must be positive");
}

std::optional<std::size_t> FrameSynchronizer::detect(std::span<const double> magnitude,
                                                     std::size_t begin) const {
  const std::size_t w = config_.window;
  const std::size_t h = config_.head_average;
  if (magnitude.size() < begin + w + 2 * h) return std::nullopt;
  const double ratio = units::from_db(config_.threshold_db);

  // Power (energy) domain: the 3 dB comparison is on power levels.
  // Prefix sums keep the sliding baseline/head averages O(1) per sample.
  const std::size_t n = magnitude.size();
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + magnitude[i] * magnitude[i];
  }
  const auto avg = [&](std::size_t lo, std::size_t hi) {
    return (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
  };

  // Trailing baseline over [s-w, s); the "current" level is the minimum of
  // the two consecutive head windows [s, s+h) and [s+h, s+2h) — a real
  // frame keeps the power up, an isolated spike cannot.
  for (std::size_t s = begin + w; s + 2 * h <= n; ++s) {
    const double base_avg = std::max(avg(s - w, s), config_.min_baseline);
    const double head1 = avg(s, s + h);
    const double head2 = avg(s + h, s + 2 * h);
    if (std::min(head1, head2) > ratio * base_avg) return s;
  }
  return std::nullopt;
}

FrameSynchronizer::Stream::Stream(const FrameSynchronizer& sync)
    : sync_(&sync), ratio_(units::from_db(sync.config().threshold_db)) {
  reset();
}

void FrameSynchronizer::Stream::reset() {
  prefix_.clear();
  prefix_.push(0.0);  // P(0)
  acc_ = 0.0;
  pushed_ = 0;
  cursor_ = sync_->config().window;
}

void FrameSynchronizer::Stream::push(double magnitude) {
  // Same arithmetic as detect()'s prefix loop: acc_ holds prefix[i], the
  // push appends prefix[i+1] = prefix[i] + m².
  acc_ += magnitude * magnitude;
  prefix_.push(acc_);
  ++pushed_;
}

void FrameSynchronizer::Stream::rearm(std::uint64_t begin) {
  cursor_ = begin + sync_->config().window;
}

std::optional<std::uint64_t> FrameSynchronizer::Stream::scan() {
  const std::size_t w = sync_->config().window;
  const std::size_t h = sync_->config().head_average;
  const double floor = sync_->config().min_baseline;
  const auto avg = [&](std::uint64_t lo, std::uint64_t hi) {
    return (prefix_[hi] - prefix_[lo]) / static_cast<double>(hi - lo);
  };
  while (cursor_ + 2 * h <= pushed_) {
    const double base_avg = std::max(avg(cursor_ - w, cursor_), floor);
    const double head1 = avg(cursor_, cursor_ + h);
    const double head2 = avg(cursor_ + h, cursor_ + 2 * h);
    if (std::min(head1, head2) > ratio_ * base_avg) return cursor_;
    ++cursor_;
    prefix_.release(cursor_ - w);
  }
  return std::nullopt;
}

std::vector<std::size_t> FrameSynchronizer::detect_all(std::span<const double> magnitude,
                                                       std::size_t refractory) const {
  std::vector<std::size_t> out;
  std::size_t begin = 0;
  while (true) {
    const auto hit = detect(magnitude, begin);
    if (!hit) break;
    out.push_back(*hit);
    begin = *hit + std::max<std::size_t>(1, refractory);
    if (begin >= magnitude.size()) break;
  }
  return out;
}

}  // namespace cbma::rx
