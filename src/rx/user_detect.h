// Correlation-based user detection (§III-B, §V):
// every group code's spread preamble is slid over the head of the detected
// frame in the complex baseband; a normalized-|correlation| peak above the
// threshold declares that user present and yields its per-user timing
// offset *and* carrier-phase estimate. Searching over offsets is what makes
// the detector robust to the tags' asynchronous starts — the paper's answer
// to the "asynchronous signal" challenge — and the complex correlation is
// invariant to each tag's unknown carrier phase.
//
// Detection is successive: the strongest code is found first, its estimated
// preamble contribution is subtracted from a residual copy, and the search
// repeats for the remaining codes inside the group window around the
// anchor. Without this interference cancellation a weak user's aligned
// peak is regularly beaten by the *sum* of the other users' correlation
// sidelobes at a nearby lag once several tags collide.
//
// The batched peak search itself runs on a pluggable CorrelationEngine
// (DESIGN.md §9): naive sliding dots, an overlap-save FFT fast path sharing
// forward transforms across all codes, or a cost-model auto pick — selected
// via UserDetectConfig::engine.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "phy/tag.h"
#include "pn/code.h"
#include "rx/correlation_engine.h"

namespace cbma::rx {

struct UserDetectConfig {
  double threshold = 0.20;           ///< absolute normalized-correlation threshold
  /// A code is also rejected when its peak is below this fraction of the
  /// strongest peak in the window — shifted-lag sidelobes of a present code
  /// sit well below the aligned peaks of the actual transmitters.
  double relative_threshold = 0.40;
  /// Search window around the coarse start. The spike-proof energy
  /// comparator fires within ~2 head-windows of the true frame edge, so a
  /// tight window suffices — and a tight window is essential: distant lags
  /// expose the detector to other users' correlation sidelobes.
  double search_back_chips = 10.0;
  double search_ahead_chips = 8.0;
  /// Group-window constraint: tags of a group start within a small mutual
  /// offset (the excitation triggers them together; Fig. 11 studies the
  /// residual delays). After the strongest code's peak anchors the frame,
  /// every other code is searched only within ± this window of the anchor,
  /// which keeps weak users from locking onto interference sidelobes at
  /// distant lags. Widen it when deliberately delaying tags by more.
  double group_window_chips = 2.0;
  /// Successive interference cancellation during detection (DESIGN.md
  /// §4.4). Disable only for ablation studies: without it the sum of other
  /// users' sidelobes regularly beats a weak user's aligned peak.
  bool enable_sic = true;
  /// Which correlation engine runs the batched peak search (DESIGN.md §9.2).
  /// kNaive is the bit-exact reference and the default; kFft shares forward
  /// transforms across all codes (equivalent up to the §9.3 tolerance);
  /// kAuto picks per call from the crossover cost model.
  DetectEngine engine = DetectEngine::kNaive;
};

struct DetectedUser {
  std::size_t tag_index = 0;
  std::size_t offset_samples = 0;  ///< start of the user's preamble in the window
  double correlation = 0.0;        ///< normalized |correlation| at the peak
  double phase = 0.0;              ///< carrier-phase estimate (radians)
  /// Best peak among the *other* still-unassigned codes in the same
  /// detection round — the runner-up this code had to beat. 0 when no other
  /// code was in contention. correlation − runner_up is the detection
  /// margin the flight recorder and link-quality reports consume.
  double runner_up = 0.0;
};

/// The detector's view of one frame: the split-re/im window and the frame
/// synchronizer's coarse trigger the anchor search centres on. A view only —
/// the caller keeps the arrays alive through the detect() call.
struct DetectionInput {
  std::span<const double> re;
  std::span<const double> im;
  std::size_t coarse_start = 0;
};

class UserDetector {
 public:
  /// Reusable successive-cancellation buffers (the residual copy of the
  /// window, its per-chip folded sums, the per-round engine batch, and the
  /// engine's own work buffers); sized once per window length and reused
  /// across packets — detect() is allocation-free in steady state.
  struct Scratch {
    std::vector<double> residual_re;
    std::vector<double> residual_im;
    std::vector<double> fold_re;  ///< pn::fold_chip_sums of residual_re
    std::vector<double> fold_im;  ///< pn::fold_chip_sums of residual_im
    std::vector<std::size_t> code_idx;  ///< untaken codes of the round
    std::vector<pn::ComplexCorrelationPeak> peaks;  ///< engine batch output
    std::unique_ptr<CorrelationEngine::Scratch> engine;  ///< lazily created
  };

  /// `codes`: the group's PN codes (receiver knows all of them);
  /// `preamble_bits` and `samples_per_chip` must match the tags' config.
  UserDetector(UserDetectConfig config, std::span<const pn::PnCode> codes,
               std::size_t preamble_bits, std::size_t samples_per_chip);

  const UserDetectConfig& config() const { return config_; }
  std::size_t group_size() const { return templates_.size(); }
  /// The configured correlation engine (crossover introspection for tests
  /// and the watchdog bench).
  const CorrelationEngine& engine() const { return *engine_; }

  /// Detect users around `input.coarse_start` (the frame synchronizer's
  /// trigger). Returns every code whose correlation peak clears both
  /// thresholds. The zero-allocation hot path: `scratch` is caller-owned
  /// and reused across packets.
  std::vector<DetectedUser> detect(const DetectionInput& input,
                                   Scratch& scratch) const;

  /// Peak correlation (offset + phase) for one specific code, with no
  /// thresholding — used by tests and calibration.
  DetectedUser probe(std::span<const std::complex<double>> iq,
                     std::size_t coarse_start, std::size_t tag_index) const;

 private:
  UserDetectConfig config_;
  std::size_t samples_per_chip_;
  std::vector<std::vector<double>> templates_;  ///< per-bit mean-removed preambles
  /// Chip-level (not upsampled) counterparts of templates_ — the sliding
  /// search runs on these against per-chip folded window sums, cutting each
  /// lag's dot product by samples_per_chip×.
  std::vector<std::vector<double>> chip_templates_;
  std::vector<double> tmpl_norm2_;              ///< template energies (gain fits)
  std::unique_ptr<CorrelationEngine> engine_;   ///< immutable after ctor
};

}  // namespace cbma::rx
