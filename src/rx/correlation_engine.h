// Pluggable detection correlation engines (DESIGN.md §9).
//
// UserDetector's cost is the batched peak search: every candidate code of
// the family slid over the anchor window of one frame. The naive kernel is
// O(lags × chips) per code; the FFT engine factors the same folded dot
// products through shared forward transforms (overlap-save in the chip
// domain, one signal FFT set reused by every code) and drops the per-code
// cost to O(N log N) — the crossover the paper's 64-code family (Fig. 9b)
// sits well past. Both engines consume the identical chip-folded window
// representation and produce the same normalized peaks: the naive engine
// bit-exactly, the FFT engine up to the documented §9.3 tolerance (its
// winning offsets are re-scored with the exact folded dot, so disagreement
// requires two lags within FP noise of each other).
//
// Engines are selected per receiver via UserDetectConfig::engine
// (naive / fft / auto) and threaded through SystemConfig::validate(). All
// per-family plan state — chip templates, template block spectra, FFT
// twiddles — is owned by the engine and precomputed at construction; all
// mutable work buffers live in a caller-owned Scratch, so a const engine is
// safe to share across threads and UserDetector::detect stays
// allocation-free in steady state.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "pn/correlation.h"
#include "pn/fft.h"

namespace cbma::rx {

/// Which correlation engine a receiver's detector runs (DESIGN.md §9.2).
enum class DetectEngine {
  kNaive = 0,  ///< sliding folded dot per code — the bit-exact reference
  kFft,        ///< overlap-save FFT, shared forward transforms across codes
  kAuto,       ///< per-call cost model picks naive or fft (§9.2 crossover)
};

/// Stable label ("naive", "fft", "auto").
const char* to_string(DetectEngine engine);

/// The detector's view of one window: split re/im samples plus their
/// chip-folded sums (pn::fold_chip_sums of the same arrays). During SIC the
/// spans point at the residual copy — engines always read the caller's
/// current buffers and hold no window state.
struct CorrelationWindow {
  std::span<const double> re;
  std::span<const double> im;
  std::span<const double> fold_re;
  std::span<const double> fold_im;
  std::size_t samples_per_chip = 1;
};

class CorrelationEngine {
 public:
  /// Engine-specific mutable work buffers. Owned by the caller (one per
  /// thread of use), created via make_scratch(); buffers grow to the
  /// engine's working-set high-water mark and are then reused.
  class Scratch {
   public:
    virtual ~Scratch() = default;
  };

  virtual ~CorrelationEngine() = default;

  /// The configured kind (kAuto for the auto engine, not its per-call pick).
  virtual DetectEngine kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// The engine a call with `n_codes` codes over `n_lags` offsets executes:
  /// the concrete engines return themselves; auto applies its cost model.
  /// This is the crossover-policy introspection hook the watchdog bench and
  /// tests assert against.
  virtual DetectEngine resolve(std::size_t n_codes, std::size_t n_lags) const = 0;

  virtual std::unique_ptr<Scratch> make_scratch() const = 0;

  /// Batched peak search: for each code index in `code_indices`, the
  /// normalized |correlation| peak (offset, value, phase) over window
  /// offsets [search_begin, search_end), written to the matching slot of
  /// `out` (out.size() == code_indices.size()). A window too short for the
  /// template yields a default ComplexCorrelationPeak, exactly like
  /// pn::sliding_complex_peak_folded.
  virtual void peaks(const CorrelationWindow& window,
                     std::span<const std::size_t> code_indices,
                     std::size_t search_begin, std::size_t search_end,
                     std::span<pn::ComplexCorrelationPeak> out,
                     Scratch& scratch) const = 0;
};

/// Build an engine for one code family.
///
/// `chip_templates`: per-code chip-rate (not upsampled) mean-removed
/// preamble templates, all of one length (copied into the engine).
/// `anchor_window_lags`: the expected width in samples of the detector's
/// anchor search window — the FFT engine sizes its overlap-save plan
/// (transform length, template block split) for it. Calls with other widths
/// remain correct; they chunk through the same plan.
std::unique_ptr<CorrelationEngine> make_correlation_engine(
    DetectEngine kind, std::span<const std::vector<double>> chip_templates,
    std::size_t samples_per_chip, std::size_t anchor_window_lags);

}  // namespace cbma::rx
