#include "rx/link_quality.h"

#include <algorithm>
#include <cmath>

namespace cbma::rx {

LinkQualityReport compute_link_quality(std::span<const double> soft,
                                       double correlation, double runner_up,
                                       double window_rms) {
  LinkQualityReport report;
  if (soft.empty()) return report;
  report.valid = true;
  report.correlation = correlation;

  // Moments of the soft-decision magnitudes. With BPSK-style bipolar soft
  // values the magnitude is the distance from the decision boundary, so its
  // mean is the signal amplitude and its spread is the noise.
  double sum = 0.0, sum2 = 0.0;
  double min_abs = std::abs(soft[0]);
  for (const double s : soft) {
    const double a = std::abs(s);
    sum += a;
    sum2 += a * a;
    min_abs = std::min(min_abs, a);
  }
  const auto n = static_cast<double>(soft.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum2 / n - mean * mean);

  if (mean > 0.0) {
    // var == 0 happens for constant soft values (single bit, or a noiseless
    // synthetic window); report the same cap the ratio uses instead of inf.
    const double snr_lin =
        var > 0.0 ? (mean * mean) / var : kMaxMarginRatio;
    report.snr_db = 10.0 * std::log10(std::min(snr_lin, kMaxMarginRatio));
    report.evm = std::sqrt(var) / mean;
    report.soft_margin = min_abs / mean;
  }
  report.margin_ratio =
      runner_up > correlation / kMaxMarginRatio && runner_up > 0.0
          ? correlation / runner_up
          : kMaxMarginRatio;
  if (window_rms > 0.0) report.power_norm = mean / window_rms;
  return report;
}

void LinkQualityRollup::add(const LinkQualityReport& report) {
  if (!report.valid) return;
  ++frames;
  snr_db_sum += report.snr_db;
  evm_sum += report.evm;
  soft_margin_sum += report.soft_margin;
  margin_ratio_sum += report.margin_ratio;
  power_norm_sum += report.power_norm;
  correlation_sum += report.correlation;
}

void LinkQualityRollup::merge(const LinkQualityRollup& other) {
  frames += other.frames;
  snr_db_sum += other.snr_db_sum;
  evm_sum += other.evm_sum;
  soft_margin_sum += other.soft_margin_sum;
  margin_ratio_sum += other.margin_ratio_sum;
  power_norm_sum += other.power_norm_sum;
  correlation_sum += other.correlation_sum;
}

namespace {
double mean_over(double sum, std::size_t n) {
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

double LinkQualityRollup::snr_db_mean() const {
  return mean_over(snr_db_sum, frames);
}
double LinkQualityRollup::evm_mean() const { return mean_over(evm_sum, frames); }
double LinkQualityRollup::soft_margin_mean() const {
  return mean_over(soft_margin_sum, frames);
}
double LinkQualityRollup::margin_ratio_mean() const {
  return mean_over(margin_ratio_sum, frames);
}
double LinkQualityRollup::power_norm_mean() const {
  return mean_over(power_norm_sum, frames);
}
double LinkQualityRollup::correlation_mean() const {
  return mean_over(correlation_sum, frames);
}

}  // namespace cbma::rx
