#include "rx/link_quality.h"

#include <algorithm>
#include <cmath>

namespace cbma::rx {

LinkQualityReport compute_link_quality(std::span<const double> soft,
                                       double correlation, double runner_up,
                                       double window_rms) {
  LinkQualityReport report;
  if (soft.empty()) return report;
  report.valid = true;
  report.correlation = correlation;

  // Moments of the soft-decision magnitudes. With BPSK-style bipolar soft
  // values the magnitude is the distance from the decision boundary, so its
  // mean is the signal amplitude and its spread is the noise.
  double sum = 0.0, sum2 = 0.0;
  double min_abs = std::abs(soft[0]);
  for (const double s : soft) {
    const double a = std::abs(s);
    sum += a;
    sum2 += a * a;
    min_abs = std::min(min_abs, a);
  }
  const auto n = static_cast<double>(soft.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum2 / n - mean * mean);

  if (mean > 0.0) {
    // var == 0 happens for constant soft values (single bit, or a noiseless
    // synthetic window); report the same cap the ratio uses instead of inf.
    const double snr_lin =
        var > 0.0 ? (mean * mean) / var : kMaxMarginRatio;
    report.snr_db = 10.0 * std::log10(std::min(snr_lin, kMaxMarginRatio));
    report.evm = std::sqrt(var) / mean;
    report.soft_margin = min_abs / mean;
  }
  report.margin_ratio =
      runner_up > correlation / kMaxMarginRatio && runner_up > 0.0
          ? correlation / runner_up
          : kMaxMarginRatio;
  if (window_rms > 0.0) report.power_norm = mean / window_rms;
  return report;
}

}  // namespace cbma::rx
