#include "phy/energy.h"

#include "util/expect.h"

namespace cbma::phy {

double TagEnergyModel::transmit_power_w() const {
  CBMA_REQUIRE(switch_energy_j >= 0.0 && logic_power_w >= 0.0,
               "energies must be non-negative");
  CBMA_REQUIRE(subcarrier_hz > 0.0, "subcarrier must be positive");
  CBMA_REQUIRE(on_chip_fraction >= 0.0 && on_chip_fraction <= 1.0,
               "chip fraction out of range");
  // Two toggles per subcarrier period, only while a '1' chip reflects.
  const double toggles_per_s = 2.0 * subcarrier_hz * on_chip_fraction;
  return toggles_per_s * switch_energy_j + logic_power_w;
}

double TagEnergyModel::frame_energy_j(std::size_t frame_bits,
                                      double bitrate_bps) const {
  CBMA_REQUIRE(frame_bits >= 1, "frame must have bits");
  CBMA_REQUIRE(bitrate_bps > 0.0, "bitrate must be positive");
  const double duration_s = static_cast<double>(frame_bits) / bitrate_bps;
  return transmit_power_w() * duration_s;
}

double TagEnergyModel::frames_per_joule(std::size_t frame_bits,
                                        double bitrate_bps) const {
  return 1.0 / frame_energy_j(frame_bits, bitrate_bps);
}

}  // namespace cbma::phy
