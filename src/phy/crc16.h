// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — the frame's two-byte
// cyclic redundancy check (§III-A, framing field 4).
#pragma once

#include <cstdint>
#include <span>

namespace cbma::phy {

std::uint16_t crc16(std::span<const std::uint8_t> data);

/// Incremental form for streaming use.
std::uint16_t crc16_update(std::uint16_t crc, std::uint8_t byte);

inline constexpr std::uint16_t kCrc16Init = 0xFFFF;

}  // namespace cbma::phy
