// Tag energy model (§VI: "Signal reflection only consumes power in the
// scale of µW"). Backscatter spends no transmit power — the budget is the
// SPDT switching energy plus the control logic. This model turns the
// paper's power-scale claim into per-frame/per-day numbers a deployment
// planner can use.
#pragma once

#include <cstddef>

namespace cbma::phy {

struct TagEnergyModel {
  /// Energy to toggle the SPDT once (sub-pF effective gate capacitance of
  /// an HMC190B-class switch at logic drive).
  double switch_energy_j = 1e-12;
  /// Subcarrier square-wave frequency: the switch toggles at 2·Δf while a
  /// '1' chip is on air.
  double subcarrier_hz = 20e6;
  /// Control logic (sequencer + clock) draw while transmitting.
  double logic_power_w = 2e-6;
  /// Fraction of chips that are '1' (balanced codes → ≈ 0.5).
  double on_chip_fraction = 0.5;

  /// Average power while a frame is on air (watts).
  double transmit_power_w() const;

  /// Energy for one frame of `frame_bits` bits at `bitrate_bps` (joules).
  double frame_energy_j(std::size_t frame_bits, double bitrate_bps) const;

  /// Frames per day a reservoir of `capacity_j` joules supports at the
  /// given duty (frames per second are limited by the energy, not time).
  double frames_per_joule(std::size_t frame_bits, double bitrate_bps) const;
};

}  // namespace cbma::phy
