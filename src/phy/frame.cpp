#include "phy/frame.h"

#include "phy/crc16.h"
#include "util/expect.h"

namespace cbma::phy {

std::vector<std::uint8_t> alternating_preamble(std::size_t n_bits) {
  CBMA_REQUIRE(n_bits >= 1, "preamble must have at least one bit");
  std::vector<std::uint8_t> bits(n_bits);
  for (std::size_t i = 0; i < n_bits; ++i) bits[i] = (i % 2 == 0) ? 1 : 0;
  return bits;
}

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (const auto b : bytes) {
    for (int k = 7; k >= 0; --k) bits.push_back(static_cast<std::uint8_t>((b >> k) & 1));
  }
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits) {
  CBMA_REQUIRE(bits.size() % 8 == 0, "bit count must be a multiple of 8");
  std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    CBMA_REQUIRE(bits[i] == 0 || bits[i] == 1, "bits must be binary");
    bytes[i / 8] = static_cast<std::uint8_t>((bytes[i / 8] << 1) | bits[i]);
  }
  return bytes;
}

std::vector<std::uint8_t> frame_bits(std::span<const std::uint8_t> payload,
                                     std::uint8_t tag_id, std::size_t preamble_bits) {
  std::vector<std::uint8_t> bits;
  frame_bits_into(payload, tag_id, preamble_bits, bits);
  return bits;
}

void frame_bits_into(std::span<const std::uint8_t> payload, std::uint8_t tag_id,
                     std::size_t preamble_bits, std::vector<std::uint8_t>& out) {
  CBMA_REQUIRE(payload.size() <= kMaxPayloadBytes, "payload exceeds 126 bytes");
  CBMA_REQUIRE(preamble_bits >= 1, "preamble must have at least one bit");
  const std::size_t body_bytes = 2 + payload.size() + 2;
  out.resize(preamble_bits + 8 * body_bytes);
  for (std::size_t i = 0; i < preamble_bits; ++i) out[i] = (i % 2 == 0) ? 1 : 0;

  // Serialize length | id | payload | CRC directly as MSB-first bits while
  // streaming the CRC, so no intermediate body buffer is built.
  const std::uint8_t head[2] = {static_cast<std::uint8_t>(payload.size()), tag_id};
  const auto append_byte = [&](std::uint8_t b, std::size_t byte_index) {
    std::uint8_t* dst = out.data() + preamble_bits + 8 * byte_index;
    for (int k = 7; k >= 0; --k) *dst++ = static_cast<std::uint8_t>((b >> k) & 1);
  };
  std::uint16_t crc = kCrc16Init;
  std::size_t byte_index = 0;
  for (const auto b : head) {
    append_byte(b, byte_index++);
    crc = crc16_update(crc, b);
  }
  for (const auto b : payload) {
    append_byte(b, byte_index++);
    crc = crc16_update(crc, b);
  }
  append_byte(static_cast<std::uint8_t>(crc >> 8), byte_index++);
  append_byte(static_cast<std::uint8_t>(crc & 0xFF), byte_index++);
}

std::size_t frame_bit_count(std::size_t payload_bytes, std::size_t preamble_bits) {
  CBMA_REQUIRE(payload_bytes <= kMaxPayloadBytes, "payload exceeds 126 bytes");
  return preamble_bits + 8 * (2 + payload_bytes + 2);
}

std::optional<ParsedFrame> parse_frame_body(std::span<const std::uint8_t> bits) {
  if (bits.size() < 8) return std::nullopt;
  std::uint8_t length = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    length = static_cast<std::uint8_t>((length << 1) | (bits[i] & 1));
  }
  if (length > kMaxPayloadBytes) return std::nullopt;
  const std::size_t needed = 8 * (2 + static_cast<std::size_t>(length) + 2);
  if (bits.size() < needed) return std::nullopt;

  const auto body_bytes = bits_to_bytes(bits.subspan(0, needed));
  ParsedFrame frame;
  frame.tag_id = body_bytes[1];
  frame.payload.assign(body_bytes.begin() + 2, body_bytes.begin() + 2 + length);
  const std::uint16_t got = static_cast<std::uint16_t>(
      (body_bytes[2 + length] << 8) | body_bytes[3 + length]);
  const std::uint16_t want = crc16(std::span<const std::uint8_t>(
      body_bytes.data(), 2 + static_cast<std::size_t>(length)));
  frame.crc_ok = (got == want);
  return frame;
}

}  // namespace cbma::phy
