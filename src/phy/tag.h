// The backscatter tag (§III-A): holds its PN code and impedance state, and
// synthesizes the on/off chip sequence for a payload (framing → encoding).
// Power selection is the impedance level consumed by the channel via
// rfsim::ReflectionStateBank; Algorithm 1 drives `step_impedance`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/frame.h"
#include "pn/code.h"

namespace cbma::phy {

struct TagConfig {
  std::uint32_t id = 0;
  pn::PnCode code;
  std::size_t preamble_bits = kDefaultPreambleBits;
  std::size_t impedance_levels = 4;  ///< Z_max of Algorithm 1
};

class Tag {
 public:
  explicit Tag(TagConfig config);

  std::uint32_t id() const { return config_.id; }
  const pn::PnCode& code() const { return config_.code; }
  std::size_t preamble_bits() const { return config_.preamble_bits; }

  /// Full transmit chip sequence for a payload: frame bits spread by the
  /// tag's code (every '1' chip reflects, every '0' chip absorbs).
  std::vector<std::uint8_t> chip_sequence(std::span<const std::uint8_t> payload) const;

  /// chip_sequence into caller-owned buffers (`bits_scratch` holds the
  /// intermediate frame bits, `out` the spread chips; both are resized and
  /// their capacity reused) — the zero-allocation per-packet path. Spreading
  /// copies the code's cached per-bit waveforms instead of regenerating
  /// them chip by chip.
  void chip_sequence_into(std::span<const std::uint8_t> payload,
                          std::vector<std::uint8_t>& bits_scratch,
                          std::vector<std::uint8_t>& out) const;

  /// Chip sequence of just the spread preamble — the receiver's user
  /// detection template. Cached at construction.
  const std::vector<std::uint8_t>& preamble_chips() const { return preamble_chips_; }

  /// Current impedance level, 0-based (0 = strongest backscatter).
  std::size_t impedance_level() const { return impedance_level_; }
  void set_impedance_level(std::size_t level);

  /// Static chip-clock offset of this tag's crystal (ppm). 0 by default;
  /// the system assigns per-slot offsets when the clock-drift impairment is
  /// enabled, and each transmission derives its subcarrier shift and timing
  /// skew from it (rfsim::ImpairmentSuite::perturb_clock).
  double clock_offset_ppm() const { return clock_offset_ppm_; }
  void set_clock_offset_ppm(double ppm) { clock_offset_ppm_ = ppm; }

  /// Algorithm 1 lines 18–22: advance to the next level, wrapping at Z_max.
  void step_impedance();

  std::size_t impedance_levels() const { return config_.impedance_levels; }

 private:
  TagConfig config_;
  std::size_t impedance_level_ = 0;
  double clock_offset_ppm_ = 0.0;
  std::vector<std::uint8_t> preamble_chips_;  ///< spread preamble waveform cache
};

}  // namespace cbma::phy
