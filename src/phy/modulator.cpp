#include "phy/modulator.h"

#include <cmath>
#include <complex>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::phy {

double square_wave_harmonic_amplitude(unsigned n) {
  CBMA_REQUIRE(n >= 1 && n % 2 == 1, "square waves only have odd harmonics");
  return 4.0 / (units::kPi * static_cast<double>(n));
}

double square_wave_harmonic_rel_db(unsigned n) {
  const double a = square_wave_harmonic_amplitude(n) / square_wave_harmonic_amplitude(1);
  return units::to_db(a * a);
}

std::vector<double> square_wave(double freq_hz, double sample_rate_hz,
                                std::size_t n_samples) {
  CBMA_REQUIRE(freq_hz > 0.0 && sample_rate_hz > 0.0, "frequencies must be positive");
  CBMA_REQUIRE(sample_rate_hz > 2.0 * freq_hz, "square wave under-sampled");
  std::vector<double> out(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const double phase = std::fmod(freq_hz * static_cast<double>(i) / sample_rate_hz, 1.0);
    out[i] = phase < 0.5 ? 1.0 : -1.0;
  }
  return out;
}

std::vector<double> ook_modulate(std::span<const std::uint8_t> chips,
                                 std::size_t samples_per_chip,
                                 std::span<const double> carrier) {
  CBMA_REQUIRE(samples_per_chip >= 1, "samples_per_chip must be positive");
  CBMA_REQUIRE(!carrier.empty(), "carrier must be non-empty");
  std::vector<double> out(chips.size() * samples_per_chip, 0.0);
  std::size_t s = 0;
  for (const auto chip : chips) {
    for (std::size_t k = 0; k < samples_per_chip; ++k, ++s) {
      // AND of the upsampled data with the square wave: carrier passes only
      // while the chip is '1' (Eq. 3).
      out[s] = chip ? carrier[s % carrier.size()] : 0.0;
    }
  }
  return out;
}

std::vector<std::complex<double>> ssb_square_wave(double freq_hz,
                                                  double sample_rate_hz,
                                                  std::size_t n_samples) {
  CBMA_REQUIRE(freq_hz > 0.0 && sample_rate_hz > 0.0, "frequencies must be positive");
  CBMA_REQUIRE(sample_rate_hz >= 4.0 * freq_hz,
               "quadrature square wave needs >= 4 samples per period");
  std::vector<std::complex<double>> out(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    const double phase_i = std::fmod(freq_hz * t, 1.0);
    // Quarter-period delayed copy for the quadrature arm.
    const double phase_q = std::fmod(freq_hz * t - 0.25 + 1.0, 1.0);
    out[i] = {phase_i < 0.5 ? 1.0 : -1.0, phase_q < 0.5 ? 1.0 : -1.0};
  }
  return out;
}

double tone_magnitude_complex(std::span<const std::complex<double>> signal,
                              double freq_hz, double sample_rate_hz) {
  CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  std::complex<double> acc{0.0, 0.0};
  const double w = 2.0 * units::kPi * freq_hz / sample_rate_hz;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double ang = w * static_cast<double>(i);
    acc += signal[i] * std::complex<double>(std::cos(ang), -std::sin(ang));
  }
  return std::abs(acc) / static_cast<double>(signal.size());
}

double sideband_suppression_db(std::span<const std::complex<double>> signal,
                               double freq_hz, double sample_rate_hz) {
  const double upper = tone_magnitude_complex(signal, freq_hz, sample_rate_hz);
  const double lower = tone_magnitude_complex(signal, -freq_hz, sample_rate_hz);
  CBMA_REQUIRE(upper > 0.0, "no energy at the wanted sideband");
  const double floor = upper * 1e-8;  // numeric floor for a perfect null
  return units::to_db((upper * upper) / std::max(lower * lower, floor * floor));
}

double tone_magnitude(std::span<const double> signal, double freq_hz,
                      double sample_rate_hz) {
  CBMA_REQUIRE(sample_rate_hz > 0.0, "sample rate must be positive");
  std::complex<double> acc{0.0, 0.0};
  const double w = 2.0 * units::kPi * freq_hz / sample_rate_hz;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double ang = w * static_cast<double>(i);
    acc += signal[i] * std::complex<double>(std::cos(ang), -std::sin(ang));
  }
  // Single-sided amplitude estimate.
  return 2.0 * std::abs(acc) / static_cast<double>(signal.size());
}

}  // namespace cbma::phy
