#include "phy/crc16.h"

namespace cbma::phy {

std::uint16_t crc16_update(std::uint16_t crc, std::uint8_t byte) {
  crc ^= static_cast<std::uint16_t>(byte) << 8;
  for (int bit = 0; bit < 8; ++bit) {
    if (crc & 0x8000) {
      crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
    } else {
      crc = static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = kCrc16Init;
  for (const auto b : data) crc = crc16_update(crc, b);
  return crc;
}

}  // namespace cbma::phy
