// The tag's two-layer modulation (§V-A, §VI):
//   1. a Δf square wave toggles the antenna impedance, shifting the
//      excitation tone to f_c ± Δf (Eq. 2);
//   2. OOK: the coded chip stream gates the square wave on ('1' chip) and
//      off ('0' chip) — realized on the FPGA as an AND of the upsampled data
//      with the square wave (Fig. 4, Eq. 3).
//
// The envelope-level channel only needs the first-harmonic amplitude 4/π,
// but the waveform synthesis here lets tests verify the harmonic structure
// the paper's Eq. 2 relies on (3rd/5th harmonics 9.5/14 dB down).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace cbma::phy {

/// Amplitude of the n-th odd harmonic of a unit square wave (Eq. 2): 4/(πn).
double square_wave_harmonic_amplitude(unsigned n);

/// Power of the n-th odd harmonic relative to the fundamental, in dB.
double square_wave_harmonic_rel_db(unsigned n);

/// ±1 square wave at `freq_hz` sampled at `sample_rate_hz`.
std::vector<double> square_wave(double freq_hz, double sample_rate_hz,
                                std::size_t n_samples);

/// AND-gate OOK (paper Fig. 4): upsample `chips` by `samples_per_chip` and
/// gate the provided square-wave carrier. Output length =
/// chips.size() × samples_per_chip; the carrier is cycled if shorter.
std::vector<double> ook_modulate(std::span<const std::uint8_t> chips,
                                 std::size_t samples_per_chip,
                                 std::span<const double> carrier);

/// Goertzel-style single-bin DFT magnitude at `freq_hz` (used by tests to
/// measure harmonic levels of synthesized waveforms).
double tone_magnitude(std::span<const double> signal, double freq_hz,
                      double sample_rate_hz);

// --- single-sideband backscatter (paper footnote 1, ref. [10]) ---
//
// A plain square wave shifts the excitation to BOTH f_c ± Δf; driving two
// switch banks in quadrature (the second delayed a quarter subcarrier
// period) synthesizes sq(t) + j·sq(t − T/4), whose fundamental lives only
// on the +Δf side — the "single sideband backscatter" of Iyer et al. that
// the paper points to for removing the unused image.

/// Complex quadrature square wave at `freq_hz`; the fundamental of the
/// −freq sideband is ideally zero.
std::vector<std::complex<double>> ssb_square_wave(double freq_hz,
                                                  double sample_rate_hz,
                                                  std::size_t n_samples);

/// Single-bin DFT magnitude of a complex signal at (signed) `freq_hz`.
double tone_magnitude_complex(std::span<const std::complex<double>> signal,
                              double freq_hz, double sample_rate_hz);

/// Upper-to-lower sideband power ratio (dB) of a complex subcarrier
/// waveform at ±freq_hz; large values mean a clean single sideband.
double sideband_suppression_db(std::span<const std::complex<double>> signal,
                               double freq_hz, double sample_rate_hz);

}  // namespace cbma::phy
