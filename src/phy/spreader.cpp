#include "phy/spreader.h"

#include <cstring>

#include "util/expect.h"

namespace cbma::phy {

std::vector<std::uint8_t> spread(std::span<const std::uint8_t> bits,
                                 const pn::PnCode& code) {
  std::vector<std::uint8_t> out;
  spread_into(bits, code, out);
  return out;
}

void spread_into(std::span<const std::uint8_t> bits, const pn::PnCode& code,
                 std::vector<std::uint8_t>& out) {
  CBMA_REQUIRE(!code.empty(), "spreading requires a code");
  const auto& one = code.chips();
  const auto& zero = code.negated_chips();
  const std::size_t len = one.size();
  out.resize(bits.size() * len);
  std::uint8_t* dst = out.data();
  for (const auto bit : bits) {
    CBMA_REQUIRE(bit == 0 || bit == 1, "bits must be binary");
    std::memcpy(dst, (bit ? one : zero).data(), len);
    dst += len;
  }
}

std::vector<std::uint8_t> despread_hard(std::span<const std::uint8_t> chips,
                                        const pn::PnCode& code) {
  CBMA_REQUIRE(!code.empty(), "despreading requires a code");
  const std::size_t len = code.length();
  CBMA_REQUIRE(chips.size() % len == 0, "chip count not a multiple of code length");
  std::vector<std::uint8_t> bits;
  bits.reserve(chips.size() / len);
  for (std::size_t b = 0; b < chips.size() / len; ++b) {
    int agree = 0;
    for (std::size_t i = 0; i < len; ++i) {
      agree += (chips[b * len + i] == code.chip(i)) ? 1 : -1;
    }
    bits.push_back(agree >= 0 ? 1 : 0);
  }
  return bits;
}

}  // namespace cbma::phy
