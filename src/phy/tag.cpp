#include "phy/tag.h"

#include "phy/spreader.h"
#include "util/expect.h"

namespace cbma::phy {

Tag::Tag(TagConfig config) : config_(std::move(config)) {
  CBMA_REQUIRE(!config_.code.empty(), "tag needs a PN code");
  CBMA_REQUIRE(config_.preamble_bits >= 1, "preamble must be at least one bit");
  CBMA_REQUIRE(config_.impedance_levels >= 1, "tag needs at least one impedance level");
  preamble_chips_ = spread(alternating_preamble(config_.preamble_bits), config_.code);
}

std::vector<std::uint8_t> Tag::chip_sequence(std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> bits;
  std::vector<std::uint8_t> out;
  chip_sequence_into(payload, bits, out);
  return out;
}

void Tag::chip_sequence_into(std::span<const std::uint8_t> payload,
                             std::vector<std::uint8_t>& bits_scratch,
                             std::vector<std::uint8_t>& out) const {
  frame_bits_into(payload, static_cast<std::uint8_t>(config_.id),
                  config_.preamble_bits, bits_scratch);
  spread_into(bits_scratch, config_.code, out);
}

void Tag::set_impedance_level(std::size_t level) {
  CBMA_REQUIRE(level < config_.impedance_levels, "impedance level out of range");
  impedance_level_ = level;
}

void Tag::step_impedance() {
  impedance_level_ = (impedance_level_ + 1) % config_.impedance_levels;
}

}  // namespace cbma::phy
