#include "phy/tag.h"

#include "phy/spreader.h"
#include "util/expect.h"

namespace cbma::phy {

Tag::Tag(TagConfig config) : config_(std::move(config)) {
  CBMA_REQUIRE(!config_.code.empty(), "tag needs a PN code");
  CBMA_REQUIRE(config_.preamble_bits >= 1, "preamble must be at least one bit");
  CBMA_REQUIRE(config_.impedance_levels >= 1, "tag needs at least one impedance level");
}

std::vector<std::uint8_t> Tag::chip_sequence(std::span<const std::uint8_t> payload) const {
  const auto bits = frame_bits(payload, static_cast<std::uint8_t>(config_.id),
                               config_.preamble_bits);
  return spread(bits, config_.code);
}

std::vector<std::uint8_t> Tag::preamble_chips() const {
  const auto bits = alternating_preamble(config_.preamble_bits);
  return spread(bits, config_.code);
}

void Tag::set_impedance_level(std::size_t level) {
  CBMA_REQUIRE(level < config_.impedance_levels, "impedance level out of range");
  impedance_level_ = level;
}

void Tag::step_impedance() {
  impedance_level_ = (impedance_level_ + 1) % config_.impedance_levels;
}

}  // namespace cbma::phy
