// DSSS spreading (§III-A "Encoding"): every frame bit is expanded to one
// code period of chips — the code itself for '1', its bitwise negation for
// '0' (footnote 2 convention). On the tag this is a single AND/XOR per chip;
// here it is a table copy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pn/code.h"

namespace cbma::phy {

/// Spread a bit sequence with `code`; output length = bits × code length.
std::vector<std::uint8_t> spread(std::span<const std::uint8_t> bits,
                                 const pn::PnCode& code);

/// Spread into a caller-owned buffer (resized; capacity is reused). Each bit
/// is a straight copy of the code's cached '1'/'0' waveform — no per-chip
/// branch and no allocation, the per-packet hot path.
void spread_into(std::span<const std::uint8_t> bits, const pn::PnCode& code,
                 std::vector<std::uint8_t>& out);

/// Hard-decision despread of an on/off chip sequence (inverse of `spread`
/// on a clean channel): majority vote of chip agreement per bit period.
std::vector<std::uint8_t> despread_hard(std::span<const std::uint8_t> chips,
                                        const pn::PnCode& code);

}  // namespace cbma::phy
