// CBMA frame format (§III-A):
//   [ preamble | length (1 B) | tag id (1 B) | payload (≤126 B) | CRC-16 (2 B) ]
//
// The default preamble is the one-byte alternating pattern 10101010; the
// Fig. 8(c) study sweeps the preamble length over 4..64 bits, so the
// preamble is configurable as any alternating-bit run. Bits are serialized
// MSB-first within each byte.
//
// The tag-id byte is an addition over the paper's four fields: the paper's
// receiver infers identity from the PN code alone, but under an
// asynchronous sliding correlator a wrong code at a lucky lag decodes a
// sign-consistent copy of another tag's bits (valid CRC included), so the
// identity must be verifiable inside the CRC-protected region. See
// DESIGN.md §4.4.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cbma::phy {

inline constexpr std::size_t kMaxPayloadBytes = 126;
inline constexpr std::size_t kDefaultPreambleBits = 8;

/// Alternating 1010… preamble of `n_bits` bits (starting with 1).
std::vector<std::uint8_t> alternating_preamble(std::size_t n_bits);

/// MSB-first bit expansion of bytes.
std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Inverse of bytes_to_bits; `bits.size()` must be a multiple of 8.
std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits);

/// Full frame bit sequence: preamble + length + tag id + payload + CRC.
std::vector<std::uint8_t> frame_bits(std::span<const std::uint8_t> payload,
                                     std::uint8_t tag_id,
                                     std::size_t preamble_bits = kDefaultPreambleBits);

/// frame_bits into a caller-owned buffer (resized; capacity is reused), so
/// the per-packet hot path does not allocate.
void frame_bits_into(std::span<const std::uint8_t> payload, std::uint8_t tag_id,
                     std::size_t preamble_bits, std::vector<std::uint8_t>& out);

/// Number of bits a frame with this payload occupies.
std::size_t frame_bit_count(std::size_t payload_bytes,
                            std::size_t preamble_bits = kDefaultPreambleBits);

struct ParsedFrame {
  std::uint8_t tag_id = 0;
  std::vector<std::uint8_t> payload;
  bool crc_ok = false;
};

/// Parse the post-preamble portion of a frame (length byte onwards) from a
/// decoded bit stream. Returns nullopt if the stream is too short for the
/// advertised length; otherwise a frame whose `crc_ok` reports integrity.
std::optional<ParsedFrame> parse_frame_body(std::span<const std::uint8_t> bits);

}  // namespace cbma::phy
