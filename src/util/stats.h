// Statistics helpers shared by tests, benches and the MAC layer: running
// moments, empirical CDFs, and binomial confidence intervals for error-rate
// estimates.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace cbma {

/// Single-pass running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  /// Combine another accumulator into this one (Chan's parallel update):
  /// the result is as if every sample of both had been add()ed here.
  void merge(const RunningStats& other);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;  ///< Throws std::invalid_argument when count() == 0.
  double max() const;  ///< Throws std::invalid_argument when count() == 0.

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical distribution over a collected sample set.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  double at(double x) const;

  /// Inverse CDF: smallest sample s with CDF(s) >= q, q in [0, 1].
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

  /// Evenly spaced (value, cumulative probability) pairs, suitable for
  /// printing a CDF curve like the paper's Fig. 10.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Wilson score interval for a binomial proportion — used to report error
/// rates with honest uncertainty at the trial counts the paper uses.
struct ProportionInterval {
  double estimate;
  double lo;
  double hi;
};

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z = 1.96);

/// Mean of a vector (0 for empty).
double mean_of(const std::vector<double>& v);

}  // namespace cbma
