// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library draws from an Rng that is
// explicitly seeded by the caller; the same seed reproduces the same
// experiment table bit-for-bit. `fork()` derives independent child streams
// so that adding draws in one component does not perturb another.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace cbma {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Seed this generator was constructed with (for reporting).
  std::uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);

  /// Standard normal draw scaled by `stddev` around `mean`.
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Two independent standard-normal draws via the Marsaglia polar method
  /// on raw engine words. Same distribution as gaussian(), half the engine
  /// draws and one log/sqrt per pair — the AWGN fill uses this on every
  /// sample of every synthesized window.
  void gaussian_pair(double& a, double& b);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponentially distributed draw with the given mean.
  double exponential(double mean);

  /// Uniform angle in [0, 2π).
  double phase();

  /// Derive an independent child stream; deterministic given this stream's
  /// state history.
  Rng fork();

  /// Shuffle a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace cbma
