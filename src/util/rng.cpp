#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cbma {

double Rng::uniform(double lo, double hi) {
  CBMA_REQUIRE(lo <= hi, "uniform bounds inverted");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  CBMA_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  CBMA_REQUIRE(stddev >= 0.0, "negative stddev");
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

void Rng::gaussian_pair(double& a, double& b) {
  double u, v, s;
  do {
    // 53-bit mantissa directly from the engine word: [0,1) without the
    // generate_canonical machinery.
    u = 2.0 * (static_cast<double>(engine_() >> 11) * 0x1.0p-53) - 1.0;
    v = 2.0 * (static_cast<double>(engine_() >> 11) * 0x1.0p-53) - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  a = u * m;
  b = v * m;
}

bool Rng::bernoulli(double p) {
  CBMA_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::exponential(double mean) {
  CBMA_REQUIRE(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::phase() { return uniform(0.0, 2.0 * units::kPi); }

Rng Rng::fork() {
  // A fresh engine seeded from this stream; children are independent of each
  // other and of subsequent draws from the parent.
  return Rng(engine_());
}

}  // namespace cbma
