#include "util/rng.h"

#include <algorithm>

#include "util/expect.h"
#include "util/units.h"

namespace cbma {

double Rng::uniform(double lo, double hi) {
  CBMA_REQUIRE(lo <= hi, "uniform bounds inverted");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  CBMA_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  CBMA_REQUIRE(stddev >= 0.0, "negative stddev");
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  CBMA_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::exponential(double mean) {
  CBMA_REQUIRE(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::phase() { return uniform(0.0, 2.0 * units::kPi); }

Rng Rng::fork() {
  // A fresh engine seeded from this stream; children are independent of each
  // other and of subsequent draws from the parent.
  return Rng(engine_());
}

}  // namespace cbma
