// Bounded time-series store + structured event log: the windowed substrate
// of the metrics plane (core::MetricsPlane owns sampling cadence and the
// exports). Numeric samples land in fixed-capacity per-series rings keyed
// by (name, scope) — scope "" is the global rollup, "cell=<id>" attributes
// a sample to one cell of the net:: layer — and typed events (severity,
// type, scope, value, detail) land in one bounded log with a drop counter.
// Memory is bounded by construction: at most kMaxSeries rings of
// window_capacity() points each plus kMaxEvents log entries; overflow
// increments a drop counter instead of growing.
//
// The contract mirrors telemetry/probe exactly: **disabled metrics are a
// strict identity**. When enabled() is false (the default), push(),
// push_event() and advance_window() return before touching anything, no
// storage is allocated, no clock is read, and no RNG is ever drawn (the
// store never draws randomness at all) — every bench table and
// BENCH_*.json stays byte-identical. Enable with CBMA_METRICS=<path>
// (the Prometheus exposition target) or set_enabled(true).
//
// Like util/probe, recording goes through one mutex-guarded registry:
// samples arrive at window cadence (per round / per sweep point), not per
// chip, so a single ordered store is the right tool. See DESIGN.md §12 for
// the full metrics-plane contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cbma::metrics {

/// Capacity bounds (compile-time; overflow counts drops, never grows).
inline constexpr std::size_t kMaxSeries = 512;
inline constexpr std::size_t kDefaultWindowCapacity = 256;
inline constexpr std::size_t kMaxEvents = 1024;

/// Event severity. severity_name() is the wire label the JSON "events"
/// section and metrics_inspect.py speak.
enum class Severity : std::uint8_t { kInfo, kWarning, kError, kCount };
const char* severity_name(Severity s);

/// One windowed sample: the window index it was recorded in, its value.
struct SeriesPoint {
  std::uint64_t window = 0;
  double value = 0.0;
};

/// One series' exported state: identity, unit, and its ring contents in
/// oldest → newest order (≤ window_capacity() points).
struct SeriesSnapshot {
  std::string name;
  std::string scope;  ///< "" = global rollup; "cell=3" = per-cell
  std::string unit;   ///< "" when dimensionless
  std::vector<SeriesPoint> points;
};

/// One structured event-log entry.
struct Event {
  std::uint64_t seq = 0;     ///< global record order
  std::uint64_t window = 0;  ///< window index at record time
  Severity severity = Severity::kInfo;
  std::string type;   ///< "roam", "code_slice_overflow", "watchdog", ...
  std::string scope;  ///< same scope vocabulary as series
  double value = 0.0;
  std::string detail;
};

struct Snapshot {
  std::uint64_t windows = 0;  ///< windows closed so far (advance_window calls)
  std::vector<SeriesSnapshot> series;  ///< sorted by (name, scope)
  std::vector<Event> events;           ///< seq order
  std::uint64_t dropped_points = 0;    ///< ring overwrites (oldest lost)
  std::uint64_t dropped_series = 0;    ///< pushes refused at kMaxSeries
  std::uint64_t dropped_events = 0;    ///< events refused at kMaxEvents
};

// --- master switch ---------------------------------------------------------

/// Initialized once from CBMA_METRICS (unset/empty = off, anything else =
/// on, value = the Prometheus exposition path); flip programmatically with
/// set_enabled().
bool enabled();
void set_enabled(bool on);

/// Where the Prometheus snapshot goes: the CBMA_METRICS value unless
/// overridden via set_export_path ("" = no file export).
std::string export_path();
void set_export_path(std::string path);

// --- recording (all strict no-ops when disabled) ---------------------------

/// Append one sample to series (name, scope), stamping the current window.
/// `unit` is recorded on first touch of a series and ignored afterwards.
void push(std::string_view name, std::string_view scope, double value,
          std::string_view unit = {});

/// Append one event to the bounded log.
void push_event(Severity severity, std::string_view type,
                std::string_view scope, double value, std::string_view detail);

/// Close the current window: samples pushed afterwards land in the next
/// one. Returns the new current window index.
std::uint64_t advance_window();
std::uint64_t current_window();

/// Ring depth for series created after the call (default
/// kDefaultWindowCapacity). Existing rings keep their size.
void set_window_capacity(std::size_t points);
std::size_t window_capacity();

// --- aggregation -----------------------------------------------------------

/// Copy of everything recorded so far. Safe to call concurrently with
/// recording (single registry lock), though exports normally run after the
/// workers joined.
Snapshot snapshot();

/// Drop every series, event, drop counter and the window index. The
/// enabled flag and export path are unchanged.
void reset();

/// Live series count — 0 proves the off path never stored anything (the
/// metrics-off identity test asserts this).
std::size_t series_count();

// --- Prometheus text exposition --------------------------------------------

/// Render a snapshot as Prometheus text exposition format: one gauge per
/// series carrying its latest value, scope rendered as a label
/// ("cell=3" → {cell="3"}), names sanitized to the metric charset with a
/// "cbma_" prefix, plus meta gauges (windows, series/event totals, drops).
std::string prometheus_text(const Snapshot& snap);

/// Atomically rewrite `path` with prometheus_text(snapshot()): write to
/// "<path>.tmp", then rename over the target, so a live scraper never sees
/// a torn file. Returns false with a stderr diagnostic on I/O failure.
bool write_prometheus(const std::string& path);

}  // namespace cbma::metrics
