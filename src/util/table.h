// Minimal console table renderer so every bench prints the same row/series
// layout as the paper's tables and figures, with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace cbma {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);
  /// Format a proportion as a percentage string, e.g. "12.34%".
  static std::string percent(double p, int precision = 2);

  /// Render with column alignment and a header separator.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

  /// Cell access for consumers that re-emit the table in another format
  /// (the RunRecorder mirrors every printed table into BENCH_*.json).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cbma
