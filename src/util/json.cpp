#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cbma::util {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  std::string s(buf, res.ptr);
  // to_chars may emit "1e+20"-style exponents, which are valid JSON, but a
  // bare integer mantissa like "5" stays an integer token — fine either way.
  return s;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_.push_back(',');
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += json_quote(k);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      fail("malformed number");
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(k)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace cbma::util
