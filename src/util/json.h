// Minimal JSON support for the experiment layer: a streaming writer with
// deterministic number formatting (shortest round-trip via std::to_chars),
// and a small recursive-descent parser used by tests and tooling to
// validate the BENCH_*.json documents the recorder emits. Not a general
// JSON library — just what structured bench results need.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cbma::util {

/// Escape a string for embedding in a JSON document (adds the quotes).
std::string json_quote(const std::string& s);

/// Deterministic JSON number formatting: shortest representation that
/// round-trips the double (std::to_chars), so identical results serialize
/// to identical bytes regardless of locale or thread count.
std::string json_number(double v);

/// Streaming writer producing a compact single-line document. Scope
/// management is explicit; keys apply to the next value inside an object.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);  // also covers std::size_t
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Parsed JSON value (tests / validation only; not performance-sensitive).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool has(const std::string& k) const { return object.count(k) != 0; }
  const JsonValue& at(const std::string& k) const { return object.at(k); }
};

/// Parse a complete JSON document; throws std::runtime_error with a byte
/// offset on malformed input.
JsonValue json_parse(const std::string& text);

}  // namespace cbma::util
