#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/expect.h"

namespace cbma {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  // A silent 0.0 from an empty accumulator (e.g. a sweep point whose every
  // trial failed) would masquerade as a real measurement in BENCH JSON.
  CBMA_REQUIRE(n_ > 0, "min() of empty RunningStats — check count() first");
  return min_;
}

double RunningStats::max() const {
  CBMA_REQUIRE(n_ > 0, "max() of empty RunningStats — check count() first");
  return max_;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  CBMA_REQUIRE(!sorted_.empty(), "CDF needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  CBMA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of range");
  if (q <= 0.0) return sorted_.front();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t points) const {
  CBMA_REQUIRE(points >= 2, "a CDF curve needs at least two points");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  CBMA_REQUIRE(trials > 0, "interval requires at least one trial");
  CBMA_REQUIRE(successes <= trials, "successes exceed trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

}  // namespace cbma
