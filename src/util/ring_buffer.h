// Power-of-two ring buffer indexed by *absolute* stream position — the
// storage discipline of the streaming receiver (DESIGN.md §10). The buffer
// holds a contiguous span [begin, end) of an unbounded stream: push()
// appends at `end`, release() advances `begin`, and operator[] takes the
// absolute position, so client code never translates stream positions into
// storage offsets (the mask does it). Capacity doubles lazily when the live
// span outgrows it and then persists, so a client whose live span is
// bounded (the receiver's detection window) reaches a fixed high-water
// capacity and allocates nothing afterwards.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/expect.h"

namespace cbma::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t initial_capacity = 4096) {
    std::size_t cap = 2;
    while (cap < initial_capacity) cap *= 2;
    data_.resize(cap);
  }

  /// Absolute position of the oldest retained element.
  std::uint64_t begin() const { return begin_; }
  /// Absolute position one past the newest element (== total pushed since
  /// the last clear()).
  std::uint64_t end() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  std::size_t capacity() const { return data_.size(); }
  /// Resident storage — the O(window) quantity the streaming bench tracks.
  std::size_t bytes() const { return data_.capacity() * sizeof(T); }

  void push(const T& value) {
    if (size() == data_.size()) grow();
    data_[static_cast<std::size_t>(end_ & mask())] = value;
    ++end_;
  }

  /// Element at absolute position `pos`; must lie in [begin, end).
  const T& operator[](std::uint64_t pos) const {
    return data_[static_cast<std::size_t>(pos & mask())];
  }

  /// Drop everything before `floor` (monotonic; clamped to end()).
  void release(std::uint64_t floor) {
    if (floor > begin_) begin_ = std::min(floor, end_);
  }

  /// Copy the absolute range [from, to) into `out` (resized to fit).
  void copy_out(std::uint64_t from, std::uint64_t to, std::vector<T>& out) const {
    CBMA_REQUIRE(from >= begin_ && to <= end_ && from <= to,
                 "ring copy range outside retained window");
    const std::size_t n = static_cast<std::size_t>(to - from);
    out.resize(n);
    const std::size_t lo = static_cast<std::size_t>(from & mask());
    const std::size_t head = std::min(n, data_.size() - lo);
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(lo), head, out.begin());
    std::copy_n(data_.begin(), n - head,
                out.begin() + static_cast<std::ptrdiff_t>(head));
  }

  /// Reset positions to 0. Capacity (the high-water mark) is kept, so a
  /// reused session does not re-grow.
  void clear() { begin_ = end_ = 0; }

 private:
  std::uint64_t mask() const { return data_.size() - 1; }

  void grow() {
    std::vector<T> bigger(data_.size() * 2);
    const std::uint64_t big_mask = bigger.size() - 1;
    for (std::uint64_t pos = begin_; pos < end_; ++pos) {
      bigger[static_cast<std::size_t>(pos & big_mask)] =
          data_[static_cast<std::size_t>(pos & mask())];
    }
    data_ = std::move(bigger);
  }

  std::vector<T> data_;
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;
};

}  // namespace cbma::util
