#include "util/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

namespace cbma::metrics {
namespace {

struct Series {
  std::string unit;
  std::vector<SeriesPoint> ring;  ///< ring.capacity fixed at creation
  std::size_t next = 0;
  std::size_t filled = 0;
  std::size_t capacity = 0;
};

/// One mutex-guarded store for the process (window-cadence writes, not a
/// hot path). Keyed by (name, scope) so the same metric fans out across
/// cells without colliding with its global rollup.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  std::mutex mu;
  std::map<std::pair<std::string, std::string>, Series> series;
  std::vector<Event> events;
  std::uint64_t window = 0;   ///< current (open) window index
  std::uint64_t closed = 0;   ///< windows closed so far
  std::uint64_t event_seq = 0;
  std::uint64_t dropped_points = 0;
  std::uint64_t dropped_series = 0;
  std::uint64_t dropped_events = 0;
  std::size_t ring_capacity = kDefaultWindowCapacity;
};

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("CBMA_METRICS");
    return e != nullptr && *e != '\0';
  }()};
  return flag;
}

std::mutex& path_mutex() {
  static std::mutex mu;
  return mu;
}

std::string& path_storage() {
  static std::string path{[] {
    const char* e = std::getenv("CBMA_METRICS");
    return e != nullptr ? std::string(e) : std::string();
  }()};
  return path;
}

/// Prometheus metric charset: [a-zA-Z0-9_]; everything else (dots, slashes)
/// becomes '_'. A leading digit gets an extra '_' (the "cbma_" prefix
/// already prevents that, but sanitize defensively).
std::string sanitize_metric_name(const std::string& name) {
  std::string out = "cbma_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// "cell=3" → {cell="3"}; "" → no labels; a scope without '=' becomes a
/// generic {scope="..."} label so malformed scopes stay parseable.
std::string scope_labels(const std::string& scope) {
  if (scope.empty()) return {};
  const auto eq = scope.find('=');
  std::string key = eq == std::string::npos ? "scope" : scope.substr(0, eq);
  std::string value = eq == std::string::npos ? scope : scope.substr(eq + 1);
  for (auto& c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  std::string escaped;
  for (const char c : value) {
    if (c == '\\' || c == '"') escaped.push_back('\\');
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped.push_back(c);
  }
  return "{" + key + "=\"" + escaped + "\"}";
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kCount: break;
  }
  return "unknown";
}

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::string export_path() {
  const std::lock_guard<std::mutex> lock(path_mutex());
  return path_storage();
}

void set_export_path(std::string path) {
  const std::lock_guard<std::mutex> lock(path_mutex());
  path_storage() = std::move(path);
}

void push(std::string_view name, std::string_view scope, double value,
          std::string_view unit) {
  if (!enabled()) return;
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  auto key = std::make_pair(std::string(name), std::string(scope));
  auto it = r.series.find(key);
  if (it == r.series.end()) {
    if (r.series.size() >= kMaxSeries) {
      ++r.dropped_series;
      return;
    }
    Series s;
    s.unit = std::string(unit);
    s.capacity = r.ring_capacity;
    s.ring.resize(s.capacity);
    it = r.series.emplace(std::move(key), std::move(s)).first;
  }
  Series& s = it->second;
  if (s.capacity == 0) {
    ++r.dropped_points;
    return;
  }
  if (s.filled == s.capacity) ++r.dropped_points;  // overwrites the oldest
  s.ring[s.next] = {r.window, value};
  s.next = (s.next + 1) % s.capacity;
  s.filled = std::min(s.filled + 1, s.capacity);
}

void push_event(Severity severity, std::string_view type,
                std::string_view scope, double value, std::string_view detail) {
  if (!enabled()) return;
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (r.events.size() >= kMaxEvents) {
    ++r.dropped_events;
    return;
  }
  Event e;
  e.seq = r.event_seq++;
  e.window = r.window;
  e.severity = severity;
  e.type = std::string(type);
  e.scope = std::string(scope);
  e.value = value;
  e.detail = std::string(detail);
  r.events.push_back(std::move(e));
}

std::uint64_t advance_window() {
  if (!enabled()) return 0;
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  ++r.closed;
  return ++r.window;
}

std::uint64_t current_window() {
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.window;
}

void set_window_capacity(std::size_t points) {
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.ring_capacity = points;
}

std::size_t window_capacity() {
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.ring_capacity;
}

Snapshot snapshot() {
  Snapshot out;
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  out.windows = r.closed;
  out.dropped_points = r.dropped_points;
  out.dropped_series = r.dropped_series;
  out.dropped_events = r.dropped_events;
  out.series.reserve(r.series.size());
  for (const auto& [key, s] : r.series) {
    SeriesSnapshot snap;
    snap.name = key.first;
    snap.scope = key.second;
    snap.unit = s.unit;
    snap.points.reserve(s.filled);
    const std::size_t start =
        s.filled == s.capacity ? s.next : 0;  // oldest slot
    for (std::size_t k = 0; k < s.filled; ++k) {
      snap.points.push_back(s.ring[(start + k) % s.capacity]);
    }
    out.series.push_back(std::move(snap));
  }
  out.events = r.events;
  return out;
}

void reset() {
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.series.clear();
  r.events.clear();
  r.window = 0;
  r.closed = 0;
  r.event_seq = 0;
  r.dropped_points = 0;
  r.dropped_series = 0;
  r.dropped_events = 0;
}

std::size_t series_count() {
  auto& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.series.size();
}

std::string prometheus_text(const Snapshot& snap) {
  std::string out;
  out += "# CBMA metrics-plane exposition (DESIGN.md \xC2\xA7"
         "12); rewritten atomically per window.\n";
  out += "# TYPE cbma_metrics_windows_total counter\n";
  out += "cbma_metrics_windows_total ";
  append_number(out, static_cast<double>(snap.windows));
  out += "\n# TYPE cbma_metrics_series gauge\ncbma_metrics_series ";
  append_number(out, static_cast<double>(snap.series.size()));
  out += "\n# TYPE cbma_metrics_events_total counter\n"
         "cbma_metrics_events_total ";
  append_number(out, static_cast<double>(snap.events.size()));
  out += "\n# TYPE cbma_metrics_dropped_total counter\n"
         "cbma_metrics_dropped_total ";
  append_number(out, static_cast<double>(snap.dropped_points +
                                         snap.dropped_series +
                                         snap.dropped_events));
  out += "\n";

  // Snapshot semantics: each series exposes its latest value as a gauge.
  // The snapshot is (name, scope)-sorted, so every metric's scoped rows
  // are contiguous and the TYPE line is emitted once per metric name.
  std::string prev_name;
  for (const auto& s : snap.series) {
    if (s.points.empty()) continue;
    const std::string metric = sanitize_metric_name(s.name);
    if (s.name != prev_name) {
      if (!s.unit.empty()) out += "# HELP " + metric + " unit: " + s.unit + "\n";
      out += "# TYPE " + metric + " gauge\n";
      prev_name = s.name;
    }
    out += metric + scope_labels(s.scope) + " ";
    append_number(out, s.points.back().value);
    out += "\n";
  }

  std::uint64_t by_severity[static_cast<std::size_t>(Severity::kCount)] = {};
  for (const auto& e : snap.events) {
    if (e.severity < Severity::kCount) {
      ++by_severity[static_cast<std::size_t>(e.severity)];
    }
  }
  out += "# TYPE cbma_events gauge\n";
  for (std::size_t s = 0; s < static_cast<std::size_t>(Severity::kCount); ++s) {
    out += std::string("cbma_events{severity=\"") +
           severity_name(static_cast<Severity>(s)) + "\"} ";
    append_number(out, static_cast<double>(by_severity[s]));
    out += "\n";
  }
  return out;
}

bool write_prometheus(const std::string& path) {
  const std::string text = prometheus_text(snapshot());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n", tmp.c_str());
    return false;
  }
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "metrics: failed writing %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "metrics: cannot rename %s over %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace cbma::metrics
