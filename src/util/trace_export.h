// Chrome trace_event JSON export of telemetry captures: span occurrences
// become "ph":"X" duration slices on their recording thread's track, and
// flight-recorder frames become "ph":"i" instant events carrying the
// per-frame causal fields as args. The output loads directly in
// chrome://tracing and in Perfetto's legacy-trace importer
// (ui.perfetto.dev → "Open trace file").
#pragma once

#include <span>
#include <string>

#include "util/telemetry.h"

namespace cbma::util {

/// Serialize span slices + frame instants into one trace_event document
/// ({"traceEvents": [...]}). Timestamps are microseconds on the shared
/// monotonic clock, rebased so the earliest event sits at t = 0.
std::string chrome_trace_json(std::span<const telemetry::TraceEvent> events,
                              std::span<const telemetry::FrameTrace> frames);

/// Write chrome_trace_json to `path`; returns false (with a stderr
/// diagnostic) when the file cannot be written.
bool write_chrome_trace(const std::string& path,
                        std::span<const telemetry::TraceEvent> events,
                        std::span<const telemetry::FrameTrace> frames);

}  // namespace cbma::util
