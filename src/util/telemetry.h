// Pipeline-wide tracing & metrics: RAII span timers, monotonic counters and
// a bounded flight recorder of per-frame structured events, all recorded
// into lock-free per-thread sinks and aggregated on demand.
//
// The contract that makes this safe to compile into every hot path:
// **disabled telemetry is a strict identity**. When enabled() is false (the
// default), ScopedSpan never reads the clock, count() and record_frame()
// return immediately, no thread sink is ever allocated, and no RNG is
// touched (telemetry never draws randomness at all) — so every existing
// bench table and BENCH_*.json stays byte-identical, the same contract
// rfsim::ImpairmentSuite pins for its stages. Enable with CBMA_TELEMETRY=1
// (or set_enabled(true)); capture per-event Chrome/Perfetto traces with
// CBMA_TRACE=<path> on top.
//
// Span and counter identities are compile-time enums, so the hot path is an
// array index into the calling thread's sink — no string hashing, no map,
// no lock. Sinks register once under a mutex on first use per thread and
// are owned by the process-lifetime registry (a worker thread exiting does
// not invalidate its recorded data). Aggregation (snapshot()) merges all
// sinks and must run while no worker is recording — in practice after
// parallel_for joined, which is how SweepRunner and the benches use it.
// Durations are histogrammed (log₂ buckets, 4 linear sub-buckets each) so
// percentiles cost O(1) memory per span; quantiles are accurate to the
// sub-bucket width (≤ 12.5 %). See DESIGN.md §7 for the naming scheme and
// the full observability contract.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/timer.h"

namespace cbma::telemetry {

/// Every timed stage of the pipeline. Names follow "layer/stage"
/// (span_name); add new stages at the end and name them there.
enum class Span : std::uint8_t {
  kTransmitTotal,        ///< one CbmaSystem::transmit call, end to end
  kTransmitSpread,       ///< framing + spreading + modulation (chip expansion)
  kTransmitImpairments,  ///< tag-side fault-injection draws
  kChannelSynthesis,     ///< rfsim::Channel::receive_into window synthesis
  kRxProcess,            ///< rx::Receiver::process_iq, end to end
  kRxFrameSync,          ///< energy-envelope frame synchronization
  kRxDetect,             ///< correlation user detection (incl. SIC)
  kRxDecode,             ///< per-user coherent decode
  kSweepPoint,           ///< one SweepRunner grid-point body
  kSweepRun,             ///< one SweepRunner::run, end to end
  kBenchIteration,       ///< bench_kernels manual-timed iteration
  kNetRound,             ///< one net::Network::run_round, end to end
  kNetAssociate,         ///< association / hysteresis-roaming pass
  kNetCellRound,         ///< one cell's MAC round inside a network round
  kCount
};
inline constexpr std::size_t kSpanCount = static_cast<std::size_t>(Span::kCount);
const char* span_name(Span s);

/// Monotonic event counters ("layer.event" naming, counter_name).
enum class Counter : std::uint8_t {
  kTransmitPackets,       ///< transmit() calls
  kTransmitFramesSent,    ///< frames put on the air (sum of group sizes)
  kRxFramesDecoded,       ///< CRC+id verified frames
  kRxSyncAttempts,        ///< frame-sync triggers examined
  kRxDetections,          ///< correlation peaks above threshold
  kRxOutcomeOk,           ///< per-frame DecodeOutcome tallies…
  kRxOutcomeNoFrameSync,
  kRxOutcomeNotDetected,
  kRxOutcomeTruncated,
  kRxOutcomeBadCrc,
  kRxOutcomeIdMismatch,
  kChannelWindows,        ///< synthesized receive windows
  kChannelSamples,        ///< complex samples synthesized
  kImpairmentClockPerturbs,
  kImpairmentSwitchJitters,
  kImpairmentDropoutGates,     ///< envelopes gated by dropout bursts
  kImpairmentImpulsiveBursts,  ///< impulsive bursts injected
  kImpairmentAdcClippedSamples,
  kSweepPoints,           ///< grid points executed
  kSweepWorkers,          ///< worker threads launched across runs
  kArqOffered,
  kArqDelivered,
  kArqDropped,
  kArqTransmissions,
  kNodeSelectAbandoned,   ///< slots below the bad-ACK threshold
  kNodeSelectReplaced,    ///< slots actually swapped for a candidate
  kNodeSelectAnnealed,    ///< non-improving candidates accepted
  kRxDetectNaiveBatches,  ///< detection peak batches run on the naive engine
  kRxDetectFftBatches,    ///< detection peak batches run on the FFT engine
  kNetRoundsRun,          ///< multi-cell network MAC rounds completed
  kNetCellRounds,         ///< per-cell MAC rounds inside network rounds
  kNetTagRoams,           ///< tags re-associated by the roaming pass
  kNetIntercellInterferers,  ///< foreign-gateway leakage terms summed in
  kCount
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);
const char* counter_name(Counter c);

/// One frame's flight-recorder entry: the causal context the paper's
/// evaluation reasons about (who sent, how strongly, what the correlator
/// saw, why the frame lived or died, which faults were active).
struct FrameTrace {
  std::uint64_t seq = 0;        ///< global order stamp (assigned on record)
  std::uint64_t ts_ns = 0;      ///< util::monotonic_ns at record time
  std::uint32_t tag_id = 0;     ///< group slot / code index
  std::uint32_t pn_code_length = 0;
  double correlation = 0.0;     ///< normalized correlation peak
  double margin = 0.0;          ///< peak minus the detection threshold
  double cfo_hz = 0.0;          ///< carrier frequency offset on the air
  double power_dbm = 0.0;       ///< received backscatter power
  std::uint32_t impedance_level = 0;
  std::uint8_t outcome = 0;     ///< rx::DecodeOutcome as an integer
  std::uint8_t impairment_gates = 0;  ///< bit per enabled stage, see masks
};

/// FrameTrace::impairment_gates bit assignments (ImpairmentConfig order).
inline constexpr std::uint8_t kGateDropout = 1u << 0;
inline constexpr std::uint8_t kGateDrift = 1u << 1;
inline constexpr std::uint8_t kGateSwitching = 1u << 2;
inline constexpr std::uint8_t kGateImpulsive = 1u << 3;
inline constexpr std::uint8_t kGateAdc = 1u << 4;

/// One recorded span occurrence, kept only when trace capture is on — the
/// raw material of the Chrome/Perfetto timeline export.
struct TraceEvent {
  Span span = Span::kTransmitTotal;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< registry-assigned thread index
};

// --- master switches -------------------------------------------------------

/// Master switch. Initialized once from CBMA_TELEMETRY (unset/empty/"0" =
/// off); flip programmatically with set_enabled().
bool enabled();
void set_enabled(bool on);

/// Per-event trace capture (needs enabled() too). Initialized from
/// CBMA_TRACE being set to a non-empty path.
bool trace_enabled();
void set_trace_enabled(bool on);

/// The CBMA_TRACE path ("" when unset) — where finish()-style exporters
/// write the Chrome trace.
std::string trace_path();

// --- hot-path recording ----------------------------------------------------

void record_span(Span s, std::uint64_t start_ns, std::uint64_t dur_ns);
void add_count(Counter c, std::uint64_t n);
void record_frame(FrameTrace frame);  ///< seq/ts are stamped inside

inline void count(Counter c, std::uint64_t n = 1) {
  if (enabled()) add_count(c, n);
}

}  // namespace cbma::telemetry

/// Hierarchical-profiler hook (util/profiler, DESIGN.md §13): ScopedSpan
/// feeds the caller-path attribution tree whenever the profiler is live.
/// Forward-declared so every span site keeps its single telemetry.h
/// include; implemented in util/profiler.cpp. Signatures must match
/// util/profiler.h exactly.
namespace cbma::profiler {
bool enabled();
void on_span_enter(telemetry::Span s);
void on_span_exit(telemetry::Span s, std::uint64_t dur_ns);
}  // namespace cbma::profiler

namespace cbma::telemetry {

/// RAII span timer: reads the clock only when telemetry or the profiler is
/// enabled at construction, records on destruction. The off path costs two
/// relaxed atomic loads and nothing else — no clock read, no allocation.
/// The enabled flags are sampled once (bit 1 = telemetry, bit 2 =
/// profiler), so a mid-span flip cannot unbalance the profiler's stack.
class ScopedSpan {
 public:
  explicit ScopedSpan(Span s) : span_(s) {
    const bool telem = enabled();
    const bool prof = profiler::enabled();
    if (telem || prof) {
      flags_ = static_cast<std::uint8_t>((telem ? 1u : 0u) | (prof ? 2u : 0u));
      if (prof) profiler::on_span_enter(s);
      start_ns_ = util::monotonic_ns();
    }
  }
  ~ScopedSpan() {
    if (flags_ == 0) return;
    const std::uint64_t dur_ns = util::monotonic_ns() - start_ns_;
    if ((flags_ & 1u) != 0) record_span(span_, start_ns_, dur_ns);
    if ((flags_ & 2u) != 0) profiler::on_span_exit(span_, dur_ns);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Span span_;
  std::uint64_t start_ns_ = 0;
  std::uint8_t flags_ = 0;
};

// --- duration histogram ----------------------------------------------------
// The log₂-octave / 4-linear-sub-bucket histogram every span duration lands
// in. Public because two consumers beyond snapshot() need the raw buckets:
// the metrics plane (util/metrics + core/metrics_plane) computes *per-window*
// percentiles from bucket deltas between samples, and the percentile edge
// tests pin the bucketing math itself.

/// Bucket count covering the full uint64 ns range (indices 0–7 are exact
/// small values; above that each octave splits into quarters).
inline constexpr std::size_t kHistogramBuckets = 256;

/// The bucket a duration lands in. Quantile error ≤ 12.5 % (sub-bucket
/// width), exact below 8 ns.
std::size_t histogram_bucket_of(std::uint64_t ns);

/// Midpoint of a bucket — the value quantiles report for it.
double histogram_bucket_mid(std::size_t idx);

/// Quantile q ∈ [0,1] over a raw bucket array holding `count` samples:
/// walks cumulative counts to rank q·(count−1). Returns `fallback` when the
/// histogram is empty or the rank walks off the end (count inconsistent
/// with the buckets).
double histogram_quantile(const std::uint64_t* buckets, std::uint64_t count,
                          double q, double fallback);

/// Raw merged histogram of one span across every thread sink — the
/// windowing substrate: sample twice, subtract bucket-wise, and
/// histogram_quantile the delta for per-window percentiles.
struct SpanHistogram {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// Merged per-span raw histograms (every span, zero-count ones included so
/// callers can index by Span). Same safety contract as snapshot(): call
/// only while no worker is recording.
std::array<SpanHistogram, kSpanCount> span_histograms();

/// Merged raw counter values (zeros included, indexable by Counter). Same
/// safety contract as snapshot().
std::array<std::uint64_t, kCounterCount> counter_totals();

// --- aggregation -----------------------------------------------------------

struct SpanSnapshot {
  Span id = Span::kTransmitTotal;
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;  ///< histogram quantiles (≤ 12.5 % bucket error)
  double p90_ns = 0.0;
  double p99_ns = 0.0;
};

struct CounterSnapshot {
  Counter id = Counter::kTransmitPackets;
  std::string name;
  std::uint64_t value = 0;
};

struct Snapshot {
  std::vector<SpanSnapshot> spans;        ///< spans with count > 0 only
  std::vector<CounterSnapshot> counters;  ///< non-zero counters only
  std::vector<FrameTrace> frames;   ///< merged rings, seq order, last N
  std::vector<TraceEvent> events;   ///< merged, ts order (trace capture on)
  std::size_t threads = 0;          ///< sinks that recorded anything
};

/// Merge every thread sink. Must not race recording — call after workers
/// joined (SweepRunner::run returns ⇒ safe).
Snapshot snapshot();

/// Zero every sink (counts, histograms, rings, events). Sinks stay
/// registered; sink_count() is unchanged.
void reset();

/// Number of registered per-thread sinks — 0 proves the off path never
/// allocated (the telemetry-off identity test asserts this).
std::size_t sink_count();

/// Flight-recorder depth per thread (also the merged export cap). Applies
/// to sinks created after the call; default 256.
void set_flight_recorder_capacity(std::size_t frames);
std::size_t flight_recorder_capacity();

}  // namespace cbma::telemetry
