#include "util/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/json.h"

namespace cbma::util {

namespace {

/// Microseconds with sub-µs precision — the unit trace_event mandates.
double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

std::string chrome_trace_json(std::span<const telemetry::TraceEvent> events,
                              std::span<const telemetry::FrameTrace> frames) {
  // Rebase to the earliest timestamp so the viewer opens at t = 0 instead
  // of hours into the steady clock's epoch.
  std::uint64_t t0 = ~0ull;
  for (const auto& e : events) t0 = std::min(t0, e.ts_ns);
  for (const auto& f : frames) t0 = std::min(t0, f.ts_ns);
  if (t0 == ~0ull) t0 = 0;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& e : events) {
    w.begin_object();
    w.key("name").value(telemetry::span_name(e.span));
    w.key("ph").value("X");
    w.key("ts").value(to_us(e.ts_ns - t0));
    w.key("dur").value(to_us(e.dur_ns));
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.end_object();
  }
  for (const auto& f : frames) {
    w.begin_object();
    w.key("name").value("frame");
    w.key("ph").value("i");
    w.key("ts").value(to_us(f.ts_ns - t0));
    w.key("pid").value(1);
    w.key("tid").value(0);
    w.key("s").value("g");  // global-scope instant: visible on every track
    w.key("args").begin_object();
    w.key("seq").value(f.seq);
    w.key("tag").value(static_cast<std::uint64_t>(f.tag_id));
    w.key("code_length").value(static_cast<std::uint64_t>(f.pn_code_length));
    w.key("correlation").value(f.correlation);
    w.key("margin").value(f.margin);
    w.key("cfo_hz").value(f.cfo_hz);
    w.key("power_dbm").value(f.power_dbm);
    w.key("impedance_level")
        .value(static_cast<std::uint64_t>(f.impedance_level));
    w.key("outcome").value(static_cast<std::uint64_t>(f.outcome));
    w.key("impairment_gates")
        .value(static_cast<std::uint64_t>(f.impairment_gates));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ns");
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path,
                        std::span<const telemetry::TraceEvent> events,
                        std::span<const telemetry::FrameTrace> frames) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open trace file %s for writing\n",
                 path.c_str());
    return false;
  }
  out << chrome_trace_json(events, frames) << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: failed writing trace file %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace cbma::util
