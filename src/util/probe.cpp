#include "util/probe.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace cbma::probe {
namespace {

/// One mutex-guarded store for every captured record. The probe is an
/// opt-in debugging instrument with bounded capture depth, so a lock per
/// record is acceptable — and a single ordered store keeps the dump format
/// trivial and the capture TSan-clean under parallel sweeps.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  void add_tap(TapRecord record) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (per_tap_count_[static_cast<std::size_t>(record.tap)] >=
        kMaxRecordsPerTap) {
      ++dropped_taps_;
      return;
    }
    ++per_tap_count_[static_cast<std::size_t>(record.tap)];
    record.seq = next_seq_++;
    taps_.push_back(std::move(record));
  }

  void add_link(LinkQualitySample sample) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (link_.size() >= kMaxLinkQualitySamples) {
      ++dropped_link_;
      return;
    }
    sample.seq = next_seq_++;
    link_.push_back(sample);
  }

  Capture snapshot() {
    const std::lock_guard<std::mutex> lock(mu_);
    Capture out;
    out.taps = taps_;
    out.link = link_;
    out.dropped_taps = dropped_taps_;
    out.dropped_link = dropped_link_;
    return out;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    taps_.clear();
    link_.clear();
    for (auto& c : per_tap_count_) c = 0;
    dropped_taps_ = 0;
    dropped_link_ = 0;
    next_seq_ = 0;
  }

  std::size_t tap_count() {
    const std::lock_guard<std::mutex> lock(mu_);
    return taps_.size();
  }

  std::string dump_path() {
    const std::lock_guard<std::mutex> lock(mu_);
    return dump_path_;
  }

  void set_dump_path(std::string path) {
    const std::lock_guard<std::mutex> lock(mu_);
    dump_path_ = std::move(path);
  }

 private:
  Registry() {
    if (const char* e = std::getenv("CBMA_PROBE")) dump_path_ = e;
  }

  std::mutex mu_;
  std::vector<TapRecord> taps_;
  std::vector<LinkQualitySample> link_;
  std::size_t per_tap_count_[kTapCount] = {};
  std::size_t dropped_taps_ = 0;
  std::size_t dropped_link_ = 0;
  std::uint64_t next_seq_ = 0;
  std::string dump_path_;
};

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("CBMA_PROBE");
    return e != nullptr && *e != '\0';
  }()};
  return flag;
}

thread_local std::uint64_t t_point = 0;

}  // namespace

const char* tap_name(Tap t) {
  switch (t) {
    case Tap::kExcitationEnvelope: return "excitation_envelope";
    case Tap::kCompositeIq: return "composite_iq";
    case Tap::kSyncEnergy: return "sync_energy";
    case Tap::kCorrelationProfile: return "correlation_profile";
    case Tap::kSoftBits: return "soft_bits";
    case Tap::kCount: break;
  }
  return "unknown";
}

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::string dump_path() { return Registry::instance().dump_path(); }
void set_dump_path(std::string path) {
  Registry::instance().set_dump_path(std::move(path));
}

void record_tap(Tap t, std::uint32_t context, std::span<const double> samples) {
  if (!enabled()) return;
  TapRecord record;
  record.tap = t;
  record.point = t_point;
  record.context = context;
  const std::size_t n = std::min(samples.size(), kMaxSamplesPerRecord);
  record.data.assign(samples.begin(), samples.begin() + n);
  Registry::instance().add_tap(std::move(record));
}

void record_tap_iq(Tap t, std::uint32_t context,
                   std::span<const std::complex<double>> iq) {
  if (!enabled()) return;
  TapRecord record;
  record.tap = t;
  record.point = t_point;
  record.context = context;
  record.complex_iq = true;
  const std::size_t n = std::min(iq.size(), kMaxSamplesPerRecord);
  record.data.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    record.data.push_back(iq[i].real());
    record.data.push_back(iq[i].imag());
  }
  Registry::instance().add_tap(std::move(record));
}

void record_link_quality(const LinkQualitySample& sample) {
  if (!enabled()) return;
  LinkQualitySample stamped = sample;
  stamped.point = t_point;
  Registry::instance().add_link(stamped);
}

ScopedPoint::ScopedPoint(std::uint64_t point) : active_(enabled()) {
  if (active_) {
    previous_ = t_point;
    t_point = point;
  }
}

ScopedPoint::~ScopedPoint() {
  if (active_) t_point = previous_;
}

std::uint64_t current_point() { return t_point; }

Capture snapshot() { return Registry::instance().snapshot(); }

void reset() { Registry::instance().reset(); }

std::size_t tap_count() { return Registry::instance().tap_count(); }

}  // namespace cbma::probe
