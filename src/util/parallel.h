// Deterministic sweep machinery shared by benches, examples and tests:
// a work-stealing parallel_for over hardware threads plus the per-point
// seed mixer that keeps Monte-Carlo results independent of how the sweep
// is parallelized. Promoted from bench/common.h so every consumer of the
// library can run paper-scale sweeps the same way.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cbma::util {

/// Deterministic per-point seed: mixing the base seed with the point index
/// (splitmix64 finalizer) keeps results independent of sweep parallelism.
inline std::uint64_t point_seed(std::uint64_t base_seed, std::size_t point_index) {
  std::uint64_t x = base_seed + 0x9E3779B97F4A7C15ull * (point_index + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x;
}

/// Run f(0..n-1) across threads; f must only touch its own slot.
/// `max_workers` caps the pool (0 = hardware concurrency) — the sweep
/// golden test uses it to prove results are thread-count independent.
///
/// Exception safety: a throw escaping f(i) on a worker would reach the
/// thread boundary and std::terminate the whole process, so the first
/// exception is captured, the remaining indices are drained unexecuted,
/// every worker is joined, and the exception is rethrown on the calling
/// thread. Indices that completed before the failure keep their results
/// (partial sweeps stay usable); which later indices were skipped is
/// scheduling-dependent.
inline void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f,
                         std::size_t max_workers = 0) {
  if (max_workers == 0) {
    max_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t workers = std::min<std::size_t>(max_workers, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        if (failed.load(std::memory_order_relaxed)) continue;  // drain
        try {
          f(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cbma::util
