// Deterministic sweep machinery shared by benches, examples and tests:
// a work-stealing parallel_for over hardware threads plus the per-point
// seed mixer that keeps Monte-Carlo results independent of how the sweep
// is parallelized. Promoted from bench/common.h so every consumer of the
// library can run paper-scale sweeps the same way.
//
// parallel_for is templated on the callable (no std::function wrapper, so
// the hot sweep path pays no type-erasure allocation) and doubles as the
// profiler's worker-utilization probe: pass a ParallelStats* and, when the
// profiler is live (util/profiler, DESIGN.md §13), each worker's busy time
// and item count are measured and the caller's span path is replayed on
// every worker so their subtrees nest under the launching span. With the
// profiler off the stats stay uncollected and the loop is the same strict
// identity as before — no clock reads, no allocations beyond the pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/profiler.h"
#include "util/timer.h"

namespace cbma::util {

/// Deterministic per-point seed: mixing the base seed with the point index
/// (splitmix64 finalizer) keeps results independent of sweep parallelism.
inline std::uint64_t point_seed(std::uint64_t base_seed, std::size_t point_index) {
  std::uint64_t x = base_seed + 0x9E3779B97F4A7C15ull * (point_index + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x;
}

/// One parallel_for's worker-utilization report. Collected only when the
/// profiler is enabled (collected == true); item counts and the worker
/// count are deterministic for a given (n, max_workers), busy/wall times
/// are wall-clock. Publish to the profiler with
/// profiler::record_parallel(site, stats) after the loop returns.
struct ParallelStats {
  std::size_t items = 0;    ///< n — indices the loop covered
  std::size_t workers = 0;  ///< pool size actually used (min(max_workers, n))
  std::uint64_t wall_ns = 0;  ///< spawn-to-join wall time of the region
  bool collected = false;     ///< true iff the profiler measured this run
  std::vector<std::uint64_t> worker_busy_ns;  ///< per-slot time inside f
  std::vector<std::uint64_t> worker_items;    ///< per-slot indices executed

  /// Load imbalance: max worker busy time ÷ mean worker busy time. 1.0 is
  /// perfectly balanced; ≈ workers means one worker did everything.
  double imbalance() const {
    if (worker_busy_ns.empty()) return 1.0;
    std::uint64_t max_busy = 0;
    std::uint64_t total_busy = 0;
    for (const std::uint64_t b : worker_busy_ns) {
      max_busy = std::max(max_busy, b);
      total_busy += b;
    }
    if (total_busy == 0) return 1.0;
    const double mean = static_cast<double>(total_busy) /
                        static_cast<double>(worker_busy_ns.size());
    return static_cast<double>(max_busy) / mean;
  }
};

/// Run f(0..n-1) across threads; f must only touch its own slot.
/// `max_workers` caps the pool (0 = hardware concurrency) — the sweep
/// golden test uses it to prove results are thread-count independent.
///
/// Exception safety: a throw escaping f(i) on a worker would reach the
/// thread boundary and std::terminate the whole process, so the first
/// exception is captured, the remaining indices are drained unexecuted,
/// every worker is joined, and the exception is rethrown on the calling
/// thread. Indices that completed before the failure keep their results
/// (partial sweeps stay usable); which later indices were skipped is
/// scheduling-dependent.
template <typename F>
void parallel_for(std::size_t n, F&& f, std::size_t max_workers = 0,
                  ParallelStats* stats = nullptr) {
  if (max_workers == 0) {
    max_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t workers = std::min<std::size_t>(max_workers, n);
  const bool profiled = profiler::enabled();
  const bool collect = profiled && stats != nullptr;
  if (stats != nullptr) {
    // Plain stack stores either way; the vectors are touched (and the
    // clock read) only when the profiler asked for the measurement.
    stats->items = n;
    stats->workers = workers;
    stats->wall_ns = 0;
    stats->collected = collect;
    if (collect) {
      stats->worker_busy_ns.assign(workers, 0);
      stats->worker_items.assign(workers, 0);
    }
  }
  if (workers <= 1) {
    if (!collect) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    const std::uint64_t begin_ns = monotonic_ns();
    for (std::size_t i = 0; i < n; ++i) f(i);
    stats->wall_ns = monotonic_ns() - begin_ns;
    if (workers == 1) {
      stats->worker_busy_ns[0] = stats->wall_ns;
      stats->worker_items[0] = n;
    }
    return;
  }
  // Workers run on fresh threads, so the profiler would root their spans
  // nowhere: replay the caller's current span path on each worker as
  // structural context, and the worker subtrees merge under the span that
  // launched them (net/round → net/cell_round → ...).
  const std::vector<telemetry::Span> caller_path =
      profiled ? profiler::current_path() : std::vector<telemetry::Span>{};
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::uint64_t begin_ns = collect ? monotonic_ns() : 0;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      if (profiled) profiler::enter_context(caller_path);
      std::uint64_t busy_ns = 0;
      std::uint64_t items = 0;
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) break;
        if (failed.load(std::memory_order_relaxed)) continue;  // drain
        const std::uint64_t item_begin_ns = collect ? monotonic_ns() : 0;
        try {
          f(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
        if (collect) {
          busy_ns += monotonic_ns() - item_begin_ns;
          ++items;
        }
      }
      if (collect) {
        // w is this worker's private slot; no lock needed.
        stats->worker_busy_ns[w] = busy_ns;
        stats->worker_items[w] = items;
      }
      if (profiled) profiler::exit_context(caller_path.size());
    });
  }
  for (auto& t : pool) t.join();
  if (collect) stats->wall_ns = monotonic_ns() - begin_ns;
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cbma::util
