#include "util/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "util/parallel.h"

namespace cbma::profiler {

namespace {

/// One caller-path node. Children form a singly-linked list off the
/// parent (new children prepend); sibling lists are short — the span
/// vocabulary bounds the fan-out — so the linear scan beats any hashing.
struct Node {
  telemetry::Span span = telemetry::Span::kTransmitTotal;
  std::int32_t parent = -1;
  std::int32_t first_child = -1;
  std::int32_t next_sibling = -1;
  std::uint64_t count = 0;
  std::uint64_t incl_ns = 0;
  std::uint64_t child_ns = 0;
  /// Structural replica of a parallel_for caller path: records no time of
  /// its own, and child exits must not fold into it (its inclusive time
  /// stays 0, so folding would drive exclusive time negative).
  bool context = false;
};

struct ThreadSink {
  std::vector<Node> pool;            ///< reserved to kNodeCapacity once
  std::vector<std::int32_t> roots;   ///< top-level nodes on this thread
  std::int32_t current = -1;         ///< innermost live span (-1 = none)
  std::size_t skip_depth = 0;        ///< live spans beyond pool capacity
  std::uint64_t dropped = 0;

  void clear() {
    pool.clear();
    roots.clear();
    current = -1;
    skip_depth = 0;
    dropped = 0;
  }
};

/// Owns every sink for the life of the process (same pattern as the
/// telemetry registry): a worker thread exiting leaves its tree
/// aggregatable, and the thread_local below stays a plain pointer.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  ThreadSink* acquire() {
    const std::lock_guard<std::mutex> lock(mu_);
    auto sink = std::make_unique<ThreadSink>();
    sink->pool.reserve(kNodeCapacity);
    sinks_.push_back(std::move(sink));
    return sinks_.back().get();
  }

  template <typename F>
  void for_each(F&& f) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sinks_) f(*s);
  }

  std::size_t size() {
    const std::lock_guard<std::mutex> lock(mu_);
    return sinks_.size();
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSink>> sinks_;
};

thread_local ThreadSink* t_sink = nullptr;

ThreadSink& sink() {
  if (t_sink == nullptr) t_sink = Registry::instance().acquire();
  return *t_sink;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("CBMA_PROFILE");
    return e != nullptr && *e != '\0';
  }()};
  return flag;
}

struct PathState {
  std::mutex mu;
  std::string path;
  bool initialized = false;
};

PathState& path_state() {
  static PathState s;
  return s;
}

/// Descend into (or create) the child of `current` for span `s`. Returns
/// false when the pool is exhausted (the caller bumps skip_depth).
bool push(ThreadSink& sk, telemetry::Span s, bool context) {
  std::int32_t found = -1;
  if (sk.current < 0) {
    for (const std::int32_t r : sk.roots) {
      if (sk.pool[static_cast<std::size_t>(r)].span == s) {
        found = r;
        break;
      }
    }
  } else {
    for (std::int32_t i =
             sk.pool[static_cast<std::size_t>(sk.current)].first_child;
         i >= 0;
         i = sk.pool[static_cast<std::size_t>(i)].next_sibling) {
      if (sk.pool[static_cast<std::size_t>(i)].span == s) {
        found = i;
        break;
      }
    }
  }
  if (found < 0) {
    if (sk.pool.size() >= kNodeCapacity) return false;
    Node n;
    n.span = s;
    n.parent = sk.current;
    n.context = context;
    const auto idx = static_cast<std::int32_t>(sk.pool.size());
    if (sk.current < 0) {
      sk.roots.push_back(idx);
    } else {
      auto& parent = sk.pool[static_cast<std::size_t>(sk.current)];
      n.next_sibling = parent.first_child;
      parent.first_child = idx;
    }
    sk.pool.push_back(n);
    found = idx;
  } else if (!context) {
    // A real span re-entering a node first created as context claims it:
    // the node now records time, so child folding must apply to it.
    sk.pool[static_cast<std::size_t>(found)].context = false;
  }
  sk.current = found;
  return true;
}

void pop(ThreadSink& sk, std::uint64_t dur_ns, bool context) {
  if (sk.skip_depth > 0) {
    --sk.skip_depth;
    return;
  }
  if (sk.current < 0) return;  // unbalanced exit — defensive, never expected
  auto& node = sk.pool[static_cast<std::size_t>(sk.current)];
  if (!context) {
    ++node.count;
    node.incl_ns += dur_ns;
  }
  sk.current = node.parent;
  if (!context && node.parent >= 0) {
    auto& parent = sk.pool[static_cast<std::size_t>(node.parent)];
    if (!parent.context) parent.child_ns += dur_ns;
  }
}

void merge_children(std::map<int, MergedNode>& dst, const ThreadSink& sk,
                    std::int32_t first) {
  for (std::int32_t i = first; i >= 0;
       i = sk.pool[static_cast<std::size_t>(i)].next_sibling) {
    const Node& n = sk.pool[static_cast<std::size_t>(i)];
    auto& m = dst[static_cast<int>(n.span)];
    m.span = n.span;
    m.count += n.count;
    m.incl_ns += n.incl_ns;
    m.child_ns += n.child_ns;
    std::map<int, MergedNode> kids;
    for (auto& existing : m.children) {
      kids.emplace(static_cast<int>(existing.span), std::move(existing));
    }
    merge_children(kids, sk, n.first_child);
    m.children.clear();
    m.children.reserve(kids.size());
    for (auto& [id, child] : kids) m.children.push_back(std::move(child));
  }
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::string export_path() {
  auto& s = path_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (!s.initialized) {
    const char* e = std::getenv("CBMA_PROFILE");
    s.path = e != nullptr ? e : "";
    s.initialized = true;
  }
  return s.path;
}

void set_export_path(std::string path) {
  auto& s = path_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.path = std::move(path);
  s.initialized = true;
}

void on_span_enter(telemetry::Span s) {
  auto& sk = sink();
  if (sk.skip_depth > 0 || !push(sk, s, /*context=*/false)) {
    ++sk.skip_depth;
    ++sk.dropped;
  }
}

void on_span_exit(telemetry::Span, std::uint64_t dur_ns) {
  pop(sink(), dur_ns, /*context=*/false);
}

std::vector<telemetry::Span> current_path() {
  std::vector<telemetry::Span> path;
  if (t_sink == nullptr) return path;
  const ThreadSink& sk = *t_sink;
  for (std::int32_t i = sk.current; i >= 0;
       i = sk.pool[static_cast<std::size_t>(i)].parent) {
    path.push_back(sk.pool[static_cast<std::size_t>(i)].span);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void enter_context(const std::vector<telemetry::Span>& path) {
  auto& sk = sink();
  for (const telemetry::Span s : path) {
    if (sk.skip_depth > 0 || !push(sk, s, /*context=*/true)) {
      ++sk.skip_depth;
      ++sk.dropped;
    }
  }
}

void exit_context(std::size_t depth) {
  if (t_sink == nullptr) return;
  for (std::size_t d = 0; d < depth; ++d) {
    pop(*t_sink, 0, /*context=*/true);
  }
}

namespace {

struct SiteAccum {
  std::uint64_t calls = 0;
  std::uint64_t items = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t busy_ns = 0;
  double worst_imbalance = 1.0;
  std::vector<std::uint64_t> worker_busy_ns;
  std::vector<std::uint64_t> worker_items;
};

struct SiteRegistry {
  std::mutex mu;
  std::map<std::string, SiteAccum> sites;
};

SiteRegistry& site_registry() {
  static SiteRegistry r;
  return r;
}

}  // namespace

void record_parallel(const char* site, const util::ParallelStats& stats) {
  if (!enabled() || !stats.collected) return;
  auto& reg = site_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  auto& acc = reg.sites[site];
  ++acc.calls;
  acc.items += stats.items;
  acc.wall_ns += stats.wall_ns;
  if (acc.worker_busy_ns.size() < stats.worker_busy_ns.size()) {
    acc.worker_busy_ns.resize(stats.worker_busy_ns.size(), 0);
    acc.worker_items.resize(stats.worker_items.size(), 0);
  }
  for (std::size_t w = 0; w < stats.worker_busy_ns.size(); ++w) {
    acc.busy_ns += stats.worker_busy_ns[w];
    acc.worker_busy_ns[w] += stats.worker_busy_ns[w];
    acc.worker_items[w] += stats.worker_items[w];
  }
  acc.worst_imbalance = std::max(acc.worst_imbalance, stats.imbalance());
}

std::vector<ParallelSiteStats> parallel_stats() {
  std::vector<ParallelSiteStats> out;
  auto& reg = site_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  out.reserve(reg.sites.size());
  for (const auto& [site, acc] : reg.sites) {
    ParallelSiteStats s;
    s.site = site;
    s.calls = acc.calls;
    s.items = acc.items;
    s.wall_ns = acc.wall_ns;
    s.busy_ns = acc.busy_ns;
    s.worst_imbalance = acc.worst_imbalance;
    s.worker_busy_ns = acc.worker_busy_ns;
    s.worker_items = acc.worker_items;
    out.push_back(std::move(s));
  }
  return out;
}

TreeSnapshot merged_tree() {
  TreeSnapshot out;
  std::map<int, MergedNode> roots;
  Registry::instance().for_each([&](ThreadSink& sk) {
    if (sk.roots.empty() && sk.dropped == 0) return;
    ++out.threads;
    out.dropped += sk.dropped;
    for (const std::int32_t r : sk.roots) {
      // merge_children walks a sibling list; a root has no siblings here,
      // so hand it each root index individually.
      const Node& n = sk.pool[static_cast<std::size_t>(r)];
      auto& m = roots[static_cast<int>(n.span)];
      m.span = n.span;
      m.count += n.count;
      m.incl_ns += n.incl_ns;
      m.child_ns += n.child_ns;
      std::map<int, MergedNode> kids;
      for (auto& existing : m.children) {
        kids.emplace(static_cast<int>(existing.span), std::move(existing));
      }
      merge_children(kids, sk, n.first_child);
      m.children.clear();
      m.children.reserve(kids.size());
      for (auto& [id, child] : kids) m.children.push_back(std::move(child));
    }
  });
  out.roots.reserve(roots.size());
  for (auto& [id, node] : roots) out.roots.push_back(std::move(node));
  return out;
}

void reset() {
  Registry::instance().for_each([](ThreadSink& sk) { sk.clear(); });
  auto& reg = site_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.clear();
}

std::size_t sink_count() { return Registry::instance().size(); }

}  // namespace cbma::profiler
