// Unit conversions and physical constants used throughout the simulator.
//
// Power quantities are carried in linear watts inside hot paths; dB/dBm are
// conversion helpers at the edges (configuration and reporting).
#pragma once

#include <cmath>

namespace cbma::units {

inline constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
inline constexpr double kPi = 3.14159265358979323846;

/// Boltzmann constant, J/K — used for the thermal noise floor.
inline constexpr double kBoltzmann = 1.380649e-23;

/// Convert a linear power ratio to decibels.
inline double to_db(double linear) { return 10.0 * std::log10(linear); }

/// Convert decibels to a linear power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Convert watts to dBm.
inline double watts_to_dbm(double watts) { return 10.0 * std::log10(watts * 1e3); }

/// Convert dBm to watts.
inline double dbm_to_watts(double dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

/// Wavelength (m) of a carrier at frequency `hz`.
inline double wavelength(double hz) { return kSpeedOfLight / hz; }

/// Amplitude (voltage-like) ratio for a power ratio given in dB.
inline double amplitude_from_db(double db) { return std::pow(10.0, db / 20.0); }

/// Thermal noise power (watts) in bandwidth `bw_hz` at temperature `kelvin`,
/// inflated by a receiver noise figure in dB.
inline double thermal_noise_watts(double bw_hz, double noise_figure_db = 0.0,
                                  double kelvin = 290.0) {
  return kBoltzmann * kelvin * bw_hz * from_db(noise_figure_db);
}

}  // namespace cbma::units
