// Contract-checking macros for the CBMA library.
//
// CBMA_REQUIRE validates caller-supplied inputs (preconditions on public
// APIs) and throws std::invalid_argument so misconfiguration is reported,
// not silently mangled. CBMA_ASSERT guards internal invariants and throws
// std::logic_error; if one fires it is a library bug.
#pragma once

#include <stdexcept>
#include <string>

namespace cbma {

[[noreturn]] inline void require_failed(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement failed: " + cond + (msg.empty() ? "" : " — " + msg));
}

[[noreturn]] inline void assert_failed(const char* cond, const char* file, int line) {
  throw std::logic_error(std::string(file) + ":" + std::to_string(line) +
                         ": internal invariant violated: " + cond);
}

}  // namespace cbma

#define CBMA_REQUIRE(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) ::cbma::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define CBMA_ASSERT(cond)                                            \
  do {                                                               \
    if (!(cond)) ::cbma::assert_failed(#cond, __FILE__, __LINE__);   \
  } while (false)
