// Hierarchical time-attribution profiler (DESIGN.md §13): a per-thread
// span stack that turns the existing telemetry::Span RAII scopes into a
// caller-path tree — for every distinct path of nested spans, how many
// times it ran, its inclusive wall time, and how much of that time was
// spent in same-thread child spans. Where the flat telemetry histograms
// (§7) answer "how long does rx/detect take", the tree answers "how much
// of net/round is detection vs channel synthesis" — the question ROADMAP
// item 1 (fleet-scale sharding) is gated on.
//
// The contract mirrors every other observability layer: **disabled
// profiling is a strict identity**. When enabled() is false (the default),
// ScopedSpan never calls in here, no thread sink is allocated, no clock is
// read and no RNG is touched, so every bench table and BENCH_*.json stays
// byte-identical. Enable with CBMA_PROFILE=<path> (the path receives the
// collapsed-stack flamegraph export) or programmatically via set_enabled().
//
// Mechanics: each thread owns a fixed-capacity node pool (kNodeCapacity
// nodes; exhaustion drops deeper paths and counts them, never allocates).
// on_span_enter walks/extends the current node's child list —
// O(distinct child spans), no hashing, no lock — and on_span_exit adds
// the duration to the node and to the parent's child_ns, which makes
//   exclusive = inclusive − child_ns
// an exact per-node identity (≥ 0 by clock nesting) that the export
// tooling verifies. Worker threads launched by util::parallel_for replay
// the caller's span path as zero-cost "context" nodes, so worker subtrees
// merge under the span that launched them (net/round → net/cell_round →
// rx/process) instead of becoming orphan roots; context nodes carry no
// time of their own, so cross-thread child sums may exceed the parent's
// wall time (that is parallelism, not an accounting bug — child_ns only
// ever counts same-thread children).
//
// Aggregation (merged_tree, parallel_stats) merges all sinks by caller
// path and must not race recording: call it only after workers joined,
// the same rule telemetry::snapshot() follows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/telemetry.h"

namespace cbma::util {
struct ParallelStats;  // util/parallel.h — record_parallel's payload
}  // namespace cbma::util

namespace cbma::profiler {

/// Per-thread node-pool capacity: distinct caller paths per thread. Deeper
/// or wider trees drop nodes (counted in TreeSnapshot::dropped) instead of
/// allocating — the pipeline's span vocabulary keeps real trees far below
/// this.
inline constexpr std::size_t kNodeCapacity = 512;

// --- master switch ---------------------------------------------------------

/// Master switch. Initialized once from CBMA_PROFILE being set to a
/// non-empty path; flip programmatically with set_enabled().
bool enabled();
void set_enabled(bool on);

/// Collapsed-stack export target: the CBMA_PROFILE path ("" when unset /
/// cleared). core::ProfilePlane::write_collapsed_if_requested() writes the
/// Brendan Gregg flamegraph file here.
std::string export_path();
void set_export_path(std::string path);

// --- hot path (called by telemetry::ScopedSpan when enabled) ---------------

/// Descend into (or create) the child node for span `s` under the calling
/// thread's current node. Callers sample enabled() once at scope entry and
/// pair enter/exit unconditionally, so a mid-span flag flip cannot
/// unbalance the stack.
void on_span_enter(telemetry::Span s);

/// Credit `dur_ns` to the current node, fold it into the parent's
/// child_ns (same-thread attribution), and pop back to the parent.
void on_span_exit(telemetry::Span s, std::uint64_t dur_ns);

// --- parallel_for context propagation --------------------------------------

/// The calling thread's current span path, outermost first. parallel_for
/// captures this before spawning workers.
std::vector<telemetry::Span> current_path();

/// Replay `path` on the calling (worker) thread as structural "context"
/// nodes: they anchor the worker's subtree under the launching span but
/// record no count and no time of their own.
void enter_context(const std::vector<telemetry::Span>& path);

/// Pop `depth` context levels pushed by enter_context.
void exit_context(std::size_t depth);

// --- parallel_for worker-utilization reports -------------------------------

/// Per-site aggregate of every ParallelStats report published under one
/// label ("sweep/run", "net/round"): call/item/wall totals plus per-pool-
/// slot busy time and item counts summed across calls.
struct ParallelSiteStats {
  std::string site;
  std::uint64_t calls = 0;     ///< parallel_for invocations recorded
  std::uint64_t items = 0;     ///< Σ n over those invocations
  std::uint64_t wall_ns = 0;   ///< Σ wall time of the parallel regions
  std::uint64_t busy_ns = 0;   ///< Σ worker busy time (≤ wall × workers)
  double worst_imbalance = 1.0;  ///< max over calls of max-busy ÷ mean-busy
  std::vector<std::uint64_t> worker_busy_ns;  ///< per pool slot, summed
  std::vector<std::uint64_t> worker_items;    ///< per pool slot, summed
};

/// Publish one parallel_for's stats under `site`. No-op unless the
/// profiler is on and the stats were actually collected. Call from the
/// sequential context after the pool joined (how SweepRunner::run and
/// net::Network::run_round use it).
void record_parallel(const char* site, const util::ParallelStats& stats);

/// Merged per-site aggregates, sorted by site name. Sequential-only, like
/// merged_tree().
std::vector<ParallelSiteStats> parallel_stats();

// --- aggregation -----------------------------------------------------------

/// One node of the merged attribution tree. excl_ns() is exact — child_ns
/// only ever counted same-thread children, so inclusive ≥ child_ns holds
/// per thread and survives the merge.
struct MergedNode {
  telemetry::Span span = telemetry::Span::kTransmitTotal;
  std::uint64_t count = 0;     ///< completed occurrences of this path
  std::uint64_t incl_ns = 0;   ///< wall time inside this path
  std::uint64_t child_ns = 0;  ///< time in same-thread direct children
  std::vector<MergedNode> children;  ///< sorted by span id (deterministic)
  std::uint64_t excl_ns() const { return incl_ns - child_ns; }
};

struct TreeSnapshot {
  std::vector<MergedNode> roots;  ///< sorted by span id
  std::size_t threads = 0;        ///< sinks that recorded any node
  std::uint64_t dropped = 0;      ///< spans lost to pool exhaustion
};

/// Merge every thread sink by caller path. Must not race recording — call
/// after workers joined.
TreeSnapshot merged_tree();

/// Drop every sink's tree and the parallel-site aggregates. Sinks stay
/// registered (sink_count() unchanged). Sequential-only: no span may be
/// live on any thread.
void reset();

/// Registered per-thread sinks — 0 proves the off path never allocated.
std::size_t sink_count();

}  // namespace cbma::profiler
