#include "util/telemetry.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace cbma::telemetry {

// ---------------------------------------------------------------------------
// Duration histogram: log₂ octaves with 4 linear sub-buckets each. Index 0–7
// holds exact small values; above that each octave splits into quarters, so
// any quantile is within one sub-bucket (≤ 12.5 %) of exact. 256 buckets
// cover the full uint64 range.
// ---------------------------------------------------------------------------

std::size_t histogram_bucket_of(std::uint64_t ns) {
  if (ns < 8) return static_cast<std::size_t>(ns);
  const int msb = std::bit_width(ns) - 1;  // ≥ 3
  const auto sub = static_cast<std::size_t>((ns >> (msb - 2)) & 3u);
  return 8 + static_cast<std::size_t>(msb - 3) * 4 + sub;
}

double histogram_bucket_mid(std::size_t idx) {
  if (idx < 8) return static_cast<double>(idx);
  const std::size_t msb = (idx - 8) / 4 + 3;
  const std::size_t sub = (idx - 8) % 4;
  const double lower =
      static_cast<double>((4u + sub)) * static_cast<double>(1ull << (msb - 2));
  const double width = static_cast<double>(1ull << (msb - 2));
  return lower + width / 2.0;
}

double histogram_quantile(const std::uint64_t* buckets, std::uint64_t count,
                          double q, double fallback) {
  if (count == 0) return fallback;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen > target) return histogram_bucket_mid(b);
  }
  return fallback;
}

namespace {

struct SpanAccum {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = ~0ull;
  std::uint64_t max_ns = 0;
  std::uint32_t hist[kHistogramBuckets] = {};
};

/// Per-event capture cap per thread: a runaway trace degrades to "first
/// 64k events per thread" instead of exhausting memory.
constexpr std::size_t kMaxTraceEventsPerThread = 1u << 16;

struct ThreadSink {
  SpanAccum spans[kSpanCount];
  std::uint64_t counters[kCounterCount] = {};
  std::vector<FrameTrace> ring;  ///< flight recorder, ring.size() == capacity
  std::size_t ring_next = 0;
  std::size_t ring_filled = 0;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;

  void clear() {
    for (auto& s : spans) s = SpanAccum{};
    for (auto& c : counters) c = 0;
    ring_next = 0;
    ring_filled = 0;
    events.clear();
  }
};

/// Owns every sink for the life of the process: a worker thread exiting
/// leaves its recorded data aggregatable, and the thread_local below is a
/// plain pointer with no destructor ordering hazards.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  ThreadSink* acquire() {
    const std::lock_guard<std::mutex> lock(mu_);
    auto sink = std::make_unique<ThreadSink>();
    sink->tid = static_cast<std::uint32_t>(sinks_.size());
    sink->ring.resize(ring_capacity_.load(std::memory_order_relaxed));
    sinks_.push_back(std::move(sink));
    return sinks_.back().get();
  }

  template <typename F>
  void for_each(F&& f) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sinks_) f(*s);
  }

  std::size_t size() {
    const std::lock_guard<std::mutex> lock(mu_);
    return sinks_.size();
  }

  std::atomic<std::size_t>& ring_capacity() { return ring_capacity_; }
  std::atomic<std::uint64_t>& frame_seq() { return frame_seq_; }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSink>> sinks_;
  std::atomic<std::size_t> ring_capacity_{256};
  std::atomic<std::uint64_t> frame_seq_{0};
};

thread_local ThreadSink* t_sink = nullptr;

ThreadSink& sink() {
  if (t_sink == nullptr) t_sink = Registry::instance().acquire();
  return *t_sink;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("CBMA_TELEMETRY");
    return e != nullptr && *e != '\0' && !(e[0] == '0' && e[1] == '\0');
  }()};
  return flag;
}

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("CBMA_TRACE");
    return e != nullptr && *e != '\0';
  }()};
  return flag;
}

}  // namespace

const char* span_name(Span s) {
  switch (s) {
    case Span::kTransmitTotal: return "transmit/total";
    case Span::kTransmitSpread: return "transmit/spread";
    case Span::kTransmitImpairments: return "transmit/impairments";
    case Span::kChannelSynthesis: return "channel/synthesis";
    case Span::kRxProcess: return "rx/process";
    case Span::kRxFrameSync: return "rx/frame_sync";
    case Span::kRxDetect: return "rx/detect";
    case Span::kRxDecode: return "rx/decode";
    case Span::kSweepPoint: return "sweep/point";
    case Span::kSweepRun: return "sweep/run";
    case Span::kBenchIteration: return "bench/iteration";
    case Span::kNetRound: return "net/round";
    case Span::kNetAssociate: return "net/associate";
    case Span::kNetCellRound: return "net/cell_round";
    case Span::kCount: break;
  }
  return "unknown";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kTransmitPackets: return "transmit.packets";
    case Counter::kTransmitFramesSent: return "transmit.frames_sent";
    case Counter::kRxFramesDecoded: return "rx.frames_decoded";
    case Counter::kRxSyncAttempts: return "rx.sync_attempts";
    case Counter::kRxDetections: return "rx.detections";
    case Counter::kRxOutcomeOk: return "rx.outcome.ok";
    case Counter::kRxOutcomeNoFrameSync: return "rx.outcome.no_frame_sync";
    case Counter::kRxOutcomeNotDetected: return "rx.outcome.not_detected";
    case Counter::kRxOutcomeTruncated: return "rx.outcome.truncated";
    case Counter::kRxOutcomeBadCrc: return "rx.outcome.bad_crc";
    case Counter::kRxOutcomeIdMismatch: return "rx.outcome.id_mismatch";
    case Counter::kChannelWindows: return "channel.windows";
    case Counter::kChannelSamples: return "channel.samples";
    case Counter::kImpairmentClockPerturbs: return "impairment.clock_perturbs";
    case Counter::kImpairmentSwitchJitters: return "impairment.switch_jitters";
    case Counter::kImpairmentDropoutGates: return "impairment.dropout_gates";
    case Counter::kImpairmentImpulsiveBursts:
      return "impairment.impulsive_bursts";
    case Counter::kImpairmentAdcClippedSamples:
      return "impairment.adc_clipped_samples";
    case Counter::kSweepPoints: return "sweep.points";
    case Counter::kSweepWorkers: return "sweep.workers";
    case Counter::kArqOffered: return "arq.offered";
    case Counter::kArqDelivered: return "arq.delivered";
    case Counter::kArqDropped: return "arq.dropped";
    case Counter::kArqTransmissions: return "arq.transmissions";
    case Counter::kNodeSelectAbandoned: return "node_select.abandoned";
    case Counter::kNodeSelectReplaced: return "node_select.replaced";
    case Counter::kNodeSelectAnnealed: return "node_select.annealed";
    case Counter::kRxDetectNaiveBatches: return "rx.detect.naive_batches";
    case Counter::kRxDetectFftBatches: return "rx.detect.fft_batches";
    case Counter::kNetRoundsRun: return "net.rounds";
    case Counter::kNetCellRounds: return "net.cell_rounds";
    case Counter::kNetTagRoams: return "net.roams";
    case Counter::kNetIntercellInterferers: return "net.intercell_interferers";
    case Counter::kCount: break;
  }
  return "unknown";
}

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

bool trace_enabled() { return trace_flag().load(std::memory_order_relaxed); }
void set_trace_enabled(bool on) {
  trace_flag().store(on, std::memory_order_relaxed);
}

std::string trace_path() {
  const char* e = std::getenv("CBMA_TRACE");
  return e != nullptr ? std::string(e) : std::string();
}

void record_span(Span s, std::uint64_t start_ns, std::uint64_t dur_ns) {
  if (!enabled()) return;
  auto& sk = sink();
  auto& acc = sk.spans[static_cast<std::size_t>(s)];
  ++acc.count;
  acc.total_ns += dur_ns;
  acc.min_ns = std::min(acc.min_ns, dur_ns);
  acc.max_ns = std::max(acc.max_ns, dur_ns);
  ++acc.hist[histogram_bucket_of(dur_ns)];
  if (trace_enabled() && sk.events.size() < kMaxTraceEventsPerThread) {
    sk.events.push_back({s, start_ns, dur_ns, sk.tid});
  }
}

void add_count(Counter c, std::uint64_t n) {
  if (!enabled()) return;
  sink().counters[static_cast<std::size_t>(c)] += n;
}

void record_frame(FrameTrace frame) {
  if (!enabled()) return;
  auto& sk = sink();
  if (sk.ring.empty()) return;  // capacity 0: flight recorder off
  frame.seq = Registry::instance().frame_seq().fetch_add(
      1, std::memory_order_relaxed);
  frame.ts_ns = util::monotonic_ns();
  sk.ring[sk.ring_next] = frame;
  sk.ring_next = (sk.ring_next + 1) % sk.ring.size();
  sk.ring_filled = std::min(sk.ring_filled + 1, sk.ring.size());
}

Snapshot snapshot() {
  Snapshot out;
  std::uint64_t counters[kCounterCount] = {};
  SpanAccum spans[kSpanCount];

  Registry::instance().for_each([&](ThreadSink& sk) {
    bool any = false;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      counters[i] += sk.counters[i];
      any |= sk.counters[i] != 0;
    }
    for (std::size_t i = 0; i < kSpanCount; ++i) {
      const auto& a = sk.spans[i];
      if (a.count == 0) continue;
      any = true;
      auto& m = spans[i];
      m.count += a.count;
      m.total_ns += a.total_ns;
      m.min_ns = std::min(m.min_ns, a.min_ns);
      m.max_ns = std::max(m.max_ns, a.max_ns);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        m.hist[b] += a.hist[b];
      }
    }
    for (std::size_t k = 0; k < sk.ring_filled; ++k) {
      out.frames.push_back(sk.ring[k]);
    }
    out.events.insert(out.events.end(), sk.events.begin(), sk.events.end());
    if (any || sk.ring_filled > 0 || !sk.events.empty()) ++out.threads;
  });

  for (std::size_t i = 0; i < kSpanCount; ++i) {
    const auto& m = spans[i];
    if (m.count == 0) continue;
    SpanSnapshot s;
    s.id = static_cast<Span>(i);
    s.name = span_name(s.id);
    s.count = m.count;
    s.total_ns = m.total_ns;
    s.min_ns = m.min_ns;
    s.max_ns = m.max_ns;
    s.mean_ns = static_cast<double>(m.total_ns) / static_cast<double>(m.count);
    // Histogram quantiles: walk cumulative counts to the target rank.
    std::uint64_t wide[kHistogramBuckets];
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) wide[b] = m.hist[b];
    const auto fallback = static_cast<double>(m.max_ns);
    s.p50_ns = histogram_quantile(wide, m.count, 0.50, fallback);
    s.p90_ns = histogram_quantile(wide, m.count, 0.90, fallback);
    s.p99_ns = histogram_quantile(wide, m.count, 0.99, fallback);
    out.spans.push_back(std::move(s));
  }

  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (counters[i] == 0) continue;
    out.counters.push_back(
        {static_cast<Counter>(i), counter_name(static_cast<Counter>(i)),
         counters[i]});
  }

  std::sort(out.frames.begin(), out.frames.end(),
            [](const FrameTrace& a, const FrameTrace& b) { return a.seq < b.seq; });
  const std::size_t cap = flight_recorder_capacity();
  if (out.frames.size() > cap) {
    out.frames.erase(out.frames.begin(),
                     out.frames.end() - static_cast<std::ptrdiff_t>(cap));
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::array<SpanHistogram, kSpanCount> span_histograms() {
  std::array<SpanHistogram, kSpanCount> out{};
  Registry::instance().for_each([&](ThreadSink& sk) {
    for (std::size_t i = 0; i < kSpanCount; ++i) {
      const auto& a = sk.spans[i];
      if (a.count == 0) continue;
      out[i].count += a.count;
      out[i].total_ns += a.total_ns;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out[i].buckets[b] += a.hist[b];
      }
    }
  });
  return out;
}

std::array<std::uint64_t, kCounterCount> counter_totals() {
  std::array<std::uint64_t, kCounterCount> out{};
  Registry::instance().for_each([&](ThreadSink& sk) {
    for (std::size_t i = 0; i < kCounterCount; ++i) out[i] += sk.counters[i];
  });
  return out;
}

void reset() {
  Registry::instance().for_each([](ThreadSink& sk) { sk.clear(); });
  Registry::instance().frame_seq().store(0, std::memory_order_relaxed);
}

std::size_t sink_count() { return Registry::instance().size(); }

void set_flight_recorder_capacity(std::size_t frames) {
  Registry::instance().ring_capacity().store(frames, std::memory_order_relaxed);
}

std::size_t flight_recorder_capacity() {
  return Registry::instance().ring_capacity().load(std::memory_order_relaxed);
}

}  // namespace cbma::telemetry
