#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/expect.h"

namespace cbma {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CBMA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  CBMA_REQUIRE(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::percent(double p, int precision) {
  return num(p * 100.0, precision) + "%";
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace cbma
