// Signal-probe capture: bounded per-stage waveform taps and per-tag
// link-quality samples, recorded by the pipeline and exported as a binary
// dump + JSON manifest (core::ProbeSession owns the file format). The
// logic-analyzer counterpart of util/telemetry.h — telemetry answers *how
// long* each stage took, the probe answers *what the signal looked like*.
//
// The contract mirrors telemetry exactly: **disabled probing is a strict
// identity**. When enabled() is false (the default), every record_* call
// returns before touching anything, no storage is allocated, no clock is
// read, and no RNG is ever drawn (the probe never draws randomness at
// all) — every bench table and BENCH_*.json stays byte-identical. Enable
// with CBMA_PROBE=<dump-path> or SystemConfig::probe.
//
// Unlike telemetry's lock-free per-thread sinks, capture goes through one
// mutex-guarded registry: a probe run is a debugging instrument recording
// kilobyte-scale waveforms at bounded depth, not a hot-path counter, and a
// single ordered store is what the dump reader wants. The bounds make a
// runaway sweep degrade to "first N records per tap" instead of exhausting
// memory. See DESIGN.md §8 for the full signal-probe contract.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cbma::probe {

/// Every tapped stage of the pipeline, in signal-flow order. Names
/// (tap_name) are the wire format the manifest and probe_inspect.py speak.
enum class Tap : std::uint8_t {
  kExcitationEnvelope,   ///< post-impairment excitation envelope (rfsim::Channel)
  kCompositeIq,          ///< fully composed antenna window after distort_rx
  kSyncEnergy,           ///< magnitude envelope frame sync runs on (rx::Receiver)
  kCorrelationProfile,   ///< per-code |correlation| vs lag (rx::UserDetector)
  kSoftBits,             ///< per-bit coherent soft values (rx::Decoder output)
  kCount
};
inline constexpr std::size_t kTapCount = static_cast<std::size_t>(Tap::kCount);
const char* tap_name(Tap t);

/// Capture bounds: per-tap record cap and per-record sample cap (longer
/// traces are truncated, never dropped). Kilobyte-scale by construction.
inline constexpr std::size_t kMaxRecordsPerTap = 256;
inline constexpr std::size_t kMaxSamplesPerRecord = 1u << 16;
inline constexpr std::size_t kMaxLinkQualitySamples = 4096;

/// One captured trace: real data holds `data.size()` samples, complex data
/// interleaves re/im pairs (`data.size() / 2` samples).
struct TapRecord {
  Tap tap = Tap::kExcitationEnvelope;
  std::uint64_t seq = 0;      ///< global capture order
  std::uint64_t point = 0;    ///< sweep point (ScopedPoint), 0 outside sweeps
  std::uint32_t context = 0;  ///< tag/code index; 0 for window-level taps
  bool complex_iq = false;
  std::vector<double> data;
};

/// One per-tag link-quality row, recorded by rx::Receiver per processed
/// window. Field semantics are defined by rx::LinkQualityReport (the util
/// layer deliberately does not depend on rx); this mirror struct is what
/// the registry stores and the dump exports.
struct LinkQualitySample {
  std::uint64_t seq = 0;
  std::uint64_t point = 0;
  std::uint32_t tag = 0;
  bool detected = false;
  bool decoded = false;
  double snr_db = 0.0;
  double evm = 0.0;
  double soft_margin = 0.0;
  double margin_ratio = 0.0;
  double power_norm = 0.0;
  double correlation = 0.0;
};

// --- master switch ---------------------------------------------------------

/// Initialized once from CBMA_PROBE (unset/empty = off, anything else =
/// the dump path); flip programmatically with set_enabled().
bool enabled();
void set_enabled(bool on);

/// Where write_dump_if_requested should put the binary dump: the CBMA_PROBE
/// value, unless overridden via set_dump_path (SystemConfig::probe does).
std::string dump_path();
void set_dump_path(std::string path);

// --- hot-path recording (all strict no-ops when disabled) ------------------

void record_tap(Tap t, std::uint32_t context, std::span<const double> samples);
void record_tap_iq(Tap t, std::uint32_t context,
                   std::span<const std::complex<double>> iq);
void record_link_quality(const LinkQualitySample& sample);

/// Labels every record made on this thread while alive with a sweep-point
/// index (SweepRunner wraps each grid-point body in one). Zero work when
/// probing is disabled at construction.
class ScopedPoint {
 public:
  explicit ScopedPoint(std::uint64_t point);
  ~ScopedPoint();
  ScopedPoint(const ScopedPoint&) = delete;
  ScopedPoint& operator=(const ScopedPoint&) = delete;

 private:
  bool active_;
  std::uint64_t previous_ = 0;
};

/// The point label record_* currently stamps on this thread (0 = none).
std::uint64_t current_point();

// --- aggregation -----------------------------------------------------------

struct Capture {
  std::vector<TapRecord> taps;           ///< capture (seq) order
  std::vector<LinkQualitySample> link;   ///< capture (seq) order
  std::size_t dropped_taps = 0;          ///< records lost to kMaxRecordsPerTap
  std::size_t dropped_link = 0;          ///< rows lost to kMaxLinkQualitySamples
};

/// Copy of everything captured so far. Safe to call concurrently with
/// recording (single registry lock), though exports normally run after the
/// workers joined.
Capture snapshot();

/// Drop every captured record and reset the sequence counter. The enabled
/// flag and dump path are unchanged.
void reset();

/// Captured tap records so far — 0 proves the off path never stored
/// anything (the probe-off identity test asserts this).
std::size_t tap_count();

}  // namespace cbma::probe
