// The one monotonic clock every timing consumer shares: telemetry span
// timers, the Chrome-trace exporter and bench_kernels' manual-timed
// variants all read util::monotonic_ns(), so their numbers are directly
// comparable (same epoch, same resolution) and a clock change happens in
// exactly one place.
#pragma once

#include <chrono>
#include <cstdint>

namespace cbma::util {

/// Nanoseconds on the steady (monotonic) clock. Only differences are
/// meaningful; the epoch is unspecified but fixed for the process.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace cbma::util
