// A gateway is one CBMA cell's infrastructure half: the excitation source
// and the receiver, deployed as a pair (the paper's Fig. 3 frame, ES at
// (−D, 0) and RX at (+D, 0) relative to the cell centre). The multi-cell
// network layer places many gateways on one floor; the code-reuse
// scheduler then stamps each gateway with the slice of the shared PN-code
// family its cell may use.
#pragma once

#include <cstddef>

#include "rfsim/geometry.h"

namespace cbma::net {

struct Gateway {
  std::size_t id = 0;      ///< index into the network's gateway list
  rfsim::Point es;         ///< excitation-source position
  rfsim::Point rx;         ///< receiver position

  // Filled in by net::CodeReuseScheduler::assign (zero until then).
  std::size_t color = 0;        ///< reuse-graph color
  std::size_t code_offset = 0;  ///< first family index of this cell's slice
  std::size_t code_count = 0;   ///< slice width (the cell's group capacity)

  /// Cell centre — midpoint of the ES/RX axis.
  rfsim::Point center() const {
    return rfsim::Point{(es.x + rx.x) / 2.0, (es.y + rx.y) / 2.0};
  }
};

}  // namespace cbma::net
