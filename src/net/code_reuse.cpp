#include "net/code_reuse.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::net {

double CodeReuseScheduler::leaked_coupling_db(const Gateway& from, const Gateway& to,
                                              const rfsim::LinkBudget& budget,
                                              const rfsim::ObstacleMap& obstacles) const {
  const double d =
      std::max(rfsim::distance(from.es, to.rx), budget.min_separation_m);
  const double loss_db = config_.leakage_rejection_db +
                         obstacles.path_loss_db(from.es, to.rx);
  return units::to_db(budget.one_hop_power(d) / budget.tx_power_w) - loss_db;
}

std::size_t CodeReuseScheduler::assign(std::vector<Gateway>& gateways,
                                       const rfsim::LinkBudget& budget,
                                       const rfsim::ObstacleMap& obstacles,
                                       std::size_t codes_per_cell) {
  CBMA_REQUIRE(codes_per_cell >= 1, "codes_per_cell must be at least 1");
  CBMA_REQUIRE(codes_per_cell <= config_.family_size,
               "codes_per_cell exceeds the code family");
  const std::size_t n = gateways.size();

  // Interference graph: an edge when either direction's rejected leakage
  // clears the threshold (interference is treated as mutual — if A's
  // excitation pollutes B, they must not correlate against shared codes
  // regardless of the reverse path).
  adjacency_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double ij = leaked_coupling_db(gateways[i], gateways[j], budget, obstacles);
      const double ji = leaked_coupling_db(gateways[j], gateways[i], budget, obstacles);
      if (std::max(ij, ji) > config_.interference_threshold_db) {
        adjacency_[i].push_back(j);
        adjacency_[j].push_back(i);
      }
    }
  }

  // Welsh–Powell greedy coloring: visit vertices by descending degree
  // (id-ascending on ties, so the result is deterministic), give each the
  // smallest color absent from its already-colored neighbours.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return adjacency_[a].size() > adjacency_[b].size();
                   });
  constexpr std::size_t kUncolored = static_cast<std::size_t>(-1);
  std::vector<std::size_t> color(n, kUncolored);
  std::size_t colors_used = 0;
  std::vector<char> taken;
  for (const std::size_t v : order) {
    taken.assign(colors_used + 1, 0);
    for (const std::size_t u : adjacency_[v]) {
      if (color[u] != kUncolored && color[u] < taken.size()) taken[color[u]] = 1;
    }
    std::size_t c = 0;
    while (taken[c]) ++c;
    color[v] = c;
    colors_used = std::max(colors_used, c + 1);
  }

  if (colors_used * codes_per_cell > config_.family_size) {
    std::ostringstream os;
    os << "code reuse needs " << colors_used << " colors x " << codes_per_cell
       << " codes = " << colors_used * codes_per_cell
       << " codes, but the family holds only " << config_.family_size
       << " — raise family_size, shrink cells, or space the gateways out";
    throw std::invalid_argument(os.str());
  }

  for (std::size_t v = 0; v < n; ++v) {
    gateways[v].color = color[v];
    gateways[v].code_offset = color[v] * codes_per_cell;
    gateways[v].code_count = codes_per_cell;
  }
  return colors_used;
}

}  // namespace cbma::net
