#include "net/cell.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "mac/throughput.h"
#include "util/expect.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace cbma::net {
namespace {

/// Payload bits per on-air frame bit for this config's framing (preamble +
/// 2-byte header + payload + 2-byte CRC — the accounting mac::CbmaRate uses).
mac::CbmaRate rate_for(const core::SystemConfig& cfg, std::size_t n_tags,
                       double fer) {
  mac::CbmaRate rate;
  rate.per_tag_bitrate_bps = cfg.bitrate_bps;
  rate.n_tags = n_tags;
  rate.frame_bits = cfg.preamble_bits + 8 * (2 + cfg.payload_bytes + 2);
  rate.payload_bits = 8 * cfg.payload_bytes;
  rate.frame_error_rate = fer;
  return rate;
}

}  // namespace

void Cell::set_members(std::vector<std::size_t> members) {
  if (members == members_) return;
  members_ = std::move(members);
  dirty_ = true;
}

void Cell::ensure_system(const core::SystemConfig& base, const Gateway& gateway,
                         const std::vector<rfsim::Point>& tag_positions,
                         const rfsim::ObstacleMap& obstacles,
                         const std::vector<ForeignLeakage>& leaks) {
  CBMA_REQUIRE(gateway.id == gateway_id_, "gateway/cell id mismatch");
  CBMA_REQUIRE(gateway.code_count >= 1,
               "gateway has no code slice — run CodeReuseScheduler::assign first");
  served_ = std::min(members_.size(), gateway.code_count);
  if (served_ == 0) {
    system_.reset();
    dirty_ = true;  // the next non-empty membership must build fresh
    return;
  }
  for (const std::size_t id : members_) {
    CBMA_REQUIRE(id < tag_positions.size(), "member tag id out of range");
  }

  if (!dirty_ && system_) {
    // Membership unchanged: only positions may have moved (mobility pass).
    for (std::size_t k = 0; k < served_; ++k) {
      system_->population().set_tag(k, tag_positions[members_[k]]);
    }
    return;
  }

  core::SystemConfig cfg = base;
  cfg.code_offset = gateway.code_offset;
  cfg.max_tags = served_;  // slot k ⇒ family code code_offset + k
  rfsim::Deployment dep(gateway.es, gateway.rx);
  for (std::size_t k = 0; k < served_; ++k) {
    dep.add_tag(tag_positions[members_[k]]);
  }
  system_ = std::make_unique<core::CbmaSystem>(std::move(cfg), std::move(dep));
  system_->set_obstacles(obstacles);
  interference_w_ = 0.0;
  for (const auto& leak : leaks) {
    if (leak.power_w <= 0.0) continue;
    interference_w_ += leak.power_w;
    system_->add_interferer(std::make_unique<rfsim::CarrierLeakageInterferer>(
        leak.power_w, leak.freq_offset_hz, "gw" + std::to_string(leak.gateway_id)));
    telemetry::count(telemetry::Counter::kNetIntercellInterferers);
  }
  std::vector<std::size_t> group(served_);
  std::iota(group.begin(), group.end(), std::size_t{0});
  system_->set_active_group(std::move(group));
  dirty_ = false;
}

CellRoundResult Cell::run_round(MacScheme scheme, std::size_t packets,
                                const mac::FsaConfig& fsa, Rng& rng) const {
  CellRoundResult result;
  result.gateway_id = gateway_id_;
  result.members = members_;
  result.tags_total = members_.size();
  result.tags_served = served_;
  if (served_ == 0) return result;
  CBMA_REQUIRE(system_ != nullptr, "run_round before ensure_system");
  telemetry::count(telemetry::Counter::kNetCellRounds);
  const core::SystemConfig& cfg = system_->config();
  if (interference_w_ > 0.0) {
    result.interference_dbm = units::watts_to_dbm(interference_w_);
  }

  if (scheme == MacScheme::kFsa) {
    // MAC-only baseline: one shared medium per cell, so the cell's rate is
    // a single tag's bit rate discounted by slot efficiency and framing.
    result.fsa = mac::FsaSimulator(fsa).run_saturated(served_, packets, rng);
    const auto rate = rate_for(cfg, 1, 0.0);
    const double payload_fraction = static_cast<double>(rate.payload_bits) /
                                    static_cast<double>(rate.frame_bits);
    result.goodput_bps =
        result.fsa.efficiency() * cfg.bitrate_bps * payload_fraction;
    result.per_tag_goodput_bps.assign(
        served_, result.goodput_bps / static_cast<double>(served_));
    return result;
  }

  result.stats = system_->run_packets(packets, rng);
  const auto report =
      mac::cbma_throughput(rate_for(cfg, served_, result.stats.frame_error_rate()));
  result.goodput_bps = report.aggregate_goodput_bps;
  const auto rate = rate_for(cfg, 1, 0.0);
  const double per_tag_peak = cfg.bitrate_bps *
                              static_cast<double>(rate.payload_bits) /
                              static_cast<double>(rate.frame_bits);
  result.per_tag_goodput_bps.resize(served_);
  const auto ratios = result.stats.ack_ratios();
  for (std::size_t k = 0; k < served_; ++k) {
    result.per_tag_goodput_bps[k] = per_tag_peak * ratios[k];
  }
  return result;
}

}  // namespace cbma::net
