// Spatial code reuse across cells — the CDMA answer to the finite code
// family. A Gold family of 64 codes caps one cell at 64 concurrent tags;
// a floor of cells can serve far more by reusing slices of the family in
// cells that are far enough apart not to interfere. The scheduler builds a
// cell-interference graph (foreign-ES leakage at a cell's receiver above a
// threshold ⇒ edge), colors it greedily (Welsh–Powell), and hands each
// color class a disjoint [offset, offset + codes_per_cell) slice of the
// family. The invariant downstream layers rely on: two cells joined by an
// interference edge never share a family index.
#pragma once

#include <cstddef>
#include <vector>

#include "net/gateway.h"
#include "rfsim/friis.h"
#include "rfsim/obstacle.h"

namespace cbma::net {

struct CodeReuseConfig {
  /// Size of the shared PN family being partitioned (the paper's 64-code
  /// Gold family by default).
  std::size_t family_size = 64;
  /// Receiver rejection of a foreign gateway's excitation carrier at the
  /// subcarrier offset (dB). Applied to the one-hop ES→RX Friis power both
  /// here (adjacency metric) and by net::Network when it injects the
  /// surviving leakage into each cell's channel sum.
  double leakage_rejection_db = 45.0;
  /// Two cells are mutual interferers — and must not share codes — when
  /// the rejected leakage coupling either gateway's ES lands on the
  /// other's RX (dB relative to that ES's transmit power, so the graph is
  /// invariant to the deployment's power level) exceeds this threshold.
  /// Calibrated so a grid of 6 m × 4 m bays colors as a kings graph:
  /// orthogonal and diagonal neighbours conflict, cells two bays apart
  /// reuse freely.
  double interference_threshold_db = -96.5;
};

class CodeReuseScheduler {
 public:
  explicit CodeReuseScheduler(CodeReuseConfig config) : config_(config) {}

  const CodeReuseConfig& config() const { return config_; }

  /// Rejected leakage coupling (dB relative to `from`'s transmit power)
  /// gateway `from`'s excitation source lands on gateway `to`'s receiver:
  /// one-hop Friis over the ES→RX distance, minus the rejection factor and
  /// any obstacle penetration loss. The distance is floored at
  /// budget.min_separation_m (a planning metric, like
  /// signal_strength_field — co-located gateways saturate rather than
  /// throw).
  double leaked_coupling_db(const Gateway& from, const Gateway& to,
                            const rfsim::LinkBudget& budget,
                            const rfsim::ObstacleMap& obstacles) const;

  /// Color the interference graph and stamp every gateway with its slice:
  /// color c gets [c · codes_per_cell, (c+1) · codes_per_cell). Coloring is
  /// Welsh–Powell (degree-descending, id-ascending tie break) and fully
  /// deterministic. Throws std::invalid_argument when the coloring needs
  /// more codes than the family holds. Returns the number of colors used.
  std::size_t assign(std::vector<Gateway>& gateways,
                     const rfsim::LinkBudget& budget,
                     const rfsim::ObstacleMap& obstacles,
                     std::size_t codes_per_cell);

  /// Adjacency lists of the last assign() (indexable by gateway id).
  const std::vector<std::vector<std::size_t>>& adjacency() const {
    return adjacency_;
  }

 private:
  CodeReuseConfig config_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace cbma::net
