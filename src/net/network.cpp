#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/metrics_plane.h"
#include "rx/receiver.h"
#include "util/expect.h"
#include "util/parallel.h"
#include "util/profiler.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace cbma::net {
namespace {

/// Residual carrier offset between two free-running gateway oscillators —
/// a small deterministic per-gateway spread so foreign tones don't add
/// perfectly coherently.
double leak_freq_offset_hz(std::size_t from_gateway) {
  return 40.0 * static_cast<double>(from_gateway + 1);
}

double jain_index(const std::vector<double>& x) {
  double sum = 0.0, sumsq = 0.0;
  for (const double v : x) {
    sum += v;
    sumsq += v * v;
  }
  if (!(sumsq > 0.0) || x.empty()) return 1.0;  // all equal (all zero)
  return (sum * sum) / (static_cast<double>(x.size()) * sumsq);
}

}  // namespace

Network::Network(NetworkConfig config, rfsim::Room floor,
                 std::vector<Gateway> gateways)
    : config_(std::move(config)),
      floor_(floor),
      gateways_(std::move(gateways)),
      scheduler_(config_.reuse) {
  CBMA_REQUIRE(!gateways_.empty(), "network needs at least one gateway");
  CBMA_REQUIRE(config_.cell.max_tags >= 1,
               "cell template needs max_tags >= 1 (codes per cell)");
  CBMA_REQUIRE(config_.packets_per_round >= 1,
               "packets_per_round must be at least 1");
  for (std::size_t i = 0; i < gateways_.size(); ++i) gateways_[i].id = i;

  // Every cell slices the same shared family; the scheduler below hands
  // out the per-cell offsets.
  config_.cell.code_family_size = config_.reuse.family_size;
  config_.cell.code_offset = 0;

  budget_.tx_power_w = units::dbm_to_watts(config_.cell.tx_power_dbm);
  budget_.tx_gain = budget_.tag_gain = budget_.rx_gain = config_.cell.antenna_gain;
  budget_.carrier_hz = config_.cell.carrier_hz;
  budget_.alpha = config_.cell.alpha;
  budget_.delta_gamma = 1.0;
  budget_.min_separation_m = config_.cell.min_node_separation_m;

  cells_.reserve(gateways_.size());
  for (std::size_t i = 0; i < gateways_.size(); ++i) cells_.emplace_back(i);
  assign_codes();
}

Network Network::grid(NetworkConfig config, double floor_w, double floor_h,
                      std::size_t nx, std::size_t ny) {
  CBMA_REQUIRE(nx >= 1 && ny >= 1, "grid needs at least one bay per axis");
  CBMA_REQUIRE(floor_w > 0.0 && floor_h > 0.0, "floor extents must be positive");
  const double bay_w = floor_w / static_cast<double>(nx);
  const double bay_h = floor_h / static_cast<double>(ny);
  const double offset = config.gateway_es_rx_offset_m;
  CBMA_REQUIRE(offset > 0.0 && 2.0 * offset < bay_w,
               "gateway ES/RX pair must fit inside one bay");
  std::vector<Gateway> gws;
  gws.reserve(nx * ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double cx = -floor_w / 2.0 + (static_cast<double>(i) + 0.5) * bay_w;
      const double cy = -floor_h / 2.0 + (static_cast<double>(j) + 0.5) * bay_h;
      Gateway g;
      g.es = rfsim::Point{cx - offset, cy};
      g.rx = rfsim::Point{cx + offset, cy};
      gws.push_back(g);
    }
  }
  return Network(std::move(config), rfsim::Room{floor_w, floor_h}, std::move(gws));
}

void Network::place_random_tags(std::size_t count, Rng& rng,
                                double min_to_gateway) {
  for (std::size_t t = 0; t < count; ++t) {
    rfsim::Point p;
    bool placed = false;
    for (int attempt = 0; attempt < 1000 && !placed; ++attempt) {
      p = floor_.random_point(rng);
      placed = true;
      for (const auto& g : gateways_) {
        if (rfsim::distance(p, g.es) < min_to_gateway ||
            rfsim::distance(p, g.rx) < min_to_gateway) {
          placed = false;
          break;
        }
      }
    }
    CBMA_REQUIRE(placed, "could not place a tag clear of the gateways");
    add_tag(p);
  }
}

void Network::add_tag(rfsim::Point p) {
  tags_.push_back(p);
  serving_.push_back(kUnassociated);
  associated_ = false;  // the next round re-runs the full association
}

void Network::move_tag(std::size_t i, rfsim::Point p) {
  CBMA_REQUIRE(i < tags_.size(), "move_tag: tag index out of range");
  tags_[i] = p;
}

void Network::set_obstacles(rfsim::ObstacleMap obstacles) {
  obstacles_ = std::move(obstacles);
  // Shadowing changes both the interference graph and every cell's links.
  assign_codes();
}

void Network::assign_codes() {
  colors_used_ =
      scheduler_.assign(gateways_, budget_, obstacles_, config_.cell.max_tags);
  for (auto& cell : cells_) cell.invalidate();
}

double Network::link_budget_dbm(std::size_t tag, std::size_t gw) const {
  CBMA_REQUIRE(tag < tags_.size(), "tag id out of range");
  CBMA_REQUIRE(gw < gateways_.size(), "gateway id out of range");
  const Gateway& g = gateways_[gw];
  const rfsim::Point& p = tags_[tag];
  const double d1 =
      std::max(rfsim::distance(g.es, p), budget_.min_separation_m);
  const double d2 =
      std::max(rfsim::distance(p, g.rx), budget_.min_separation_m);
  const double loss_db =
      obstacles_.path_loss_db(g.es, p) + obstacles_.path_loss_db(p, g.rx);
  return units::watts_to_dbm(budget_.received_power(d1, d2) *
                             units::from_db(-loss_db));
}

std::size_t Network::best_gateway(std::size_t tag, double& best_dbm) const {
  std::size_t best = 0;
  best_dbm = link_budget_dbm(tag, 0);
  for (std::size_t g = 1; g < gateways_.size(); ++g) {
    const double dbm = link_budget_dbm(tag, g);
    if (dbm > best_dbm) {  // strict: exact ties keep the lowest id
      best_dbm = dbm;
      best = g;
    }
  }
  return best;
}

void Network::associate() {
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    double dbm = 0.0;
    serving_[t] = best_gateway(t, dbm);
  }
  associated_ = true;
}

std::size_t Network::roam() {
  CBMA_REQUIRE(associated_, "roam before associate");
  std::size_t moved = 0;
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    const double serving_dbm = link_budget_dbm(t, serving_[t]);
    double best_dbm = 0.0;
    const std::size_t best = best_gateway(t, best_dbm);
    if (best != serving_[t] &&
        best_dbm > serving_dbm + config_.roaming_hysteresis_db) {
      const std::size_t from = serving_[t];
      serving_[t] = best;
      ++moved;
      telemetry::count(telemetry::Counter::kNetTagRoams);
      if (core::MetricsPlane::enabled()) {
        core::MetricsPlane::record_event(
            metrics::Severity::kInfo, "roam",
            "cell=" + std::to_string(best), static_cast<double>(t),
            "tag " + std::to_string(t) + " roamed cell " +
                std::to_string(from) + " -> cell " + std::to_string(best) +
                " (+" + std::to_string(best_dbm - serving_dbm) + " dB)");
      }
    }
  }
  return moved;
}

std::vector<ForeignLeakage> Network::leaks_at(std::size_t gw) const {
  std::vector<ForeignLeakage> leaks;
  leaks.reserve(gateways_.size() - 1);
  const Gateway& here = gateways_[gw];
  for (const Gateway& other : gateways_) {
    if (other.id == gw) continue;
    const double d =
        std::max(rfsim::distance(other.es, here.rx), budget_.min_separation_m);
    const double loss_db = config_.reuse.leakage_rejection_db +
                           obstacles_.path_loss_db(other.es, here.rx);
    ForeignLeakage leak;
    leak.gateway_id = other.id;
    leak.power_w = budget_.one_hop_power(d) * units::from_db(-loss_db);
    leak.freq_offset_hz = leak_freq_offset_hz(other.id);
    leaks.push_back(leak);
  }
  return leaks;
}

NetworkRoundResult Network::run_round(std::uint64_t seed,
                                      std::size_t max_workers) {
  // Root of the round's attribution tree: everything below — association,
  // the per-cell parallel pass, aggregation — nests under net/round.
  const telemetry::ScopedSpan span_round(telemetry::Span::kNetRound);
  telemetry::count(telemetry::Counter::kNetRoundsRun);
  const std::size_t n_cells = gateways_.size();

  // 1. Mobility walk — sequential and on its own seed stream (cell streams
  //    use indices [0, n_cells), so the walk stream sits past them).
  if (config_.tag_step_m > 0.0 && !tags_.empty()) {
    Rng walk(util::point_seed(seed, n_cells + 1));
    const double hw = floor_.width / 2.0;
    const double hh = floor_.height / 2.0;
    for (auto& p : tags_) {
      const double angle = walk.phase();
      const double step = walk.uniform(0.0, config_.tag_step_m);
      p.x = std::clamp(p.x + step * std::cos(angle), -hw, hw);
      p.y = std::clamp(p.y + step * std::sin(angle), -hh, hh);
    }
  }

  // 2. Association (first round) or hysteresis roaming (steady state).
  NetworkRoundResult result;
  {
    const telemetry::ScopedSpan span_assoc(telemetry::Span::kNetAssociate);
    if (!associated_) {
      associate();
    } else {
      result.roamed = roam();
    }
  }

  // 3. Membership refresh: tags ascending, so every member list is sorted
  //    and a cell rebuilds only when its membership actually changed.
  std::vector<std::vector<std::size_t>> members(n_cells);
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    members[serving_[t]].push_back(t);
  }
  for (std::size_t c = 0; c < n_cells; ++c) {
    cells_[c].set_members(std::move(members[c]));
  }

  // 4. Per-cell MAC rounds — each cell owns its result slot and a seed
  //    derived from its id, so results are worker-count independent.
  result.cells.resize(n_cells);
  util::ParallelStats stats;
  util::parallel_for(
      n_cells,
      [&](std::size_t c) {
        const telemetry::ScopedSpan span_cell(telemetry::Span::kNetCellRound);
        cells_[c].ensure_system(config_.cell, gateways_[c], tags_, obstacles_,
                                leaks_at(c));
        Rng rng(util::point_seed(seed, c));
        result.cells[c] = cells_[c].run_round(
            config_.scheme, config_.packets_per_round, config_.fsa, rng);
      },
      max_workers, &stats);
  // Worker utilization of the cell pass (profiler only; the pool joined,
  // so this runs in the sequential context record_parallel requires).
  if (stats.collected) profiler::record_parallel("net/round", stats);

  // 5. Aggregate: network goodput and Jain fairness over every tag
  //    (unserved tags score zero — fairness sees the capacity shortfall).
  std::vector<double> per_tag(tags_.size(), 0.0);
  for (const auto& cell : result.cells) {
    result.aggregate_goodput_bps += cell.goodput_bps;
    result.tags_served += cell.tags_served;
    for (std::size_t k = 0; k < cell.tags_served; ++k) {
      per_tag[cell.members[k]] = cell.per_tag_goodput_bps[k];
    }
  }
  result.tags_total = tags_.size();
  result.jain_fairness = jain_index(per_tag);

  // 6. Metrics-plane attribution (strict no-op when the plane is off) —
  //    sequential by construction: the parallel cell pass above joined.
  if (core::MetricsPlane::enabled()) publish_round(result);
  return result;
}

void Network::publish_round(const NetworkRoundResult& result) {
  using core::MetricsPlane;
  for (const auto& cell : result.cells) {
    MetricsPlane::CellSample sample;
    sample.cell_id = cell.gateway_id;
    sample.goodput_bps = cell.goodput_bps;
    sample.frame_error_rate = cell.stats.frame_error_rate();
    sample.tags_served = cell.tags_served;
    sample.tags_total = cell.tags_total;
    sample.sent = cell.stats.total_sent();
    sample.acked = cell.stats.total_acked();
    sample.outcomes = cell.stats.outcomes;
    sample.quality = cell.stats.quality;
    MetricsPlane::record_cell(sample);

    const std::string scope = "cell=" + std::to_string(cell.gateway_id);
    if (cell.tags_total > cell.tags_served) {
      // More members than the cell's code-slice can serve: the capacity
      // shortfall the paper's reuse scheduler exists to avoid.
      MetricsPlane::record_event(
          metrics::Severity::kWarning, "code_slice_overflow", scope,
          static_cast<double>(cell.tags_total - cell.tags_served),
          std::to_string(cell.tags_total) + " members for " +
              std::to_string(cell.tags_served) + " served slots");
    }
    for (std::size_t o = 0; o < cell.stats.outcomes.size(); ++o) {
      const auto outcome = static_cast<rx::DecodeOutcome>(o);
      if (outcome == rx::DecodeOutcome::kOk || cell.stats.outcomes[o] == 0) {
        continue;
      }
      MetricsPlane::record_event(
          metrics::Severity::kInfo, "decode_failure", scope,
          static_cast<double>(cell.stats.outcomes[o]), rx::to_string(outcome));
    }
  }
  MetricsPlane::record_value("net.goodput_bps", {},
                             result.aggregate_goodput_bps, "bps");
  MetricsPlane::record_value("net.jain_fairness", {}, result.jain_fairness);
  MetricsPlane::record_value("net.tags_served", {},
                             static_cast<double>(result.tags_served));
  MetricsPlane::record_value("net.tags_total", {},
                             static_cast<double>(result.tags_total));
  MetricsPlane::record_value("net.roamed", {},
                             static_cast<double>(result.roamed));
  MetricsPlane::tick();
}

}  // namespace cbma::net
