// One cell of the multi-cell network: a gateway, its associated tags, and
// a lazily (re)built core::CbmaSystem running the full PHY pipeline on the
// cell's slice of the shared code family. Foreign gateways' excitation
// leakage enters the cell's channel sum as rfsim::CarrierLeakageInterferer
// terms, so inter-cell interference degrades decoding exactly where it
// physically lands — at this cell's receiver.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/system.h"
#include "mac/fsa.h"
#include "net/gateway.h"

namespace cbma::net {

/// One foreign gateway's surviving excitation leakage at this cell's RX.
struct ForeignLeakage {
  std::size_t gateway_id = 0;
  double power_w = 0.0;
  double freq_offset_hz = 0.0;  ///< residual inter-gateway oscillator offset
};

/// MAC scheme a cell round runs under. kCbma is the full coded pipeline;
/// kFsa is the framed-slotted-ALOHA baseline (MAC-only accounting over the
/// same membership, for the paper's §IX comparison at network scale).
enum class MacScheme { kCbma, kFsa };

struct CellRoundResult {
  std::size_t gateway_id = 0;
  core::RoundStats stats{0};   ///< per-served-slot sent/acked (kCbma)
  mac::FsaResult fsa{};        ///< slot accounting (kFsa)
  double goodput_bps = 0.0;    ///< delivered payload rate of the cell
  /// Total foreign-gateway leakage power at this RX (dBm); -300 when the
  /// cell hears no other gateway.
  double interference_dbm = -300.0;
  std::size_t tags_served = 0;  ///< members actually given a code slot
  std::size_t tags_total = 0;   ///< members associated to this cell
  /// Member tag ids (network-global), served tags first, ascending.
  std::vector<std::size_t> members;
  /// Delivered goodput per served member (aligned with members[0..served)).
  std::vector<double> per_tag_goodput_bps;
};

class Cell {
 public:
  explicit Cell(std::size_t gateway_id) : gateway_id_(gateway_id) {}

  std::size_t gateway_id() const { return gateway_id_; }
  const std::vector<std::size_t>& members() const { return members_; }

  /// Replace the member list (ascending network-global tag ids). A changed
  /// list marks the cell dirty so the next ensure_system() rebuilds.
  void set_members(std::vector<std::size_t> members);

  /// Force a rebuild on the next ensure_system() (obstacles or code
  /// assignment changed under the cell).
  void invalidate() { dirty_ = true; }

  /// Build or refresh the cell's CbmaSystem: `base` is the network's cell
  /// config template (code_family_size already set); the cell stamps its
  /// gateway's code_offset and sizes max_tags to the served member count.
  /// `tag_positions` is indexed by network-global tag id. Cheap when only
  /// positions moved (population update, no rebuild).
  void ensure_system(const core::SystemConfig& base, const Gateway& gateway,
                     const std::vector<rfsim::Point>& tag_positions,
                     const rfsim::ObstacleMap& obstacles,
                     const std::vector<ForeignLeakage>& leaks);

  /// One MAC round: `packets` collided transmissions (kCbma) or `packets`
  /// FSA frames (kFsa) over the served members. Requires ensure_system()
  /// under kCbma (a memberless cell returns an all-zero result).
  CellRoundResult run_round(MacScheme scheme, std::size_t packets,
                            const mac::FsaConfig& fsa, Rng& rng) const;

  /// Served member count under the current system (0 before ensure_system).
  std::size_t served() const { return served_; }
  const core::CbmaSystem* system() const { return system_.get(); }

 private:
  std::size_t gateway_id_;
  std::vector<std::size_t> members_;
  std::size_t served_ = 0;
  bool dirty_ = true;
  double interference_w_ = 0.0;
  std::unique_ptr<core::CbmaSystem> system_;
};

}  // namespace cbma::net
