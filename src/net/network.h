// The multi-cell network layer: N gateways and M tags on one floor plan.
// Tags associate to the gateway with the strongest obstacle-shadowed
// two-hop link budget (Eq. 1 — the same metric node selection plans with),
// the CodeReuseScheduler partitions the shared code family across the cell
// interference graph, and each network round runs every cell's CBMA (or
// FSA-baseline) MAC round with foreign-gateway excitation leakage summed
// into the cell's channel. A roaming pass with hysteresis re-associates
// tags whose serving budget degrades as they move.
//
// Determinism contract (mirrors the sweep machinery): mobility and roaming
// run sequentially, then cells run under util::parallel_for with per-cell
// Rng(point_seed(seed, cell_id)) — so a round's results are byte-identical
// for any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "mac/fsa.h"
#include "net/cell.h"
#include "net/code_reuse.h"
#include "net/gateway.h"
#include "rfsim/friis.h"
#include "rfsim/geometry.h"
#include "rfsim/obstacle.h"
#include "util/rng.h"

namespace cbma::net {

struct NetworkConfig {
  /// Per-cell system template. max_tags is the cell's group capacity —
  /// the codes-per-cell the reuse scheduler hands each color class.
  /// code_family_size/code_offset are owned by the network (the scheduler
  /// overwrites them per cell); leave them at their defaults.
  core::SystemConfig cell;
  CodeReuseConfig reuse;
  mac::FsaConfig fsa;               ///< baseline-mode MAC parameters
  MacScheme scheme = MacScheme::kCbma;
  /// Half-separation of a gateway's ES/RX pair along x (the paper's D).
  double gateway_es_rx_offset_m = 0.5;
  /// A tag roams only when a neighbour gateway's budget beats the serving
  /// one by more than this margin (dB) — the ping-pong guard.
  double roaming_hysteresis_db = 3.0;
  /// Per-round random-walk step of every tag (metres). 0 = static floor.
  double tag_step_m = 0.0;
  /// Collided transmissions (kCbma) or FSA frames (kFsa) per cell round.
  std::size_t packets_per_round = 20;
};

struct NetworkRoundResult {
  std::vector<CellRoundResult> cells;   ///< indexed by gateway id
  double aggregate_goodput_bps = 0.0;   ///< Σ cell goodput
  /// Jain index (Σx)²/(n·Σx²) over every tag's delivered goodput —
  /// unserved tags count as zero. 1.0 when no tag got anything (all equal).
  double jain_fairness = 1.0;
  std::size_t roamed = 0;               ///< tags moved by this round's pass
  std::size_t tags_served = 0;
  std::size_t tags_total = 0;
};

class Network {
 public:
  /// npos sentinel for "tag not yet associated".
  static constexpr std::size_t kUnassociated = static_cast<std::size_t>(-1);

  /// Takes explicit gateway placements; runs the code-reuse assignment
  /// immediately (obstacle-free — set_obstacles() re-runs it shadowed).
  Network(NetworkConfig config, rfsim::Room floor, std::vector<Gateway> gateways);

  /// nx × ny gateways at the centres of equal rectangular bays tiling a
  /// floor_w × floor_h floor (centred on the origin), ES/RX split along x.
  static Network grid(NetworkConfig config, double floor_w, double floor_h,
                      std::size_t nx, std::size_t ny);

  // --- population ---
  /// Uniform placement over the floor, rejecting draws closer than
  /// min_to_gateway to any ES/RX (mirrors Deployment::place_random_tags).
  void place_random_tags(std::size_t count, Rng& rng,
                         double min_to_gateway = 0.1);
  void add_tag(rfsim::Point p);
  /// Scripted mobility: reposition an existing tag. Association is kept —
  /// the next roam()/run_round() applies the hysteresis rule to the move.
  void move_tag(std::size_t i, rfsim::Point p);
  std::size_t tag_count() const { return tags_.size(); }
  const rfsim::Point& tag(std::size_t i) const { return tags_[i]; }

  void set_obstacles(rfsim::ObstacleMap obstacles);

  // --- association ---
  /// Obstacle-shadowed two-hop budget (dBm) of `tag` through gateway `gw`,
  /// hop distances floored at the budget's min separation (planning
  /// metric; the PHY itself uses true distances).
  double link_budget_dbm(std::size_t tag, std::size_t gw) const;
  /// Greedy full association: every tag to its strongest gateway (lowest
  /// id on exact ties). Implicit before the first run_round().
  void associate();
  /// Hysteresis pass: move a tag only when some gateway beats its serving
  /// budget by more than roaming_hysteresis_db. Returns tags moved.
  std::size_t roam();
  /// tag id → serving gateway id (kUnassociated before association).
  const std::vector<std::size_t>& association() const { return serving_; }

  // --- rounds ---
  /// One network round: mobility walk (if tag_step_m > 0), association /
  /// roaming, membership refresh, then every cell's MAC round in parallel
  /// (max_workers as in util::parallel_for; 0 = hardware concurrency).
  /// Byte-identical results for any worker count at a fixed seed.
  NetworkRoundResult run_round(std::uint64_t seed, std::size_t max_workers = 0);

  // --- introspection ---
  const NetworkConfig& config() const { return config_; }
  const rfsim::Room& floor() const { return floor_; }
  const std::vector<Gateway>& gateways() const { return gateways_; }
  std::size_t cell_count() const { return gateways_.size(); }
  const Cell& cell(std::size_t i) const { return cells_[i]; }
  std::size_t colors_used() const { return colors_used_; }
  const CodeReuseScheduler& scheduler() const { return scheduler_; }
  const rfsim::LinkBudget& link_budget() const { return budget_; }

 private:
  void assign_codes();
  std::size_t best_gateway(std::size_t tag, double& best_dbm) const;
  std::vector<ForeignLeakage> leaks_at(std::size_t gw) const;
  /// Metrics-plane attribution for one finished round (strict no-op when
  /// the plane is off): per-cell samples under scope "cell=<id>", global
  /// rollup series, code-slice-overflow / decode-failure events, then one
  /// plane tick. Runs sequentially after the parallel cell pass joined.
  void publish_round(const NetworkRoundResult& result);

  NetworkConfig config_;
  rfsim::Room floor_;
  std::vector<Gateway> gateways_;
  std::vector<Cell> cells_;
  CodeReuseScheduler scheduler_;
  std::size_t colors_used_ = 0;
  rfsim::LinkBudget budget_;
  rfsim::ObstacleMap obstacles_;
  std::vector<rfsim::Point> tags_;
  std::vector<std::size_t> serving_;  ///< tag id → gateway id
  bool associated_ = false;
};

}  // namespace cbma::net
