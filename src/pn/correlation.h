// Correlation kernels used by the receiver's user detector and decoder, and
// by the code-family quality tests.
//
// Two domains:
//  * code-vs-code correlations on binary chips (periodic / aperiodic), used
//    to validate family properties (Gold's three-valued cross-correlation,
//    2NC orthogonality);
//  * real-signal-vs-template sliding correlation, used on the receiver's
//    magnitude envelope. Templates are mean-removed so the unipolar OOK
//    envelope and constant offsets from other users do not bias decisions
//    (this is the "correlation-based detector" of §V-B).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "pn/code.h"

namespace cbma::pn {

/// Periodic (cyclic) cross-correlation of bipolar versions of a and b at
/// shift tau: sum_i a[i] * b[(i+tau) mod L]. Codes must share a length.
int periodic_cross_correlation(const PnCode& a, const PnCode& b, std::size_t tau);

/// All L periodic cross-correlation values.
std::vector<int> periodic_cross_correlation_all(const PnCode& a, const PnCode& b);

/// Peak |cross-correlation| over all shifts; for a==b, shift 0 is excluded
/// (that is the autocorrelation peak).
int peak_cross_correlation(const PnCode& a, const PnCode& b);

/// Mean-removed correlation template for a code: bipolar chips minus their
/// mean, optionally repeated `samples_per_chip` times per chip.
std::vector<double> mean_removed_template(const PnCode& code,
                                          std::size_t samples_per_chip = 1);

/// Dot product of `signal` (from `offset`) against `tmpl`; returns 0 if the
/// template does not fit.
double correlate_at(std::span<const double> signal, std::span<const double> tmpl,
                    std::size_t offset);

/// Normalized correlation in [-1, 1]: correlate_at divided by the L2 norms
/// of the template and the mean-removed signal window.
double normalized_correlation_at(std::span<const double> signal,
                                 std::span<const double> tmpl, std::size_t offset);

struct CorrelationPeak {
  std::size_t offset = 0;
  double value = 0.0;  ///< normalized correlation at the peak
};

/// Slide `tmpl` over signal[search_begin, search_end) and return the offset
/// with the largest normalized correlation.
CorrelationPeak sliding_peak(std::span<const double> signal,
                             std::span<const double> tmpl,
                             std::size_t search_begin, std::size_t search_end);

// --- complex-baseband correlation (coherent receiver path) ---

/// Complex dot product of `signal` (from `offset`) against a real template;
/// returns 0 if the template does not fit. The result's argument is the
/// signal's carrier phase over the window.
std::complex<double> complex_correlate_at(std::span<const std::complex<double>> signal,
                                          std::span<const double> tmpl,
                                          std::size_t offset);

/// |complex correlation| normalized by the L2 norms of the template and the
/// mean-removed signal window — in [0, 1], invariant to carrier phase.
double normalized_complex_correlation_at(std::span<const std::complex<double>> signal,
                                         std::span<const double> tmpl,
                                         std::size_t offset);

struct ComplexCorrelationPeak {
  std::size_t offset = 0;
  double value = 0.0;  ///< normalized |correlation| at the peak
  double phase = 0.0;  ///< carrier phase estimate at the peak (radians)
};

/// Slide `tmpl` over complex signal[search_begin, search_end); returns the
/// offset with the largest normalized |correlation| plus the phase there.
ComplexCorrelationPeak sliding_complex_peak(
    std::span<const std::complex<double>> signal, std::span<const double> tmpl,
    std::size_t search_begin, std::size_t search_end);

// --- split real/imag kernels (hot receiver path) ---
//
// The receiver deinterleaves a window once into separate I and Q arrays and
// runs every correlation on the split layout: each inner loop then streams
// one contiguous double array per component instead of strided
// std::complex pairs, which is what lets the compiler keep the
// multiply-accumulate chains in vector registers.

/// Deinterleave a complex window into separate re/im arrays (resized).
void split_iq(std::span<const std::complex<double>> iq, std::vector<double>& re,
              std::vector<double>& im);

/// complex_correlate_at on a split window.
std::complex<double> complex_correlate_at(std::span<const double> re,
                                          std::span<const double> im,
                                          std::span<const double> tmpl,
                                          std::size_t offset);

/// sliding_complex_peak on a split window.
ComplexCorrelationPeak sliding_complex_peak(std::span<const double> re,
                                            std::span<const double> im,
                                            std::span<const double> tmpl,
                                            std::size_t search_begin,
                                            std::size_t search_end);

// --- chip-folded kernels ---
//
// Every detection template is an upsampled chip sequence: `samples_per_chip`
// consecutive template samples share one value. A sliding dot product
// therefore factors through per-chip partial sums of the window,
//   dot(off) = Σ_c tmpl_chip[c] · fold[off + c·spc],
// where fold[x] = Σ_{j<spc} window[x+j]. Folding once per window (or per
// SIC residual update) cuts each lag's work by spc×, which dominates the
// user-detection search where many lags and many codes share one window.

/// Per-chip partial sums of `x`: out[i] = x[i] + … + x[i+spc−1], resized to
/// x.size() − spc + 1 (empty if x is shorter than one chip).
void fold_chip_sums(std::span<const double> x, std::size_t samples_per_chip,
                    std::vector<double>& out);

/// Recompute fold entries [begin, end) after `x` changed in place (the SIC
/// residual update). Bounds are clamped to the fold's size.
void refold_chip_sums(std::span<const double> x, std::size_t samples_per_chip,
                      std::size_t begin, std::size_t end, std::vector<double>& out);

/// complex_correlate_at against a chip-level template using pre-folded
/// per-chip window sums. Equals the sample-level dot up to FP rounding.
std::complex<double> complex_correlate_folded_at(std::span<const double> fold_re,
                                                 std::span<const double> fold_im,
                                                 std::span<const double> chip_tmpl,
                                                 std::size_t samples_per_chip,
                                                 std::size_t offset);

/// sliding_complex_peak driven by the folded dot product. `re`/`im` are the
/// raw split window (for the normalization terms); `fold_re`/`fold_im` must
/// be fold_chip_sums of them; `chip_tmpl` is the chip-level (not upsampled)
/// mean-removed template.
ComplexCorrelationPeak sliding_complex_peak_folded(
    std::span<const double> re, std::span<const double> im,
    std::span<const double> fold_re, std::span<const double> fold_im,
    std::span<const double> chip_tmpl, std::size_t samples_per_chip,
    std::size_t search_begin, std::size_t search_end);

}  // namespace cbma::pn
