#include "pn/fft.h"

#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cbma::pn {

std::size_t FftPlan::next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  CBMA_REQUIRE(n >= 1 && (n & (n - 1)) == 0, "FFT size must be a power of two");
  while ((std::size_t{1} << log2n_) < n_) ++log2n_;

  bitrev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint32_t r = 0;
    for (std::uint32_t b = 0; b < log2n_; ++b) {
      r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    }
    bitrev_[i] = r;
  }

  // Stage with half-size h stores its h twiddles at offset h − 1; summed
  // over stages that is n − 1 entries.
  tw_re_.resize(n_ > 1 ? n_ - 1 : 0);
  tw_im_.resize(tw_re_.size());
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const double step = -units::kPi / static_cast<double>(h);
    for (std::size_t k = 0; k < h; ++k) {
      const double a = step * static_cast<double>(k);
      tw_re_[h - 1 + k] = std::cos(a);
      tw_im_[h - 1 + k] = std::sin(a);
    }
  }
}

void FftPlan::transform(double* re, double* im, bool inverse) const {
  // Bit-reversal permutation (swap once per pair).
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (j > i) {
      const double tr = re[i];
      re[i] = re[j];
      re[j] = tr;
      const double ti = im[i];
      im[i] = im[j];
      im[j] = ti;
    }
  }
  // Danielson–Lanczos butterflies; the inverse conjugates the twiddles.
  const double sgn = inverse ? -1.0 : 1.0;
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const double* twr = tw_re_.data() + (h - 1);
    const double* twi = tw_im_.data() + (h - 1);
    for (std::size_t base = 0; base < n_; base += 2 * h) {
      for (std::size_t k = 0; k < h; ++k) {
        const std::size_t a = base + k;
        const std::size_t b = a + h;
        const double wr = twr[k];
        const double wi = sgn * twi[k];
        const double xr = re[b] * wr - im[b] * wi;
        const double xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] += xr;
        im[a] += xi;
      }
    }
  }
}

void FftPlan::forward(double* re, double* im) const {
  transform(re, im, /*inverse=*/false);
}

void FftPlan::inverse(double* re, double* im) const {
  transform(re, im, /*inverse=*/true);
  const double inv = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    re[i] *= inv;
    im[i] *= inv;
  }
}

}  // namespace cbma::pn
