// Iterative radix-2 FFT on split re/im arrays — the transform core of the
// receiver's FFT correlation engine (rx/correlation_engine.h, DESIGN.md §9).
//
// Design constraints, in order:
//  * split-array layout (separate re/im doubles) so the butterflies stream
//    the same contiguous buffers every other hot kernel in the repo uses —
//    no std::complex interleaving, no layout conversion at the engine
//    boundary;
//  * all plan state (bit-reversal table, per-stage twiddles) precomputed at
//    construction, so transform() on a warm plan performs zero allocations
//    — the property the detection engine needs to keep UserDetector::detect
//    allocation-free in steady state;
//  * deterministic: no runtime trigonometry beyond construction, so two
//    plans of the same size produce bit-identical transforms on every
//    machine/ISA (the twiddles are computed once, scalar, at plan time).
//
// This is deliberately a plain power-of-two radix-2 kernel, not a FFTW
// clone: correlation sizes are chosen by the engine (which rounds up to a
// power of two anyway), and the simple kernel keeps the dual-path
// equivalence bound easy to reason about (§9's tolerance budget).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cbma::pn {

/// A fixed-size FFT plan. Construct once per size, reuse freely; transforms
/// are const and thread-safe (the plan is immutable after construction).
class FftPlan {
 public:
  /// `n` must be a power of two ≥ 1.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT of the length-n sequence re + j·im (no scaling).
  void forward(double* re, double* im) const;

  /// In-place inverse DFT including the 1/n scale, so
  /// inverse(forward(x)) == x up to FP rounding.
  void inverse(double* re, double* im) const;

  /// Smallest power of two ≥ n (n = 0 maps to 1).
  static std::size_t next_pow2(std::size_t n);

 private:
  void transform(double* re, double* im, bool inverse) const;

  std::size_t n_ = 1;
  std::uint32_t log2n_ = 0;
  std::vector<std::uint32_t> bitrev_;  ///< bit-reversal permutation
  /// Twiddles for all stages, concatenated: stage s (half-size h = 2^s)
  /// contributes h factors e^{-2πi k / 2h}, k < h, at offset h − 1.
  std::vector<double> tw_re_;
  std::vector<double> tw_im_;
};

}  // namespace cbma::pn
