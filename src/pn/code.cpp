#include "pn/code.h"

#include "pn/gold.h"
#include "pn/twonc.h"
#include "util/expect.h"

namespace cbma::pn {

PnCode::PnCode(std::vector<std::uint8_t> chips, std::string name)
    : chips_(std::move(chips)), name_(std::move(name)) {
  CBMA_REQUIRE(!chips_.empty(), "PN code must be non-empty");
  bipolar_.reserve(chips_.size());
  negated_.reserve(chips_.size());
  for (const auto c : chips_) {
    CBMA_REQUIRE(c == 0 || c == 1, "PN chips must be binary");
    bipolar_.push_back(c ? 1.0 : -1.0);
    negated_.push_back(static_cast<std::uint8_t>(c ^ 1));
  }
}

int PnCode::balance() const {
  int ones = 0;
  for (const auto c : chips_) ones += c;
  return 2 * ones - static_cast<int>(chips_.size());
}

std::string to_string(CodeFamily family) {
  switch (family) {
    case CodeFamily::kGold: return "Gold";
    case CodeFamily::kTwoNC: return "2NC";
  }
  return "?";
}

std::vector<PnCode> make_code_set(CodeFamily family, std::size_t count,
                                  std::size_t min_length) {
  CBMA_REQUIRE(count >= 1, "code set must contain at least one code");
  switch (family) {
    case CodeFamily::kGold: {
      // Smallest tabulated degree whose family is big enough and whose
      // length meets the floor.
      for (const unsigned degree : {5u, 6u, 7u, 9u, 10u}) {
        const std::size_t length = (std::size_t{1} << degree) - 1;
        if (length + 2 >= count && length >= min_length) {
          return GoldFamily(degree).codes(count);
        }
      }
      CBMA_REQUIRE(false, "no tabulated Gold family fits the request");
      break;
    }
    case CodeFamily::kTwoNC:
      return TwoNCFamily(count, min_length).codes(count);
  }
  CBMA_REQUIRE(false, "unknown code family");
}

}  // namespace cbma::pn
