// SIMD kernel variants + the dispatch switch. This TU is compiled with
// -ffp-contract=off (see src/CMakeLists.txt): the bit-exactness contract in
// simd.h relies on the scalar fallback not being contracted into FMAs,
// since the AVX2 variants deliberately use separate multiply and add so
// both paths round identically.
#include "pn/simd.h"

#include <atomic>
#include <cstdlib>

#if !defined(CBMA_FORCE_SCALAR) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CBMA_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define CBMA_SIMD_HAVE_AVX2 0
#endif

namespace cbma::pn::simd {
namespace {

// -1 unresolved, 0 allow detection, 1 force scalar.
std::atomic<int>& force_scalar_state() {
  static std::atomic<int> state{-1};
  return state;
}

bool force_scalar_resolved() {
  auto& state = force_scalar_state();
  int v = state.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("CBMA_FORCE_SCALAR");
    const bool forced =
        env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    v = forced ? 1 : 0;
    state.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

bool cpu_has_avx2() {
#if CBMA_SIMD_HAVE_AVX2
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

// --- scalar variants -------------------------------------------------------

void fold_sums_scalar(const double* x, std::size_t count, std::size_t spc,
                      double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    double s = x[i];
    for (std::size_t j = 1; j < spc; ++j) s += x[i + j];
    out[i] = s;
  }
}

void cmul_acc_scalar(const double* a_re, const double* a_im, const double* b_re,
                     const double* b_im, double* acc_re, double* acc_im,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double rr = a_re[i] * b_re[i];
    const double ii = a_im[i] * b_im[i];
    const double ri = a_re[i] * b_im[i];
    const double ir = a_im[i] * b_re[i];
    acc_re[i] += rr - ii;
    acc_im[i] += ri + ir;
  }
}

// --- AVX2 variants ---------------------------------------------------------
//
// Each vector lane is one output element; per-lane operation order matches
// the scalar variant exactly (same adds in the same order, no FMA), so the
// two paths are bit-identical — tests/pn_simd_test.cpp asserts it.

#if CBMA_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) void fold_sums_avx2(const double* x,
                                                    std::size_t count,
                                                    std::size_t spc,
                                                    double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d acc = _mm256_loadu_pd(x + i);
    for (std::size_t j = 1; j < spc; ++j) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i + j));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  if (i < count) fold_sums_scalar(x + i, count - i, spc, out + i);
}

__attribute__((target("avx2"))) void cmul_acc_avx2(
    const double* a_re, const double* a_im, const double* b_re,
    const double* b_im, double* acc_re, double* acc_im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ar = _mm256_loadu_pd(a_re + i);
    const __m256d ai = _mm256_loadu_pd(a_im + i);
    const __m256d br = _mm256_loadu_pd(b_re + i);
    const __m256d bi = _mm256_loadu_pd(b_im + i);
    const __m256d rr = _mm256_mul_pd(ar, br);
    const __m256d ii = _mm256_mul_pd(ai, bi);
    const __m256d ri = _mm256_mul_pd(ar, bi);
    const __m256d ir = _mm256_mul_pd(ai, br);
    _mm256_storeu_pd(
        acc_re + i,
        _mm256_add_pd(_mm256_loadu_pd(acc_re + i), _mm256_sub_pd(rr, ii)));
    _mm256_storeu_pd(
        acc_im + i,
        _mm256_add_pd(_mm256_loadu_pd(acc_im + i), _mm256_add_pd(ri, ir)));
  }
  if (i < n) {
    cmul_acc_scalar(a_re + i, a_im + i, b_re + i, b_im + i, acc_re + i,
                    acc_im + i, n - i);
  }
}

#endif  // CBMA_SIMD_HAVE_AVX2

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
  }
  return "unknown";
}

Isa active_isa() {
  if (force_scalar_resolved()) return Isa::kScalar;
  return cpu_has_avx2() ? Isa::kAvx2 : Isa::kScalar;
}

void set_force_scalar(bool force) {
  force_scalar_state().store(force ? 1 : 0, std::memory_order_relaxed);
}

bool avx2_supported() { return cpu_has_avx2(); }

void fold_sums(const double* x, std::size_t count, std::size_t spc, double* out) {
#if CBMA_SIMD_HAVE_AVX2
  if (active_isa() == Isa::kAvx2) {
    fold_sums_avx2(x, count, spc, out);
    return;
  }
#endif
  fold_sums_scalar(x, count, spc, out);
}

void cmul_acc(const double* a_re, const double* a_im, const double* b_re,
              const double* b_im, double* acc_re, double* acc_im,
              std::size_t n) {
#if CBMA_SIMD_HAVE_AVX2
  if (active_isa() == Isa::kAvx2) {
    cmul_acc_avx2(a_re, a_im, b_re, b_im, acc_re, acc_im, n);
    return;
  }
#endif
  cmul_acc_scalar(a_re, a_im, b_re, b_im, acc_re, acc_im, n);
}

}  // namespace cbma::pn::simd
