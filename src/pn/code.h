// Spreading-code value type shared by the whole library.
//
// A PnCode is a fixed binary chip sequence. Following the paper's footnote 2,
// a data bit '1' is transmitted as the code itself and a data bit '0' as its
// bitwise negation, so the receiver's decision reduces to the sign of a
// correlation against the bipolar (±1) code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbma::pn {

class PnCode {
 public:
  PnCode() = default;
  explicit PnCode(std::vector<std::uint8_t> chips, std::string name = "");

  std::size_t length() const { return chips_.size(); }
  bool empty() const { return chips_.empty(); }
  const std::vector<std::uint8_t>& chips() const { return chips_; }
  std::uint8_t chip(std::size_t i) const { return chips_[i]; }
  const std::string& name() const { return name_; }

  /// ±1 representation (chip 1 → +1, chip 0 → −1).
  const std::vector<double>& bipolar() const { return bipolar_; }

  /// Bitwise negation of the chips — the '0'-bit waveform of footnote 2.
  /// Cached at construction so per-frame spreading is a table copy.
  const std::vector<std::uint8_t>& negated_chips() const { return negated_; }

  /// Chip sequence for a data bit: the code for '1', its negation for '0'.
  /// Returns a reference to the cached waveform (no per-call allocation).
  const std::vector<std::uint8_t>& chips_for_bit(bool bit) const {
    return bit ? chips_ : negated_;
  }

  /// Number of '1' chips minus number of '0' chips (balance metric).
  int balance() const;

  bool operator==(const PnCode& other) const { return chips_ == other.chips_; }

 private:
  std::vector<std::uint8_t> chips_;
  std::vector<std::uint8_t> negated_;
  std::vector<double> bipolar_;
  std::string name_;
};

/// The two code families the paper evaluates (Fig. 9(b)).
enum class CodeFamily { kGold, kTwoNC };

std::string to_string(CodeFamily family);

/// Generate `count` codes of the requested family. For Gold codes,
/// `min_length` picks the smallest register size whose family supports
/// `count` codes of length >= min_length. For 2NC, length is 2*count by
/// construction (but at least 2*min_users slots when `min_users` > count).
std::vector<PnCode> make_code_set(CodeFamily family, std::size_t count,
                                  std::size_t min_length = 31);

}  // namespace cbma::pn
