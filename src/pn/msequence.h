// Maximal-length sequences (m-sequences) from primitive polynomials.
//
// An m-sequence of degree n has period 2^n − 1 and the two-valued
// autocorrelation that spread-spectrum systems rely on. The primitive
// polynomial table covers the degrees CBMA uses (5..10); Gold code
// construction additionally needs *preferred pairs*, listed here too.
#pragma once

#include <cstdint>
#include <vector>

#include "pn/code.h"

namespace cbma::pn {

/// A primitive feedback polynomial for `degree`, as an Lfsr tap mask.
std::uint64_t primitive_tap_mask(unsigned degree);

/// A preferred pair of tap masks for Gold construction at `degree`
/// (degrees 5, 6, 7, 9, 10 — degrees ≡ 0 mod 4 have no preferred pairs).
std::pair<std::uint64_t, std::uint64_t> preferred_pair(unsigned degree);

/// Full-period m-sequence (length 2^degree − 1) from the given taps.
std::vector<std::uint8_t> msequence(unsigned degree, std::uint64_t tap_mask,
                                    std::uint64_t seed = 1);

/// Convenience: m-sequence as a PnCode using the default primitive taps.
PnCode msequence_code(unsigned degree);

}  // namespace cbma::pn
