// Runtime-dispatched SIMD kernels for the chip-rate split re/im hot loops
// (DESIGN.md §9.4). One scalar and one AVX2 variant exist per kernel; the
// active one is chosen once per process from CPUID, the CBMA_FORCE_SCALAR
// environment variable, and the CBMA_FORCE_SCALAR compile definition.
//
// The dispatch contract is **bit-exactness**: both variants of every kernel
// produce bit-identical outputs. This is achievable (and tested, see
// tests/pn_simd_test.cpp) because every kernel here vectorizes across
// *independent output elements* — each output's floating-point accumulation
// order is the same in both variants, lanes never sum across each other,
// and the translation unit is compiled with FP contraction off so the
// scalar fallback cannot silently fuse into FMAs the vector path does not
// use. Bit-exactness is what lets the receiver keep its byte-identical
// bench/JSON guarantees regardless of which ISA the host dispatches to.
#pragma once

#include <cstddef>

namespace cbma::pn::simd {

enum class Isa {
  kScalar,
  kAvx2,
};

/// Stable label for logs and tests ("scalar", "avx2").
const char* isa_name(Isa isa);

/// The ISA the kernels below currently dispatch to. Resolved on first call
/// from compile flags, CPUID and CBMA_FORCE_SCALAR; overridable afterwards
/// with set_force_scalar().
Isa active_isa();

/// Test hook: true pins the scalar variants regardless of CPU support;
/// false re-enables CPU detection (still subject to the compile-time
/// CBMA_FORCE_SCALAR definition, which removes the AVX2 variants entirely).
void set_force_scalar(bool force);

/// Whether the AVX2 variants exist in this build and on this CPU (ignores
/// the force-scalar override — i.e. whether set_force_scalar(false) would
/// dispatch to AVX2).
bool avx2_supported();

/// out[i] = x[i] + x[i+1] + … + x[i+spc−1] for i in [0, count).
/// `x` must expose count + spc − 1 readable elements. Per-output summation
/// order is ascending j in both variants.
void fold_sums(const double* x, std::size_t count, std::size_t spc, double* out);

/// Elementwise complex multiply-accumulate on split arrays:
///   acc[i] += a[i] * b[i]  (complex), i in [0, n)
/// — the frequency-domain template multiply of the FFT correlation engine
/// (the conjugation lives in the precomputed template spectra).
void cmul_acc(const double* a_re, const double* a_im, const double* b_re,
              const double* b_im, double* acc_re, double* acc_im, std::size_t n);

}  // namespace cbma::pn::simd
