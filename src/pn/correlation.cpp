#include "pn/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "pn/simd.h"
#include "util/expect.h"

namespace cbma::pn {

int periodic_cross_correlation(const PnCode& a, const PnCode& b, std::size_t tau) {
  CBMA_REQUIRE(a.length() == b.length(), "codes must share a length");
  const std::size_t len = a.length();
  CBMA_REQUIRE(tau < len, "shift exceeds code length");
  int acc = 0;
  for (std::size_t i = 0; i < len; ++i) {
    // Bipolar product: equal chips contribute +1, different chips −1.
    acc += (a.chip(i) == b.chip((i + tau) % len)) ? 1 : -1;
  }
  return acc;
}

std::vector<int> periodic_cross_correlation_all(const PnCode& a, const PnCode& b) {
  std::vector<int> out(a.length());
  for (std::size_t tau = 0; tau < a.length(); ++tau) {
    out[tau] = periodic_cross_correlation(a, b, tau);
  }
  return out;
}

int peak_cross_correlation(const PnCode& a, const PnCode& b) {
  const bool same = (a == b);
  int peak = 0;
  for (std::size_t tau = same ? 1 : 0; tau < a.length(); ++tau) {
    peak = std::max(peak, std::abs(periodic_cross_correlation(a, b, tau)));
  }
  return peak;
}

std::vector<double> mean_removed_template(const PnCode& code,
                                          std::size_t samples_per_chip) {
  CBMA_REQUIRE(samples_per_chip >= 1, "samples_per_chip must be positive");
  const auto& bip = code.bipolar();
  const double mean =
      std::accumulate(bip.begin(), bip.end(), 0.0) / static_cast<double>(bip.size());
  std::vector<double> tmpl;
  tmpl.reserve(bip.size() * samples_per_chip);
  for (const double v : bip) {
    for (std::size_t s = 0; s < samples_per_chip; ++s) tmpl.push_back(v - mean);
  }
  return tmpl;
}

double correlate_at(std::span<const double> signal, std::span<const double> tmpl,
                    std::size_t offset) {
  if (offset + tmpl.size() > signal.size()) return 0.0;
  double acc = 0.0;
  const double* s = signal.data() + offset;
  for (std::size_t i = 0; i < tmpl.size(); ++i) acc += s[i] * tmpl[i];
  return acc;
}

double normalized_correlation_at(std::span<const double> signal,
                                 std::span<const double> tmpl, std::size_t offset) {
  if (offset + tmpl.size() > signal.size() || tmpl.empty()) return 0.0;
  const double* s = signal.data() + offset;
  double sum = 0.0;
  for (std::size_t i = 0; i < tmpl.size(); ++i) sum += s[i];
  const double mean = sum / static_cast<double>(tmpl.size());
  double dot = 0.0;
  double s_norm2 = 0.0;
  double t_norm2 = 0.0;
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    const double sv = s[i] - mean;
    dot += sv * tmpl[i];
    s_norm2 += sv * sv;
    t_norm2 += tmpl[i] * tmpl[i];
  }
  const double denom = std::sqrt(s_norm2 * t_norm2);
  if (denom <= 0.0) return 0.0;
  return dot / denom;
}

std::complex<double> complex_correlate_at(std::span<const std::complex<double>> signal,
                                          std::span<const double> tmpl,
                                          std::size_t offset) {
  if (offset + tmpl.size() > signal.size()) return {0.0, 0.0};
  std::complex<double> acc{0.0, 0.0};
  const std::complex<double>* s = signal.data() + offset;
  for (std::size_t i = 0; i < tmpl.size(); ++i) acc += s[i] * tmpl[i];
  return acc;
}

double normalized_complex_correlation_at(std::span<const std::complex<double>> signal,
                                         std::span<const double> tmpl,
                                         std::size_t offset) {
  if (offset + tmpl.size() > signal.size() || tmpl.empty()) return 0.0;
  const std::complex<double>* s = signal.data() + offset;
  std::complex<double> sum{0.0, 0.0};
  for (std::size_t i = 0; i < tmpl.size(); ++i) sum += s[i];
  const std::complex<double> mean = sum / static_cast<double>(tmpl.size());
  std::complex<double> dot{0.0, 0.0};
  double s_norm2 = 0.0;
  double t_norm2 = 0.0;
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    const std::complex<double> sv = s[i] - mean;
    dot += sv * tmpl[i];
    s_norm2 += std::norm(sv);
    t_norm2 += tmpl[i] * tmpl[i];
  }
  const double denom = std::sqrt(s_norm2 * t_norm2);
  if (denom <= 0.0) return 0.0;
  return std::abs(dot) / denom;
}

ComplexCorrelationPeak sliding_complex_peak(
    std::span<const std::complex<double>> signal, std::span<const double> tmpl,
    std::size_t search_begin, std::size_t search_end) {
  CBMA_REQUIRE(search_begin <= search_end, "search window inverted");
  ComplexCorrelationPeak best;
  best.value = -1.0;
  const std::size_t n = tmpl.size();
  if (n == 0 || signal.size() < n) return ComplexCorrelationPeak{};
  const std::size_t end = std::min({search_end, signal.size() - n + 1});
  if (search_begin >= end) return ComplexCorrelationPeak{};

  // The window mean/energy terms are shared across lags — maintain them as
  // running sums instead of rescanning the window per lag. Only the dot
  // product is recomputed per lag.
  double t_norm2 = 0.0;
  double t_sum = 0.0;
  for (const double v : tmpl) {
    t_norm2 += v * v;
    t_sum += v;
  }
  const double inv_n = 1.0 / static_cast<double>(n);

  std::complex<double> s_sum{0.0, 0.0};
  double s_sumsq = 0.0;
  for (std::size_t i = search_begin; i < search_begin + n; ++i) {
    s_sum += signal[i];
    s_sumsq += std::norm(signal[i]);
  }

  for (std::size_t off = search_begin; off < end; ++off) {
    std::complex<double> dot{0.0, 0.0};
    const std::complex<double>* s = signal.data() + off;
    for (std::size_t i = 0; i < n; ++i) dot += s[i] * tmpl[i];
    // Mean-removed forms: dot_c = dot − mean·Σtmpl, ‖window−mean‖².
    const std::complex<double> mean = s_sum * inv_n;
    const std::complex<double> dot_c = dot - mean * t_sum;
    const double s_norm2 = s_sumsq - std::norm(s_sum) * inv_n;
    const double denom2 = s_norm2 * t_norm2;
    const double v = denom2 > 0.0 ? std::abs(dot_c) / std::sqrt(denom2) : 0.0;
    if (v > best.value) {
      best.value = v;
      best.offset = off;
    }
    if (off + n < signal.size()) {
      s_sum += signal[off + n] - signal[off];
      s_sumsq += std::norm(signal[off + n]) - std::norm(signal[off]);
    }
  }
  if (best.value < 0.0) return ComplexCorrelationPeak{};
  best.phase = std::arg(complex_correlate_at(signal, tmpl, best.offset));
  return best;
}

void split_iq(std::span<const std::complex<double>> iq, std::vector<double>& re,
              std::vector<double>& im) {
  re.resize(iq.size());
  im.resize(iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) {
    re[i] = iq[i].real();
    im[i] = iq[i].imag();
  }
}

std::complex<double> complex_correlate_at(std::span<const double> re,
                                          std::span<const double> im,
                                          std::span<const double> tmpl,
                                          std::size_t offset) {
  if (offset + tmpl.size() > re.size()) return {0.0, 0.0};
  double acc_re = 0.0;
  double acc_im = 0.0;
  const double* r = re.data() + offset;
  const double* i = im.data() + offset;
  for (std::size_t k = 0; k < tmpl.size(); ++k) {
    acc_re += r[k] * tmpl[k];
    acc_im += i[k] * tmpl[k];
  }
  return {acc_re, acc_im};
}

ComplexCorrelationPeak sliding_complex_peak(std::span<const double> re,
                                            std::span<const double> im,
                                            std::span<const double> tmpl,
                                            std::size_t search_begin,
                                            std::size_t search_end) {
  CBMA_REQUIRE(re.size() == im.size(), "split window components disagree");
  CBMA_REQUIRE(search_begin <= search_end, "search window inverted");
  ComplexCorrelationPeak best;
  best.value = -1.0;
  const std::size_t n = tmpl.size();
  if (n == 0 || re.size() < n) return ComplexCorrelationPeak{};
  const std::size_t end = std::min({search_end, re.size() - n + 1});
  if (search_begin >= end) return ComplexCorrelationPeak{};

  double t_norm2 = 0.0;
  double t_sum = 0.0;
  for (const double v : tmpl) {
    t_norm2 += v * v;
    t_sum += v;
  }
  const double inv_n = 1.0 / static_cast<double>(n);

  // Running window sums shared across lags; only the dot product is
  // recomputed per lag.
  double s_sum_re = 0.0;
  double s_sum_im = 0.0;
  double s_sumsq = 0.0;
  for (std::size_t i = search_begin; i < search_begin + n; ++i) {
    s_sum_re += re[i];
    s_sum_im += im[i];
    s_sumsq += re[i] * re[i] + im[i] * im[i];
  }

  for (std::size_t off = search_begin; off < end; ++off) {
    double dot_re = 0.0;
    double dot_im = 0.0;
    const double* r = re.data() + off;
    const double* i = im.data() + off;
    for (std::size_t k = 0; k < n; ++k) {
      dot_re += r[k] * tmpl[k];
      dot_im += i[k] * tmpl[k];
    }
    // Mean-removed forms: dot_c = dot − mean·Σtmpl, ‖window−mean‖².
    const double mean_re = s_sum_re * inv_n;
    const double mean_im = s_sum_im * inv_n;
    const double dc_re = dot_re - mean_re * t_sum;
    const double dc_im = dot_im - mean_im * t_sum;
    const double s_norm2 =
        s_sumsq - (s_sum_re * s_sum_re + s_sum_im * s_sum_im) * inv_n;
    const double denom2 = s_norm2 * t_norm2;
    const double v =
        denom2 > 0.0 ? std::sqrt((dc_re * dc_re + dc_im * dc_im) / denom2) : 0.0;
    if (v > best.value) {
      best.value = v;
      best.offset = off;
    }
    if (off + n < re.size()) {
      s_sum_re += re[off + n] - re[off];
      s_sum_im += im[off + n] - im[off];
      s_sumsq += re[off + n] * re[off + n] + im[off + n] * im[off + n] -
                 re[off] * re[off] - im[off] * im[off];
    }
  }
  if (best.value < 0.0) return ComplexCorrelationPeak{};
  const auto peak_corr = complex_correlate_at(re, im, tmpl, best.offset);
  best.phase = std::atan2(peak_corr.imag(), peak_corr.real());
  return best;
}

void fold_chip_sums(std::span<const double> x, std::size_t samples_per_chip,
                    std::vector<double>& out) {
  CBMA_REQUIRE(samples_per_chip >= 1, "samples_per_chip must be positive");
  if (x.size() < samples_per_chip) {
    out.clear();
    return;
  }
  out.resize(x.size() - samples_per_chip + 1);
  refold_chip_sums(x, samples_per_chip, 0, out.size(), out);
}

void refold_chip_sums(std::span<const double> x, std::size_t samples_per_chip,
                      std::size_t begin, std::size_t end, std::vector<double>& out) {
  // Direct per-entry sums (not a running window) so refolding a subrange
  // reproduces exactly what a full fold computes — no accumulated drift.
  // simd::fold_sums keeps the same ascending-j per-entry order in every
  // variant, so the result is bit-identical on any dispatch path.
  end = std::min(end, out.size());
  if (begin >= end) return;
  simd::fold_sums(x.data() + begin, end - begin, samples_per_chip,
                  out.data() + begin);
}

std::complex<double> complex_correlate_folded_at(std::span<const double> fold_re,
                                                 std::span<const double> fold_im,
                                                 std::span<const double> chip_tmpl,
                                                 std::size_t samples_per_chip,
                                                 std::size_t offset) {
  const std::size_t n_chips = chip_tmpl.size();
  if (n_chips == 0) return {0.0, 0.0};
  const std::size_t last = offset + (n_chips - 1) * samples_per_chip;
  if (last >= fold_re.size()) return {0.0, 0.0};
  double acc_re = 0.0;
  double acc_im = 0.0;
  const double* fr = fold_re.data() + offset;
  const double* fi = fold_im.data() + offset;
  for (std::size_t c = 0; c < n_chips; ++c) {
    const std::size_t x = c * samples_per_chip;
    acc_re += fr[x] * chip_tmpl[c];
    acc_im += fi[x] * chip_tmpl[c];
  }
  return {acc_re, acc_im};
}

ComplexCorrelationPeak sliding_complex_peak_folded(
    std::span<const double> re, std::span<const double> im,
    std::span<const double> fold_re, std::span<const double> fold_im,
    std::span<const double> chip_tmpl, std::size_t samples_per_chip,
    std::size_t search_begin, std::size_t search_end) {
  CBMA_REQUIRE(re.size() == im.size(), "split window components disagree");
  CBMA_REQUIRE(search_begin <= search_end, "search window inverted");
  ComplexCorrelationPeak best;
  best.value = -1.0;
  const std::size_t n_chips = chip_tmpl.size();
  const std::size_t n = n_chips * samples_per_chip;
  if (n == 0 || re.size() < n) return ComplexCorrelationPeak{};
  const std::size_t end = std::min({search_end, re.size() - n + 1});
  if (search_begin >= end) return ComplexCorrelationPeak{};
  CBMA_ASSERT(fold_re.size() == re.size() - samples_per_chip + 1 &&
              fold_im.size() == fold_re.size());

  // Sample-level template norms from the chip template: each chip value
  // repeats samples_per_chip times.
  double t_chip_norm2 = 0.0;
  double t_chip_sum = 0.0;
  for (const double v : chip_tmpl) {
    t_chip_norm2 += v * v;
    t_chip_sum += v;
  }
  const double spc = static_cast<double>(samples_per_chip);
  const double t_norm2 = spc * t_chip_norm2;
  const double t_sum = spc * t_chip_sum;
  const double inv_n = 1.0 / static_cast<double>(n);

  // Running window sums shared across lags (identical to the unfolded
  // sliding peak); only the dot product runs on the folded layout.
  double s_sum_re = 0.0;
  double s_sum_im = 0.0;
  double s_sumsq = 0.0;
  for (std::size_t i = search_begin; i < search_begin + n; ++i) {
    s_sum_re += re[i];
    s_sum_im += im[i];
    s_sumsq += re[i] * re[i] + im[i] * im[i];
  }

  for (std::size_t off = search_begin; off < end; ++off) {
    double dot_re = 0.0;
    double dot_im = 0.0;
    const double* fr = fold_re.data() + off;
    const double* fi = fold_im.data() + off;
    for (std::size_t c = 0; c < n_chips; ++c) {
      const std::size_t x = c * samples_per_chip;
      dot_re += fr[x] * chip_tmpl[c];
      dot_im += fi[x] * chip_tmpl[c];
    }
    const double mean_re = s_sum_re * inv_n;
    const double mean_im = s_sum_im * inv_n;
    const double dc_re = dot_re - mean_re * t_sum;
    const double dc_im = dot_im - mean_im * t_sum;
    const double s_norm2 =
        s_sumsq - (s_sum_re * s_sum_re + s_sum_im * s_sum_im) * inv_n;
    const double denom2 = s_norm2 * t_norm2;
    const double v =
        denom2 > 0.0 ? std::sqrt((dc_re * dc_re + dc_im * dc_im) / denom2) : 0.0;
    if (v > best.value) {
      best.value = v;
      best.offset = off;
    }
    if (off + n < re.size()) {
      s_sum_re += re[off + n] - re[off];
      s_sum_im += im[off + n] - im[off];
      s_sumsq += re[off + n] * re[off + n] + im[off + n] * im[off + n] -
                 re[off] * re[off] - im[off] * im[off];
    }
  }
  if (best.value < 0.0) return ComplexCorrelationPeak{};
  const auto peak_corr = complex_correlate_folded_at(fold_re, fold_im, chip_tmpl,
                                                     samples_per_chip, best.offset);
  best.phase = std::atan2(peak_corr.imag(), peak_corr.real());
  return best;
}

CorrelationPeak sliding_peak(std::span<const double> signal,
                             std::span<const double> tmpl,
                             std::size_t search_begin, std::size_t search_end) {
  CBMA_REQUIRE(search_begin <= search_end, "search window inverted");
  CorrelationPeak best;
  best.value = -2.0;  // below any normalized correlation
  const std::size_t end = std::min(search_end, signal.size());
  for (std::size_t off = search_begin; off < end; ++off) {
    if (off + tmpl.size() > signal.size()) break;
    const double v = normalized_correlation_at(signal, tmpl, off);
    if (v > best.value) {
      best.value = v;
      best.offset = off;
    }
  }
  if (best.value < -1.5) best = CorrelationPeak{};  // nothing searched
  return best;
}

}  // namespace cbma::pn
