#include "pn/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/expect.h"

namespace cbma::pn {

int periodic_cross_correlation(const PnCode& a, const PnCode& b, std::size_t tau) {
  CBMA_REQUIRE(a.length() == b.length(), "codes must share a length");
  const std::size_t len = a.length();
  CBMA_REQUIRE(tau < len, "shift exceeds code length");
  int acc = 0;
  for (std::size_t i = 0; i < len; ++i) {
    // Bipolar product: equal chips contribute +1, different chips −1.
    acc += (a.chip(i) == b.chip((i + tau) % len)) ? 1 : -1;
  }
  return acc;
}

std::vector<int> periodic_cross_correlation_all(const PnCode& a, const PnCode& b) {
  std::vector<int> out(a.length());
  for (std::size_t tau = 0; tau < a.length(); ++tau) {
    out[tau] = periodic_cross_correlation(a, b, tau);
  }
  return out;
}

int peak_cross_correlation(const PnCode& a, const PnCode& b) {
  const bool same = (a == b);
  int peak = 0;
  for (std::size_t tau = same ? 1 : 0; tau < a.length(); ++tau) {
    peak = std::max(peak, std::abs(periodic_cross_correlation(a, b, tau)));
  }
  return peak;
}

std::vector<double> mean_removed_template(const PnCode& code,
                                          std::size_t samples_per_chip) {
  CBMA_REQUIRE(samples_per_chip >= 1, "samples_per_chip must be positive");
  const auto& bip = code.bipolar();
  const double mean =
      std::accumulate(bip.begin(), bip.end(), 0.0) / static_cast<double>(bip.size());
  std::vector<double> tmpl;
  tmpl.reserve(bip.size() * samples_per_chip);
  for (const double v : bip) {
    for (std::size_t s = 0; s < samples_per_chip; ++s) tmpl.push_back(v - mean);
  }
  return tmpl;
}

double correlate_at(std::span<const double> signal, std::span<const double> tmpl,
                    std::size_t offset) {
  if (offset + tmpl.size() > signal.size()) return 0.0;
  double acc = 0.0;
  const double* s = signal.data() + offset;
  for (std::size_t i = 0; i < tmpl.size(); ++i) acc += s[i] * tmpl[i];
  return acc;
}

double normalized_correlation_at(std::span<const double> signal,
                                 std::span<const double> tmpl, std::size_t offset) {
  if (offset + tmpl.size() > signal.size() || tmpl.empty()) return 0.0;
  const double* s = signal.data() + offset;
  double sum = 0.0;
  for (std::size_t i = 0; i < tmpl.size(); ++i) sum += s[i];
  const double mean = sum / static_cast<double>(tmpl.size());
  double dot = 0.0;
  double s_norm2 = 0.0;
  double t_norm2 = 0.0;
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    const double sv = s[i] - mean;
    dot += sv * tmpl[i];
    s_norm2 += sv * sv;
    t_norm2 += tmpl[i] * tmpl[i];
  }
  const double denom = std::sqrt(s_norm2 * t_norm2);
  if (denom <= 0.0) return 0.0;
  return dot / denom;
}

std::complex<double> complex_correlate_at(std::span<const std::complex<double>> signal,
                                          std::span<const double> tmpl,
                                          std::size_t offset) {
  if (offset + tmpl.size() > signal.size()) return {0.0, 0.0};
  std::complex<double> acc{0.0, 0.0};
  const std::complex<double>* s = signal.data() + offset;
  for (std::size_t i = 0; i < tmpl.size(); ++i) acc += s[i] * tmpl[i];
  return acc;
}

double normalized_complex_correlation_at(std::span<const std::complex<double>> signal,
                                         std::span<const double> tmpl,
                                         std::size_t offset) {
  if (offset + tmpl.size() > signal.size() || tmpl.empty()) return 0.0;
  const std::complex<double>* s = signal.data() + offset;
  std::complex<double> sum{0.0, 0.0};
  for (std::size_t i = 0; i < tmpl.size(); ++i) sum += s[i];
  const std::complex<double> mean = sum / static_cast<double>(tmpl.size());
  std::complex<double> dot{0.0, 0.0};
  double s_norm2 = 0.0;
  double t_norm2 = 0.0;
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    const std::complex<double> sv = s[i] - mean;
    dot += sv * tmpl[i];
    s_norm2 += std::norm(sv);
    t_norm2 += tmpl[i] * tmpl[i];
  }
  const double denom = std::sqrt(s_norm2 * t_norm2);
  if (denom <= 0.0) return 0.0;
  return std::abs(dot) / denom;
}

ComplexCorrelationPeak sliding_complex_peak(
    std::span<const std::complex<double>> signal, std::span<const double> tmpl,
    std::size_t search_begin, std::size_t search_end) {
  CBMA_REQUIRE(search_begin <= search_end, "search window inverted");
  ComplexCorrelationPeak best;
  best.value = -1.0;
  const std::size_t n = tmpl.size();
  if (n == 0 || signal.size() < n) return ComplexCorrelationPeak{};
  const std::size_t end = std::min({search_end, signal.size() - n + 1});
  if (search_begin >= end) return ComplexCorrelationPeak{};

  // The window mean/energy terms are shared across lags — maintain them as
  // running sums instead of rescanning the window per lag. Only the dot
  // product is recomputed per lag.
  double t_norm2 = 0.0;
  double t_sum = 0.0;
  for (const double v : tmpl) {
    t_norm2 += v * v;
    t_sum += v;
  }
  const double inv_n = 1.0 / static_cast<double>(n);

  std::complex<double> s_sum{0.0, 0.0};
  double s_sumsq = 0.0;
  for (std::size_t i = search_begin; i < search_begin + n; ++i) {
    s_sum += signal[i];
    s_sumsq += std::norm(signal[i]);
  }

  for (std::size_t off = search_begin; off < end; ++off) {
    std::complex<double> dot{0.0, 0.0};
    const std::complex<double>* s = signal.data() + off;
    for (std::size_t i = 0; i < n; ++i) dot += s[i] * tmpl[i];
    // Mean-removed forms: dot_c = dot − mean·Σtmpl, ‖window−mean‖².
    const std::complex<double> mean = s_sum * inv_n;
    const std::complex<double> dot_c = dot - mean * t_sum;
    const double s_norm2 = s_sumsq - std::norm(s_sum) * inv_n;
    const double denom2 = s_norm2 * t_norm2;
    const double v = denom2 > 0.0 ? std::abs(dot_c) / std::sqrt(denom2) : 0.0;
    if (v > best.value) {
      best.value = v;
      best.offset = off;
    }
    if (off + n < signal.size()) {
      s_sum += signal[off + n] - signal[off];
      s_sumsq += std::norm(signal[off + n]) - std::norm(signal[off]);
    }
  }
  if (best.value < 0.0) return ComplexCorrelationPeak{};
  best.phase = std::arg(complex_correlate_at(signal, tmpl, best.offset));
  return best;
}

CorrelationPeak sliding_peak(std::span<const double> signal,
                             std::span<const double> tmpl,
                             std::size_t search_begin, std::size_t search_end) {
  CBMA_REQUIRE(search_begin <= search_end, "search window inverted");
  CorrelationPeak best;
  best.value = -2.0;  // below any normalized correlation
  const std::size_t end = std::min(search_end, signal.size());
  for (std::size_t off = search_begin; off < end; ++off) {
    if (off + tmpl.size() > signal.size()) break;
    const double v = normalized_correlation_at(signal, tmpl, off);
    if (v > best.value) {
      best.value = v;
      best.offset = off;
    }
  }
  if (best.value < -1.5) best = CorrelationPeak{};  // nothing searched
  return best;
}

}  // namespace cbma::pn
