// 2NC code family — the second spreading-code family CBMA evaluates.
//
// The paper attributes 2NC codes to [9] and modifies them so that "the chip
// representing 0 is the negation of that representing 1" (footnote 2); the
// original construction is not publicly specified. We implement 2NC as
// *scrambled Sylvester–Hadamard* codes (documented substitution, DESIGN.md
// §4.2): for N users, take N distinct non-DC rows of the Hadamard matrix of
// order 2^⌈log₂(max(2N, min_length))⌉ and XOR every row with one common
// m-sequence scrambler.
//
// Properties (verified by tests):
//  * aligned cross-correlation is exactly zero for every pair — strictly
//    better orthogonality than Gold's −1/L ± t(n)/L, which is the behaviour
//    Fig. 9(b) attributes to 2NC;
//  * shifted cross-correlations are pseudo-random (≈ √L), with no pair of
//    codes being cyclic shifts of one another, so the asynchronous sliding
//    detector cannot alias one user onto another.
#pragma once

#include <cstddef>
#include <vector>

#include "pn/code.h"

namespace cbma::pn {

class TwoNCFamily {
 public:
  /// Family for `users` users; code length is the smallest power of two
  /// ≥ max(2 × users, min_length).
  explicit TwoNCFamily(std::size_t users, std::size_t min_length = 0);

  std::size_t code_length() const { return length_; }
  std::size_t family_size() const { return users_; }

  PnCode code(std::size_t k) const;
  std::vector<PnCode> codes(std::size_t count) const;

  /// The common scrambler chips (exposed for tests).
  const std::vector<std::uint8_t>& scrambler() const { return scrambler_; }

 private:
  std::size_t users_;
  std::size_t length_;
  std::vector<std::uint8_t> scrambler_;
};

}  // namespace cbma::pn
