#include "pn/msequence.h"

#include "pn/lfsr.h"
#include "util/expect.h"

namespace cbma::pn {
namespace {

// Tap masks encode the feedback polynomial x^n + sum_{i in mask} x^i, which
// matches the Lfsr recurrence s[t+n] = XOR of s[t+i] over tap bits i.
// All polynomials below are primitive over GF(2).
struct PolyEntry {
  unsigned degree;
  std::uint64_t mask;
};

constexpr PolyEntry kPrimitive[] = {
    {3, 0x3},    // x^3 + x + 1
    {4, 0x3},    // x^4 + x + 1
    {5, 0x5},    // x^5 + x^2 + 1
    {6, 0x3},    // x^6 + x + 1
    {7, 0x9},    // x^7 + x^3 + 1
    {8, 0x1D},   // x^8 + x^4 + x^3 + x^2 + 1
    {9, 0x11},   // x^9 + x^4 + 1
    {10, 0x9},   // x^10 + x^3 + 1
};

// Preferred pairs for Gold construction. Classic pairs from Gold's tables
// (octal notation in comments gives the full polynomial).
struct PairEntry {
  unsigned degree;
  std::uint64_t a;
  std::uint64_t b;
};

constexpr PairEntry kPreferred[] = {
    // degree 5: [45]8 = x^5+x^2+1, [75]8 = x^5+x^4+x^3+x^2+1
    {5, 0x5, 0x1D},
    // degree 6: [103]8 = x^6+x+1, [147]8 = x^6+x^5+x^2+x+1
    {6, 0x3, 0x27},
    // degree 7: [211]8 = x^7+x^3+1, [217]8 = x^7+x^3+x^2+x+1
    {7, 0x9, 0xF},
    // degree 9: [1021]8 = x^9+x^4+1, [1131]8 = x^9+x^6+x^4+x^3+1
    {9, 0x11, 0x59},
    // degree 10 (GPS C/A pair): x^10+x^3+1 and x^10+x^9+x^8+x^6+x^3+x^2+1
    {10, 0x9, 0x34D},
};

}  // namespace

std::uint64_t primitive_tap_mask(unsigned degree) {
  for (const auto& e : kPrimitive)
    if (e.degree == degree) return e.mask;
  CBMA_REQUIRE(false, "no primitive polynomial tabulated for this degree (3..10)");
}

std::pair<std::uint64_t, std::uint64_t> preferred_pair(unsigned degree) {
  for (const auto& e : kPreferred)
    if (e.degree == degree) return {e.a, e.b};
  CBMA_REQUIRE(false, "no preferred pair tabulated for this degree (5,6,7,9,10)");
}

std::vector<std::uint8_t> msequence(unsigned degree, std::uint64_t tap_mask,
                                    std::uint64_t seed) {
  const std::size_t period = (std::size_t{1} << degree) - 1;
  Lfsr reg(degree, tap_mask, seed);
  return reg.run(period);
}

PnCode msequence_code(unsigned degree) {
  return PnCode(msequence(degree, primitive_tap_mask(degree)),
                "m" + std::to_string(degree));
}

}  // namespace cbma::pn
