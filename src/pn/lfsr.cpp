#include "pn/lfsr.h"

#include <bit>

#include "util/expect.h"

namespace cbma::pn {

Lfsr::Lfsr(unsigned degree, std::uint64_t tap_mask, std::uint64_t initial_state)
    : degree_(degree), tap_mask_(tap_mask), state_(initial_state) {
  CBMA_REQUIRE(degree >= 1 && degree <= 63, "LFSR degree out of range");
  const std::uint64_t state_mask = (std::uint64_t{1} << degree) - 1;
  CBMA_REQUIRE((tap_mask & ~state_mask) == 0, "tap mask wider than register");
  CBMA_REQUIRE(tap_mask != 0, "tap mask must be non-empty");
  CBMA_REQUIRE(initial_state != 0, "LFSR must not start in the all-zero state");
  CBMA_REQUIRE((initial_state & ~state_mask) == 0, "initial state wider than register");
}

std::uint8_t Lfsr::step() {
  const auto out = static_cast<std::uint8_t>(state_ & 1);
  const auto feedback = static_cast<std::uint64_t>(std::popcount(state_ & tap_mask_) & 1);
  state_ = (state_ >> 1) | (feedback << (degree_ - 1));
  return out;
}

std::vector<std::uint8_t> Lfsr::run(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& bit : out) bit = step();
  return out;
}

std::uint64_t Lfsr::period() const {
  Lfsr copy = *this;
  const std::uint64_t start = copy.state();
  std::uint64_t steps = 0;
  const std::uint64_t limit = (std::uint64_t{1} << degree_) + 1;
  do {
    copy.step();
    ++steps;
    CBMA_ASSERT(steps <= limit);
  } while (copy.state() != start);
  return steps;
}

}  // namespace cbma::pn
