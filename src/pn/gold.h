// Gold code family (Gold, 1967) — one of the two spreading-code families
// CBMA evaluates (Fig. 9(b)).
//
// Built from a preferred pair of m-sequences (u, v): the family is
// {u, v, u XOR T^k(v) : k = 0..2^n−2}, giving 2^n + 1 codes of length
// 2^n − 1 whose periodic cross-correlations take only the three values
// {−1, −t(n), t(n)−2} with t(n) = 2^⌊(n+2)/2⌋ + 1.
#pragma once

#include <cstddef>
#include <vector>

#include "pn/code.h"

namespace cbma::pn {

class GoldFamily {
 public:
  /// Construct the family for register degree `degree` (5, 6, 7, 9 or 10).
  explicit GoldFamily(unsigned degree);

  std::size_t code_length() const { return length_; }
  std::size_t family_size() const { return length_ + 2; }
  unsigned degree() const { return degree_; }

  /// k-th code of the family: 0 → u, 1 → v, k ≥ 2 → u XOR T^{k−2}(v).
  PnCode code(std::size_t k) const;

  /// First `count` codes.
  std::vector<PnCode> codes(std::size_t count) const;

  /// Theoretical peak cross-correlation magnitude t(n).
  static std::size_t t_value(unsigned degree);

 private:
  unsigned degree_;
  std::size_t length_;
  std::vector<std::uint8_t> u_;
  std::vector<std::uint8_t> v_;
};

}  // namespace cbma::pn
