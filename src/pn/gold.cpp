#include "pn/gold.h"

#include "pn/msequence.h"
#include "util/expect.h"

namespace cbma::pn {

GoldFamily::GoldFamily(unsigned degree) : degree_(degree) {
  const auto [ma, mb] = preferred_pair(degree);
  length_ = (std::size_t{1} << degree) - 1;
  u_ = msequence(degree, ma);
  v_ = msequence(degree, mb);
}

PnCode GoldFamily::code(std::size_t k) const {
  CBMA_REQUIRE(k < family_size(), "Gold code index out of family");
  if (k == 0) return PnCode(u_, "gold" + std::to_string(degree_) + "#0");
  if (k == 1) return PnCode(v_, "gold" + std::to_string(degree_) + "#1");
  const std::size_t shift = k - 2;
  std::vector<std::uint8_t> chips(length_);
  for (std::size_t i = 0; i < length_; ++i) {
    chips[i] = static_cast<std::uint8_t>(u_[i] ^ v_[(i + shift) % length_]);
  }
  return PnCode(std::move(chips), "gold" + std::to_string(degree_) + "#" + std::to_string(k));
}

std::vector<PnCode> GoldFamily::codes(std::size_t count) const {
  CBMA_REQUIRE(count <= family_size(), "requested more codes than the family holds");
  std::vector<PnCode> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(code(k));
  return out;
}

std::size_t GoldFamily::t_value(unsigned degree) {
  return (std::size_t{1} << ((degree + 2) / 2)) + 1;
}

}  // namespace cbma::pn
