// Fibonacci linear-feedback shift register over GF(2).
//
// The taps are given as a feedback polynomial mask: bit k set means state
// bit k participates in the feedback XOR (bit degree-1 is the output end).
// This is the primitive the m-sequence and Gold generators are built on —
// the same structure the paper's FPGA tag would realize in logic.
#pragma once

#include <cstdint>
#include <vector>

namespace cbma::pn {

class Lfsr {
 public:
  /// `degree`: register length in bits (1..63).
  /// `tap_mask`: feedback taps; bit i corresponds to state bit i.
  /// `initial_state`: must be non-zero and fit in `degree` bits.
  Lfsr(unsigned degree, std::uint64_t tap_mask, std::uint64_t initial_state = 1);

  /// Advance one step, returning the output bit (0/1).
  std::uint8_t step();

  /// Produce the next n output bits.
  std::vector<std::uint8_t> run(std::size_t n);

  std::uint64_t state() const { return state_; }
  unsigned degree() const { return degree_; }

  /// Period of the sequence for these taps starting from this state (walks
  /// the cycle; intended for tests and code-family validation).
  std::uint64_t period() const;

 private:
  unsigned degree_;
  std::uint64_t tap_mask_;
  std::uint64_t state_;
};

}  // namespace cbma::pn
