#include "pn/twonc.h"

#include <bit>

#include "pn/msequence.h"
#include "util/expect.h"

namespace cbma::pn {
namespace {

/// Smallest power of two ≥ n.
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TwoNCFamily::TwoNCFamily(std::size_t users, std::size_t min_length) : users_(users) {
  CBMA_REQUIRE(users >= 1, "2NC family needs at least one user");
  length_ = next_pow2(std::max(2 * users, std::max<std::size_t>(min_length, 4)));
  CBMA_REQUIRE(length_ <= 1024, "2NC family too large for the tabulated scrambler");

  // Common scrambler: an m-sequence at least as long as the code, truncated.
  unsigned degree = 3;
  while (((std::size_t{1} << degree) - 1) < length_) ++degree;
  const auto seq = msequence(degree, primitive_tap_mask(degree));
  scrambler_.assign(seq.begin(), seq.begin() + static_cast<std::ptrdiff_t>(length_));
}

PnCode TwoNCFamily::code(std::size_t k) const {
  CBMA_REQUIRE(k < users_, "2NC code index out of family");
  // Hadamard row k+1 (row 0 is the all-ones DC row): h(t) = parity(row & t).
  const std::size_t row = k + 1;
  std::vector<std::uint8_t> chips(length_);
  for (std::size_t t = 0; t < length_; ++t) {
    const auto h = static_cast<std::uint8_t>(std::popcount(row & t) & 1);
    chips[t] = static_cast<std::uint8_t>(h ^ scrambler_[t]);
  }
  return PnCode(std::move(chips), "2nc#" + std::to_string(k));
}

std::vector<PnCode> TwoNCFamily::codes(std::size_t count) const {
  CBMA_REQUIRE(count <= users_, "requested more codes than the family holds");
  std::vector<PnCode> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(code(k));
  return out;
}

}  // namespace cbma::pn
