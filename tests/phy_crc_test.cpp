#include "phy/crc16.h"

#include <gtest/gtest.h>

#include <vector>

namespace cbma::phy {
namespace {

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::vector<std::uint8_t> data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Crc16, EmptyIsInit) {
  EXPECT_EQ(crc16({}), kCrc16Init);
}

TEST(Crc16, SingleByteVectors) {
  // Independently computed for poly 0x1021 init 0xFFFF.
  EXPECT_EQ(crc16(std::vector<std::uint8_t>{0x00}), 0xE1F0);
  EXPECT_EQ(crc16(std::vector<std::uint8_t>{0xFF}), 0xFF00);
}

TEST(Crc16, IncrementalMatchesBatch) {
  const std::vector<std::uint8_t> data{0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  std::uint16_t crc = kCrc16Init;
  for (const auto b : data) crc = crc16_update(crc, b);
  EXPECT_EQ(crc, crc16(data));
}

TEST(Crc16, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
  const auto original = crc16(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc16(data), original) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

TEST(Crc16, DetectsSwappedBytes) {
  const std::vector<std::uint8_t> a{0x12, 0x34};
  const std::vector<std::uint8_t> b{0x34, 0x12};
  EXPECT_NE(crc16(a), crc16(b));
}

TEST(Crc16, DetectsAllBurstErrorsUpTo16Bits) {
  // CRC-16 guarantees detection of any burst ≤ 16 bits.
  const std::vector<std::uint8_t> data{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  const auto original = crc16(data);
  for (std::size_t start_bit = 0; start_bit + 16 <= data.size() * 8; start_bit += 7) {
    auto corrupted = data;
    for (std::size_t k = 0; k < 16; ++k) {
      const std::size_t bit = start_bit + k;
      corrupted[bit / 8] ^= static_cast<std::uint8_t>(1 << (7 - bit % 8));
    }
    EXPECT_NE(crc16(corrupted), original) << "burst at " << start_bit;
  }
}

}  // namespace
}  // namespace cbma::phy
