// Exhaustive spreading-code family properties beyond the per-module tests:
// pairwise sweeps over whole families, balance distributions, and the
// cross-family guarantees the receiver design relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "pn/correlation.h"
#include "pn/gold.h"
#include "pn/twonc.h"

namespace cbma::pn {
namespace {

class GoldFullFamilyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GoldFullFamilyTest, EveryMemberBalancedWithinOne) {
  // Gold codes of a preferred pair are balanced or near-balanced: the
  // family's |balance| never exceeds a small bound relative to length.
  const GoldFamily fam(GetParam());
  const auto len = static_cast<int>(fam.code_length());
  for (std::size_t k = 0; k < fam.family_size(); ++k) {
    EXPECT_LE(std::abs(fam.code(k).balance()), len / 3) << "code " << k;
  }
}

TEST_P(GoldFullFamilyTest, FamilyIsClosedUnderDistinctness) {
  const GoldFamily fam(GetParam());
  std::set<std::vector<std::uint8_t>> seen;
  for (std::size_t k = 0; k < fam.family_size(); ++k) {
    EXPECT_TRUE(seen.insert(fam.code(k).chips()).second) << "duplicate " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, GoldFullFamilyTest, ::testing::Values(5u, 6u));

class TwoNCPairSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwoNCPairSweepTest, AllPairsAlignedOrthogonal) {
  const std::size_t users = GetParam();
  const TwoNCFamily fam(users);
  for (std::size_t i = 0; i < users; ++i) {
    for (std::size_t j = i + 1; j < users; ++j) {
      EXPECT_EQ(periodic_cross_correlation(fam.code(i), fam.code(j), 0), 0);
    }
  }
}

TEST_P(TwoNCPairSweepTest, AutocorrelationPeakIsLength) {
  const std::size_t users = GetParam();
  const TwoNCFamily fam(users);
  for (std::size_t i = 0; i < users; ++i) {
    EXPECT_EQ(periodic_cross_correlation(fam.code(i), fam.code(i), 0),
              static_cast<int>(fam.code_length()));
  }
}

TEST_P(TwoNCPairSweepTest, OffPeakAutocorrelationBounded) {
  // Practical lengths only (tiny 4-chip codes have no sidelobe structure
  // to speak of).
  const std::size_t users = GetParam();
  const TwoNCFamily fam(users, 16);
  const int bound = static_cast<int>(fam.code_length()) * 3 / 4;
  for (std::size_t i = 0; i < users; ++i) {
    EXPECT_LE(peak_cross_correlation(fam.code(i), fam.code(i)), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(UserCounts, TwoNCPairSweepTest,
                         ::testing::Values(std::size_t{2}, std::size_t{5},
                                           std::size_t{10}, std::size_t{16}));

TEST(FamilyComparison, AlignedInterferenceBudget) {
  // The quantity that drives multi-user decode quality at quasi-aligned
  // operation: the sum over interferers of |cross-correlation at lag 0|.
  // 2NC's budget is exactly zero; Gold's grows with the group size.
  for (const std::size_t users : {4u, 8u, 10u}) {
    const auto gold = GoldFamily(5).codes(users);
    const auto twonc = TwoNCFamily(users, 31).codes(users);
    int gold_budget = 0;
    int twonc_budget = 0;
    for (std::size_t j = 1; j < users; ++j) {
      gold_budget += std::abs(periodic_cross_correlation(gold[0], gold[j], 0));
      twonc_budget += std::abs(periodic_cross_correlation(twonc[0], twonc[j], 0));
    }
    EXPECT_EQ(twonc_budget, 0) << users;
    EXPECT_GT(gold_budget, 0) << users;
  }
}

TEST(FamilyComparison, MeanRemovedTemplatesNearOrthogonalWhenAligned) {
  // The receiver's actual decision statistic: dot products of mean-removed
  // templates. For 2NC they vanish; for Gold they stay below t(n) + |balance|
  // corrections.
  const auto codes = TwoNCFamily(8, 31).codes(8);
  std::vector<std::vector<double>> tmpls;
  for (const auto& c : codes) tmpls.push_back(mean_removed_template(c));
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      double dot = 0.0;
      for (std::size_t t = 0; t < tmpls[i].size(); ++t) dot += tmpls[i][t] * tmpls[j][t];
      // Zero cross-correlation of the bipolar codes leaves only the small
      // mean-product term n·m_i·m_j.
      EXPECT_LE(std::abs(dot), 4.0) << i << "," << j;
    }
  }
}

TEST(FamilyComparison, SpreadingGainIsCodeLength) {
  // Autocorrelation peak over chip count = 1 — the processing gain used in
  // every SNR budget of DESIGN.md.
  for (const auto family :
       {make_code_set(CodeFamily::kGold, 4, 31), make_code_set(CodeFamily::kTwoNC, 4, 31)}) {
    for (const auto& code : family) {
      EXPECT_EQ(periodic_cross_correlation(code, code, 0),
                static_cast<int>(code.length()));
    }
  }
}

}  // namespace
}  // namespace cbma::pn
