// Graceful degradation end to end: degraded or garbage input must come back
// as reported failure outcomes — never as a throw out of the decode
// pipeline — the ARQ layer must account a total outage exactly, and an
// impairment-heavy sweep must serialize byte-identically regardless of the
// worker count that ran it.
#include <gtest/gtest.h>

#include <complex>
#include <string>
#include <vector>

#include "core/recorder.h"
#include "core/sweep.h"
#include "core/system.h"
#include "mac/arq.h"
#include "phy/tag.h"
#include "rfsim/channel.h"
#include "rx/decoder.h"
#include "rx/receiver.h"
#include "util/rng.h"

namespace cbma {
namespace {

constexpr std::size_t kSpc = 4;
constexpr std::size_t kPreambleBits = 8;

std::vector<pn::PnCode> group_codes(std::size_t n) {
  return pn::make_code_set(pn::CodeFamily::kTwoNC, n, 20);
}

TEST(FailurePath, DecoderOnGarbageWindowReportsTruncated) {
  const auto codes = group_codes(1);
  const rx::Decoder decoder(codes[0], kPreambleBits, kSpc);
  // A window far too short for even the length byte: expected input under
  // deep excitation dropout. Must report, not throw.
  std::vector<std::complex<double>> tiny(100, {0.1, -0.1});
  const auto decoded = decoder.decode(tiny, 0, 0.0);
  EXPECT_TRUE(decoded.truncated);
  EXPECT_FALSE(decoded.crc_ok);
}

TEST(FailurePath, DecoderOnTruncatedRealFrameReportsTruncated) {
  const auto codes = group_codes(1);
  phy::TagConfig tc;
  tc.id = 0;
  tc.code = codes[0];
  tc.preamble_bits = kPreambleBits;
  const phy::Tag tag(tc);
  const std::vector<std::uint8_t> payload{0xAB, 0xCD, 0xEF};
  const auto chips = tag.chip_sequence(payload);

  rfsim::ChannelConfig ch_cfg;
  ch_cfg.samples_per_chip = kSpc;
  ch_cfg.chip_rate_hz = 32e6;
  ch_cfg.noise_power_w = 0.0;
  rfsim::TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.delay_chips = 8.0;
  Rng rng(1);
  const auto iq = rfsim::Channel(ch_cfg).receive(std::span(&tx, 1), rng);

  const rx::Decoder decoder(codes[0], kPreambleBits, kSpc);
  const std::size_t preamble_offset = 8 * kSpc;
  // The full window decodes; the same window cut mid-body must degrade to
  // `truncated` (the receiver maps it to DecodeOutcome::kTruncated).
  const auto whole = decoder.decode(iq, preamble_offset, 0.0);
  EXPECT_TRUE(whole.crc_ok);
  const auto cut = decoder.decode(
      std::span(iq).first(preamble_offset + iq.size() / 2), preamble_offset,
      0.0);
  EXPECT_TRUE(cut.truncated);
  EXPECT_FALSE(cut.crc_ok);
}

TEST(FailurePath, ReceiverOnNoiseReportsOutcomesForEveryCode) {
  rx::ReceiverConfig cfg;
  cfg.samples_per_chip = kSpc;
  cfg.preamble_bits = kPreambleBits;
  const rx::Receiver receiver(cfg, group_codes(3));
  Rng rng(7);
  std::vector<std::complex<double>> noise(20000);
  for (auto& s : noise) s = {rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)};
  const auto report = receiver.process_iq(noise);  // must not throw
  EXPECT_EQ(report.decoded_count(), 0u);
  std::size_t accounted = 0;
  for (const auto outcome :
       {rx::DecodeOutcome::kOk, rx::DecodeOutcome::kNoFrameSync,
        rx::DecodeOutcome::kNotDetected, rx::DecodeOutcome::kTruncated,
        rx::DecodeOutcome::kBadCrc, rx::DecodeOutcome::kIdMismatch}) {
    accounted += report.outcome_count(outcome);
  }
  EXPECT_EQ(accounted, 3u);  // every code's fate is reported, none decoded
  for (const auto& r : report.results) {
    EXPECT_NE(r.outcome, rx::DecodeOutcome::kOk);
    EXPECT_NE(std::string(rx::to_string(r.outcome)), "unknown");
  }
}

TEST(FailurePath, ArqAccountsATotalOutageExactly) {
  // 100 % loss: no ACK ever arrives. Every offered message must burn
  // exactly max_attempts transmissions and then be dropped — the budget
  // bounds the energy a dead link can waste.
  constexpr std::size_t kSlots = 3;
  constexpr std::size_t kMaxAttempts = 4;
  mac::ArqTracker arq({kMaxAttempts}, kSlots);
  const rx::AckMessage silence;  // empty ACK round after round
  for (std::size_t round = 0; round < 2 * kMaxAttempts; ++round) {
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      if (!arq.pending(slot)) arq.offer(slot);
    }
    arq.on_round(silence, arq.due());
  }
  const auto& stats = arq.stats();
  EXPECT_EQ(stats.offered, 2 * kSlots);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.dropped, 2 * kSlots);
  EXPECT_EQ(stats.transmissions, 2 * kSlots * kMaxAttempts);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 0.0);
}

TEST(FailurePath, ImpairedSweepJsonIsWorkerCountInvariant) {
  // The determinism contract extends to fault injection: all impairment
  // randomness flows from the per-point seed, so the recorded document must
  // be byte-identical whether the sweep ran on 1 worker or 4.
  core::SystemConfig cfg;
  cfg.max_tags = 2;
  cfg.impairments.dropout.enabled = true;
  cfg.impairments.dropout.duty = 0.6;
  cfg.impairments.drift.enabled = true;
  cfg.impairments.drift.max_static_ppm = 100.0;
  cfg.impairments.drift.wander_ppm = 25.0;
  cfg.impairments.switching.enabled = true;
  cfg.impairments.switching.jitter_chips = 0.5;
  cfg.impairments.switching.settle_chips = 0.25;
  cfg.impairments.impulsive.enabled = true;
  cfg.impairments.impulsive.events_per_s = 1e5;
  cfg.impairments.impulsive.amplitude = 1e-6;
  cfg.impairments.adc.enabled = true;
  cfg.impairments.adc.full_scale = 1e-4;

  auto dep = rfsim::Deployment::paper_frame();
  dep.add_tag({0.3, 0.8});
  dep.add_tag({-0.2, 0.6});

  core::SweepSpec spec;
  spec.name = "impairment_determinism";
  spec.axes = {core::Axis::numeric("duty", {0.5, 0.9})};
  spec.trials = 6;
  spec.base_seed = 20190707;

  const auto run_with = [&](std::size_t workers) {
    core::RunRecorder recorder(spec, cfg);
    core::SweepRunner(spec).run(
        [&](const core::SweepPoint& point) {
          core::SystemConfig point_cfg = cfg;
          point_cfg.impairments.dropout.duty = point.value(0);
          core::CbmaSystem sys(point_cfg, dep);
          Rng rng(point.seed());
          const auto stats = sys.run_packets(spec.trials, rng);
          recorder.record(point.flat(), "fer", stats.frame_error_rate());
        },
        workers);
    return recorder.json();
  };
  EXPECT_EQ(run_with(1), run_with(4));
}

}  // namespace
}  // namespace cbma
