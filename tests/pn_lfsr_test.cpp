#include "pn/lfsr.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "pn/msequence.h"

namespace cbma::pn {
namespace {

TEST(Lfsr, RejectsBadConstruction) {
  EXPECT_THROW(Lfsr(0, 0x1), std::invalid_argument);            // degree 0
  EXPECT_THROW(Lfsr(64, 0x1), std::invalid_argument);           // too wide
  EXPECT_THROW(Lfsr(4, 0x0), std::invalid_argument);            // no taps
  EXPECT_THROW(Lfsr(4, 0x1, 0), std::invalid_argument);         // zero state
  EXPECT_THROW(Lfsr(4, 0x1, 0x10), std::invalid_argument);      // state too wide
  EXPECT_THROW(Lfsr(4, 0x10), std::invalid_argument);           // taps too wide
}

TEST(Lfsr, OutputsAreBinary) {
  Lfsr reg(5, 0x5);
  for (int i = 0; i < 100; ++i) {
    const auto b = reg.step();
    EXPECT_TRUE(b == 0 || b == 1);
  }
}

TEST(Lfsr, NeverReachesZeroState) {
  Lfsr reg(5, 0x5);
  for (int i = 0; i < 200; ++i) {
    reg.step();
    EXPECT_NE(reg.state(), 0u);
  }
}

TEST(Lfsr, RunMatchesRepeatedStep) {
  Lfsr a(6, 0x3), b(6, 0x3);
  const auto bits = a.run(64);
  for (const auto bit : bits) EXPECT_EQ(bit, b.step());
}

class PrimitivePolynomialTest : public ::testing::TestWithParam<unsigned> {};

// Every tabulated primitive polynomial must generate a maximal-length
// sequence: period exactly 2^degree − 1.
TEST_P(PrimitivePolynomialTest, HasMaximalPeriod) {
  const unsigned degree = GetParam();
  Lfsr reg(degree, primitive_tap_mask(degree));
  EXPECT_EQ(reg.period(), (std::uint64_t{1} << degree) - 1);
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, PrimitivePolynomialTest,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

class PreferredPairTest : public ::testing::TestWithParam<unsigned> {};

// Both members of every tabulated preferred pair must themselves be
// primitive (maximal period).
TEST_P(PreferredPairTest, BothMembersMaximal) {
  const unsigned degree = GetParam();
  const auto [a, b] = preferred_pair(degree);
  EXPECT_EQ(Lfsr(degree, a).period(), (std::uint64_t{1} << degree) - 1);
  EXPECT_EQ(Lfsr(degree, b).period(), (std::uint64_t{1} << degree) - 1);
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, PreferredPairTest,
                         ::testing::Values(5u, 6u, 7u, 9u, 10u));

TEST(Lfsr, NonPrimitiveTapsGiveShorterPeriod) {
  // x^4 + x^3 + x^2 + x + 1 is irreducible but has order 5, not 15.
  Lfsr reg(4, 0b1111);
  EXPECT_EQ(reg.period(), 5u);
}

TEST(Lfsr, PeriodIndependentOfStartState) {
  const auto mask = primitive_tap_mask(5);
  EXPECT_EQ(Lfsr(5, mask, 1).period(), Lfsr(5, mask, 0x1F).period());
}

}  // namespace
}  // namespace cbma::pn
