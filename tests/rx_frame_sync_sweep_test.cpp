// Parameterized frame-synchronizer sweeps: threshold, window and SNR
// behaviour of the energy comparator across its configuration space.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "rx/frame_sync.h"
#include "util/rng.h"
#include "util/units.h"

namespace cbma::rx {
namespace {

std::vector<double> noisy_step(std::size_t n, std::size_t edge, double snr_db,
                               cbma::Rng& rng) {
  // Unit-power noise floor; the frame raises the amplitude by √SNR.
  const double amp = std::sqrt(units::from_db(snr_db));
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double noise = std::hypot(rng.gaussian(0.0, std::sqrt(0.5)),
                                    rng.gaussian(0.0, std::sqrt(0.5)));
    v[i] = (i >= edge) ? std::hypot(amp, noise) : noise;
  }
  return v;
}

class SyncSnrSweep : public ::testing::TestWithParam<double> {};

// Above the comparator's threshold the edge must be found reliably; the
// detection latency is bounded by the double head window.
TEST_P(SyncSnrSweep, DetectsEdgeAboveThreshold) {
  const double snr_db = GetParam();
  FrameSyncConfig cfg;
  const FrameSynchronizer sync(cfg);
  cbma::Rng rng(static_cast<std::uint64_t>(snr_db * 10 + 1000));
  int found = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto sig = noisy_step(800, 400, snr_db, rng);
    const auto hit = sync.detect(sig);
    if (hit && *hit >= 400 - 2 * cfg.head_average && *hit <= 410) ++found;
  }
  EXPECT_GE(found, 23) << "snr " << snr_db;
}

INSTANTIATE_TEST_SUITE_P(StrongSnrs, SyncSnrSweep,
                         ::testing::Values(6.0, 9.0, 12.0, 20.0));

class SyncWindowSweep : public ::testing::TestWithParam<std::size_t> {};

// Any reasonable baseline window must find a clean edge.
TEST_P(SyncWindowSweep, WindowSizeInsensitiveOnCleanEdge) {
  FrameSyncConfig cfg;
  cfg.window = GetParam();
  const FrameSynchronizer sync(cfg);
  std::vector<double> sig(cfg.window + 400, 0.01);
  for (std::size_t i = cfg.window + 100; i < sig.size(); ++i) sig[i] = 1.0;
  const auto hit = sync.detect(sig);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(static_cast<double>(*hit), static_cast<double>(cfg.window + 100),
              2.0 * static_cast<double>(cfg.head_average));
}

INSTANTIATE_TEST_SUITE_P(Windows, SyncWindowSweep,
                         ::testing::Values(std::size_t{32}, std::size_t{64},
                                           std::size_t{128}, std::size_t{256}));

TEST(SyncSpikes, IsolatedSpikeDoesNotTrigger) {
  // The double-head comparator's whole point: a one-sample spike of huge
  // power must not fire it.
  FrameSyncConfig cfg;
  const FrameSynchronizer sync(cfg);
  std::vector<double> sig(600, 1.0);
  sig[300] = 100.0;
  EXPECT_FALSE(sync.detect(sig).has_value());
}

TEST(SyncSpikes, SeparatedSpikesDoNotTrigger) {
  // Spikes farther apart than the two head windows can never co-occupy
  // them, so no amplitude triggers the comparator.
  FrameSyncConfig cfg;
  cfg.head_average = 16;
  const FrameSynchronizer sync(cfg);
  std::vector<double> sig(600, 1.0);
  sig[300] = 1000.0;
  sig[400] = 1000.0;
  sig[500] = 1000.0;
  EXPECT_FALSE(sync.detect(sig).has_value());
}

TEST(SyncSpikes, SustainedRiseTriggers) {
  FrameSyncConfig cfg;
  cfg.head_average = 16;
  const FrameSynchronizer sync(cfg);
  std::vector<double> sig(600, 1.0);
  for (std::size_t i = 300; i < 600; ++i) sig[i] = 3.0;
  const auto hit = sync.detect(sig);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(*hit, 300u - 2 * cfg.head_average);
  EXPECT_LE(*hit, 301u);
}

class SyncThresholdSweep : public ::testing::TestWithParam<double> {};

// The comparator fires exactly when the power step exceeds its threshold.
TEST_P(SyncThresholdSweep, ThresholdSemantics) {
  const double th_db = GetParam();
  FrameSyncConfig cfg;
  cfg.threshold_db = th_db;
  const FrameSynchronizer sync(cfg);
  const double just_below = units::amplitude_from_db(th_db - 0.3);
  const double just_above = units::amplitude_from_db(th_db + 0.3);
  std::vector<double> below(600, 1.0), above(600, 1.0);
  for (std::size_t i = 300; i < 600; ++i) {
    below[i] = just_below;
    above[i] = just_above;
  }
  EXPECT_FALSE(sync.detect(below).has_value()) << th_db;
  EXPECT_TRUE(sync.detect(above).has_value()) << th_db;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SyncThresholdSweep,
                         ::testing::Values(1.0, 3.0, 6.0, 10.0));

}  // namespace
}  // namespace cbma::rx
