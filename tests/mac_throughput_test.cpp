#include "mac/single_tag.h"
#include "mac/throughput.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cbma::mac {
namespace {

TEST(SingleTag, RejectsBadConfig) {
  SingleTagConfig cfg;
  cfg.bitrate_bps = 0.0;
  EXPECT_THROW(single_tag_round_robin(cfg, 1), std::invalid_argument);
  cfg = SingleTagConfig{};
  cfg.payload_bits = cfg.frame_bits + 1;
  EXPECT_THROW(single_tag_round_robin(cfg, 1), std::invalid_argument);
  cfg = SingleTagConfig{};
  cfg.frame_error_rate = 1.0;
  EXPECT_THROW(single_tag_round_robin(cfg, 1), std::invalid_argument);
  EXPECT_THROW(single_tag_round_robin(SingleTagConfig{}, 0), std::invalid_argument);
}

TEST(SingleTag, AggregateIndependentOfTagCount) {
  // The channel serves one tag at a time: total goodput does not grow with
  // the fleet, only the per-tag share shrinks.
  const SingleTagConfig cfg;
  const auto one = single_tag_round_robin(cfg, 1);
  const auto ten = single_tag_round_robin(cfg, 10);
  EXPECT_NEAR(one.aggregate_goodput_bps, ten.aggregate_goodput_bps, 1e-9);
  EXPECT_NEAR(ten.per_tag_goodput_bps, one.per_tag_goodput_bps / 10.0, 1e-9);
}

TEST(SingleTag, RoundTimeScalesWithTags) {
  const SingleTagConfig cfg;
  const auto five = single_tag_round_robin(cfg, 5);
  const auto ten = single_tag_round_robin(cfg, 10);
  EXPECT_NEAR(ten.per_round_s, 2.0 * five.per_round_s, 1e-12);
}

TEST(SingleTag, GoodputBelowRawBitrate) {
  const SingleTagConfig cfg;
  const auto out = single_tag_round_robin(cfg, 4);
  EXPECT_LT(out.aggregate_goodput_bps, cfg.bitrate_bps);
  EXPECT_GT(out.aggregate_goodput_bps, 0.0);
}

TEST(SingleTag, FerDiscountsGoodput) {
  SingleTagConfig clean;
  SingleTagConfig lossy = clean;
  lossy.frame_error_rate = 0.5;
  EXPECT_NEAR(single_tag_round_robin(lossy, 3).aggregate_goodput_bps,
              0.5 * single_tag_round_robin(clean, 3).aggregate_goodput_bps, 1e-9);
}

TEST(CbmaThroughput, RejectsBadConfig) {
  CbmaRate rate;
  rate.per_tag_bitrate_bps = 0.0;
  EXPECT_THROW(cbma_throughput(rate), std::invalid_argument);
  rate = CbmaRate{};
  rate.n_tags = 0;
  EXPECT_THROW(cbma_throughput(rate), std::invalid_argument);
  rate = CbmaRate{};
  rate.frame_error_rate = 1.5;
  EXPECT_THROW(cbma_throughput(rate), std::invalid_argument);
}

TEST(CbmaThroughput, RatesAddAcrossTags) {
  CbmaRate rate;
  rate.per_tag_bitrate_bps = 1e6;
  rate.n_tags = 10;
  const auto out = cbma_throughput(rate);
  EXPECT_DOUBLE_EQ(out.aggregate_raw_bps, 10e6);
  EXPECT_NEAR(out.per_tag_goodput_bps * 10.0, out.aggregate_goodput_bps, 1e-9);
}

TEST(CbmaThroughput, PaperHeadlineShape) {
  // 10 tags × 1 Mbps ≈ the paper's 8 Mbps-class aggregate after framing
  // overhead and a mild FER.
  CbmaRate rate;
  rate.per_tag_bitrate_bps = 1e6;
  rate.n_tags = 10;
  rate.payload_bits = 16 * 8;
  rate.frame_bits = 8 + 8 * (2 + 16 + 2);
  rate.frame_error_rate = 0.05;
  const auto out = cbma_throughput(rate);
  EXPECT_GT(out.aggregate_goodput_bps, 6e6);
  EXPECT_LT(out.aggregate_goodput_bps, 10e6);
}

TEST(CbmaThroughput, TenXOverSingleTag) {
  // The headline comparison: concurrent CBMA vs a one-at-a-time baseline.
  CbmaRate cbma;
  cbma.n_tags = 10;
  cbma.frame_error_rate = 0.05;
  const SingleTagConfig single;
  const auto c = cbma_throughput(cbma);
  const auto s = single_tag_round_robin(single, 10);
  EXPECT_GT(c.aggregate_goodput_bps, 8.0 * s.aggregate_goodput_bps);
}

TEST(CbmaThroughput, FullLossMeansZeroGoodput) {
  CbmaRate rate;
  rate.frame_error_rate = 1.0;
  EXPECT_DOUBLE_EQ(cbma_throughput(rate).aggregate_goodput_bps, 0.0);
}

}  // namespace
}  // namespace cbma::mac
