#include "phy/tag.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/spreader.h"
#include "pn/msequence.h"

namespace cbma::phy {
namespace {

TagConfig base_config() {
  TagConfig cfg;
  cfg.id = 3;
  cfg.code = pn::msequence_code(5);
  cfg.preamble_bits = 8;
  cfg.impedance_levels = 4;
  return cfg;
}

TEST(Tag, RejectsBadConfig) {
  TagConfig cfg = base_config();
  cfg.code = pn::PnCode();
  EXPECT_THROW(Tag{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.preamble_bits = 0;
  EXPECT_THROW(Tag{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.impedance_levels = 0;
  EXPECT_THROW(Tag{cfg}, std::invalid_argument);
}

TEST(Tag, ExposesConfig) {
  const Tag tag(base_config());
  EXPECT_EQ(tag.id(), 3u);
  EXPECT_EQ(tag.preamble_bits(), 8u);
  EXPECT_EQ(tag.code().length(), 31u);
  EXPECT_EQ(tag.impedance_levels(), 4u);
}

TEST(Tag, ChipSequenceIsSpreadFrame) {
  const Tag tag(base_config());
  const std::vector<std::uint8_t> payload{0xAA, 0x55};
  const auto chips = tag.chip_sequence(payload);
  const auto bits = frame_bits(payload, 3, 8);
  EXPECT_EQ(chips, spread(bits, tag.code()));
  EXPECT_EQ(chips.size(), bits.size() * 31u);
}

TEST(Tag, ChipSequenceEmbedsTagId) {
  TagConfig cfg = base_config();
  cfg.id = 7;
  const Tag a(cfg);
  cfg.id = 9;
  const Tag b(cfg);
  // Same payload, different ids → different frames.
  const std::vector<std::uint8_t> payload{1, 2, 3};
  EXPECT_NE(a.chip_sequence(payload), b.chip_sequence(payload));
}

TEST(Tag, PreambleChipsMatchSpreadPreamble) {
  const Tag tag(base_config());
  const auto want = spread(alternating_preamble(8), tag.code());
  EXPECT_EQ(tag.preamble_chips(), want);
}

TEST(Tag, ImpedanceLevelDefaultsToZero) {
  const Tag tag(base_config());
  EXPECT_EQ(tag.impedance_level(), 0u);
}

TEST(Tag, SetImpedanceLevelValidated) {
  Tag tag(base_config());
  tag.set_impedance_level(3);
  EXPECT_EQ(tag.impedance_level(), 3u);
  EXPECT_THROW(tag.set_impedance_level(4), std::invalid_argument);
}

TEST(Tag, StepImpedanceWrapsAtZmax) {
  // Algorithm 1 lines 18–22.
  Tag tag(base_config());
  tag.set_impedance_level(2);
  tag.step_impedance();
  EXPECT_EQ(tag.impedance_level(), 3u);
  tag.step_impedance();
  EXPECT_EQ(tag.impedance_level(), 0u);  // wrap
}

TEST(Tag, EmptyPayloadStillFrames) {
  const Tag tag(base_config());
  const auto chips = tag.chip_sequence({});
  EXPECT_EQ(chips.size(), frame_bit_count(0, 8) * 31u);
}

}  // namespace
}  // namespace cbma::phy
