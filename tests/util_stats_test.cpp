#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cbma {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, EmptyMinMaxThrow) {
  // min()/max() of nothing have no value to return; silently yielding the
  // ±infinity initializers once leaked into a bench table as "inf". Callers
  // must check count() first (the robustness bench shows the pattern).
  RunningStats s;
  EXPECT_THROW(s.min(), std::invalid_argument);
  EXPECT_THROW(s.max(), std::invalid_argument);
  s.add(2.5);
  EXPECT_DOUBLE_EQ(s.min(), 2.5);
  EXPECT_DOUBLE_EQ(s.max(), 2.5);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n−1 denominator: Σ(x−5)² = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, TracksMinMaxThroughNegatives) {
  RunningStats s;
  s.add(-3.0);
  s.add(10.0);
  s.add(-7.5);
  EXPECT_DOUBLE_EQ(s.min(), -7.5);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, MergeMatchesSequentialAdds) {
  // Chan's parallel combine must be indistinguishable from add()ing every
  // sample into one accumulator — RoundStats::merge (and through it the
  // fig9b margin plumbing) relies on this.
  RunningStats a, b, all;
  for (const double v : {2.0, 4.0, 4.0, 4.0}) { a.add(v); all.add(v); }
  for (const double v : {5.0, 5.0, 7.0, 9.0}) { b.add(v); all.add(v); }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats empty, filled;
  filled.add(1.0);
  filled.add(3.0);
  // empty.merge(filled) adopts the other side wholesale...
  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  // ...and merging an empty accumulator changes nothing.
  RunningStats none;
  filled.merge(none);
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.mean(), 2.0);
  EXPECT_DOUBLE_EQ(filled.min(), 1.0);
  EXPECT_DOUBLE_EQ(filled.max(), 3.0);
}

TEST(EmpiricalCdf, RejectsEmpty) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantilesAndMedian) {
  EmpiricalCdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
}

TEST(EmpiricalCdf, QuantileRejectsOutOfRange) {
  EmpiricalCdf cdf({1.0});
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  EmpiricalCdf cdf({0.0, 0.1, 0.1, 0.4, 0.9});
  const auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 0.9);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdf, CurveRejectsDegenerate) {
  EmpiricalCdf cdf({1.0, 2.0});
  EXPECT_THROW(cdf.curve(1), std::invalid_argument);
}

TEST(WilsonInterval, CentredOnEstimate) {
  const auto iv = wilson_interval(50, 100);
  EXPECT_DOUBLE_EQ(iv.estimate, 0.5);
  EXPECT_LT(iv.lo, 0.5);
  EXPECT_GT(iv.hi, 0.5);
  EXPECT_NEAR(iv.hi - iv.lo, 2 * 1.96 * 0.05, 0.02);
}

TEST(WilsonInterval, ZeroSuccessesHasPositiveUpper) {
  const auto iv = wilson_interval(0, 1000);
  EXPECT_DOUBLE_EQ(iv.estimate, 0.0);
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_GT(iv.hi, 0.0);
  EXPECT_LT(iv.hi, 0.01);
}

TEST(WilsonInterval, FullSuccessesHasUpperOne) {
  const auto iv = wilson_interval(1000, 1000);
  EXPECT_DOUBLE_EQ(iv.estimate, 1.0);
  EXPECT_DOUBLE_EQ(iv.hi, 1.0);
  EXPECT_GT(iv.lo, 0.99);
}

TEST(WilsonInterval, RejectsBadInputs) {
  EXPECT_THROW(wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace cbma
