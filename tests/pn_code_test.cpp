#include "pn/code.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cbma::pn {
namespace {

TEST(PnCode, RejectsEmptyAndNonBinary) {
  EXPECT_THROW(PnCode(std::vector<std::uint8_t>{}), std::invalid_argument);
  EXPECT_THROW(PnCode(std::vector<std::uint8_t>{0, 1, 2}), std::invalid_argument);
}

TEST(PnCode, BipolarMapping) {
  const PnCode code({1, 0, 1, 1});
  const auto& b = code.bipolar();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], -1.0);
  EXPECT_DOUBLE_EQ(b[2], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 1.0);
}

TEST(PnCode, ChipsForBitOneIsIdentity) {
  const PnCode code({1, 0, 0, 1});
  EXPECT_EQ(code.chips_for_bit(true), code.chips());
}

TEST(PnCode, ChipsForBitZeroIsNegation) {
  // Footnote 2: the '0' chip sequence is the bitwise negation of '1'.
  const PnCode code({1, 0, 0, 1});
  const std::vector<std::uint8_t> want{0, 1, 1, 0};
  EXPECT_EQ(code.chips_for_bit(false), want);
}

TEST(PnCode, Balance) {
  EXPECT_EQ(PnCode({1, 1, 1, 1}).balance(), 4);
  EXPECT_EQ(PnCode({0, 0, 0, 0}).balance(), -4);
  EXPECT_EQ(PnCode({1, 0, 1, 0}).balance(), 0);
}

TEST(PnCode, EqualityComparesChips) {
  EXPECT_EQ(PnCode({1, 0}, "a"), PnCode({1, 0}, "b"));
  EXPECT_FALSE(PnCode({1, 0}) == PnCode({0, 1}));
}

TEST(CodeFamily, ToString) {
  EXPECT_EQ(to_string(CodeFamily::kGold), "Gold");
  EXPECT_EQ(to_string(CodeFamily::kTwoNC), "2NC");
}

TEST(MakeCodeSet, GoldPicksSmallestFittingDegree) {
  const auto ten = make_code_set(CodeFamily::kGold, 10, 31);
  EXPECT_EQ(ten.size(), 10u);
  EXPECT_EQ(ten.front().length(), 31u);

  // 40 codes do not fit in the degree-5 family (33 codes) → degree 6.
  const auto forty = make_code_set(CodeFamily::kGold, 40, 31);
  EXPECT_EQ(forty.front().length(), 63u);
}

TEST(MakeCodeSet, GoldHonoursMinLength) {
  const auto codes = make_code_set(CodeFamily::kGold, 4, 60);
  EXPECT_EQ(codes.front().length(), 63u);
}

TEST(MakeCodeSet, TwoNC) {
  const auto codes = make_code_set(CodeFamily::kTwoNC, 10, 20);
  EXPECT_EQ(codes.size(), 10u);
  EXPECT_EQ(codes.front().length(), 32u);
}

TEST(MakeCodeSet, AllCodesShareLength) {
  for (const auto family : {CodeFamily::kGold, CodeFamily::kTwoNC}) {
    const auto codes = make_code_set(family, 8, 31);
    for (const auto& c : codes) EXPECT_EQ(c.length(), codes.front().length());
  }
}

TEST(MakeCodeSet, RejectsImpossibleRequests) {
  EXPECT_THROW(make_code_set(CodeFamily::kGold, 0), std::invalid_argument);
  EXPECT_THROW(make_code_set(CodeFamily::kGold, 5000), std::invalid_argument);
}

}  // namespace
}  // namespace cbma::pn
