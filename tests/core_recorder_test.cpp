// core/recorder: the structured-results half of the experiment API. Pins
// the two contracts the bench suite depends on: the BENCH_*.json document
// is schema-versioned and complete, and a sweep's recorded output is
// byte-identical across worker counts for a fixed seed (the golden
// determinism guarantee).
#include "core/recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/config.h"
#include "core/sweep.h"
#include "util/json.h"

namespace cbma::core {
namespace {

SweepSpec demo_spec() {
  SweepSpec spec;
  spec.name = "recorder_unit_test";
  spec.title = "recorder unit test";
  spec.paper_ref = "tests only";
  spec.axes = {Axis::numeric("distance", {1.0, 2.0, 4.0}, "m"),
               Axis::categorical("family", {"gold", "2nc"})};
  spec.trials = 16;
  spec.base_seed = 4242;
  return spec;
}

/// Deterministic pseudo-measurement derived only from the point.
double fake_metric(const SweepPoint& point) {
  return static_cast<double>(point.seed() % 1000) / 1000.0 +
         point.value(0) * 0.01;
}

TEST(RunRecorder, MetricsRoundTripPerPoint) {
  RunRecorder recorder(demo_spec(), SystemConfig{});
  recorder.record(0, "fer", 0.25);
  recorder.record(0, "snr_db", 12.5);
  recorder.record(5, "fer", 0.75);
  EXPECT_EQ(recorder.metric(0, "fer"), 0.25);
  EXPECT_EQ(recorder.metric(0, "snr_db"), 12.5);
  EXPECT_EQ(recorder.metric(5, "fer"), 0.75);
  EXPECT_THROW(recorder.metric(1, "fer"), std::invalid_argument);
  EXPECT_THROW(recorder.metric(0, "missing"), std::invalid_argument);
  EXPECT_THROW(recorder.record(6, "fer", 0.0), std::invalid_argument);
}

TEST(RunRecorder, JsonMatchesSchema) {
  const auto spec = demo_spec();
  RunRecorder recorder(spec, SystemConfig{});
  SweepRunner(spec).run([&](const SweepPoint& point) {
    recorder.record(point.flat(), "fer", fake_metric(point));
  });
  Table table({"distance", "FER"});
  table.add_row({"1.0", "0.25"});
  recorder.print_table(table);
  recorder.check("error grows with distance", true);
  recorder.check("violated example", false, "expected in this test");
  recorder.note("free-form note");

  const auto doc = util::json_parse(recorder.json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema_version").number, kBenchJsonSchemaVersion);
  EXPECT_EQ(doc.at("bench").string, "recorder_unit_test");
  EXPECT_EQ(doc.at("title").string, "recorder unit test");
  EXPECT_EQ(doc.at("paper_ref").string, "tests only");
  EXPECT_EQ(doc.at("base_seed").number, 4242.0);
  EXPECT_EQ(doc.at("trials_per_point").number, 16.0);

  ASSERT_TRUE(doc.at("config").is_object());
  EXPECT_EQ(doc.at("config").at("summary").string, SystemConfig{}.summary());
  EXPECT_EQ(doc.at("config").at("fingerprint").string.size(), 16u);

  const auto& axes = doc.at("axes");
  ASSERT_TRUE(axes.is_array());
  ASSERT_EQ(axes.array.size(), 2u);
  EXPECT_EQ(axes.array[0].at("name").string, "distance");
  EXPECT_EQ(axes.array[0].at("unit").string, "m");
  ASSERT_EQ(axes.array[0].at("values").array.size(), 3u);
  EXPECT_EQ(axes.array[0].at("values").array[2].number, 4.0);
  EXPECT_EQ(axes.array[1].at("name").string, "family");
  ASSERT_EQ(axes.array[1].at("labels").array.size(), 2u);
  EXPECT_EQ(axes.array[1].at("labels").array[1].string, "2nc");

  const auto& points = doc.at("points");
  ASSERT_TRUE(points.is_array());
  ASSERT_EQ(points.array.size(), spec.point_count());
  for (std::size_t flat = 0; flat < spec.point_count(); ++flat) {
    const auto& p = points.array[flat];
    ASSERT_EQ(p.at("index").array.size(), 2u);
    EXPECT_EQ(p.at("index").array[0].number, static_cast<double>(flat / 2));
    EXPECT_EQ(p.at("index").array[1].number, static_cast<double>(flat % 2));
    EXPECT_EQ(p.at("metrics").at("fer").number,
              fake_metric(SweepPoint(spec, flat)));
  }

  const auto& tables = doc.at("tables");
  ASSERT_EQ(tables.array.size(), 1u);
  EXPECT_EQ(tables.array[0].at("headers").array[1].string, "FER");
  EXPECT_EQ(tables.array[0].at("rows").array[0].array[1].string, "0.25");

  const auto& checks = doc.at("checks");
  ASSERT_EQ(checks.array.size(), 2u);
  EXPECT_TRUE(checks.array[0].at("holds").boolean);
  EXPECT_FALSE(checks.array[1].at("holds").boolean);
  EXPECT_EQ(checks.array[1].at("detail").string, "expected in this test");

  ASSERT_EQ(doc.at("notes").array.size(), 1u);
  EXPECT_EQ(doc.at("notes").array[0].string, "free-form note");
}

// The golden guarantee every bench relies on: for a fixed base seed, the
// complete structured document — every metric, on every point — is
// byte-identical whether the sweep ran on one thread or many.
TEST(RunRecorder, JsonByteIdenticalAcrossWorkerCounts) {
  const auto spec = demo_spec();
  auto run_with = [&](std::size_t workers) {
    RunRecorder recorder(spec, SystemConfig{});
    SweepRunner(spec).run(
        [&](const SweepPoint& point) {
          recorder.record(point.flat(), "fer", fake_metric(point));
          recorder.record(point.flat(), "seed_lsb",
                          static_cast<double>(point.seed() & 0xFF));
        },
        workers);
    return recorder.json();
  };
  const auto serial = run_with(1);
  EXPECT_EQ(serial, run_with(4));
  EXPECT_EQ(serial, run_with(3));
}

TEST(RunRecorder, FinishWritesValidJsonToBenchDir) {
  const auto dir = ::testing::TempDir() + "cbma_recorder_test";
  std::remove((dir + "/BENCH_recorder_unit_test.json").c_str());
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  setenv("CBMA_BENCH_DIR", dir.c_str(), 1);
  setenv("CBMA_GIT_SHA", "deadbeef", 1);

  RunRecorder recorder(demo_spec(), SystemConfig{});
  recorder.record(0, "fer", 0.5);
  EXPECT_EQ(recorder.finish(), 0);

  std::ifstream in(dir + "/BENCH_recorder_unit_test.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = util::json_parse([&] {
    auto text = buffer.str();
    while (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }());
  EXPECT_EQ(doc.at("bench").string, "recorder_unit_test");
  EXPECT_EQ(doc.at("git_sha").string, "deadbeef");

  unsetenv("CBMA_GIT_SHA");
  unsetenv("CBMA_BENCH_DIR");
}

// CBMA_BENCH_DIR pointing at a directory that does not exist yet is the
// normal first-run / CI case: finish() must create it (including nested
// components) instead of failing on the ofstream open.
TEST(RunRecorder, FinishCreatesMissingBenchDir) {
  const auto dir =
      ::testing::TempDir() + "cbma_recorder_missing/nested/results";
  std::filesystem::remove_all(::testing::TempDir() + "cbma_recorder_missing");
  ASSERT_FALSE(std::filesystem::exists(dir));
  setenv("CBMA_BENCH_DIR", dir.c_str(), 1);

  RunRecorder recorder(demo_spec(), SystemConfig{});
  recorder.record(0, "fer", 0.5);
  EXPECT_EQ(recorder.finish(), 0);

  std::ifstream in(dir + "/BENCH_recorder_unit_test.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = util::json_parse([&] {
    auto text = buffer.str();
    while (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }());
  EXPECT_EQ(doc.at("bench").string, "recorder_unit_test");
  unsetenv("CBMA_BENCH_DIR");
}

// A path that cannot be created (a file sits where the directory should
// be) must fail with a clean non-zero exit, not an unhandled exception.
TEST(RunRecorder, FinishFailsCleanlyWhenBenchDirIsAFile) {
  const auto blocker = ::testing::TempDir() + "cbma_recorder_blocker";
  std::filesystem::remove_all(blocker);
  { std::ofstream make(blocker); make << "in the way"; }
  const auto dir = blocker + "/results";
  setenv("CBMA_BENCH_DIR", dir.c_str(), 1);

  RunRecorder recorder(demo_spec(), SystemConfig{});
  EXPECT_EQ(recorder.finish(), 1);

  unsetenv("CBMA_BENCH_DIR");
  std::filesystem::remove(blocker);
}

}  // namespace
}  // namespace cbma::core
