#include "rfsim/interference.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/stats.h"

namespace cbma::rfsim {
namespace {

double window_power(const std::vector<std::complex<double>>& iq) {
  double p = 0.0;
  for (const auto& s : iq) p += std::norm(s);
  return p / static_cast<double>(iq.size());
}

TEST(WifiInterferer, RejectsBadConfig) {
  EXPECT_THROW(WifiInterferer(-1.0), std::invalid_argument);
  EXPECT_THROW(WifiInterferer(1.0, 0.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(WifiInterferer(1.0, 1e-3, 0.0), std::invalid_argument);
}

TEST(WifiInterferer, OccupancyFromDurations) {
  const WifiInterferer wifi(1.0, 500e-6, 1500e-6);
  EXPECT_DOUBLE_EQ(wifi.occupancy(), 0.25);
  EXPECT_EQ(wifi.name(), "wifi");
}

TEST(WifiInterferer, ZeroPowerAddsNothing) {
  const WifiInterferer wifi(0.0);
  Rng rng(1);
  std::vector<std::complex<double>> iq(1000, {0.0, 0.0});
  wifi.add_to(iq, 1e6, rng);
  EXPECT_DOUBLE_EQ(window_power(iq), 0.0);
}

TEST(WifiInterferer, AveragePowerTracksOccupancy) {
  const double power = 2.0;
  const WifiInterferer wifi(power, 500e-6, 1500e-6);
  Rng rng(2);
  std::vector<std::complex<double>> iq(400000, {0.0, 0.0});
  wifi.add_to(iq, 1e6, rng);
  // E[power] = burst power × occupancy.
  EXPECT_NEAR(window_power(iq), power * wifi.occupancy(), power * 0.06);
}

TEST(WifiInterferer, BurstsAreIntermittent) {
  const WifiInterferer wifi(1.0, 200e-6, 600e-6);
  Rng rng(3);
  std::vector<std::complex<double>> iq(50000, {0.0, 0.0});
  wifi.add_to(iq, 1e6, rng);
  std::size_t silent = 0;
  for (const auto& s : iq) {
    if (std::norm(s) == 0.0) ++silent;
  }
  // The CSMA channel must be idle a large fraction of the time.
  EXPECT_GT(silent, iq.size() / 2);
  EXPECT_LT(silent, iq.size());
}

TEST(BluetoothInterferer, RejectsBadConfig) {
  EXPECT_THROW(BluetoothInterferer(-1.0), std::invalid_argument);
  EXPECT_THROW(BluetoothInterferer(1.0, 80), std::invalid_argument);
  EXPECT_THROW(BluetoothInterferer(1.0, 4, 0.0), std::invalid_argument);
}

TEST(BluetoothInterferer, OccupancyIsChannelFraction) {
  const BluetoothInterferer bt(1.0, 4);
  EXPECT_NEAR(bt.occupancy(), 4.0 / 79.0, 1e-12);
  EXPECT_EQ(bt.name(), "bluetooth");
}

TEST(BluetoothInterferer, DwellGranularity) {
  // Energy must arrive in whole 625 µs dwells: at 1 MS/s a dwell is 625
  // samples; scan for the boundaries.
  const BluetoothInterferer bt(1.0, 79, 625e-6);  // always in-band
  Rng rng(4);
  std::vector<std::complex<double>> iq(6250, {0.0, 0.0});
  bt.add_to(iq, 1e6, rng);
  // With 79/79 overlap every dwell is hit: no silent samples.
  std::size_t silent = 0;
  for (const auto& s : iq) {
    if (std::norm(s) == 0.0) ++silent;
  }
  EXPECT_EQ(silent, 0u);
}

TEST(BluetoothInterferer, RareHitsWhenFewChannelsOverlap) {
  const BluetoothInterferer bt(1.0, 4);
  Rng rng(5);
  std::vector<std::complex<double>> iq(625 * 200, {0.0, 0.0});
  bt.add_to(iq, 1e6, rng);
  // Count hit dwells.
  std::size_t hit_dwells = 0;
  for (std::size_t d = 0; d < 200; ++d) {
    double p = 0.0;
    for (std::size_t i = 0; i < 625; ++i) p += std::norm(iq[d * 625 + i]);
    if (p > 0.0) ++hit_dwells;
  }
  EXPECT_NEAR(static_cast<double>(hit_dwells) / 200.0, 4.0 / 79.0, 0.06);
}

TEST(Interferers, RejectBadSampleRate) {
  Rng rng(6);
  std::vector<std::complex<double>> iq(10);
  EXPECT_THROW(WifiInterferer(1.0).add_to(iq, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(BluetoothInterferer(1.0).add_to(iq, -1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cbma::rfsim
