#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/metrics_plane.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace cbma::net {
namespace {

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.cell.code_family = pn::CodeFamily::kGold;
  cfg.cell.code_min_length = 31;
  cfg.cell.max_tags = 2;
  cfg.cell.tx_power_dbm = 30.0;
  cfg.packets_per_round = 3;
  return cfg;
}

TEST(Network, GridPlacesGatewaysAtBayCentres) {
  auto network = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  ASSERT_EQ(network.cell_count(), 4u);
  // Row-major over 6 m x 4 m bays centred on the origin.
  EXPECT_NEAR(network.gateways()[0].center().x, -3.0, 1e-12);
  EXPECT_NEAR(network.gateways()[0].center().y, -2.0, 1e-12);
  EXPECT_NEAR(network.gateways()[3].center().x, 3.0, 1e-12);
  EXPECT_NEAR(network.gateways()[3].center().y, 2.0, 1e-12);
  // ES/RX straddle the centre along x by the configured offset.
  const auto& gw = network.gateways()[0];
  EXPECT_NEAR(gw.rx.x - gw.es.x, 1.0, 1e-12);
  EXPECT_NEAR(gw.es.y, gw.rx.y, 1e-12);
}

TEST(Network, AssociationIsDeterministicAtFixedSeed) {
  auto a = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  auto b = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  Rng ra(42), rb(42);
  a.place_random_tags(16, ra);
  b.place_random_tags(16, rb);
  a.associate();
  b.associate();
  ASSERT_EQ(a.association().size(), 16u);
  EXPECT_EQ(a.association(), b.association());
}

TEST(Network, AssociatesEveryTagToItsStrongestGateway) {
  auto network = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  Rng rng(7);
  network.place_random_tags(12, rng);
  network.associate();
  for (std::size_t t = 0; t < network.tag_count(); ++t) {
    const std::size_t serving = network.association()[t];
    ASSERT_NE(serving, Network::kUnassociated);
    for (std::size_t g = 0; g < network.cell_count(); ++g) {
      EXPECT_LE(network.link_budget_dbm(t, g),
                network.link_budget_dbm(t, serving) + 1e-9)
          << "tag " << t << " serving " << serving
          << " but gateway " << g << " is stronger";
    }
  }
}

TEST(Network, RoamingHonoursHysteresis) {
  auto network = Network::grid(small_config(), 12.0, 4.0, 2, 1);
  network.add_tag({-3.0, 0.5});  // squarely in gateway 0's bay
  network.associate();
  ASSERT_EQ(network.association()[0], 0u);

  // A spot where gateway 1 is better, but within the 3 dB margin: stay.
  network.move_tag(0, {0.2, 0.5});
  const double adv_small =
      network.link_budget_dbm(0, 1) - network.link_budget_dbm(0, 0);
  ASSERT_GT(adv_small, 0.0);
  ASSERT_LT(adv_small, network.config().roaming_hysteresis_db);
  EXPECT_EQ(network.roam(), 0u);
  EXPECT_EQ(network.association()[0], 0u);

  // Clearly inside gateway 1's bay: the margin is beaten, the tag roams.
  network.move_tag(0, {1.0, 0.5});
  const double adv_big =
      network.link_budget_dbm(0, 1) - network.link_budget_dbm(0, 0);
  ASSERT_GT(adv_big, network.config().roaming_hysteresis_db);
  EXPECT_EQ(network.roam(), 1u);
  EXPECT_EQ(network.association()[0], 1u);
  // Idempotent: a second pass with no movement moves nothing.
  EXPECT_EQ(network.roam(), 0u);
}

TEST(Network, RoundResultsAreWorkerCountInvariant) {
  // The determinism contract: per-cell Rng(point_seed(seed, cell)) makes a
  // round's results byte-identical for any worker count.
  auto a = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  auto b = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  Rng ra(99), rb(99);
  a.place_random_tags(8, ra);
  b.place_random_tags(8, rb);

  for (std::uint64_t seed : {11ull, 12ull}) {
    const auto ra_ = a.run_round(seed, /*max_workers=*/1);
    const auto rb_ = b.run_round(seed, /*max_workers=*/4);
    EXPECT_EQ(ra_.aggregate_goodput_bps, rb_.aggregate_goodput_bps);
    EXPECT_EQ(ra_.jain_fairness, rb_.jain_fairness);
    EXPECT_EQ(ra_.roamed, rb_.roamed);
    EXPECT_EQ(ra_.tags_served, rb_.tags_served);
    ASSERT_EQ(ra_.cells.size(), rb_.cells.size());
    for (std::size_t c = 0; c < ra_.cells.size(); ++c) {
      EXPECT_EQ(ra_.cells[c].stats.total_sent(), rb_.cells[c].stats.total_sent());
      EXPECT_EQ(ra_.cells[c].stats.total_acked(), rb_.cells[c].stats.total_acked());
      EXPECT_EQ(ra_.cells[c].goodput_bps, rb_.cells[c].goodput_bps);
      EXPECT_EQ(ra_.cells[c].members, rb_.cells[c].members);
      EXPECT_EQ(ra_.cells[c].per_tag_goodput_bps, rb_.cells[c].per_tag_goodput_bps);
    }
  }
}

TEST(Network, ServedTagsAreCappedByTheCellSlice) {
  auto network = Network::grid(small_config(), 12.0, 4.0, 2, 1);
  // Three tags crowd gateway 0's bay; its slice holds max_tags = 2 codes.
  network.add_tag({-3.0, 0.5});
  network.add_tag({-2.5, -0.5});
  network.add_tag({-3.5, 0.0});
  const auto result = network.run_round(5);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].tags_total, 3u);
  EXPECT_EQ(result.cells[0].tags_served, 2u);
  EXPECT_EQ(result.tags_served, 2u);
  EXPECT_EQ(result.tags_total, 3u);
}

TEST(Network, MobilityWalkIsSeededAndClampedToTheFloor) {
  auto cfg = small_config();
  cfg.tag_step_m = 0.5;
  auto a = Network::grid(cfg, 12.0, 8.0, 2, 2);
  auto b = Network::grid(cfg, 12.0, 8.0, 2, 2);
  Rng ra(3), rb(3);
  a.place_random_tags(6, ra);
  b.place_random_tags(6, rb);
  a.run_round(21, 1);
  b.run_round(21, 2);
  for (std::size_t t = 0; t < a.tag_count(); ++t) {
    EXPECT_EQ(a.tag(t).x, b.tag(t).x);
    EXPECT_EQ(a.tag(t).y, b.tag(t).y);
    EXPECT_LE(std::abs(a.tag(t).x), 6.0);
    EXPECT_LE(std::abs(a.tag(t).y), 4.0);
  }
}

// --- metrics-plane attribution (DESIGN.md §12) -----------------------------
// These flip the process-global metrics flag; gtest_discover_tests runs
// each TEST in its own process, so the flip cannot leak.

TEST(Network, MetricsPlaneChangesNoResultsAndAttributesEveryCell) {
  auto off_net = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  auto on_net = Network::grid(small_config(), 12.0, 8.0, 2, 2);
  Rng ro(5), rn(5);
  off_net.place_random_tags(8, ro);
  on_net.place_random_tags(8, rn);

  core::MetricsPlane::disable();
  const auto off = off_net.run_round(31);

  core::MetricsPlane::enable();
  metrics::set_export_path("");
  core::MetricsPlane::set_cadence(1);
  core::MetricsPlane::reset();
  const auto on = on_net.run_round(31);
  const auto snap = metrics::snapshot();
  core::MetricsPlane::disable();
  telemetry::set_enabled(false);

  // Observing the round must not move it: bit-identical aggregates.
  EXPECT_EQ(off.aggregate_goodput_bps, on.aggregate_goodput_bps);
  EXPECT_EQ(off.jain_fairness, on.jain_fairness);
  EXPECT_EQ(off.tags_served, on.tags_served);
  EXPECT_EQ(off.roamed, on.roamed);

  // One round at cadence 1 closed exactly one window.
  EXPECT_EQ(snap.windows, 1u);

  // Every cell charted its goodput under its own scope, at the value the
  // round result reports; the global rollup series carries the aggregate.
  auto last_value = [&](const std::string& name,
                        const std::string& scope) -> double {
    for (const auto& s : snap.series) {
      if (s.name == name && s.scope == scope && !s.points.empty()) {
        return s.points.back().value;
      }
    }
    ADD_FAILURE() << "missing series " << name << " scope '" << scope << "'";
    return -1.0;
  };
  ASSERT_EQ(on.cells.size(), 4u);
  for (const auto& cell : on.cells) {
    const std::string scope = "cell=" + std::to_string(cell.gateway_id);
    EXPECT_EQ(last_value("net.cell.goodput_bps", scope), cell.goodput_bps);
    EXPECT_EQ(last_value("net.cell.tags_served", scope),
              static_cast<double>(cell.tags_served));
    EXPECT_EQ(last_value("net.cell.sent", scope),
              static_cast<double>(cell.stats.total_sent()));
  }
  EXPECT_EQ(last_value("net.goodput_bps", ""), on.aggregate_goodput_bps);
  EXPECT_EQ(last_value("net.jain_fairness", ""), on.jain_fairness);
  EXPECT_EQ(last_value("net.tags_total", ""), 8.0);
}

TEST(Network, MetricsPlaneEmitsCodeSliceOverflowEvents) {
  auto network = Network::grid(small_config(), 12.0, 4.0, 2, 1);
  // Three tags crowd gateway 0's bay; its slice holds max_tags = 2 codes.
  network.add_tag({-3.0, 0.5});
  network.add_tag({-2.5, -0.5});
  network.add_tag({-3.5, 0.0});
  core::MetricsPlane::enable();
  metrics::set_export_path("");
  core::MetricsPlane::reset();
  const auto result = network.run_round(5);
  const auto snap = metrics::snapshot();
  core::MetricsPlane::disable();
  telemetry::set_enabled(false);

  ASSERT_EQ(result.cells[0].tags_served, 2u);
  bool saw_overflow = false;
  for (const auto& e : snap.events) {
    if (e.type != "code_slice_overflow") continue;
    saw_overflow = true;
    EXPECT_EQ(e.severity, metrics::Severity::kWarning);
    EXPECT_EQ(e.scope, "cell=0");
    EXPECT_DOUBLE_EQ(e.value, 1.0);  // 3 members for 2 served slots
  }
  EXPECT_TRUE(saw_overflow);
}

TEST(Network, MetricsPlaneEmitsRoamEvents) {
  auto network = Network::grid(small_config(), 12.0, 4.0, 2, 1);
  network.add_tag({-3.0, 0.5});
  network.associate();
  ASSERT_EQ(network.association()[0], 0u);
  network.move_tag(0, {1.0, 0.5});  // squarely in gateway 1's bay
  core::MetricsPlane::enable();
  metrics::set_export_path("");
  core::MetricsPlane::reset();
  ASSERT_EQ(network.roam(), 1u);
  const auto snap = metrics::snapshot();
  core::MetricsPlane::disable();
  telemetry::set_enabled(false);

  ASSERT_EQ(snap.events.size(), 1u);
  const auto& e = snap.events[0];
  EXPECT_EQ(e.type, "roam");
  EXPECT_EQ(e.severity, metrics::Severity::kInfo);
  EXPECT_EQ(e.scope, "cell=1");  // attributed to the destination cell
  EXPECT_DOUBLE_EQ(e.value, 0.0);  // the tag index
  EXPECT_NE(e.detail.find("cell 0 -> cell 1"), std::string::npos) << e.detail;
}

TEST(Network, ReuseColorsRespectTheFamilyAcrossTheGrid) {
  auto network = Network::grid(small_config(), 18.0, 12.0, 3, 3);
  // 6 m x 4 m bays color as a kings graph: 4 colors on a 3x3 floor.
  EXPECT_EQ(network.colors_used(), 4u);
  for (const auto& gw : network.gateways()) {
    EXPECT_LE(gw.code_offset + gw.code_count,
              network.config().reuse.family_size);
  }
}

}  // namespace
}  // namespace cbma::net
