#include "rfsim/channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace cbma::rfsim {
namespace {

ChannelConfig quiet_config() {
  ChannelConfig cfg;
  cfg.samples_per_chip = 4;
  cfg.chip_rate_hz = 1e6;
  cfg.noise_power_w = 0.0;
  cfg.tail_pad_chips = 2.0;
  return cfg;
}

TEST(Channel, RejectsBadConfig) {
  ChannelConfig cfg = quiet_config();
  cfg.samples_per_chip = 0;
  EXPECT_THROW(Channel{cfg}, std::invalid_argument);
  cfg = quiet_config();
  cfg.chip_rate_hz = 0.0;
  EXPECT_THROW(Channel{cfg}, std::invalid_argument);
  cfg = quiet_config();
  cfg.noise_power_w = -1.0;
  EXPECT_THROW(Channel{cfg}, std::invalid_argument);
}

TEST(Channel, SampleRate) {
  const Channel ch(quiet_config());
  EXPECT_DOUBLE_EQ(ch.sample_rate_hz(), 4e6);
}

TEST(Channel, WindowLengthCoversBurstPlusPad) {
  const Channel ch(quiet_config());
  Rng rng(1);
  const std::vector<std::uint8_t> chips{1, 0, 1, 1};
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.delay_chips = 3.0;
  const auto iq = ch.receive(std::span(&tx, 1), rng);
  // (3 + 4 + 2 pad) chips × 4 samples.
  EXPECT_EQ(iq.size(), static_cast<std::size_t>((3 + 4 + 2) * 4));
}

TEST(Channel, CleanSingleTagReproducesChips) {
  const Channel ch(quiet_config());
  Rng rng(2);
  const std::vector<std::uint8_t> chips{1, 0, 1, 1, 0, 0, 1};
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 2.0;
  tx.phase = 0.7;
  tx.delay_chips = 0.0;
  const auto iq = ch.receive(std::span(&tx, 1), rng);
  for (std::size_t c = 0; c < chips.size(); ++c) {
    for (std::size_t s = 0; s < 4; ++s) {
      const double expected = chips[c] ? 2.0 : 0.0;
      EXPECT_NEAR(std::abs(iq[c * 4 + s]), expected, 1e-9)
          << "chip " << c << " sample " << s;
    }
  }
}

TEST(Channel, PhaseAppearsInIq) {
  const Channel ch(quiet_config());
  Rng rng(3);
  const std::vector<std::uint8_t> chips{1};
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.phase = 1.2;
  const auto iq = ch.receive(std::span(&tx, 1), rng);
  EXPECT_NEAR(std::arg(iq[1]), 1.2, 1e-9);
}

TEST(Channel, IntegerDelayShiftsWaveform) {
  const Channel ch(quiet_config());
  Rng rng(4);
  const std::vector<std::uint8_t> chips{1, 1};
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.delay_chips = 2.0;
  const auto iq = ch.receive(std::span(&tx, 1), rng);
  for (std::size_t s = 0; s < 8; ++s) EXPECT_NEAR(std::abs(iq[s]), 0.0, 1e-12);
  for (std::size_t s = 8; s < 16; ++s) EXPECT_NEAR(std::abs(iq[s]), 1.0, 1e-9);
}

TEST(Channel, FractionalDelayInterpolates) {
  const Channel ch(quiet_config());
  Rng rng(5);
  const std::vector<std::uint8_t> chips{1};
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.delay_chips = 0.125;  // half a sample at 4 samples/chip
  const auto iq = ch.receive(std::span(&tx, 1), rng);
  // First sample of the edge is interpolated: 0.5 amplitude.
  EXPECT_NEAR(std::abs(iq[0]), 0.5, 1e-9);
  EXPECT_NEAR(std::abs(iq[1]), 1.0, 1e-9);
}

TEST(Channel, RejectsNegativeDelay) {
  const Channel ch(quiet_config());
  Rng rng(6);
  const std::vector<std::uint8_t> chips{1};
  TagTransmission tx;
  tx.chips = chips;
  tx.delay_chips = -1.0;
  EXPECT_THROW(ch.receive(std::span(&tx, 1), rng), std::invalid_argument);
}

TEST(Channel, TwoTagsSuperpose) {
  const Channel ch(quiet_config());
  Rng rng(7);
  const std::vector<std::uint8_t> chips{1};
  TagTransmission a, b;
  a.chips = chips;
  a.amplitude = 1.0;
  a.phase = 0.0;
  b.chips = chips;
  b.amplitude = 1.0;
  b.phase = 0.0;
  const std::vector<TagTransmission> txs{a, b};
  const auto iq = ch.receive(txs, rng);
  EXPECT_NEAR(iq[0].real(), 2.0, 1e-9);  // coherent sum
}

TEST(Channel, OppositePhasesCancel) {
  const Channel ch(quiet_config());
  Rng rng(8);
  const std::vector<std::uint8_t> chips{1};
  TagTransmission a, b;
  a.chips = chips;
  a.amplitude = 1.0;
  a.phase = 0.0;
  b.chips = chips;
  b.amplitude = 1.0;
  b.phase = units::kPi;
  const std::vector<TagTransmission> txs{a, b};
  const auto iq = ch.receive(txs, rng);
  EXPECT_NEAR(std::abs(iq[0]), 0.0, 1e-9);
}

TEST(Channel, FrequencyOffsetRotatesPhase) {
  ChannelConfig cfg = quiet_config();
  const Channel ch(cfg);
  Rng rng(9);
  const std::vector<std::uint8_t> chips(100, 1);
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.phase = 0.0;
  tx.freq_offset_hz = 1000.0;
  const auto iq = ch.receive(std::span(&tx, 1), rng);
  // After k samples the phase must be 2π·f·k/fs.
  const std::size_t k = 200;
  const double want = 2.0 * units::kPi * 1000.0 * static_cast<double>(k) /
                      ch.sample_rate_hz();
  EXPECT_NEAR(std::arg(iq[k]), want, 1e-6);
  // Magnitude unaffected.
  EXPECT_NEAR(std::abs(iq[k]), 1.0, 1e-9);
}

TEST(Channel, NoiseRaisesFloor) {
  ChannelConfig cfg = quiet_config();
  cfg.noise_power_w = 0.01;
  const Channel ch(cfg);
  Rng rng(10);
  const std::vector<std::uint8_t> chips(512, 0);  // silent tag
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  const auto iq = ch.receive(std::span(&tx, 1), rng);
  double p = 0.0;
  for (const auto& s : iq) p += std::norm(s);
  p /= static_cast<double>(iq.size());
  EXPECT_NEAR(p, 0.01, 0.002);
}

TEST(Channel, MultipathAddsEchoEnergy) {
  ChannelConfig cfg = quiet_config();
  cfg.multipath.enabled = true;
  cfg.multipath.extra_taps = 2;
  cfg.multipath.relative_power_db = -6.0;
  const Channel with(cfg);
  const Channel without(quiet_config());
  Rng r1(11), r2(11);
  const std::vector<std::uint8_t> chips(256, 1);
  TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  const auto a = with.receive(std::span(&tx, 1), r1);
  const auto b = without.receive(std::span(&tx, 1), r2);
  double pa = 0.0, pb = 0.0;
  for (const auto& s : a) pa += std::norm(s);
  for (const auto& s : b) pb += std::norm(s);
  EXPECT_NE(pa, pb);  // echoes change the window energy
}

TEST(Channel, MagnitudeHelper) {
  const std::vector<std::complex<double>> iq{{3.0, 4.0}, {0.0, -2.0}};
  const auto mag = Channel::magnitude(iq);
  ASSERT_EQ(mag.size(), 2u);
  EXPECT_DOUBLE_EQ(mag[0], 5.0);
  EXPECT_DOUBLE_EQ(mag[1], 2.0);
}

TEST(Channel, EmptyTagsGiveEmptyPaddedWindow) {
  const Channel ch(quiet_config());
  Rng rng(12);
  const auto iq = ch.receive({}, rng);
  EXPECT_EQ(iq.size(), static_cast<std::size_t>(2 * 4));  // tail pad only
}

}  // namespace
}  // namespace cbma::rfsim
