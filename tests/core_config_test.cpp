#include "core/config.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace cbma::core {
namespace {

TEST(SystemConfig, PaperDefaults) {
  const SystemConfig cfg;
  EXPECT_EQ(cfg.code_family, pn::CodeFamily::kTwoNC);
  EXPECT_DOUBLE_EQ(cfg.carrier_hz, 2.0e9);       // §VI: 2 GHz carrier
  EXPECT_DOUBLE_EQ(cfg.subcarrier_hz, 20.0e6);   // §VI: 20 MHz shift
  EXPECT_DOUBLE_EQ(cfg.bitrate_bps, 1e6);        // 1 µs symbol time
  EXPECT_EQ(cfg.preamble_bits, 8u);              // 10101010
  EXPECT_EQ(cfg.max_tags, 10u);                  // 10-tag testbed
}

TEST(SystemConfig, CodeLengthForTwoNC) {
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kTwoNC;
  cfg.max_tags = 10;
  cfg.code_min_length = 20;
  EXPECT_EQ(cfg.code_length(), 32u);
}

TEST(SystemConfig, CodeLengthForGold) {
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kGold;
  cfg.code_min_length = 31;
  EXPECT_EQ(cfg.code_length(), 31u);
}

TEST(SystemConfig, ChipRateIsBitrateTimesLength) {
  SystemConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.chip_rate_hz(),
                   cfg.bitrate_bps * static_cast<double>(cfg.code_length()));
}

TEST(SystemConfig, SampleRate) {
  SystemConfig cfg;
  cfg.samples_per_chip = 4;
  EXPECT_DOUBLE_EQ(cfg.sample_rate_hz(), 4.0 * cfg.chip_rate_hz());
}

TEST(SystemConfig, SymbolTime) {
  SystemConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.symbol_time_s(), 1e-6);  // the paper's 1 µs
}

TEST(SystemConfig, NoisePowerCombinesFigureAndMargin) {
  SystemConfig cfg;
  const double base_db = units::watts_to_dbm(cfg.noise_power_w());
  cfg.noise_margin_db += 10.0;
  EXPECT_NEAR(units::watts_to_dbm(cfg.noise_power_w()), base_db + 10.0, 1e-9);
}

TEST(SystemConfig, NoiseScalesWithChipRate) {
  SystemConfig slow, fast;
  slow.bitrate_bps = 0.25e6;
  fast.bitrate_bps = 1e6;
  // 4× bandwidth = +6 dB noise.
  EXPECT_NEAR(units::to_db(fast.noise_power_w() / slow.noise_power_w()), 6.02, 0.05);
}

TEST(SystemConfig, SummaryMentionsKeyParameters) {
  SystemConfig cfg;
  const auto s = cfg.summary();
  EXPECT_NE(s.find("2NC"), std::string::npos);
  EXPECT_NE(s.find("preamble=8b"), std::string::npos);
  EXPECT_NE(s.find("Mbps"), std::string::npos);
}

TEST(SystemConfig, InvalidMaxTagsThrows) {
  SystemConfig cfg;
  cfg.max_tags = 0;
  EXPECT_THROW(cfg.code_length(), std::invalid_argument);
}

bool mentions(const std::vector<std::string>& errors, std::string_view needle) {
  for (const auto& e : errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(SystemConfigValidate, DefaultsAreValid) {
  const SystemConfig cfg;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(SystemConfigValidate, ReportsEveryProblemAtOnce) {
  SystemConfig cfg;
  cfg.max_tags = 0;
  cfg.samples_per_chip = 0;
  cfg.alpha = 1.5;
  cfg.phase_tracking_gain = 2.0;
  const auto errors = cfg.validate();
  EXPECT_EQ(errors.size(), 4u);
  EXPECT_TRUE(mentions(errors, "max_tags"));
  EXPECT_TRUE(mentions(errors, "samples_per_chip"));
  EXPECT_TRUE(mentions(errors, "alpha"));
  EXPECT_TRUE(mentions(errors, "phase_tracking_gain"));
}

TEST(SystemConfigValidate, GoldCapacityIsDescriptive) {
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kGold;
  cfg.max_tags = 2000;  // beyond degree 10's 1025 codes
  const auto errors = cfg.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("max_tags=2000"), std::string::npos);
  EXPECT_NE(errors[0].find("1025 codes"), std::string::npos);
}

TEST(SystemConfigValidate, PayloadLimitNamesTheBound) {
  SystemConfig cfg;
  cfg.payload_bytes = 500;
  const auto errors = cfg.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("payload_bytes=500"), std::string::npos);
}

TEST(SystemConfigValidate, ImpedanceLevelBankChecked) {
  SystemConfig cfg;
  cfg.impedance_levels = 4;
  cfg.initial_impedance_level = 7;
  EXPECT_TRUE(mentions(cfg.validate(), "initial_impedance_level=7"));
  cfg.initial_impedance_level = SystemConfig::kStrongestImpedance;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(SystemConfigValidate, CodeSliceBoundsChecked) {
  // Multi-cell slicing: [code_offset, code_offset + max_tags) must fit the
  // shared family.
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kGold;
  cfg.max_tags = 8;
  cfg.code_family_size = 64;
  cfg.code_offset = 56;
  EXPECT_TRUE(cfg.validate().empty());
  cfg.code_offset = 57;  // [57, 65) spills past the 64-code family
  EXPECT_TRUE(mentions(cfg.validate(), "code_family_size=64"));
}

TEST(SystemConfigValidate, CodeOffsetNeedsFamily) {
  SystemConfig cfg;
  cfg.code_offset = 4;  // no code_family_size to slice from
  EXPECT_TRUE(mentions(cfg.validate(), "code_offset"));
}

TEST(SystemConfigValidate, MinNodeSeparationChecked) {
  SystemConfig cfg;
  cfg.min_node_separation_m = 0.0;
  EXPECT_TRUE(mentions(cfg.validate(), "min_node_separation_m"));
}

TEST(SystemConfigSummary, NamesCodeSlice) {
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kGold;
  cfg.max_tags = 8;
  cfg.code_family_size = 64;
  cfg.code_offset = 16;
  EXPECT_NE(cfg.summary().find("codes=[16,24)/64"), std::string::npos);
  cfg.code_family_size = 0;
  cfg.code_offset = 0;
  EXPECT_EQ(cfg.summary().find("codes="), std::string::npos);
}

TEST(SystemConfigValidate, ReceiverThresholdsChecked) {
  SystemConfig cfg;
  cfg.detect.threshold = 1.0;  // must be strictly below 1
  cfg.detect.relative_threshold = -0.1;
  cfg.sync.min_baseline = 0.0;
  const auto errors = cfg.validate();
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_TRUE(mentions(errors, "detect.threshold"));
  EXPECT_TRUE(mentions(errors, "detect.relative_threshold"));
  EXPECT_TRUE(mentions(errors, "sync.min_baseline"));
}

}  // namespace
}  // namespace cbma::core
