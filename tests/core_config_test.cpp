#include "core/config.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace cbma::core {
namespace {

TEST(SystemConfig, PaperDefaults) {
  const SystemConfig cfg;
  EXPECT_EQ(cfg.code_family, pn::CodeFamily::kTwoNC);
  EXPECT_DOUBLE_EQ(cfg.carrier_hz, 2.0e9);       // §VI: 2 GHz carrier
  EXPECT_DOUBLE_EQ(cfg.subcarrier_hz, 20.0e6);   // §VI: 20 MHz shift
  EXPECT_DOUBLE_EQ(cfg.bitrate_bps, 1e6);        // 1 µs symbol time
  EXPECT_EQ(cfg.preamble_bits, 8u);              // 10101010
  EXPECT_EQ(cfg.max_tags, 10u);                  // 10-tag testbed
}

TEST(SystemConfig, CodeLengthForTwoNC) {
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kTwoNC;
  cfg.max_tags = 10;
  cfg.code_min_length = 20;
  EXPECT_EQ(cfg.code_length(), 32u);
}

TEST(SystemConfig, CodeLengthForGold) {
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kGold;
  cfg.code_min_length = 31;
  EXPECT_EQ(cfg.code_length(), 31u);
}

TEST(SystemConfig, ChipRateIsBitrateTimesLength) {
  SystemConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.chip_rate_hz(),
                   cfg.bitrate_bps * static_cast<double>(cfg.code_length()));
}

TEST(SystemConfig, SampleRate) {
  SystemConfig cfg;
  cfg.samples_per_chip = 4;
  EXPECT_DOUBLE_EQ(cfg.sample_rate_hz(), 4.0 * cfg.chip_rate_hz());
}

TEST(SystemConfig, SymbolTime) {
  SystemConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.symbol_time_s(), 1e-6);  // the paper's 1 µs
}

TEST(SystemConfig, NoisePowerCombinesFigureAndMargin) {
  SystemConfig cfg;
  const double base_db = units::watts_to_dbm(cfg.noise_power_w());
  cfg.noise_margin_db += 10.0;
  EXPECT_NEAR(units::watts_to_dbm(cfg.noise_power_w()), base_db + 10.0, 1e-9);
}

TEST(SystemConfig, NoiseScalesWithChipRate) {
  SystemConfig slow, fast;
  slow.bitrate_bps = 0.25e6;
  fast.bitrate_bps = 1e6;
  // 4× bandwidth = +6 dB noise.
  EXPECT_NEAR(units::to_db(fast.noise_power_w() / slow.noise_power_w()), 6.02, 0.05);
}

TEST(SystemConfig, SummaryMentionsKeyParameters) {
  SystemConfig cfg;
  const auto s = cfg.summary();
  EXPECT_NE(s.find("2NC"), std::string::npos);
  EXPECT_NE(s.find("preamble=8b"), std::string::npos);
  EXPECT_NE(s.find("Mbps"), std::string::npos);
}

TEST(SystemConfig, InvalidMaxTagsThrows) {
  SystemConfig cfg;
  cfg.max_tags = 0;
  EXPECT_THROW(cfg.code_length(), std::invalid_argument);
}

}  // namespace
}  // namespace cbma::core
