// rfsim/impairment: the fault-injection stages. The load-bearing contract
// is the first test — a default (all-off) config must be a strict identity
// AND consume zero RNG draws, because every bench's byte-identical JSON and
// the transmit determinism golden rely on the clean pipeline's RNG stream
// being untouched.
#include "rfsim/impairment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "core/config.h"
#include "util/rng.h"

namespace cbma::rfsim {
namespace {

constexpr std::uint64_t kSeed = 20190707;

TEST(ImpairmentSuite, AllOffIsIdentityAndDrawsNothing) {
  const ImpairmentSuite suite{ImpairmentConfig{}};
  EXPECT_FALSE(suite.any_enabled());

  std::vector<double> envelope(512, 1.0);
  std::vector<double> waveform{0.0, 1.0, 1.0, 0.0, 1.0, 0.0};
  std::vector<std::complex<double>> iq(64, {0.25, -0.75});
  const auto envelope0 = envelope;
  const auto waveform0 = waveform;
  const auto iq0 = iq;

  Rng rng(kSeed);
  suite.gate_excitation(envelope, 128e6, rng);
  suite.settle_waveform(waveform, 4);
  suite.distort_rx(iq, 128e6, rng);
  const auto jitter = suite.switching_jitter_chips(rng);
  const auto clock = suite.perturb_clock(0.0, 20e6, 1000.0, rng);

  EXPECT_EQ(envelope, envelope0);
  EXPECT_EQ(waveform, waveform0);
  EXPECT_EQ(iq, iq0);
  EXPECT_EQ(jitter, 0.0);
  EXPECT_EQ(clock.extra_delay_chips, 0.0);
  EXPECT_EQ(clock.extra_freq_offset_hz, 0.0);
  // No stage consumed a draw: the stream is positionally identical to a
  // fresh generator with the same seed.
  Rng fresh(kSeed);
  EXPECT_EQ(rng.uniform(0.0, 1.0), fresh.uniform(0.0, 1.0));
}

TEST(ImpairmentConfig, ValidateRejectsBadKnobs) {
  ImpairmentConfig cfg;
  cfg.dropout.enabled = true;
  cfg.dropout.duty = 0.0;
  cfg.adc.enabled = true;
  cfg.adc.full_scale = 0.0;
  cfg.adc.bits = 40;
  const auto errors = cfg.validate();
  EXPECT_EQ(errors.size(), 3u);
  // The suite refuses to be built around an invalid config.
  EXPECT_THROW(ImpairmentSuite{cfg}, std::invalid_argument);
}

TEST(ImpairmentConfig, SummaryEmptyOffDescriptiveOn) {
  ImpairmentConfig cfg;
  EXPECT_EQ(cfg.summary(), "");
  cfg.dropout.enabled = true;
  cfg.dropout.duty = 0.5;
  EXPECT_NE(cfg.summary().find("dropout"), std::string::npos);
}

TEST(ImpairmentConfig, SystemSummaryFingerprintOnlyChangesWhenEnabled) {
  // BENCH_*.json carries a fingerprint of SystemConfig::summary(); default
  // impairments must not perturb it, enabled ones must.
  core::SystemConfig base;
  core::SystemConfig impaired;
  impaired.impairments.drift.enabled = true;
  impaired.impairments.drift.max_static_ppm = 50.0;
  EXPECT_EQ(base.summary().find("imp=["), std::string::npos);
  EXPECT_NE(base.summary(), impaired.summary());
  EXPECT_NE(impaired.summary().find("imp=["), std::string::npos);
}

TEST(ImpairmentSuite, GateExcitationHitsTheDutyCycle) {
  ImpairmentConfig cfg;
  cfg.dropout.enabled = true;
  cfg.dropout.duty = 0.5;
  cfg.dropout.mean_burst_s = 2e-6;  // many bursts over the window
  const ImpairmentSuite suite{cfg};
  std::vector<double> envelope(200000, 1.0);
  Rng rng(kSeed);
  suite.gate_excitation(envelope, 128e6, rng);
  double on = 0.0;
  for (const double v : envelope) {
    ASSERT_TRUE(v == 0.0 || v == 1.0);  // gating only zeroes, never scales
    on += v;
  }
  const double measured_duty = on / static_cast<double>(envelope.size());
  EXPECT_NEAR(measured_duty, 0.5, 0.1);
}

TEST(ImpairmentSuite, GateExcitationIsSeedDeterministic) {
  ImpairmentConfig cfg;
  cfg.dropout.enabled = true;
  cfg.dropout.duty = 0.4;
  const ImpairmentSuite suite{cfg};
  std::vector<double> a(4096, 1.0), b(4096, 1.0);
  Rng ra(kSeed), rb(kSeed);
  suite.gate_excitation(a, 128e6, ra);
  suite.gate_excitation(b, 128e6, rb);
  EXPECT_EQ(a, b);
}

TEST(ImpairmentSuite, StaticClockPpmSpreadsTheGroup) {
  ImpairmentConfig cfg;
  cfg.drift.enabled = true;
  cfg.drift.max_static_ppm = 100.0;
  const ImpairmentSuite suite{cfg};
  EXPECT_DOUBLE_EQ(suite.static_clock_ppm(0, 5), -100.0);
  EXPECT_DOUBLE_EQ(suite.static_clock_ppm(2, 5), 0.0);
  EXPECT_DOUBLE_EQ(suite.static_clock_ppm(4, 5), 100.0);
  EXPECT_DOUBLE_EQ(suite.static_clock_ppm(0, 1), 100.0);
  EXPECT_THROW(suite.static_clock_ppm(5, 5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ImpairmentSuite{}.static_clock_ppm(0, 5), 0.0);
}

TEST(ImpairmentSuite, PerturbClockScalesWithPpm) {
  ImpairmentConfig cfg;
  cfg.drift.enabled = true;
  cfg.drift.max_static_ppm = 100.0;  // no wander: fully deterministic
  const ImpairmentSuite suite{cfg};
  Rng rng(kSeed);
  const auto p = suite.perturb_clock(100.0, 20e6, 1000.0, rng);
  // 100 ppm of a 20 MHz subcarrier is 2 kHz; mean skew is ½·ppm·frame.
  EXPECT_NEAR(p.extra_freq_offset_hz, 2000.0, 1e-9);
  EXPECT_NEAR(p.extra_delay_chips, 0.05, 1e-12);
  // Without wander no draw is consumed.
  Rng fresh(kSeed);
  EXPECT_EQ(rng.uniform(0.0, 1.0), fresh.uniform(0.0, 1.0));
}

TEST(ImpairmentSuite, SettleWaveformSoftensTransitionsWithinBounds) {
  ImpairmentConfig cfg;
  cfg.switching.enabled = true;
  cfg.switching.settle_chips = 0.5;
  const ImpairmentSuite suite{cfg};
  // Alternating chips at 4 samples/chip: the RC response must stay within
  // [0, 1] and no longer reach the rails right after a transition.
  std::vector<double> waveform;
  for (int chip = 0; chip < 8; ++chip) {
    for (int s = 0; s < 4; ++s) waveform.push_back(chip % 2 == 0 ? 0.0 : 1.0);
  }
  suite.settle_waveform(waveform, 4);
  for (const double v : waveform) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_LT(waveform[4], 1.0);  // first sample after the 0→1 edge still rising
  EXPECT_GT(waveform[8], 0.0);  // and after the 1→0 edge still falling
}

TEST(ImpairmentSuite, AdcClipsAndSnapsToTheQuantizerGrid) {
  ImpairmentConfig cfg;
  cfg.adc.enabled = true;
  cfg.adc.full_scale = 1.0;
  cfg.adc.bits = 4;
  const ImpairmentSuite suite{cfg};
  const double lsb = 2.0 / 15.0;
  std::vector<std::complex<double>> iq{{5.0, -5.0}, {0.03, 0.49}, {-0.2, 0.0}};
  Rng rng(kSeed);
  suite.distort_rx(iq, 128e6, rng);
  for (const auto& s : iq) {
    for (const double v : {s.real(), s.imag()}) {
      EXPECT_LE(std::abs(v), 1.0 + 0.51 * lsb);  // clip, up to ½ LSB rounding
      EXPECT_NEAR(std::round(v / lsb) * lsb, v, 1e-12);  // on the grid
    }
  }
}

TEST(ImpairmentSuite, ImpulsiveBurstsLandInTheWindow) {
  ImpairmentConfig cfg;
  cfg.impulsive.enabled = true;
  cfg.impulsive.events_per_s = 2e6;  // ~dozens of events over the window
  cfg.impulsive.mean_duration_s = 0.5e-6;
  cfg.impulsive.amplitude = 1.0;
  const ImpairmentSuite suite{cfg};
  std::vector<std::complex<double>> iq(4096);  // 32 µs of silence at 128 MHz
  Rng rng(kSeed);
  suite.distort_rx(iq, 128e6, rng);
  std::size_t hit = 0;
  for (const auto& s : iq) hit += std::abs(s) > 0.0 ? 1 : 0;
  EXPECT_GT(hit, 0u);
  EXPECT_LT(hit, iq.size());  // bursts, not a constant jam
}

}  // namespace
}  // namespace cbma::rfsim
