// Tests of the single-sideband subcarrier synthesis (paper footnote 1).
#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/modulator.h"
#include "util/units.h"

namespace cbma::phy {
namespace {

constexpr double kF = 1000.0;
constexpr double kFs = 64000.0;

TEST(SsbSquareWave, RejectsBadRates) {
  EXPECT_THROW(ssb_square_wave(0.0, kFs, 16), std::invalid_argument);
  EXPECT_THROW(ssb_square_wave(kF, 3.0 * kF, 16), std::invalid_argument);
}

TEST(SsbSquareWave, ComponentsAreSquareWaves) {
  const auto s = ssb_square_wave(kF, kFs, 256);
  for (const auto& v : s) {
    EXPECT_TRUE(v.real() == 1.0 || v.real() == -1.0);
    EXPECT_TRUE(v.imag() == 1.0 || v.imag() == -1.0);
  }
}

TEST(SsbSquareWave, QuadratureArmIsQuarterPeriodDelayed) {
  const auto s = ssb_square_wave(kF, kFs, 256);
  const auto period = static_cast<std::size_t>(kFs / kF);  // 64 samples
  const auto quarter = period / 4;
  for (std::size_t i = 0; i + quarter < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(s[i].real(), s[i + quarter].imag()) << "sample " << i;
  }
}

TEST(SsbSquareWave, WantedSidebandCarriesFundamental) {
  const auto s = ssb_square_wave(kF, kFs, 6400);
  // The complex fundamental combines both arms: amplitude 4/π·√2 ≈ 1.80
  // (measured single-bin magnitude ≈ that /√2 conventions aside, it must
  // be comfortably above 1).
  EXPECT_GT(tone_magnitude_complex(s, kF, kFs), 1.0);
}

TEST(SsbSquareWave, ImageSidebandSuppressed) {
  const auto s = ssb_square_wave(kF, kFs, 6400);
  // The fundamental of the −f sideband is ideally zero; finite length
  // leaves a numerical residue far below the wanted side.
  EXPECT_GT(sideband_suppression_db(s, kF, kFs), 30.0);
}

TEST(SsbSquareWave, PlainSquareWaveHasBothSidebands) {
  // Control: a real square wave (no quadrature arm) splits its energy
  // evenly across ±f — suppression ≈ 0 dB.
  const auto sq = square_wave(kF, kFs, 6400);
  std::vector<std::complex<double>> s(sq.size());
  for (std::size_t i = 0; i < sq.size(); ++i) s[i] = {sq[i], 0.0};
  EXPECT_NEAR(sideband_suppression_db(s, kF, kFs), 0.0, 0.1);
}

TEST(SsbSquareWave, ThirdHarmonicLandsOnImageSide) {
  // The quadrature construction mirrors odd harmonics: the 3rd harmonic of
  // sq(t)+j·sq(t−T/4) appears at −3f (textbook SSB-square behaviour).
  const auto s = ssb_square_wave(kF, kFs, 6400);
  EXPECT_GT(tone_magnitude_complex(s, -3.0 * kF, kFs),
            10.0 * tone_magnitude_complex(s, 3.0 * kF, kFs));
}

TEST(ToneMagnitudeComplex, RecoverySanity) {
  std::vector<std::complex<double>> tone(4096);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    const double ang = 2.0 * units::kPi * kF * static_cast<double>(i) / kFs;
    tone[i] = std::polar(2.0, ang);
  }
  EXPECT_NEAR(tone_magnitude_complex(tone, kF, kFs), 2.0, 1e-6);
  EXPECT_NEAR(tone_magnitude_complex(tone, -kF, kFs), 0.0, 1e-6);
}

}  // namespace
}  // namespace cbma::phy
