// util/json: deterministic serialization and the validation parser the
// bench tooling and recorder tests rely on.
#include "util/json.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cbma::util {
namespace {

TEST(JsonQuote, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(-2.5), "-2.5");
  // Round-trip: parsing the emitted text recovers the exact double.
  for (const double v : {1.0 / 3.0, 1e-9, 3.25e8, 0.015625, 123456.789}) {
    const auto parsed = json_parse(json_number(v));
    EXPECT_EQ(parsed.number, v);
  }
}

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fig8a");
  w.key("version").value(1);
  w.key("ok").value(true);
  w.key("values").begin_array().value(1.5).value(2.5).end_array();
  w.key("nested").begin_object().key("x").value(std::uint64_t{7}).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"fig8a\",\"version\":1,\"ok\":true,"
            "\"values\":[1.5,2.5],\"nested\":{\"x\":7}}");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("e\"sc\\ape\n");
  w.key("n").value(-0.125);
  w.key("b").value(false);
  w.key("null_like").begin_array().end_array();
  w.end_object();

  const auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("s").string, "e\"sc\\ape\n");
  EXPECT_EQ(doc.at("n").number, -0.125);
  EXPECT_FALSE(doc.at("b").boolean);
  EXPECT_TRUE(doc.at("null_like").is_array());
  EXPECT_TRUE(doc.at("null_like").array.empty());
}

TEST(JsonParse, AcceptsStandardForms) {
  EXPECT_EQ(json_parse("null").type, JsonValue::Type::kNull);
  EXPECT_TRUE(json_parse("true").boolean);
  EXPECT_EQ(json_parse(" [1, 2.5e1, -3] ").array.size(), 3u);
  EXPECT_EQ(json_parse("[1,25,-3]").array[1].number, 25.0);
  EXPECT_EQ(json_parse("\"\\u0041\\u00e9\"").string, "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), std::runtime_error);
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json_parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json_parse("'single'"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\" 1}"), std::runtime_error);
}

}  // namespace
}  // namespace cbma::util
