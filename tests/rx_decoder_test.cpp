#include "rx/decoder.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/tag.h"
#include "rfsim/channel.h"
#include "util/rng.h"

namespace cbma::rx {
namespace {

constexpr std::size_t kSpc = 4;
constexpr std::size_t kPreambleBits = 8;
constexpr double kLeadChips = 8.0;

std::vector<pn::PnCode> group_codes(std::size_t n) {
  return pn::make_code_set(pn::CodeFamily::kTwoNC, n, 20);
}

rfsim::Channel channel(double noise = 0.0) {
  rfsim::ChannelConfig cfg;
  cfg.samples_per_chip = kSpc;
  cfg.chip_rate_hz = 32e6;
  cfg.noise_power_w = noise;
  return rfsim::Channel(cfg);
}

std::vector<std::complex<double>> transmit(const pn::PnCode& code,
                                           std::uint8_t tag_id,
                                           const std::vector<std::uint8_t>& payload,
                                           double phase, double cfo, cbma::Rng& rng,
                                           double noise = 0.0) {
  phy::TagConfig tc;
  tc.id = tag_id;
  tc.code = code;
  tc.preamble_bits = kPreambleBits;
  const phy::Tag tag(tc);
  const auto chips = tag.chip_sequence(payload);
  rfsim::TagTransmission tx;
  tx.chips = chips;
  tx.amplitude = 1.0;
  tx.phase = phase;
  tx.delay_chips = kLeadChips;
  tx.freq_offset_hz = cfo;
  return channel(noise).receive(std::span(&tx, 1), rng);
}

std::size_t preamble_offset() {
  return static_cast<std::size_t>(kLeadChips) * kSpc;
}

TEST(Decoder, RejectsBadConstruction) {
  const auto codes = group_codes(2);
  EXPECT_THROW(Decoder(pn::PnCode(), 8, kSpc), std::invalid_argument);
  EXPECT_THROW(Decoder(codes[0], 0, kSpc), std::invalid_argument);
  EXPECT_THROW(Decoder(codes[0], 8, 0), std::invalid_argument);
}

TEST(Decoder, SamplesPerBit) {
  const auto codes = group_codes(2);
  const Decoder dec(codes[0], kPreambleBits, kSpc);
  EXPECT_EQ(dec.samples_per_bit(), codes[0].length() * kSpc);
}

TEST(Decoder, CleanFrameRoundTrip) {
  const auto codes = group_codes(2);
  cbma::Rng rng(1);
  const std::vector<std::uint8_t> payload{0xDE, 0xAD, 0xBE, 0xEF};
  const auto iq = transmit(codes[0], 0, payload, 0.0, 0.0, rng);
  const Decoder dec(codes[0], kPreambleBits, kSpc);
  const auto frame = dec.decode(iq, preamble_offset(), 0.0);
  ASSERT_TRUE(frame.crc_ok);
  EXPECT_EQ(frame.frame->payload, payload);
  EXPECT_EQ(frame.frame->tag_id, 0);
}

TEST(Decoder, ArbitraryCarrierPhase) {
  const auto codes = group_codes(2);
  for (const double phase : {0.5, 1.7, 3.0, -2.2}) {
    cbma::Rng rng(2);
    const auto iq = transmit(codes[1], 1, {0x42}, phase, 0.0, rng);
    const Decoder dec(codes[1], kPreambleBits, kSpc);
    const auto frame = dec.decode(iq, preamble_offset(), phase);
    EXPECT_TRUE(frame.crc_ok) << "phase " << phase;
  }
}

TEST(Decoder, InvertedPhaseReferenceFailsCleanly) {
  // A π-off reference flips every bit; the phase tracker locks onto the
  // inverted constellation, so the frame is garbage and the CRC rejects it
  // rather than producing a silently wrong payload.
  const auto codes = group_codes(2);
  cbma::Rng rng(3);
  const auto iq = transmit(codes[0], 0, {1, 2, 3, 4, 5, 6}, 0.0, 0.0, rng, 1e-6);
  const Decoder dec(codes[0], kPreambleBits, kSpc);
  const auto frame = dec.decode(iq, preamble_offset(), 3.14159265);
  EXPECT_FALSE(frame.crc_ok);
}

TEST(Decoder, PhaseErrorWithinQuadrantConverges) {
  // The decision-directed tracker pulls in any initial error < 90°.
  const auto codes = group_codes(2);
  cbma::Rng rng(31);
  const auto iq = transmit(codes[0], 0, {9, 8, 7}, 0.0, 0.0, rng);
  const Decoder dec(codes[0], kPreambleBits, kSpc);
  for (const double err : {0.3, 0.8, 1.2, -1.2}) {
    EXPECT_TRUE(dec.decode(iq, preamble_offset(), err).crc_ok) << err;
  }
}

TEST(Decoder, PhaseTrackingFollowsCfo) {
  // 1.5 kHz CFO rotates the carrier by ~0.17 rad over a 12-byte frame at
  // 1 Mbps; the decision-directed loop must track it.
  const auto codes = group_codes(2);
  cbma::Rng rng(4);
  const std::vector<std::uint8_t> payload(12, 0x5A);
  const auto iq = transmit(codes[0], 0, payload, 0.3, 1500.0, rng);
  const Decoder dec(codes[0], kPreambleBits, kSpc);
  const auto frame = dec.decode(iq, preamble_offset(), 0.3);
  ASSERT_TRUE(frame.crc_ok);
  EXPECT_EQ(frame.frame->payload, payload);
}

TEST(Decoder, SoftValuesSignalBitValues) {
  const auto codes = group_codes(2);
  cbma::Rng rng(5);
  const auto iq = transmit(codes[0], 0, {0xF0}, 0.0, 0.0, rng);
  const Decoder dec(codes[0], kPreambleBits, kSpc);
  const auto frame = dec.decode(iq, preamble_offset(), 0.0);
  ASSERT_TRUE(frame.crc_ok);
  ASSERT_EQ(frame.bits.size(), frame.soft.size());
  for (std::size_t i = 0; i < frame.bits.size(); ++i) {
    EXPECT_EQ(frame.bits[i], frame.soft[i] > 0.0 ? 1 : 0);
  }
}

TEST(Decoder, TruncatedWindowFailsGracefully) {
  const auto codes = group_codes(2);
  cbma::Rng rng(6);
  const auto iq = transmit(codes[0], 0, {1, 2, 3, 4}, 0.0, 0.0, rng);
  const Decoder dec(codes[0], kPreambleBits, kSpc);
  // Cut the window in the middle of the payload.
  const std::span<const std::complex<double>> cut(iq.data(), iq.size() / 2);
  const auto frame = dec.decode(cut, preamble_offset(), 0.0);
  EXPECT_FALSE(frame.crc_ok);
  EXPECT_FALSE(frame.frame.has_value());
}

TEST(Decoder, WrongCodeDoesNotValidate) {
  const auto codes = group_codes(4);
  cbma::Rng rng(7);
  int false_ok = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> payload(6);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto iq = transmit(codes[0], 0, payload, rng.phase(), 0.0, rng);
    const Decoder dec(codes[2], kPreambleBits, kSpc);
    const auto frame = dec.decode(iq, preamble_offset(), 0.0);
    // A wrong aligned code may validate the CRC only by decoding the true
    // tag's bits — and then the embedded id (0) exposes it.
    if (frame.crc_ok && frame.frame->tag_id == 2) ++false_ok;
  }
  EXPECT_EQ(false_ok, 0);
}

TEST(Decoder, ModerateNoiseStillDecodes) {
  const auto codes = group_codes(2);
  cbma::Rng rng(8);
  int ok = 0;
  for (int trial = 0; trial < 20; ++trial) {
    // Chip SNR = 1/0.1 = 10 dB; post-despreading margin is ample.
    const auto iq = transmit(codes[0], 0, {7, 7, 7}, rng.phase(), 0.0, rng, 0.1);
    const Decoder dec(codes[0], kPreambleBits, kSpc);
    // Phase known: probe via clean detection assumption.
    const auto frame = dec.decode(iq, preamble_offset(), 0.0);
    (void)frame;
    // Re-decode with the true phase unknown is the receiver's job; here
    // noise robustness is checked with phase 0 transmissions.
    const auto iq2 = transmit(codes[0], 0, {7, 7, 7}, 0.0, 0.0, rng, 0.1);
    if (dec.decode(iq2, preamble_offset(), 0.0).crc_ok) ++ok;
  }
  EXPECT_GE(ok, 19);
}

}  // namespace
}  // namespace cbma::rx
