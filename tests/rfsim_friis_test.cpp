#include "rfsim/friis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace cbma::rfsim {
namespace {

TEST(LinkBudget, Wavelength) {
  LinkBudget b;
  b.carrier_hz = 2.0e9;
  EXPECT_NEAR(b.wavelength(), 0.15, 0.001);
}

TEST(LinkBudget, MatchesClosedForm) {
  LinkBudget b;
  const double d1 = 0.5, d2 = 1.0;
  const double four_pi = 4.0 * units::kPi;
  const double lambda = b.wavelength();
  const double want = (b.tx_power_w * b.tx_gain / (four_pi * d1 * d1)) *
                      (lambda * lambda * b.tag_gain * b.tag_gain / four_pi) *
                      (b.delta_gamma * b.delta_gamma / 4.0) * b.alpha *
                      (1.0 / (four_pi * d2 * d2)) *
                      (lambda * lambda * b.rx_gain / four_pi);
  EXPECT_NEAR(b.received_power(d1, d2), want, want * 1e-12);
}

TEST(LinkBudget, InverseSquarePerHop) {
  LinkBudget b;
  // Doubling either hop distance costs exactly 6 dB (Eq. 1 has d² per hop).
  const double base = b.received_power(0.5, 1.0);
  EXPECT_NEAR(units::to_db(base / b.received_power(1.0, 1.0)), 6.02, 0.01);
  EXPECT_NEAR(units::to_db(base / b.received_power(0.5, 2.0)), 6.02, 0.01);
}

TEST(LinkBudget, SymmetricInHops) {
  LinkBudget b;
  EXPECT_DOUBLE_EQ(b.received_power(0.5, 2.0), b.received_power(2.0, 0.5));
}

TEST(LinkBudget, ScalesWithTxPower) {
  LinkBudget lo, hi;
  lo.tx_power_w = 0.01;
  hi.tx_power_w = 0.1;
  EXPECT_NEAR(hi.received_power(1, 1) / lo.received_power(1, 1), 10.0, 1e-9);
}

TEST(LinkBudget, ScalesWithDeltaGammaSquared) {
  LinkBudget full, half;
  full.delta_gamma = 1.0;
  half.delta_gamma = 0.5;
  EXPECT_NEAR(full.received_power(1, 1) / half.received_power(1, 1), 4.0, 1e-9);
}

TEST(LinkBudget, RejectsNonPositiveDistance) {
  LinkBudget b;
  EXPECT_THROW(b.received_power(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(b.received_power(1.0, -1.0), std::invalid_argument);
}

TEST(LinkBudget, ThrowsBelowMinSeparation) {
  // Regression: the pre-fix Fig. 5 path silently clamped near-field
  // distances to a hidden 1e-3 m constant; received_power now fails loudly
  // on any hop below the documented min_separation_m knob.
  LinkBudget b;
  EXPECT_THROW(b.received_power(1e-6, 1.0), MinSeparationError);
  EXPECT_THROW(b.received_power(1.0, 1e-6), MinSeparationError);
  EXPECT_THROW(b.one_hop_power(1e-6), MinSeparationError);
  // Exactly at the floor is legal.
  EXPECT_GT(b.received_power(b.min_separation_m, 1.0), 0.0);
  EXPECT_GT(b.one_hop_power(b.min_separation_m), 0.0);
}

TEST(LinkBudget, MinSeparationKnobIsHonoured) {
  LinkBudget b;
  b.min_separation_m = 0.25;
  EXPECT_THROW(b.received_power(0.2, 1.0), MinSeparationError);
  EXPECT_GT(b.received_power(0.25, 1.0), 0.0);
  // The knob itself must be positive — zero would reopen the divergence.
  b.min_separation_m = 0.0;
  EXPECT_THROW(b.received_power(1.0, 1.0), MinSeparationError);
}

TEST(LinkBudget, MinSeparationErrorIsInvalidArgument) {
  // Callers that caught the old std::invalid_argument keep working.
  LinkBudget b;
  EXPECT_THROW(b.received_power(0.0, 1.0), std::invalid_argument);
}

TEST(LinkBudget, OneHopMatchesClosedForm) {
  LinkBudget b;
  const double d = 3.7;
  const double lambda = b.wavelength();
  const double four_pi_d = 4.0 * units::kPi * d;
  const double want = b.tx_power_w * b.tx_gain * b.rx_gain * lambda * lambda /
                      (four_pi_d * four_pi_d);
  EXPECT_NEAR(b.one_hop_power(d), want, want * 1e-12);
  // Doubling the distance costs exactly 6 dB (single d² term).
  EXPECT_NEAR(units::to_db(b.one_hop_power(d) / b.one_hop_power(2.0 * d)),
              6.02, 0.01);
}

TEST(LinkBudget, AmplitudeIsSqrtPower) {
  LinkBudget b;
  EXPECT_NEAR(b.received_amplitude(0.7, 1.3),
              std::sqrt(b.received_power(0.7, 1.3)), 1e-15);
}

TEST(LinkBudget, DeploymentOverload) {
  LinkBudget b;
  auto dep = Deployment::paper_frame();
  dep.add_tag({0.0, 1.0});
  EXPECT_DOUBLE_EQ(b.received_power(dep, 0),
                   b.received_power(dep.es_to_tag(0), dep.tag_to_rx(0)));
}

TEST(SignalStrengthField, GridShapeAndOrdering) {
  LinkBudget b;
  const auto field =
      signal_strength_field(b, {-0.5, 0}, {0.5, 0}, -2, 2, -3, 3, 9, 13);
  EXPECT_EQ(field.nx, 9u);
  EXPECT_EQ(field.ny, 13u);
  EXPECT_EQ(field.dbm.size(), 9u * 13u);
}

TEST(SignalStrengthField, StrongestNearEndpoints) {
  // Fig. 5 shape: strength peaks near the ES/RX axis and decays outward.
  LinkBudget b;
  const auto field =
      signal_strength_field(b, {-0.5, 0}, {0.5, 0}, -2, 2, -3, 3, 41, 61);
  // Centre row (y = 0) near x = ±0.5 must beat the far corner.
  const auto centre = field.at(20, 30);      // (0, 0)
  const auto corner = field.at(0, 0);        // (−2, −3)
  EXPECT_GT(centre, corner + 10.0);          // ≥10 dB hotter in the middle
}

TEST(SignalStrengthField, RejectsDegenerateGrid) {
  LinkBudget b;
  EXPECT_THROW(signal_strength_field(b, {0, 0}, {1, 0}, 0, 1, 0, 1, 1, 5),
               std::invalid_argument);
  EXPECT_THROW(signal_strength_field(b, {0, 0}, {1, 0}, 1, 0, 0, 1, 5, 5),
               std::invalid_argument);
}

TEST(SignalStrengthField, FiniteEvenAtEndpointSingularities) {
  // Grid points that coincide with ES/RX are clamped, not infinite.
  LinkBudget b;
  const auto field =
      signal_strength_field(b, {0, 0}, {1, 0}, 0, 1, 0, 0.5, 3, 3);
  for (const double v : field.dbm) EXPECT_TRUE(std::isfinite(v));
}

TEST(SignalStrengthField, FloorsGridDistancesAtMinSeparation) {
  // Regression: the field plot floors near-field grid distances at the
  // *configured* min_separation_m, not a hidden constant. A grid point on
  // top of the ES must evaluate exactly as if it sat min_separation_m away.
  LinkBudget b;
  b.min_separation_m = 0.1;
  const auto field =
      signal_strength_field(b, {0, 0}, {1, 0}, 0, 1, 0, 0.5, 2, 2);
  const double want = units::watts_to_dbm(b.received_power(0.1, 1.0));
  EXPECT_NEAR(field.at(0, 0), want, 1e-9);
}

TEST(SignalStrengthField, RejectsNonPositiveMinSeparation) {
  LinkBudget b;
  b.min_separation_m = 0.0;
  EXPECT_THROW(signal_strength_field(b, {0, 0}, {1, 0}, 0, 1, 0, 1, 3, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace cbma::rfsim
