#include "core/experiment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace cbma::core {
namespace {

SystemConfig fast_config() {
  SystemConfig cfg;
  cfg.max_tags = 5;
  cfg.payload_bytes = 4;
  return cfg;
}

TEST(MeasureFer, CleanPairHasLowFer) {
  auto dep = rfsim::Deployment::paper_frame();
  dep.add_tag({0.0, 0.5});
  dep.add_tag({0.0, -0.5});
  const auto point = measure_fer(fast_config(), dep, 40, 1);
  EXPECT_LE(point.fer, 0.1);
  EXPECT_EQ(point.stats.sent[0], 40u);
  ASSERT_EQ(point.snr_db.size(), 2u);
  EXPECT_GT(point.snr_db[0], 5.0);
}

TEST(MeasureFer, Deterministic) {
  auto dep = rfsim::Deployment::paper_frame();
  dep.add_tag({0.0, 0.6});
  dep.add_tag({0.3, -0.7});
  const auto a = measure_fer(fast_config(), dep, 30, 77);
  const auto b = measure_fer(fast_config(), dep, 30, 77);
  EXPECT_DOUBLE_EQ(a.fer, b.fer);
  EXPECT_EQ(a.stats.acked, b.stats.acked);
}

TEST(MeasureFer, RejectsZeroPackets) {
  auto dep = rfsim::Deployment::paper_frame();
  dep.add_tag({0.0, 0.5});
  EXPECT_THROW(measure_fer(fast_config(), dep, 0, 1), std::invalid_argument);
}

TEST(MeasureFer, FarTagsFail) {
  auto dep = rfsim::Deployment::paper_frame();
  dep.add_tag({30.0, 40.0});
  const auto point = measure_fer(fast_config(), dep, 20, 2);
  EXPECT_GT(point.fer, 0.9);
}

TEST(Scheme, Names) {
  EXPECT_EQ(to_string(Scheme::kBaseline), "none");
  EXPECT_EQ(to_string(Scheme::kPowerControl), "power-control");
  EXPECT_EQ(to_string(Scheme::kPowerControlAndSelection),
            "power-control+selection");
}

TEST(SchemeTrial, ValidatesConfig) {
  SchemeRunConfig run;
  run.population = 2;
  run.group_size = 5;
  EXPECT_THROW(run_scheme_trial(fast_config(), run, Scheme::kBaseline, 1),
               std::invalid_argument);
}

TEST(SchemeTrial, ReturnsErrorRateInRange) {
  SchemeRunConfig run;
  run.population = 8;
  run.group_size = 3;
  run.packets_per_round = 10;
  run.final_packets = 20;
  run.selection_rounds = 2;
  for (const auto scheme : {Scheme::kBaseline, Scheme::kPowerControl,
                            Scheme::kPowerControlAndSelection}) {
    const double er = run_scheme_trial(fast_config(), run, scheme, 5);
    EXPECT_GE(er, 0.0);
    EXPECT_LE(er, 1.0);
  }
}

TEST(SchemeTrial, DeterministicPerSeed) {
  SchemeRunConfig run;
  run.population = 6;
  run.group_size = 2;
  run.packets_per_round = 10;
  run.final_packets = 20;
  const double a = run_scheme_trial(fast_config(), run, Scheme::kPowerControl, 9);
  const double b = run_scheme_trial(fast_config(), run, Scheme::kPowerControl, 9);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SchemeErrorRates, ProducesRequestedTrials) {
  SchemeRunConfig run;
  run.population = 6;
  run.group_size = 2;
  run.packets_per_round = 8;
  run.final_packets = 10;
  const auto rates =
      scheme_error_rates(fast_config(), run, Scheme::kBaseline, 5, 11);
  EXPECT_EQ(rates.size(), 5u);
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(SchemeErrorRates, AdaptationHelpsOnAverage) {
  // Macro-benchmark sanity: with a spread-out population, power control
  // must not be worse than no control on average (Fig. 10's ordering).
  SchemeRunConfig run;
  run.population = 10;
  run.group_size = 4;
  run.packets_per_round = 15;
  run.final_packets = 30;
  run.room = rfsim::Room{3.0, 3.0};
  const auto base =
      scheme_error_rates(fast_config(), run, Scheme::kBaseline, 6, 21);
  const auto pc =
      scheme_error_rates(fast_config(), run, Scheme::kPowerControl, 6, 21);
  const double mean_base =
      std::accumulate(base.begin(), base.end(), 0.0) / base.size();
  const double mean_pc = std::accumulate(pc.begin(), pc.end(), 0.0) / pc.size();
  EXPECT_LE(mean_pc, mean_base + 0.05);
}

}  // namespace
}  // namespace cbma::core
