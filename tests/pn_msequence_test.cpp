#include "pn/msequence.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "pn/correlation.h"

namespace cbma::pn {
namespace {

TEST(MSequence, LengthIsFullPeriod) {
  for (const unsigned degree : {3u, 5u, 7u, 10u}) {
    const auto seq = msequence(degree, primitive_tap_mask(degree));
    EXPECT_EQ(seq.size(), (std::size_t{1} << degree) - 1);
  }
}

TEST(MSequence, UntabulatedDegreeThrows) {
  EXPECT_THROW(primitive_tap_mask(11), std::invalid_argument);
  EXPECT_THROW(primitive_tap_mask(2), std::invalid_argument);
  EXPECT_THROW(preferred_pair(8), std::invalid_argument);  // no pair for n ≡ 0 mod 4
}

class MSequencePropertyTest : public ::testing::TestWithParam<unsigned> {};

// m-sequences are balanced: exactly 2^(n−1) ones and 2^(n−1)−1 zeros.
TEST_P(MSequencePropertyTest, Balance) {
  const unsigned degree = GetParam();
  const auto seq = msequence(degree, primitive_tap_mask(degree));
  const auto ones = std::accumulate(seq.begin(), seq.end(), std::size_t{0});
  EXPECT_EQ(ones, std::size_t{1} << (degree - 1));
}

// Two-valued autocorrelation: peak L at shift 0, exactly −1 elsewhere.
TEST_P(MSequencePropertyTest, IdealAutocorrelation) {
  const unsigned degree = GetParam();
  const auto code = msequence_code(degree);
  const auto acf = periodic_cross_correlation_all(code, code);
  EXPECT_EQ(acf[0], static_cast<int>(code.length()));
  for (std::size_t tau = 1; tau < code.length(); ++tau) {
    EXPECT_EQ(acf[tau], -1) << "shift " << tau;
  }
}

// Shift-and-add property: an m-sequence XORed with a shift of itself is
// another shift of the same sequence (tested via its ideal autocorrelation
// against the original: must equal −1 or L).
TEST_P(MSequencePropertyTest, ShiftAndAdd) {
  const unsigned degree = GetParam();
  const auto seq = msequence(degree, primitive_tap_mask(degree));
  const std::size_t len = seq.size();
  std::vector<std::uint8_t> sum(len);
  const std::size_t shift = 3 % len;
  for (std::size_t i = 0; i < len; ++i) sum[i] = seq[i] ^ seq[(i + shift) % len];
  // The sum must be a cyclic shift of seq: correlate at every lag; one lag
  // must match perfectly.
  const PnCode a(sum), b(seq);
  bool found_perfect = false;
  for (std::size_t tau = 0; tau < len; ++tau) {
    if (periodic_cross_correlation(a, b, tau) == static_cast<int>(len)) {
      found_perfect = true;
      break;
    }
  }
  EXPECT_TRUE(found_perfect);
}

INSTANTIATE_TEST_SUITE_P(Degrees, MSequencePropertyTest,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

TEST(MSequence, NamedCode) {
  const auto code = msequence_code(5);
  EXPECT_EQ(code.name(), "m5");
  EXPECT_EQ(code.length(), 31u);
}

TEST(MSequence, DifferentSeedsAreShifts) {
  const auto a = msequence(5, primitive_tap_mask(5), 1);
  const auto b = msequence(5, primitive_tap_mask(5), 7);
  // Same cycle, different phase: b must be a cyclic shift of a.
  bool is_shift = false;
  for (std::size_t tau = 0; tau < a.size(); ++tau) {
    bool match = true;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[(i + tau) % a.size()] != b[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      is_shift = true;
      break;
    }
  }
  EXPECT_TRUE(is_shift);
}

}  // namespace
}  // namespace cbma::pn
