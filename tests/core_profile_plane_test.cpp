// core::ProfilePlane: the export half of the profiler (DESIGN.md §13).
// Pins the contracts the tooling relies on: disabled is a strict identity
// (no "profile" section, no collapsed file, no sinks), the JSON section
// parses and satisfies the per-node identity incl == excl + child_ns, the
// top-exclusive table is sorted and bounded, and the collapsed-stack
// export's line values sum to the tree's total exclusive time.
//
// Each TEST runs in its own process (gtest_discover_tests), so flipping
// the profiler flag here cannot leak into other tests.
#include "core/profile_plane.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "core/config.h"
#include "core/recorder.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/profiler.h"
#include "util/telemetry.h"

namespace cbma::core {
namespace {

using telemetry::ScopedSpan;
using telemetry::Span;

/// A small deterministic tree: net/round → {net/cell_round → rx/process,
/// net/associate} recorded twice, plus one parallel site.
void record_fixture() {
  for (int round = 0; round < 2; ++round) {
    const ScopedSpan net_round(Span::kNetRound);
    {
      const ScopedSpan assoc(Span::kNetAssociate);
    }
    util::ParallelStats stats;
    util::parallel_for(
        4,
        [](std::size_t) {
          const ScopedSpan cell(Span::kNetCellRound);
          const ScopedSpan rx(Span::kRxProcess);
        },
        2, &stats);
    if (stats.collected) profiler::record_parallel("net/round", stats);
  }
}

void tear_down() {
  ProfilePlane::reset();
  ProfilePlane::disable();
  profiler::set_export_path("");
}

TEST(ProfilePlane, DisabledIsAStrictIdentity) {
  ASSERT_FALSE(ProfilePlane::enabled()) << "profiler must default to off";
  // Spans with the profiler off must leave no trace anywhere.
  {
    const ScopedSpan s(Span::kRxProcess);
  }
  EXPECT_TRUE(profiler::merged_tree().roots.empty());
  EXPECT_TRUE(ProfilePlane::top_exclusive(10).empty());
  EXPECT_TRUE(ProfilePlane::collapsed().empty());
  EXPECT_TRUE(ProfilePlane::write_collapsed_if_requested());

  // And the BENCH document carries no "profile" section.
  SweepSpec spec;
  spec.name = "profile_plane_test";
  spec.title = "t";
  spec.axes.push_back(Axis::numeric("x", {1.0}));
  RunRecorder recorder(std::move(spec), SystemConfig{});
  const auto doc = util::json_parse(recorder.json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_FALSE(doc.has("profile"));
}

TEST(ProfilePlane, JsonSectionParsesAndBalances) {
  ProfilePlane::enable();
  ProfilePlane::reset();
  record_fixture();

  util::JsonWriter w;
  w.begin_object();
  ProfilePlane::write_json_section(w);
  w.end_object();
  tear_down();

  const auto doc = util::json_parse(w.str());
  const auto& prof = doc.at("profile");
  ASSERT_TRUE(prof.is_object());
  EXPECT_GE(prof.at("threads").number, 1.0);
  EXPECT_EQ(prof.at("dropped").number, 0.0);

  // Walk the tree: every node satisfies incl == excl + child_ns exactly.
  std::size_t depth_seen = 0;
  std::function<void(const util::JsonValue&, std::size_t)> walk =
      [&](const util::JsonValue& node, std::size_t depth) {
        depth_seen = std::max(depth_seen, depth);
        EXPECT_FALSE(node.at("span").string.empty());
        EXPECT_DOUBLE_EQ(
            node.at("incl_ns").number,
            node.at("excl_ns").number + node.at("child_ns").number);
        for (const auto& c : node.at("children").array) walk(c, depth + 1);
      };
  const auto& tree = prof.at("tree");
  ASSERT_TRUE(tree.is_array());
  ASSERT_FALSE(tree.array.empty());
  for (const auto& root : tree.array) walk(root, 1);
  // net/round → net/cell_round → rx/process: a real multi-level tree.
  EXPECT_GE(depth_seen, 3u);

  // The parallel site: slot sums must match the aggregate totals.
  const auto& par = prof.at("parallel");
  ASSERT_TRUE(par.is_array());
  ASSERT_EQ(par.array.size(), 1u);
  const auto& site = par.array[0];
  EXPECT_EQ(site.at("site").string, "net/round");
  EXPECT_EQ(site.at("calls").number, 2.0);
  EXPECT_EQ(site.at("items").number, 8.0);
  EXPECT_GE(site.at("imbalance").number, 1.0);
  double slot_busy = 0.0;
  double slot_items = 0.0;
  for (const auto& worker : site.at("workers").array) {
    slot_busy += worker.at("busy_ns").number;
    slot_items += worker.at("items").number;
  }
  EXPECT_DOUBLE_EQ(slot_busy, site.at("busy_ns").number);
  EXPECT_DOUBLE_EQ(slot_items, 8.0);
}

TEST(ProfilePlane, TopExclusiveIsSortedAndBounded) {
  ProfilePlane::enable();
  ProfilePlane::reset();
  record_fixture();
  const auto top2 = ProfilePlane::top_exclusive(2);
  const auto all = ProfilePlane::top_exclusive(100);
  tear_down();

  EXPECT_EQ(top2.size(), 2u);
  ASSERT_GE(all.size(), 4u);  // 4 distinct caller paths in the fixture
  for (std::size_t k = 1; k < all.size(); ++k) {
    EXPECT_GE(all[k - 1].excl_ns, all[k].excl_ns);
  }
  // The bounded prefix is exactly the head of the full ranking.
  EXPECT_EQ(top2[0].path, all[0].path);
  EXPECT_EQ(top2[1].path, all[1].path);
  // Paths are ";"-joined span names rooted at the outermost span.
  bool saw_nested = false;
  for (const auto& row : all) {
    if (row.path == "net/round;net/cell_round;rx/process") {
      saw_nested = true;
      EXPECT_EQ(row.count, 8u);
    }
  }
  EXPECT_TRUE(saw_nested);
}

TEST(ProfilePlane, CollapsedStackSumsToTreeExclusiveTime) {
  ProfilePlane::enable();
  ProfilePlane::reset();
  record_fixture();
  const std::string text = ProfilePlane::collapsed();
  std::uint64_t tree_excl = 0;
  std::function<void(const profiler::MergedNode&)> sum =
      [&](const profiler::MergedNode& n) {
        tree_excl += n.excl_ns();
        for (const auto& c : n.children) sum(c);
      };
  for (const auto& root : profiler::merged_tree().roots) sum(root);
  tear_down();

  ASSERT_FALSE(text.empty());
  std::uint64_t collapsed_sum = 0;
  std::istringstream lines(text);
  std::string line;
  std::string prev_path;
  while (std::getline(lines, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string path = line.substr(0, space);
    ASSERT_FALSE(path.empty());
    // Sorted, unique paths; frames separated by ';'.
    EXPECT_GT(path, prev_path);
    prev_path = path;
    collapsed_sum += std::stoull(line.substr(space + 1));
  }
  // Zero-exclusive rows are omitted, so the remaining values account for
  // exactly the tree's exclusive total.
  EXPECT_EQ(collapsed_sum, tree_excl);
}

TEST(ProfilePlane, WriteCollapsedHonoursTheConfiguredPath) {
  ProfilePlane::enable();
  ProfilePlane::reset();
  record_fixture();
  // No path configured: a successful no-op, no file appears.
  EXPECT_TRUE(ProfilePlane::write_collapsed_if_requested());

  const auto path = ::testing::TempDir() + "cbma_profile_test.collapsed";
  std::remove(path.c_str());
  profiler::set_export_path(path);
  EXPECT_TRUE(ProfilePlane::write_collapsed_if_requested());
  const std::string expected = ProfilePlane::collapsed();
  tear_down();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, expected);
  EXPECT_NE(text.find("net/round"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ProfilePlane, EnableWithPathSetsTheExportTarget) {
  ASSERT_FALSE(ProfilePlane::enabled());
  ProfilePlane::enable("/tmp/cbma_flame.txt");
  EXPECT_TRUE(ProfilePlane::enabled());
  EXPECT_EQ(profiler::export_path(), "/tmp/cbma_flame.txt");
  tear_down();
  EXPECT_FALSE(ProfilePlane::enabled());
}

}  // namespace
}  // namespace cbma::core
