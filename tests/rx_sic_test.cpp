// Tests of the successive-interference-cancellation detection path and its
// ablation switch (DESIGN.md §4.4).
#include <gtest/gtest.h>

#include <cmath>

#include "phy/tag.h"
#include "rfsim/channel.h"
#include "rx/user_detect.h"
#include "util/rng.h"
#include "util/units.h"

namespace cbma::rx {
namespace {

constexpr std::size_t kSpc = 4;
constexpr std::size_t kPreambleBits = 8;
constexpr double kLead = 16.0;

std::vector<pn::PnCode> group_codes(std::size_t n) {
  return pn::make_code_set(pn::CodeFamily::kTwoNC, n, 20);
}

/// detect() through the unified DetectionInput entry point.
std::vector<DetectedUser> detect_iq(const UserDetector& det,
                                    std::span<const std::complex<double>> iq,
                                    std::size_t coarse_start) {
  std::vector<double> re, im;
  pn::split_iq(iq, re, im);
  UserDetector::Scratch scratch;
  return det.detect(DetectionInput{re, im, coarse_start}, scratch);
}

rfsim::Channel quiet_channel(double noise = 0.0) {
  rfsim::ChannelConfig cfg;
  cfg.samples_per_chip = kSpc;
  cfg.chip_rate_hz = 32e6;
  cfg.noise_power_w = noise;
  return rfsim::Channel(cfg);
}

/// All `n` tags transmit with realistic amplitude spread and small random
/// offsets (the regime where detection order matters).
std::vector<std::complex<double>> crowd(const std::vector<pn::PnCode>& codes,
                                        std::size_t n, cbma::Rng& rng,
                                        double noise = 0.01) {
  std::vector<std::vector<std::uint8_t>> chips;
  const std::vector<std::uint8_t> payload{0x5A, 0xA5};
  for (std::size_t k = 0; k < n; ++k) {
    phy::TagConfig tc;
    tc.id = static_cast<std::uint32_t>(k);
    tc.code = codes[k];
    tc.preamble_bits = kPreambleBits;
    chips.push_back(phy::Tag(tc).chip_sequence(payload));
  }
  std::vector<rfsim::TagTransmission> txs;
  for (std::size_t k = 0; k < n; ++k) {
    rfsim::TagTransmission tx;
    tx.chips = chips[k];
    tx.amplitude = rng.uniform(0.4, 1.0);
    tx.phase = rng.phase();
    tx.delay_chips = kLead + rng.uniform(0.0, 1.0);
    txs.push_back(tx);
  }
  return quiet_channel(noise).receive(txs, rng);
}

std::size_t correct_detections(const UserDetector& det,
                               const std::vector<std::complex<double>>& iq,
                               std::size_t n_active) {
  const auto hits = detect_iq(det, iq, static_cast<std::size_t>(kLead) * kSpc);
  std::size_t good = 0;
  for (const auto& h : hits) {
    // Offset must land within the true jitter span (±1 chip of the lead-in,
    // with one chip of slack for the estimator).
    const auto lead = static_cast<double>(kLead * kSpc);
    if (h.tag_index < n_active &&
        std::abs(static_cast<double>(h.offset_samples) - lead) <= 2.0 * kSpc + 4) {
      ++good;
    }
  }
  return good;
}

TEST(SicDetection, EightTagCrowdFullyDetected) {
  const auto codes = group_codes(8);
  const UserDetector det(UserDetectConfig{}, codes, kPreambleBits, kSpc);
  cbma::Rng rng(1);
  std::size_t total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto iq = crowd(codes, 8, rng);
    total += correct_detections(det, iq, 8);
  }
  EXPECT_GE(total, 72u);  // ≥90 % of 80
}

TEST(SicDetection, AblationLosesTagsInCrowd) {
  const auto codes = group_codes(8);
  UserDetectConfig no_sic;
  no_sic.enable_sic = false;
  const UserDetector with(UserDetectConfig{}, codes, kPreambleBits, kSpc);
  const UserDetector without(no_sic, codes, kPreambleBits, kSpc);
  cbma::Rng r1(2), r2(2);
  std::size_t with_total = 0, without_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto iq1 = crowd(codes, 8, r1);
    with_total += correct_detections(with, iq1, 8);
    const auto iq2 = crowd(codes, 8, r2);
    without_total += correct_detections(without, iq2, 8);
  }
  EXPECT_GE(with_total, without_total);  // SIC never hurts
  EXPECT_GE(with_total, 70u);
}

TEST(SicDetection, NearFarWeakUserRecoveredByCancellation) {
  const auto codes = group_codes(4);
  const UserDetector det(UserDetectConfig{}, codes, kPreambleBits, kSpc);
  cbma::Rng rng(3);

  const std::vector<std::uint8_t> payload{0x11};
  std::vector<std::vector<std::uint8_t>> chips;
  for (std::size_t k = 0; k < 2; ++k) {
    phy::TagConfig tc;
    tc.id = static_cast<std::uint32_t>(k);
    tc.code = codes[k];
    tc.preamble_bits = kPreambleBits;
    chips.push_back(phy::Tag(tc).chip_sequence(payload));
  }

  int weak_found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<rfsim::TagTransmission> txs(2);
    txs[0].chips = chips[0];
    txs[0].amplitude = 1.0;
    txs[0].phase = rng.phase();
    txs[0].delay_chips = kLead;
    txs[1].chips = chips[1];
    txs[1].amplitude = 0.25;  // 12 dB down
    txs[1].phase = rng.phase();
    txs[1].delay_chips = kLead + 0.5;
    const auto iq = quiet_channel(1e-6).receive(txs, rng);
    for (const auto& h : detect_iq(det, iq, static_cast<std::size_t>(kLead) * kSpc)) {
      if (h.tag_index == 1) ++weak_found;
    }
  }
  EXPECT_GE(weak_found, 18);
}

TEST(SicDetection, SingleUserIdenticalWithAndWithoutSic) {
  // With one transmitter there is nothing to cancel: both paths must agree.
  const auto codes = group_codes(4);
  UserDetectConfig no_sic;
  no_sic.enable_sic = false;
  const UserDetector with(UserDetectConfig{}, codes, kPreambleBits, kSpc);
  const UserDetector without(no_sic, codes, kPreambleBits, kSpc);
  cbma::Rng r1(4), r2(4);
  const auto iq1 = crowd(codes, 1, r1);
  const auto iq2 = crowd(codes, 1, r2);
  const auto h1 = detect_iq(with, iq1, static_cast<std::size_t>(kLead) * kSpc);
  const auto h2 = detect_iq(without, iq2, static_cast<std::size_t>(kLead) * kSpc);
  ASSERT_FALSE(h1.empty());
  ASSERT_FALSE(h2.empty());
  EXPECT_EQ(h1.front().tag_index, h2.front().tag_index);
  EXPECT_EQ(h1.front().offset_samples, h2.front().offset_samples);
  EXPECT_NEAR(h1.front().correlation, h2.front().correlation, 1e-12);
}

TEST(SicDetection, CancellationKeepsPhaseEstimateHonest) {
  // The second-detected user's phase must match its transmit phase even
  // though it was measured on the residual.
  const auto codes = group_codes(3);
  const UserDetector det(UserDetectConfig{}, codes, kPreambleBits, kSpc);
  cbma::Rng rng(5);
  const std::vector<std::uint8_t> payload{0x77};

  std::vector<std::vector<std::uint8_t>> chips;
  for (std::size_t k = 0; k < 2; ++k) {
    phy::TagConfig tc;
    tc.id = static_cast<std::uint32_t>(k);
    tc.code = codes[k];
    tc.preamble_bits = kPreambleBits;
    chips.push_back(phy::Tag(tc).chip_sequence(payload));
  }
  std::vector<rfsim::TagTransmission> txs(2);
  txs[0].chips = chips[0];
  txs[0].amplitude = 1.0;
  txs[0].phase = 0.4;
  txs[0].delay_chips = kLead;
  txs[1].chips = chips[1];
  txs[1].amplitude = 0.5;
  txs[1].phase = -1.1;
  txs[1].delay_chips = kLead + 0.75;
  const auto iq = quiet_channel(1e-8).receive(txs, rng);

  const auto hits = detect_iq(det, iq, static_cast<std::size_t>(kLead) * kSpc);
  ASSERT_EQ(hits.size(), 2u);
  for (const auto& h : hits) {
    const double want = h.tag_index == 0 ? 0.4 : -1.1;
    EXPECT_NEAR(h.phase, want, 0.15) << "tag " << h.tag_index;
  }
}

}  // namespace
}  // namespace cbma::rx
