// Cross-module integration sweeps: the full pipeline (tag → channel →
// receiver → ACK) parameterized over code family, tag count and payload
// size, plus subset transmission and end-to-end determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/system.h"
#include "util/units.h"

namespace cbma::core {
namespace {

rfsim::Deployment ring(std::size_t n_tags, double radius = 0.25, double cy = 0.75) {
  auto dep = rfsim::Deployment::paper_frame();
  for (std::size_t k = 0; k < n_tags; ++k) {
    const double angle = 2.0 * units::kPi * static_cast<double>(k) /
                         static_cast<double>(n_tags);
    dep.add_tag({radius * std::cos(angle), cy + radius * std::sin(angle)});
  }
  return dep;
}

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<pn::CodeFamily, std::size_t,
                                                 std::size_t>> {};

// Every (family, tag count, payload size) combination must deliver nearly
// all frames on an equal-strength ring.
TEST_P(PipelineSweep, ConcurrentGroupDelivers) {
  const auto [family, n_tags, payload_bytes] = GetParam();
  SystemConfig cfg;
  cfg.code_family = family;
  cfg.code_min_length = 31;
  cfg.max_tags = n_tags;
  cfg.payload_bytes = payload_bytes;

  CbmaSystem sys(cfg, ring(n_tags));
  Rng rng(77);
  const auto stats = sys.run_packets(25, rng);
  EXPECT_LE(stats.frame_error_rate(), 0.12)
      << pn::to_string(family) << " tags=" << n_tags << " payload=" << payload_bytes;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTagsPayloads, PipelineSweep,
    ::testing::Combine(::testing::Values(pn::CodeFamily::kGold,
                                         pn::CodeFamily::kTwoNC),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{6}),
                       ::testing::Values(std::size_t{0}, std::size_t{4},
                                         std::size_t{32})));

TEST(Integration, PayloadIntegrityAcrossTheAir) {
  // Every delivered payload must match what its tag sent, bit for bit.
  SystemConfig cfg;
  cfg.max_tags = 4;
  CbmaSystem sys(cfg, ring(4));
  Rng rng(88);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<std::uint8_t>> payloads;
    for (std::size_t k = 0; k < 4; ++k) {
      std::vector<std::uint8_t> p(cfg.payload_bytes);
      for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      payloads.push_back(std::move(p));
    }
    TransmitOptions options;
    options.payloads = payloads;
    const auto report = sys.transmit(options, rng);
    for (std::size_t k = 0; k < 4; ++k) {
      if (report.results[k].crc_ok) {
        EXPECT_EQ(report.results[k].payload, payloads[k]) << "tag " << k;
      }
    }
  }
}

TEST(Integration, SubsetTransmissionMatchesActiveSet) {
  SystemConfig cfg;
  cfg.max_tags = 6;
  CbmaSystem sys(cfg, ring(6));
  Rng rng(99);
  int mismatches = 0;
  for (int round = 0; round < 30; ++round) {
    std::vector<std::size_t> subset;
    for (std::size_t k = 0; k < 6; ++k) {
      if (rng.bernoulli(0.5)) subset.push_back(k);
    }
    if (subset.empty()) subset.push_back(0);
    TransmitOptions options;
    options.slots = subset;
    const auto report = sys.transmit(options, rng);
    for (std::size_t k = 0; k < 6; ++k) {
      const bool sent = std::find(subset.begin(), subset.end(), k) != subset.end();
      if (report.ack.contains(k) != sent) ++mismatches;
    }
  }
  EXPECT_LE(mismatches, 4);  // ≤ ~2 % of 180 tag-rounds
}

TEST(Integration, SubsetValidatesSlots) {
  SystemConfig cfg;
  cfg.max_tags = 3;
  CbmaSystem sys(cfg, ring(3));
  Rng rng(1);
  const std::vector<std::size_t> bad{5};
  TransmitOptions options;
  options.slots = bad;
  EXPECT_THROW(sys.transmit(options, rng), std::invalid_argument);
  // Empty .slots means "whole group" in the unified API; the legacy shim's
  // non-empty contract is pinned in core_transmit_determinism_test.
  EXPECT_NO_THROW(sys.transmit({}, rng));
}

TEST(Integration, EndToEndDeterminism) {
  SystemConfig cfg;
  cfg.max_tags = 3;
  const auto dep = ring(3);
  auto run = [&](std::uint64_t seed) {
    CbmaSystem sys(cfg, dep);
    Rng rng(seed);
    const auto stats = sys.run_packets(15, rng);
    return std::make_pair(stats.acked, stats.sent);
  };
  EXPECT_EQ(run(1234), run(1234));
  // Different seeds may differ (not asserted — just exercise the path).
  (void)run(5678);
}

TEST(Integration, LowSamplesPerChipStillWorks) {
  // spc = 2 halves the simulation cost; the lead-in auto-extends so the
  // frame synchronizer keeps its baseline window.
  SystemConfig cfg;
  cfg.max_tags = 3;
  cfg.samples_per_chip = 2;
  CbmaSystem sys(cfg, ring(3));
  EXPECT_GE(sys.config().lead_in_chips, 80.0);  // extended past the default 64
  Rng rng(7);
  const auto stats = sys.run_packets(20, rng);
  EXPECT_LE(stats.frame_error_rate(), 0.15);
}

TEST(Integration, GoldFamilySupportsManyTags) {
  // Ten concurrent tags on Gold-31 codes (the family holds 33).
  SystemConfig cfg;
  cfg.code_family = pn::CodeFamily::kGold;
  cfg.code_min_length = 31;
  cfg.max_tags = 10;
  CbmaSystem sys(cfg, ring(10, 0.3));
  Rng rng(11);
  const auto stats = sys.run_packets(15, rng);
  EXPECT_LE(stats.frame_error_rate(), 0.2);
}

TEST(Integration, PhaseTrackingGainZeroStillDecodesShortFrames) {
  SystemConfig cfg;
  cfg.max_tags = 2;
  cfg.phase_tracking_gain = 0.0;
  cfg.payload_bytes = 4;
  CbmaSystem sys(cfg, ring(2));
  Rng rng(13);
  const auto stats = sys.run_packets(20, rng);
  EXPECT_LE(stats.frame_error_rate(), 0.2);
}

TEST(Integration, MultipathChannelEndToEnd) {
  SystemConfig cfg;
  cfg.max_tags = 3;
  cfg.multipath.enabled = true;
  CbmaSystem sys(cfg, ring(3));
  Rng rng(17);
  const auto stats = sys.run_packets(25, rng);
  EXPECT_LE(stats.frame_error_rate(), 0.25);
}

}  // namespace
}  // namespace cbma::core
